//! tilestore — storage of multidimensional arrays based on arbitrary tiling.
//!
//! Facade crate re-exporting the public API of the workspace. See the
//! individual crates for details:
//!
//! * [`geometry`] — points, domains, cell ordering ([`tilestore_geometry`]);
//! * [`tiling`] — the tiling strategies ([`tilestore_tiling`]);
//! * [`storage`] — page/BLOB substrate ([`tilestore_storage`]);
//! * [`index`] — R+-tree tile index ([`tilestore_index`]);
//! * [`engine`] — the MDD storage manager ([`tilestore_engine`]).
//!
//! The most common entry points are re-exported at the crate root:
//!
//! ```
//! use tilestore::{Domain, Point};
//!
//! let domain: Domain = "[0:120,0:159,0:119]".parse().unwrap();
//! assert!(domain.contains_point(&Point::from_slice(&[60, 80, 40])));
//! ```

#![warn(missing_docs)]

pub use tilestore_geometry as geometry;
pub use tilestore_index as index;
pub use tilestore_storage as storage;
pub use tilestore_tiling as tiling;

/// The MDD storage engine (re-exported whole).
pub use tilestore_engine as engine;

/// Selective per-tile compression (re-exported whole).
pub use tilestore_compress as compress;

/// The RasQL-style query language (re-exported whole).
pub use tilestore_rasql as rasql;

/// Observability: tracing spans, metrics, the persistent access recorder
/// (re-exported whole).
pub use tilestore_obs as obs;

/// The scoped fork-join thread-pool executor (re-exported whole).
pub use tilestore_exec as exec;

/// The TCP serving layer and its blocking client (re-exported whole).
pub use tilestore_server as server;

/// Sharded scatter-gather serving: shard map, coordinator, cluster serve
/// endpoint (re-exported whole).
pub use tilestore_cluster as cluster;

pub use tilestore_compress::{Codec, CompressionPolicy};
pub use tilestore_engine::{
    AccessLog, AccessRegion, AggKind, AggValue, Array, CellType, CellValue, Database,
    DatabaseBuilder, DefragStep, DeleteStats, EngineError, InsertStats, MddObject, MddType,
    QueryResult, QueryStats, QueryTimes, RetileStats, Rgb, SharedDatabase, Snapshot, UpdateStats,
    WriteReceipt,
};
pub use tilestore_exec::ThreadPool;
pub use tilestore_geometry::{AxisRange, DefDomain, Domain, Point};
pub use tilestore_obs::{AccessRecorder, MetricsRegistry, Tracer};
pub use tilestore_server::{Client, RemoteValue, ServerConfig, ServerHandle};
pub use tilestore_storage::{BufferPool, CostModel, FilePageStore, IoStats, MemPageStore};
pub use tilestore_tiling::{
    AccessRecord, AlignedTiling, AreasOfInterestTiling, AxisPartition, DirectionalTiling, Extent,
    RetileSpec, Scheme, SingleTile, StatisticTiling, TileConfig, TilingSpec, TilingStrategy,
};
