//! Cross-crate integration of the query language: RasQL over compressed,
//! directionally-tiled, persisted databases.

use tilestore::rasql::{execute, Value};
use tilestore::{
    Array, AxisPartition, CellType, CompressionPolicy, Database, DefDomain, DirectionalTiling,
    Domain, MddType, Scheme,
};

fn d(s: &str) -> Domain {
    s.parse().unwrap()
}

/// Builds a quarter-year sales cube with category cuts, selective
/// compression, loaded in two growth steps.
fn build(dir: &std::path::Path) {
    let db = Database::create_dir(dir).unwrap();
    db.create_object(
        "sales",
        MddType::new(CellType::of::<u32>(), DefDomain::unlimited(3).unwrap()),
        Scheme::Directional(DirectionalTiling::new(
            vec![
                AxisPartition::new(0, vec![1, 31, 59, 90]),
                AxisPartition::new(1, vec![1, 27, 42, 60]),
            ],
            64 * 1024,
        )),
    )
    .unwrap();
    db.set_compression("sales", CompressionPolicy::selective_default())
        .unwrap();
    // Two-step growth along the time axis.
    for (lo, hi) in [(1i64, 59i64), (60, 90)] {
        let dom = Domain::from_bounds(&[(lo, hi), (1, 60), (1, 100)]).unwrap();
        db.insert(
            "sales",
            &Array::from_fn(dom, |p| ((p[0] * 7 + p[1] * 3 + p[2]) % 100) as u32).unwrap(),
        )
        .unwrap();
    }
    db.save(dir).unwrap();
}

#[test]
fn rasql_over_reopened_compressed_database() {
    let dir = tilestore_testkit::tempdir().unwrap();
    build(dir.path());
    let db = Database::open_dir(dir.path()).unwrap();

    // Trim spanning the growth boundary.
    let (v, stats) = execute(
        &db.begin_read(),
        "SELECT sales[55:65, 1:10, 1:10] FROM sales",
    )
    .unwrap();
    let arr = v.as_array().unwrap();
    assert_eq!(arr.domain(), &d("[55:65,1:10,1:10]"));
    // Spot check a cell on each side of the boundary.
    for (t, y, x) in [(55i64, 5i64, 5i64), (65, 5, 5)] {
        let expected = ((t * 7 + y * 3 + x) % 100) as u32;
        assert_eq!(
            arr.get::<u32>(&tilestore::Point::from_slice(&[t, y, x]))
                .unwrap(),
            expected
        );
    }
    assert!(stats.io.bytes_read > 0, "data decompressed from disk");

    // Streaming condenser equals materialize-and-fold.
    let (sum, _) = execute(
        &db.begin_read(),
        "SELECT sum_cells(sales[1:30, 1:26, *]) FROM sales",
    )
    .unwrap();
    let (block, _) = execute(&db.begin_read(), "SELECT sales[1:30, 1:26, *] FROM sales").unwrap();
    let brute: f64 = block
        .as_array()
        .unwrap()
        .to_cells::<u32>()
        .unwrap()
        .iter()
        .map(|&c| f64::from(c))
        .sum();
    assert_eq!(sum.as_number().unwrap(), brute);

    // Induced comparison counted two ways agrees.
    let (count, _) = execute(
        &db.begin_read(),
        "SELECT count_cells(sales > 50) FROM sales",
    )
    .unwrap();
    let Value::Count(n) = count else {
        panic!("count expected")
    };
    let (all, _) = execute(&db.begin_read(), "SELECT sales FROM sales").unwrap();
    let brute = all
        .as_array()
        .unwrap()
        .to_cells::<u32>()
        .unwrap()
        .iter()
        .filter(|&&c| c > 50)
        .count() as u64;
    assert_eq!(n, brute);
}

#[test]
fn section_and_induced_compose_across_crates() {
    let dir = tilestore_testkit::tempdir().unwrap();
    build(dir.path());
    let db = Database::open_dir(dir.path()).unwrap();

    // Day 45 as a 2-D slab, doubled.
    let (v, _) = execute(&db.begin_read(), "SELECT sales[45, *, *] * 2 FROM sales").unwrap();
    let slab = v.as_array().unwrap();
    assert_eq!(slab.domain(), &d("[1:60,1:100]"));
    let expected = (((45 * 7 + 10 * 3 + 20) % 100) * 2) as u32;
    assert_eq!(
        slab.get::<u32>(&tilestore::Point::from_slice(&[10, 20]))
            .unwrap(),
        expected
    );

    // avg over the section must match avg over the equivalent 3-D trim.
    let (a, _) = execute(
        &db.begin_read(),
        "SELECT avg_cells(sales[45, *, *]) FROM sales",
    )
    .unwrap();
    let (b, _) = execute(
        &db.begin_read(),
        "SELECT avg_cells(sales[45:45, *, *]) FROM sales",
    )
    .unwrap();
    assert!((a.as_number().unwrap() - b.as_number().unwrap()).abs() < 1e-9);
}
