//! Cross-crate integration: file-backed databases, mixed object types,
//! persistence, and the full insert/query/retile lifecycle.

use tilestore::{
    AccessRegion, AlignedTiling, Array, AxisPartition, CellType, Database, DefDomain,
    DirectionalTiling, Domain, MddType, Point, Rgb, Scheme, TileConfig,
};

fn d(s: &str) -> Domain {
    s.parse().unwrap()
}

#[test]
fn file_backed_database_full_lifecycle() {
    let dir = tilestore_testkit::tempdir().unwrap();
    let image_dom = d("[0:99,0:99]");
    let video_dom = d("[0:9,0:31,0:31]");

    {
        let db = Database::create_dir(dir.path()).unwrap();

        // Two objects with different dimensionalities and cell types in the
        // same database (the §2 "integrated support" requirement).
        db.create_object(
            "image",
            MddType::new(CellType::of::<u16>(), DefDomain::unlimited(2).unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 2048)),
        )
        .unwrap();
        db.create_object(
            "video",
            MddType::new(CellType::of::<Rgb>(), DefDomain::unlimited(3).unwrap()),
            Scheme::Aligned(AlignedTiling::new(
                "[*,1,*]".parse::<TileConfig>().unwrap(),
                4096,
            )),
        )
        .unwrap();

        let image = Array::from_fn(image_dom.clone(), |p| (p[0] * 100 + p[1]) as u16).unwrap();
        db.insert("image", &image).unwrap();
        let video = Array::from_fn(video_dom.clone(), |p| {
            Rgb::new(p[0] as u8, p[1] as u8, p[2] as u8)
        })
        .unwrap();
        db.insert("video", &video).unwrap();

        db.save(dir.path()).unwrap();
    }

    // Reopen and verify both objects.
    let db = Database::open_dir(dir.path()).unwrap();
    assert_eq!(db.object_names(), vec!["image", "video"]);

    let __q = db.range_query("image", &d("[40:59,40:59]")).unwrap();
    let (img, stats) = (__q.array, __q.stats);
    assert_eq!(img.get::<u16>(&Point::from_slice(&[50, 50])).unwrap(), 5050);
    assert!(stats.io.pages_read > 0, "data came from the page file");

    let frame = {
        db.query("video", &AccessRegion::Section(vec![Some(3), None, None]))
            .unwrap()
    }
    .array;
    assert_eq!(frame.domain(), &d("[0:31,0:31]"));
    assert_eq!(
        frame.get::<Rgb>(&Point::from_slice(&[5, 6])).unwrap(),
        Rgb::new(3, 5, 6)
    );
}

#[test]
fn retile_on_reopened_database() {
    let dir = tilestore_testkit::tempdir().unwrap();
    let dom = d("[1:100,1:40]");
    let data = Array::from_fn(dom.clone(), |p| (p[0] * 41 + p[1]) as u32).unwrap();
    {
        let db = Database::create_dir(dir.path()).unwrap();
        db.create_object(
            "grid",
            MddType::new(CellType::of::<u32>(), DefDomain::unlimited(2).unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 1024)),
        )
        .unwrap();
        db.insert("grid", &data).unwrap();
        db.save(dir.path()).unwrap();
    }
    let db = Database::open_dir(dir.path()).unwrap();
    let before = db.object("grid").unwrap().tile_count();
    db.retile(
        "grid",
        Scheme::Directional(DirectionalTiling::new(
            vec![AxisPartition::new(0, vec![1, 50, 100])],
            16 * 1024,
        )),
    )
    .unwrap();
    assert_ne!(db.object("grid").unwrap().tile_count(), before);
    let out = { db.range_query("grid", &dom).unwrap() }.array;
    assert_eq!(out, data);
    // Persist the retiled state and read it back once more.
    db.save(dir.path()).unwrap();
    let db2 = Database::open_dir(dir.path()).unwrap();
    let out2 = { db2.range_query("grid", &dom).unwrap() }.array;
    assert_eq!(out2, data);
}

#[test]
fn gradual_growth_over_unlimited_axis() {
    // A time series growing along an unlimited axis, as §3's unlimited
    // definition domains are designed for.
    let db = Database::in_memory().unwrap();
    db.create_object(
        "series",
        MddType::new(
            CellType::of::<f64>(),
            "[0:*,0:9]".parse::<DefDomain>().unwrap(),
        ),
        Scheme::Aligned(AlignedTiling::new(
            "[*,1]".parse::<TileConfig>().unwrap(),
            4096,
        )),
    )
    .unwrap();

    // Append ten daily batches of 100 time steps each.
    for batch in 0..10i64 {
        let lo = batch * 100;
        let dom = Domain::from_bounds(&[(lo, lo + 99), (0, 9)]).unwrap();
        let batch_data = Array::from_fn(dom, |p| (p[0] as f64) + (p[1] as f64) / 10.0).unwrap();
        db.insert("series", &batch_data).unwrap();
    }
    let obj = db.object("series").unwrap();
    assert_eq!(obj.current_domain, Some(d("[0:999,0:9]")));

    // A query spanning several batches stitches them seamlessly.
    let out = { db.range_query("series", &d("[250:749,3:5]")).unwrap() }.array;
    assert_eq!(
        out.get::<f64>(&Point::from_slice(&[500, 4])).unwrap(),
        500.4
    );
    assert_eq!(out.domain().cells(), 500 * 3);

    // Growth below the definition domain's lower bound is rejected.
    let bad = Array::from_fn(d("[-10:-1,0:9]"), |_| 0.0f64).unwrap();
    assert!(db.insert("series", &bad).is_err());
}

#[test]
fn buffer_pooled_database_serves_hot_queries_from_cache() {
    use tilestore::{BufferPool, MemPageStore};

    let store = MemPageStore::new(4096).unwrap();
    let pool = BufferPool::new(store, 256).unwrap();
    let db = Database::with_store(pool);
    db.create_object(
        "img",
        MddType::new(CellType::of::<u8>(), DefDomain::unlimited(2).unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 4096)),
    )
    .unwrap();
    db.insert(
        "img",
        &Array::from_fn(d("[0:127,0:127]"), |p| (p[0] ^ p[1]) as u8).unwrap(),
    )
    .unwrap();

    let q = d("[10:50,10:50]");
    db.range_query("img", &q).unwrap();
    let cold = db.blob_store().page_store().stats().snapshot();
    db.range_query("img", &q).unwrap();
    let warm = db.blob_store().page_store().stats().snapshot().since(&cold);
    assert_eq!(warm.cache_misses, 0, "second read is fully cached");
    assert!(warm.cache_hits > 0);
}

#[test]
fn concurrent_readers_share_one_database() {
    // Queries take &self; the storage layer is internally synchronized, so
    // many threads may read one database concurrently.
    use std::sync::Arc;

    let db = Database::in_memory().unwrap();
    db.create_object(
        "grid",
        MddType::new(CellType::of::<u32>(), DefDomain::unlimited(2).unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 2048)),
    )
    .unwrap();
    let dom = d("[0:127,0:127]");
    let data = Array::from_fn(dom.clone(), |p| (p[0] * 128 + p[1]) as u32).unwrap();
    db.insert("grid", &data).unwrap();
    let db = Arc::new(db);

    std::thread::scope(|scope| {
        for t in 0..8i64 {
            let db = Arc::clone(&db);
            let data = &data;
            scope.spawn(move || {
                for k in 0..16i64 {
                    let lo = (t * 16 + k) % 100;
                    let region = Domain::from_bounds(&[(lo, lo + 27), (lo, lo + 27)]).unwrap();
                    let out = { db.range_query("grid", &region).unwrap() }.array;
                    assert_eq!(out, data.extract(&region).unwrap());
                    let (sum, _) = db
                        .aggregate("grid", &region, tilestore::AggKind::Sum)
                        .unwrap();
                    assert!(sum.as_number().unwrap() > 0.0);
                }
            });
        }
    });
}

#[test]
fn all_strategies_roundtrip_same_seeded_dataset() {
    // One seeded dataset, four tiling strategies: ingest → tile → store
    // (file-backed) → range-query → update → reopen must agree cell-for-cell
    // across every strategy.
    use tilestore::{AccessRecord, AreasOfInterestTiling, StatisticTiling};

    let dom = d("[0:79,0:59]");
    let mut rng = tilestore_testkit::Rng::seed_from_u64(0x7113_5704);
    let data = Array::from_fn(dom.clone(), |_| rng.gen_range(0u32..10_000)).unwrap();

    let hot_a = d("[10:39,5:24]");
    let hot_b = d("[50:79,30:59]");
    let schemes: Vec<(&str, Scheme)> = vec![
        (
            "aligned",
            Scheme::Aligned(AlignedTiling::regular(2, 4 * 1024)),
        ),
        (
            "directional",
            Scheme::Directional(DirectionalTiling::new(
                vec![
                    AxisPartition::new(0, vec![0, 25, 55, 79]),
                    AxisPartition::new(1, vec![0, 30, 59]),
                ],
                8 * 1024,
            )),
        ),
        (
            "areas_of_interest",
            Scheme::AreasOfInterest(AreasOfInterestTiling::new(
                vec![hot_a.clone(), hot_b.clone()],
                8 * 1024,
            )),
        ),
        (
            "statistic",
            Scheme::Statistic(StatisticTiling::new(
                vec![
                    AccessRecord::new(hot_a.clone(), 9),
                    AccessRecord::new(hot_b.clone(), 7),
                    AccessRecord::new(d("[0:9,40:49]"), 2),
                ],
                8,
                3,
                8 * 1024,
            )),
        ),
    ];

    // The update applied after the first reopen, and the shadow model every
    // strategy must converge to.
    let patch_dom = d("[20:59,15:44]");
    let patch = Array::from_fn(patch_dom, |p| (p[0] * 1000 + p[1]) as u32).unwrap();
    let mut shadow = data.clone();
    shadow.paste(&patch).unwrap();

    let queries = [d("[0:79,0:59]"), hot_a.clone(), d("[15:64,10:49]")];
    for (name, scheme) in schemes {
        let dir = tilestore_testkit::tempdir().unwrap();
        {
            let db = Database::create_dir(dir.path()).unwrap();
            db.create_object(
                "cube",
                MddType::new(CellType::of::<u32>(), DefDomain::unlimited(2).unwrap()),
                scheme,
            )
            .unwrap();
            db.insert("cube", &data).unwrap();
            db.save(dir.path()).unwrap();
        }

        // Reopen: every query region reads back the ingested cells exactly.
        let db = Database::open_dir(dir.path()).unwrap();
        assert!(db.object("cube").unwrap().tile_count() >= 1, "{name}");
        for q in &queries {
            let out = { db.range_query("cube", q).unwrap() }.array;
            assert_eq!(out, data.extract(q).unwrap(), "{name}: query {q}");
        }

        // Update, persist, reopen once more: the stored object matches the
        // shadow model under every strategy.
        db.update("cube", &patch).unwrap();
        db.save(dir.path()).unwrap();
        let db = Database::open_dir(dir.path()).unwrap();
        for q in &queries {
            let out = { db.range_query("cube", q).unwrap() }.array;
            assert_eq!(out, shadow.extract(q).unwrap(), "{name}: post-update {q}");
        }
    }
}

#[test]
fn observe_then_retile_from_recorded_log_reduces_io() {
    // The paper's §5.2 feedback loop, end to end through the engine's OWN
    // recorded access log (no synthetic log): run a clustered workload on a
    // file-backed database, re-tile from the log the engine wrote, and the
    // hot region's tile reads and model t_o must drop.
    use tilestore::CostModel;

    let dir = tilestore_testkit::tempdir().unwrap();
    let dom = d("[0:99,0:99]");
    let data = Array::from_fn(dom.clone(), |p| (p[0] * 100 + p[1]) as u32).unwrap();
    let hot = d("[20:49,20:49]");

    let db = Database::create_dir(dir.path()).unwrap();
    db.create_object(
        "cube",
        MddType::new(CellType::of::<u32>(), DefDomain::unlimited(2).unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 2048)),
    )
    .unwrap();
    db.insert("cube", &data).unwrap();

    // Clustered workload: the hot region dominates the access log.
    let mut baseline = None;
    for _ in 0..10 {
        let stats = { db.range_query("cube", &hot).unwrap() }.stats;
        baseline.get_or_insert(stats);
    }
    db.range_query("cube", &d("[80:89,0:9]")).unwrap(); // stray access
    let baseline = baseline.unwrap();
    assert!(
        baseline.tiles_read > 1,
        "regular tiling fragments the hot region: {baseline:?}"
    );

    // The engine recorded the workload persistently; re-tile from it.
    let log = db.recorder().unwrap().entries_for("cube").unwrap();
    assert!(log
        .iter()
        .any(|e| e.region == hot.to_string() && e.count == 10));
    let stats = db.auto_retile_from_log("cube", 0, 5, 64 * 1024).unwrap();
    assert!(stats.tiles_after > 0);

    // The hot region now reads fewer tiles, with no wasted cells and a
    // lower modelled disk time; the data is unchanged.
    let __q = db.range_query("cube", &hot).unwrap();
    let (out, after) = (__q.array, __q.stats);
    assert_eq!(out, data.extract(&hot).unwrap());
    assert!(
        after.tiles_read < baseline.tiles_read,
        "tiles {} -> {}",
        baseline.tiles_read,
        after.tiles_read
    );
    let model = CostModel::classic_disk();
    assert!(
        after.times(&model).t_o < baseline.times(&model).t_o,
        "t_o must drop after log-driven re-tiling"
    );
    assert_eq!(after.cells_processed, hot.cells(), "no border waste");

    // Persistence: the adapted tiling and the log survive a reopen.
    db.save(dir.path()).unwrap();
    let db2 = Database::open_dir(dir.path()).unwrap();
    let __q = db2.range_query("cube", &hot).unwrap();
    let (out2, again) = (__q.array, __q.stats);
    assert_eq!(out2, data.extract(&hot).unwrap());
    assert_eq!(again.tiles_read, after.tiles_read);
    assert!(db2.recorder().unwrap().total_accesses().unwrap() >= 11);
}

#[test]
fn single_tile_and_sparse_objects() {
    let db = Database::in_memory().unwrap();
    // A tiny config object stored as one BLOB.
    db.create_object(
        "config",
        MddType::new(CellType::of::<u8>(), DefDomain::unlimited(1).unwrap()),
        Scheme::SingleTile(tilestore::SingleTile),
    )
    .unwrap();
    db.insert(
        "config",
        &Array::from_cells(d("[0:15]"), &[7u8; 16]).unwrap(),
    )
    .unwrap();
    assert_eq!(db.object("config").unwrap().tile_count(), 1);

    // A sparse object: two far-apart islands, huge current domain, tiny
    // storage footprint (§4 partial coverage).
    db.create_object(
        "sparse",
        MddType::new(CellType::of::<u8>(), DefDomain::unlimited(2).unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 1024)),
    )
    .unwrap();
    db.insert("sparse", &Array::filled(d("[0:9,0:9]"), &[1]).unwrap())
        .unwrap();
    db.insert(
        "sparse",
        &Array::filled(d("[10000:10009,10000:10009]"), &[2]).unwrap(),
    )
    .unwrap();
    let obj = db.object("sparse").unwrap();
    assert_eq!(
        obj.current_domain,
        Some(d("[0:10009,0:10009]")),
        "current domain is the closure"
    );
    assert_eq!(
        obj.covered_cells(),
        200,
        "storage stays proportional to data"
    );
    let probe = {
        db.range_query("sparse", &d("[5000:5001,5000:5001]"))
            .unwrap()
    }
    .array;
    assert!(probe.to_cells::<u8>().unwrap().iter().all(|&c| c == 0));
}
