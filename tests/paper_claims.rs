//! Integration tests asserting the paper's qualitative experimental claims
//! on scaled-down versions of the §6 workloads (the full-size runs live in
//! the `repro` binary).

use tilestore::{CompressionPolicy, CostModel, Domain, TilingStrategy};
use tilestore_bench::harness::{speedups, Experiment, QuerySpec};
use tilestore_bench::schemes::NamedScheme;
use tilestore_bench::workloads::animation::Animation;
use tilestore_bench::workloads::sales::SalesCube;
use tilestore_engine::Array;

fn d(s: &str) -> Domain {
    s.parse().unwrap()
}

/// A one-year, quarter-size sales cube that keeps Table 1's category
/// structure but runs in milliseconds.
fn small_cube() -> (SalesCube, Array) {
    let full = SalesCube::table1();
    let domain = d("[1:365,1:60,1:100]");
    let cube = SalesCube {
        domain: domain.clone(),
        partitions: full
            .partitions
            .iter()
            .map(|p| {
                // Truncate each axis's cut points to the shrunken domain.
                let hi = domain.hi(p.axis);
                let mut points: Vec<i64> = p.points.iter().copied().filter(|&x| x < hi).collect();
                points.push(hi);
                tilestore::AxisPartition::new(p.axis, points)
            })
            .collect(),
    };
    let data = cube.generate(7);
    (cube, data)
}

#[test]
fn directional_tiling_beats_regular_on_category_aligned_queries() {
    let (cube, data) = small_cube();
    let queries: Vec<QuerySpec> = cube
        .queries()
        .into_iter()
        // Keep the queries that fit the one-year cube.
        .filter(|q| q.region.hi(0) <= 365)
        .map(|q| QuerySpec {
            label: q.label.to_string(),
            region: q.region,
        })
        .collect();
    assert!(queries.len() >= 6);
    let exp = Experiment {
        data: &data,
        cell_type: SalesCube::cell_type(),
        queries,
        model: CostModel::classic_disk(),
        compression: CompressionPolicy::None,
    };
    let results = exp
        .run(&[
            NamedScheme::directional(64, cube.partitions_3p()),
            NamedScheme::regular(3, 32),
        ])
        .unwrap();
    let rows = speedups(&results[0], &results[1]);

    // §6.1's headline: the category-aligned small queries (a, b, c) gain
    // clearly on every metric.
    for label in ["a", "b", "c"] {
        let row = rows.iter().find(|r| r.label == label).unwrap();
        assert!(
            row.t_o > 1.2,
            "query {label}: expected t_o speedup > 1.2, got {:.2}",
            row.t_o
        );
        assert!(
            row.total_cpu > 1.2,
            "query {label}: expected t_totalcpu speedup > 1.2, got {:.2}",
            row.total_cpu
        );
    }
    // Speedups shrink as queries grow (§6.1: border-tile savings are a
    // smaller share of big reads).
    let small = rows.iter().find(|r| r.label == "a").unwrap().t_o;
    let large = rows.iter().find(|r| r.label == "g").unwrap().t_o;
    assert!(small > large, "a: {small:.2} should exceed g: {large:.2}");
}

#[test]
fn directional_reads_exactly_the_category_block() {
    // The §5.2 claim: directional tiling "optimizes the amount of data
    // read for all operations of access to any subset of those partitions".
    let (cube, data) = small_cube();
    let exp = Experiment {
        data: &data,
        cell_type: SalesCube::cell_type(),
        // One month x one product class x one district, exactly on the cuts.
        queries: vec![QuerySpec {
            label: "block".into(),
            region: d("[32:59,27:41,27:34]"),
        }],
        model: CostModel::classic_disk(),
        compression: CompressionPolicy::None,
    };
    let result = exp
        .run_scheme(&NamedScheme::directional(64, cube.partitions_3p()))
        .unwrap();
    let q = &result.queries[0];
    // Exactly the block's cells are processed; physical bytes add only the
    // per-tile stream framing (tag + length varint).
    assert_eq!(
        q.stats.cells_processed,
        d("[32:59,27:41,27:34]").cells(),
        "no cell outside the category block is read"
    );
    let logical = d("[32:59,27:41,27:34]").size_bytes(4).unwrap();
    assert!(
        q.stats.io.bytes_read < logical + 16 * q.stats.tiles_read,
        "framing overhead only: {} vs {}",
        q.stats.io.bytes_read,
        logical
    );
}

#[test]
fn aoi_tiling_guarantee_and_optimal_tile_size_shift() {
    let anim = Animation {
        domain: d("[0:30,0:159,0:119]"),
        areas: vec![d("[0:30,80:120,25:60]"), d("[0:30,70:159,25:105]")],
    };
    let data = anim.generate();
    let queries: Vec<QuerySpec> = anim
        .queries()
        .into_iter()
        .map(|q| QuerySpec {
            label: q.label.to_string(),
            region: q.region,
        })
        .collect();
    let exp = Experiment {
        data: &data,
        cell_type: Animation::cell_type(),
        queries,
        model: CostModel::classic_disk(),
        compression: CompressionPolicy::None,
    };
    let ai = exp
        .run_scheme(&NamedScheme::areas_of_interest(64, anim.areas.clone()))
        .unwrap();
    let reg = exp.run_scheme(&NamedScheme::regular(3, 64)).unwrap();

    // Access-pattern queries read exactly their own cells under AI tiling…
    for (i, area) in anim.areas.iter().enumerate() {
        assert_eq!(
            ai.queries[i].stats.cells_processed,
            area.cells(),
            "AI query {} reads only the area",
            ai.queries[i].label
        );
        // …and strictly less than regular tiling reads.
        assert!(ai.queries[i].stats.io.bytes_read < reg.queries[i].stats.io.bytes_read);
    }
    // Speedup on the access pattern (compare Table 6's a=2.3, b=1.3).
    let rows = speedups(&ai, &reg);
    assert!(rows[0].t_o > 1.5, "query a t_o speedup {:.2}", rows[0].t_o);
    assert!(rows[1].t_o > 1.0, "query b t_o speedup {:.2}", rows[1].t_o);
}

#[test]
fn statistic_tiling_derives_the_aoi_layout_from_a_log() {
    // §5.2: statistic tiling = access log -> areas of interest -> AOI
    // tiling. Feeding the animation's access pattern as a log must yield a
    // layout with the same zero-waste property.
    use tilestore::{AccessRecord, StatisticTiling};

    let anim = Animation {
        domain: d("[0:30,0:159,0:119]"),
        areas: vec![d("[0:30,80:120,25:60]"), d("[0:30,70:159,25:105]")],
    };
    let log = vec![
        AccessRecord::new(anim.areas[0].clone(), 25),
        AccessRecord::new(anim.areas[1].clone(), 25),
        AccessRecord::new(d("[0:0,0:10,0:10]"), 1), // noise below threshold
    ];
    let scheme = StatisticTiling::new(log, 0, 10, 64 * 1024);
    let spec = scheme.partition(&anim.domain, 3).unwrap();
    assert!(spec.covers(&anim.domain));
    // The overlapping areas stay distinct in the IntersectCode sense: both
    // hot regions read exactly their own bytes.
    for area in &anim.areas {
        assert_eq!(spec.bytes_touched(area, 3), area.size_bytes(3).unwrap());
    }
}

#[test]
fn seek_dominated_model_changes_the_ranking() {
    // DESIGN.md ablation 4: under a seek-dominated cost model, the many
    // small tiles of fine directional tiling lose their edge — tile size,
    // not alignment, dominates.
    let (cube, data) = small_cube();
    let queries = vec![QuerySpec {
        label: "g".into(),
        region: d("[1:365,28:42,1:100]"),
    }];
    let mk = |model| Experiment {
        data: &data,
        cell_type: SalesCube::cell_type(),
        queries: queries.clone(),
        model,
        compression: CompressionPolicy::None,
    };
    let schemes = [
        NamedScheme::directional(32, cube.partitions_3p()),
        NamedScheme::regular(3, 256),
    ];
    let transfer = mk(CostModel::classic_disk()).run(&schemes).unwrap();
    let seeky = mk(CostModel::seek_dominated()).run(&schemes).unwrap();
    let ratio_transfer = transfer[1].queries[0].times.t_o / transfer[0].queries[0].times.t_o;
    let ratio_seeky = seeky[1].queries[0].times.t_o / seeky[0].queries[0].times.t_o;
    assert!(
        ratio_seeky < ratio_transfer,
        "seek-dominance must punish fine tiling: {ratio_seeky:.2} vs {ratio_transfer:.2}"
    );
}

#[test]
fn table2_scheme_inventory_is_constructible_at_full_scale() {
    // All ten Table 2 schemes partition the real 16.7 MB cube: complete
    // cover, within the byte cap. (Partition-only — no data is loaded.)
    use tilestore::TilingSpec;
    use tilestore_bench::schemes::table2_schemes;

    let cube = SalesCube::table1();
    let schemes = table2_schemes(&cube.partitions_2p(), &cube.partitions_3p());
    assert_eq!(schemes.len(), 10);
    for named in &schemes {
        let cap = named.scheme.max_tile_size();
        let spec: TilingSpec = named
            .scheme
            .partition(&cube.domain, 4)
            .unwrap_or_else(|e| panic!("{} failed: {e}", named.name));
        assert!(
            spec.covers(&cube.domain),
            "{} must cover the cube",
            named.name
        );
        assert!(
            spec.max_tile_bytes(4) <= cap,
            "{}: {} > {}",
            named.name,
            spec.max_tile_bytes(4),
            cap
        );
        // The paper's naming convention encodes the cap.
        assert!(named.name.contains('K'));
    }
    // Directional schemes produce at least as many tiles as the category
    // grid they refine.
    let grid = tilestore::DirectionalTiling::without_subtiling(cube.partitions_3p())
        .partition(&cube.domain, 4)
        .unwrap();
    let dir64k3p = schemes
        .iter()
        .find(|s| s.name == "Dir64K3P")
        .unwrap()
        .scheme
        .partition(&cube.domain, 4)
        .unwrap();
    assert!(dir64k3p.len() >= grid.len());
}
