//! Error type for the storage substrate.

use std::fmt;
use std::sync::Arc;

/// Errors raised by the page, BLOB and buffer layers.
#[derive(Debug, Clone)]
pub enum StorageError {
    /// An I/O error from the underlying file.
    Io(Arc<std::io::Error>),
    /// A page id beyond the allocated range was accessed.
    PageOutOfRange {
        /// The page requested.
        page: u64,
        /// Number of allocated pages.
        allocated: u64,
    },
    /// A BLOB id that does not exist (never created or already deleted).
    UnknownBlob {
        /// The offending id.
        blob: u64,
    },
    /// A page size that is zero or absurdly small.
    BadPageSize {
        /// The offending size.
        size: usize,
    },
    /// Buffer pool capacity of zero frames.
    ZeroCapacity,
    /// A page frame failed checksum verification on read — the page was
    /// torn by a crash mid-write or corrupted at rest.
    ChecksumMismatch {
        /// The page whose frame is damaged.
        page: u64,
    },
    /// A page frame carries a valid checksum but the wrong page id — a
    /// misdirected write.
    MisdirectedPage {
        /// The page that was requested.
        expected: u64,
        /// The page id found in the frame header.
        found: u64,
    },
    /// An artificial failure raised by a fault-injection wrapper (tests
    /// only); `op` is the global operation index at which it fired.
    Injected {
        /// Operation index of the injected fault.
        op: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::PageOutOfRange { page, allocated } => {
                write!(f, "page {page} out of range ({allocated} allocated)")
            }
            StorageError::UnknownBlob { blob } => write!(f, "unknown BLOB id {blob}"),
            StorageError::BadPageSize { size } => {
                write!(f, "bad page size {size} (minimum 512 bytes)")
            }
            StorageError::ZeroCapacity => write!(f, "buffer pool needs at least one frame"),
            StorageError::ChecksumMismatch { page } => {
                write!(f, "page {page} failed checksum verification (torn write?)")
            }
            StorageError::MisdirectedPage { expected, found } => {
                write!(f, "page {expected} holds a frame written for page {found}")
            }
            StorageError::Injected { op } => {
                write!(f, "injected fault at operation {op}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(Arc::new(e))
    }
}

/// Convenience result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
