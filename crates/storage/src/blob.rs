//! BLOB storage on top of a page store.
//!
//! In the storage manager, "cells of each tile are stored in a separate
//! BLOB" (§5). A BLOB occupies an integral number of pages — which is why
//! §2 recommends tile sizes approximating multiples of the page size — and
//! reading a BLOB touches all of its pages.

use std::sync::Mutex;

use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::error::{Result, StorageError};
use crate::page::{PageId, PageStore};
use crate::stats::IoStats;

/// Identifier of a BLOB within a [`BlobStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlobId(pub u64);

impl ToJson for BlobId {
    fn to_json(&self) -> Json {
        Json::UInt(self.0)
    }
}

impl FromJson for BlobId {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(BlobId(u64::from_json(v)?))
    }
}

/// Descriptor of one stored BLOB.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BlobEntry {
    pages: Vec<PageId>,
    len: u64,
}

/// Serializable directory of a [`BlobStore`] — persisted by the engine so a
/// database can be reopened.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlobDirectory {
    entries: Vec<(BlobId, BlobEntry)>,
    free_pages: Vec<PageId>,
    next_id: u64,
}

impl ToJson for BlobDirectory {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "entries",
                Json::Array(
                    self.entries
                        .iter()
                        .map(|(id, e)| {
                            Json::obj(vec![
                                ("id", id.to_json()),
                                ("pages", e.pages.to_json()),
                                ("len", e.len.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("free_pages", self.free_pages.to_json()),
            ("next_id", self.next_id.to_json()),
        ])
    }
}

impl FromJson for BlobDirectory {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let entries = v
            .field("entries")?
            .as_array()
            .ok_or_else(|| JsonError::msg("expected array of blob entries"))?
            .iter()
            .map(|e| {
                Ok((
                    BlobId::from_json(e.field("id")?)?,
                    BlobEntry {
                        pages: Vec::from_json(e.field("pages")?)?,
                        len: u64::from_json(e.field("len")?)?,
                    },
                ))
            })
            .collect::<std::result::Result<Vec<_>, JsonError>>()?;
        Ok(BlobDirectory {
            entries,
            free_pages: Vec::from_json(v.field("free_pages")?)?,
            next_id: u64::from_json(v.field("next_id")?)?,
        })
    }
}

/// A BLOB store: variable-length byte strings mapped onto whole pages of an
/// underlying [`PageStore`], with per-operation I/O accounting.
pub struct BlobStore<S> {
    store: S,
    stats: IoStats,
    inner: Mutex<Directory>,
}

#[derive(Debug, Default)]
struct Directory {
    entries: std::collections::BTreeMap<u64, BlobEntry>,
    free_pages: Vec<PageId>,
    next_id: u64,
}

impl<S: PageStore> BlobStore<S> {
    /// Wraps a page store with an empty BLOB directory.
    #[must_use]
    pub fn new(store: S) -> Self {
        BlobStore {
            store,
            stats: IoStats::new(),
            inner: Mutex::new(Directory::default()),
        }
    }

    /// Wraps a page store, restoring a previously exported directory.
    #[must_use]
    pub fn with_directory(store: S, dir: BlobDirectory) -> Self {
        let mut entries = std::collections::BTreeMap::new();
        for (id, e) in dir.entries {
            entries.insert(id.0, e);
        }
        BlobStore {
            store,
            stats: IoStats::new(),
            inner: Mutex::new(Directory {
                entries,
                free_pages: dir.free_pages,
                next_id: dir.next_id,
            }),
        }
    }

    /// Exports the directory for persistence.
    #[must_use]
    pub fn directory(&self) -> BlobDirectory {
        let inner = self.inner.lock().unwrap();
        BlobDirectory {
            entries: inner
                .entries
                .iter()
                .map(|(&id, e)| (BlobId(id), e.clone()))
                .collect(),
            free_pages: inner.free_pages.clone(),
            next_id: inner.next_id,
        }
    }

    /// The shared I/O statistics of this store.
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The underlying page store.
    #[must_use]
    pub fn page_store(&self) -> &S {
        &self.store
    }

    /// Number of live BLOBs.
    #[must_use]
    pub fn blob_count(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Number of pages a BLOB of `len` bytes occupies.
    #[must_use]
    pub fn pages_for(&self, len: u64) -> u64 {
        len.div_ceil(self.store.page_size() as u64).max(1)
    }

    /// Length in bytes of a stored BLOB.
    ///
    /// # Errors
    /// [`StorageError::UnknownBlob`].
    pub fn blob_len(&self, id: BlobId) -> Result<u64> {
        let inner = self.inner.lock().unwrap();
        inner
            .entries
            .get(&id.0)
            .map(|e| e.len)
            .ok_or(StorageError::UnknownBlob { blob: id.0 })
    }

    /// Creates a BLOB holding `data`, returning its id.
    ///
    /// Pages are taken from the free list first, then freshly allocated.
    ///
    /// # Errors
    /// Backend allocation/write errors.
    pub fn create(&self, data: &[u8]) -> Result<BlobId> {
        let _span =
            tilestore_obs::tracer().span_with("blob_create", || format!("bytes={}", data.len()));
        let page_size = self.store.page_size();
        let needed = self.pages_for(data.len() as u64);
        let pages = {
            let mut inner = self.inner.lock().unwrap();
            let mut pages = Vec::with_capacity(needed as usize);
            while (pages.len() as u64) < needed {
                match inner.free_pages.pop() {
                    Some(p) => pages.push(p),
                    None => break,
                }
            }
            pages
        };
        let mut pages = pages;
        if (pages.len() as u64) < needed {
            let fresh = self.store.allocate(needed - pages.len() as u64)?;
            pages.extend(fresh);
        }
        // Write the payload page by page, zero-padding the tail.
        let mut buf = vec![0u8; page_size];
        for (i, &page) in pages.iter().enumerate() {
            let start = i * page_size;
            let end = ((i + 1) * page_size).min(data.len());
            if start < data.len() {
                let chunk = &data[start..end];
                buf[..chunk.len()].copy_from_slice(chunk);
                buf[chunk.len()..].fill(0);
            } else {
                buf.fill(0);
            }
            self.store.write_page(page, &buf)?;
        }
        self.stats.add_pages_written(pages.len() as u64);
        self.stats.add_blob_written(data.len() as u64);
        let hot = tilestore_obs::hot();
        hot.blob_writes.inc();
        hot.tile_bytes.record(data.len() as u64);
        let id = {
            let mut inner = self.inner.lock().unwrap();
            let id = inner.next_id;
            inner.next_id += 1;
            inner.entries.insert(
                id,
                BlobEntry {
                    pages,
                    len: data.len() as u64,
                },
            );
            BlobId(id)
        };
        Ok(id)
    }

    /// Reads a whole BLOB.
    ///
    /// # Errors
    /// [`StorageError::UnknownBlob`] or backend read errors.
    pub fn read(&self, id: BlobId) -> Result<Vec<u8>> {
        let _span = tilestore_obs::tracer().span_with("blob_read", || format!("blob={}", id.0));
        let entry = {
            let inner = self.inner.lock().unwrap();
            inner
                .entries
                .get(&id.0)
                .cloned()
                .ok_or(StorageError::UnknownBlob { blob: id.0 })?
        };
        let page_size = self.store.page_size();
        let mut data = vec![0u8; entry.pages.len() * page_size];
        for (i, &page) in entry.pages.iter().enumerate() {
            self.store
                .read_page(page, &mut data[i * page_size..(i + 1) * page_size])?;
        }
        data.truncate(entry.len as usize);
        self.stats.add_pages_read(entry.pages.len() as u64);
        self.stats.add_blob_read(entry.len);
        let hot = tilestore_obs::hot();
        hot.blob_reads.inc();
        hot.tile_bytes.record(entry.len);
        Ok(data)
    }

    /// Overwrites a BLOB with new contents, reusing its pages where the
    /// page count is unchanged.
    ///
    /// # Errors
    /// [`StorageError::UnknownBlob`] or backend errors.
    pub fn update(&self, id: BlobId, data: &[u8]) -> Result<()> {
        // Simplest correct strategy: delete + recreate under the same id.
        let page_size = self.store.page_size();
        let needed = self.pages_for(data.len() as u64);
        let mut pages = {
            let mut inner = self.inner.lock().unwrap();
            let entry = inner
                .entries
                .remove(&id.0)
                .ok_or(StorageError::UnknownBlob { blob: id.0 })?;
            let mut pages = entry.pages;
            // Shrink: return surplus pages to the free list.
            while pages.len() as u64 > needed {
                let p = pages.pop().expect("len > needed >= 1");
                inner.free_pages.push(p);
            }
            pages
        };
        if (pages.len() as u64) < needed {
            let extra = {
                let mut inner = self.inner.lock().unwrap();
                let mut extra = Vec::new();
                while (pages.len() + extra.len()) < needed as usize {
                    match inner.free_pages.pop() {
                        Some(p) => extra.push(p),
                        None => break,
                    }
                }
                extra
            };
            pages.extend(extra);
            if (pages.len() as u64) < needed {
                pages.extend(self.store.allocate(needed - pages.len() as u64)?);
            }
        }
        let mut buf = vec![0u8; page_size];
        for (i, &page) in pages.iter().enumerate() {
            let start = i * page_size;
            let end = ((i + 1) * page_size).min(data.len());
            if start < data.len() {
                let chunk = &data[start..end];
                buf[..chunk.len()].copy_from_slice(chunk);
                buf[chunk.len()..].fill(0);
            } else {
                buf.fill(0);
            }
            self.store.write_page(page, &buf)?;
        }
        self.stats.add_pages_written(pages.len() as u64);
        self.stats.add_blob_written(data.len() as u64);
        let hot = tilestore_obs::hot();
        hot.blob_writes.inc();
        hot.tile_bytes.record(data.len() as u64);
        let mut inner = self.inner.lock().unwrap();
        inner.entries.insert(
            id.0,
            BlobEntry {
                pages,
                len: data.len() as u64,
            },
        );
        Ok(())
    }

    /// Deletes a BLOB, returning its pages to the free list.
    ///
    /// # Errors
    /// [`StorageError::UnknownBlob`].
    pub fn delete(&self, id: BlobId) -> Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let entry = inner
            .entries
            .remove(&id.0)
            .ok_or(StorageError::UnknownBlob { blob: id.0 })?;
        inner.free_pages.extend(entry.pages);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::MemPageStore;

    fn store() -> BlobStore<MemPageStore> {
        BlobStore::new(MemPageStore::new(1024).unwrap())
    }

    #[test]
    fn create_read_round_trip() {
        let bs = store();
        let data: Vec<u8> = (0..3000).map(|i| (i % 256) as u8).collect();
        let id = bs.create(&data).unwrap();
        assert_eq!(bs.read(id).unwrap(), data);
        assert_eq!(bs.blob_len(id).unwrap(), 3000);
        assert_eq!(bs.blob_count(), 1);
    }

    #[test]
    fn io_accounting_counts_whole_pages() {
        let bs = store();
        let id = bs.create(&vec![1u8; 2500]).unwrap(); // 3 pages of 1024
        bs.stats().reset();
        bs.read(id).unwrap();
        let s = bs.stats().snapshot();
        assert_eq!(s.pages_read, 3);
        assert_eq!(s.blobs_read, 1);
        assert_eq!(s.bytes_read, 2500);
    }

    #[test]
    fn empty_blob_occupies_one_page() {
        let bs = store();
        let id = bs.create(&[]).unwrap();
        assert_eq!(bs.read(id).unwrap(), Vec::<u8>::new());
        assert_eq!(bs.page_store().allocated(), 1);
    }

    #[test]
    fn delete_recycles_pages() {
        let bs = store();
        let a = bs.create(&vec![1u8; 2048]).unwrap(); // 2 pages
        bs.delete(a).unwrap();
        let before = bs.page_store().allocated();
        let b = bs.create(&vec![2u8; 2048]).unwrap(); // reuses freed pages
        assert_eq!(bs.page_store().allocated(), before);
        assert_eq!(bs.read(b).unwrap(), vec![2u8; 2048]);
        assert!(matches!(bs.read(a), Err(StorageError::UnknownBlob { .. })));
        assert!(bs.delete(a).is_err());
    }

    #[test]
    fn update_grows_and_shrinks() {
        let bs = store();
        let id = bs.create(&[1u8; 100]).unwrap();
        bs.update(id, &vec![2u8; 5000]).unwrap();
        assert_eq!(bs.read(id).unwrap(), vec![2u8; 5000]);
        bs.update(id, &[3u8; 10]).unwrap();
        assert_eq!(bs.read(id).unwrap(), vec![3u8; 10]);
        // Freed pages are reusable.
        let other = bs.create(&vec![4u8; 4096]).unwrap();
        assert_eq!(bs.read(other).unwrap(), vec![4u8; 4096]);
    }

    #[test]
    fn directory_round_trip_preserves_blobs() {
        let mem = MemPageStore::new(1024).unwrap();
        let bs = BlobStore::new(mem);
        let data = vec![9u8; 1500];
        let id = bs.create(&data).unwrap();
        let dir = bs.directory();
        // Re-wrap the same page store (simulating reopen).
        let BlobStore { store, .. } = bs;
        let bs2 = BlobStore::with_directory(store, dir);
        assert_eq!(bs2.read(id).unwrap(), data);
        // Fresh ids don't collide with restored ones.
        let id2 = bs2.create(&[1, 2, 3]).unwrap();
        assert_ne!(id, id2);
    }

    #[test]
    fn many_blobs_keep_distinct_contents() {
        let bs = store();
        let ids: Vec<BlobId> = (0..50u8)
            .map(|i| bs.create(&vec![i; (i as usize + 1) * 37]).unwrap())
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(bs.read(id).unwrap(), vec![i as u8; (i + 1) * 37]);
        }
    }
}
