//! BLOB storage on top of a page store.
//!
//! In the storage manager, "cells of each tile are stored in a separate
//! BLOB" (§5). A BLOB occupies an integral number of pages — which is why
//! §2 recommends tile sizes approximating multiples of the page size — and
//! reading a BLOB touches all of its pages.
//!
//! # Crash safety
//!
//! Pages freed by [`BlobStore::delete`] or replaced by the copy-on-write
//! [`BlobStore::update`] are *quarantined* rather than immediately reusable:
//! the last committed catalog may still reference them, so overwriting them
//! before the next catalog commit would corrupt the committed state. The
//! engine calls [`BlobStore::release_freed_pages`] once a new catalog is
//! durably on disk, at which point the quarantined pages join the free list.
//! The exported [`BlobDirectory`] folds quarantined pages into its free list
//! because the catalog being written no longer references them.

use std::sync::Mutex;

use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::error::{Result, StorageError};
use crate::page::{lock, PageId, PageStore};
use crate::stats::IoStats;

/// Identifier of a BLOB within a [`BlobStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlobId(pub u64);

impl ToJson for BlobId {
    fn to_json(&self) -> Json {
        Json::UInt(self.0)
    }
}

impl FromJson for BlobId {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(BlobId(u64::from_json(v)?))
    }
}

/// Descriptor of one stored BLOB.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BlobEntry {
    pages: Vec<PageId>,
    len: u64,
}

/// Physical placement of a BLOB on the page store, as reported by
/// [`BlobStore::blob_placement`]. Read planners sort tile fetches by
/// `first_page` so physically adjacent blobs coalesce into single
/// positioned reads; `runs == 1` means the blob itself is contiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobPlacement {
    /// The page holding the first payload bytes of the BLOB.
    pub first_page: PageId,
    /// Number of pages the BLOB occupies.
    pub pages: u64,
    /// Number of maximal physically consecutive page runs the BLOB's pages
    /// form in payload order (1 = fully contiguous).
    pub runs: u64,
}

/// Serializable directory of a [`BlobStore`] — persisted by the engine so a
/// database can be reopened.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlobDirectory {
    entries: Vec<(BlobId, BlobEntry)>,
    free_pages: Vec<PageId>,
    next_id: u64,
}

impl ToJson for BlobDirectory {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "entries",
                Json::Array(
                    self.entries
                        .iter()
                        .map(|(id, e)| {
                            Json::obj(vec![
                                ("id", id.to_json()),
                                ("pages", e.pages.to_json()),
                                ("len", e.len.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("free_pages", self.free_pages.to_json()),
            ("next_id", self.next_id.to_json()),
        ])
    }
}

impl BlobDirectory {
    /// Iterates over the stored blobs as `(id, pages, byte length)`.
    pub fn blobs(&self) -> impl Iterator<Item = (BlobId, &[PageId], u64)> {
        self.entries
            .iter()
            .map(|(id, e)| (*id, e.pages.as_slice(), e.len))
    }

    /// The free page list.
    #[must_use]
    pub fn free_pages(&self) -> &[PageId] {
        &self.free_pages
    }

    /// The next blob id to be handed out.
    #[must_use]
    pub fn next_id(&self) -> u64 {
        self.next_id
    }
}

impl FromJson for BlobDirectory {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let entries = v
            .field("entries")?
            .as_array()
            .ok_or_else(|| JsonError::msg("expected array of blob entries"))?
            .iter()
            .map(|e| {
                Ok((
                    BlobId::from_json(e.field("id")?)?,
                    BlobEntry {
                        pages: Vec::from_json(e.field("pages")?)?,
                        len: u64::from_json(e.field("len")?)?,
                    },
                ))
            })
            .collect::<std::result::Result<Vec<_>, JsonError>>()?;
        Ok(BlobDirectory {
            entries,
            free_pages: Vec::from_json(v.field("free_pages")?)?,
            next_id: u64::from_json(v.field("next_id")?)?,
        })
    }
}

/// A BLOB store: variable-length byte strings mapped onto whole pages of an
/// underlying [`PageStore`], with per-operation I/O accounting.
pub struct BlobStore<S> {
    store: S,
    stats: IoStats,
    inner: Mutex<Directory>,
}

#[derive(Debug, Default)]
struct Directory {
    entries: std::collections::BTreeMap<u64, BlobEntry>,
    free_pages: Vec<PageId>,
    /// Pages freed since the last catalog commit. Possibly still referenced
    /// by the committed catalog on disk, so not reusable until
    /// [`BlobStore::release_freed_pages`] confirms a newer commit.
    limbo: Vec<PageId>,
    next_id: u64,
}

impl<S: PageStore> BlobStore<S> {
    /// Wraps a page store with an empty BLOB directory.
    #[must_use]
    pub fn new(store: S) -> Self {
        BlobStore {
            store,
            stats: IoStats::new(),
            inner: Mutex::new(Directory::default()),
        }
    }

    /// Wraps a page store, restoring a previously exported directory.
    #[must_use]
    pub fn with_directory(store: S, dir: BlobDirectory) -> Self {
        let mut entries = std::collections::BTreeMap::new();
        for (id, e) in dir.entries {
            entries.insert(id.0, e);
        }
        BlobStore {
            store,
            stats: IoStats::new(),
            inner: Mutex::new(Directory {
                entries,
                free_pages: dir.free_pages,
                limbo: Vec::new(),
                next_id: dir.next_id,
            }),
        }
    }

    /// Exports the directory for persistence. Quarantined (freed-but-
    /// uncommitted) pages are exported as free: the catalog this export
    /// goes into no longer references them.
    #[must_use]
    pub fn directory(&self) -> BlobDirectory {
        self.directory_excluding(&std::collections::BTreeSet::new())
    }

    /// Exports the directory for persistence, treating the blobs in
    /// `exclude` as already deleted: their entries are omitted and their
    /// pages exported as free. The engine passes the blobs retired by a
    /// catalog swap but still pinned by live snapshots — the catalog being
    /// written no longer references them, so a reopen from this export must
    /// see their pages as reusable even though the in-memory store keeps
    /// them readable until the last snapshot drops.
    #[must_use]
    pub fn directory_excluding(&self, exclude: &std::collections::BTreeSet<u64>) -> BlobDirectory {
        let inner = lock(&self.inner);
        let mut free_pages = inner.free_pages.clone();
        free_pages.extend_from_slice(&inner.limbo);
        let mut entries = Vec::with_capacity(inner.entries.len());
        for (&id, e) in &inner.entries {
            if exclude.contains(&id) {
                free_pages.extend_from_slice(&e.pages);
            } else {
                entries.push((BlobId(id), e.clone()));
            }
        }
        BlobDirectory {
            entries,
            free_pages,
            next_id: inner.next_id,
        }
    }

    /// Promotes every quarantined page to the free list, returning how many
    /// were released. Call only after a catalog commit is durably on disk —
    /// from that point no committed state references those pages.
    pub fn release_freed_pages(&self) -> u64 {
        let mut inner = lock(&self.inner);
        let n = inner.limbo.len() as u64;
        let limbo = std::mem::take(&mut inner.limbo);
        inner.free_pages.extend(limbo);
        n
    }

    /// Number of immediately reusable free pages.
    #[must_use]
    pub fn free_page_count(&self) -> usize {
        lock(&self.inner).free_pages.len()
    }

    /// Number of pages quarantined until the next catalog commit.
    #[must_use]
    pub fn quarantined_page_count(&self) -> usize {
        lock(&self.inner).limbo.len()
    }

    /// The shared I/O statistics of this store.
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The underlying page store.
    #[must_use]
    pub fn page_store(&self) -> &S {
        &self.store
    }

    /// Number of live BLOBs.
    #[must_use]
    pub fn blob_count(&self) -> usize {
        lock(&self.inner).entries.len()
    }

    /// Number of pages a BLOB of `len` bytes occupies.
    #[must_use]
    pub fn pages_for(&self, len: u64) -> u64 {
        len.div_ceil(self.store.page_size() as u64).max(1)
    }

    /// Length in bytes of a stored BLOB.
    ///
    /// # Errors
    /// [`StorageError::UnknownBlob`].
    pub fn blob_len(&self, id: BlobId) -> Result<u64> {
        let inner = lock(&self.inner);
        inner
            .entries
            .get(&id.0)
            .map(|e| e.len)
            .ok_or(StorageError::UnknownBlob { blob: id.0 })
    }

    /// Creates a BLOB holding `data`, returning its id.
    ///
    /// Pages are taken from the free list first, then freshly allocated.
    ///
    /// # Errors
    /// Backend allocation/write errors.
    pub fn create(&self, data: &[u8]) -> Result<BlobId> {
        let _span =
            tilestore_obs::tracer().span_with("blob_create", || format!("bytes={}", data.len()));
        let page_size = self.store.page_size();
        let needed = self.pages_for(data.len() as u64);
        let pages = {
            let mut inner = lock(&self.inner);
            let mut pages = Vec::with_capacity(needed as usize);
            while (pages.len() as u64) < needed {
                match inner.free_pages.pop() {
                    Some(p) => pages.push(p),
                    None => break,
                }
            }
            pages
        };
        let mut pages = pages;
        if (pages.len() as u64) < needed {
            let fresh = self.store.allocate(needed - pages.len() as u64)?;
            pages.extend(fresh);
        }
        // Write the payload page by page, zero-padding the tail.
        let mut buf = vec![0u8; page_size];
        for (i, &page) in pages.iter().enumerate() {
            let start = i * page_size;
            let end = ((i + 1) * page_size).min(data.len());
            if start < data.len() {
                let chunk = &data[start..end];
                buf[..chunk.len()].copy_from_slice(chunk);
                buf[chunk.len()..].fill(0);
            } else {
                buf.fill(0);
            }
            self.store.write_page(page, &buf)?;
        }
        self.stats.add_pages_written(pages.len() as u64);
        self.stats.add_blob_written(data.len() as u64);
        let hot = tilestore_obs::hot();
        hot.blob_writes.inc();
        hot.tile_bytes.record(data.len() as u64);
        let id = {
            let mut inner = lock(&self.inner);
            let id = inner.next_id;
            inner.next_id += 1;
            inner.entries.insert(
                id,
                BlobEntry {
                    pages,
                    len: data.len() as u64,
                },
            );
            BlobId(id)
        };
        Ok(id)
    }

    /// Reads a whole BLOB.
    ///
    /// # Errors
    /// [`StorageError::UnknownBlob`] or backend read errors.
    pub fn read(&self, id: BlobId) -> Result<Vec<u8>> {
        let mut data = Vec::new();
        self.read_into(id, &mut data)?;
        Ok(data)
    }

    /// Reads a whole BLOB into a caller-supplied buffer, returning the
    /// payload length. The buffer is resized as needed; reusing one buffer
    /// across calls avoids a fresh zeroed allocation per tile, which matters
    /// on the parallel query path where each worker reads many tiles.
    ///
    /// # Errors
    /// [`StorageError::UnknownBlob`] or backend read errors.
    pub fn read_into(&self, id: BlobId, data: &mut Vec<u8>) -> Result<usize> {
        let _span = tilestore_obs::tracer().span_with("blob_read", || format!("blob={}", id.0));
        let entry = {
            let inner = lock(&self.inner);
            inner
                .entries
                .get(&id.0)
                .cloned()
                .ok_or(StorageError::UnknownBlob { blob: id.0 })?
        };
        let page_size = self.store.page_size();
        data.resize(entry.pages.len() * page_size, 0);
        // One batched read: a caching store serves all hits in a shard under
        // a single lock acquisition and copies misses straight into `data`,
        // so no pinning window exists and band-parallel tile fetches stop
        // convoying on per-page pin/read/unpin lock traffic.
        let run = self.store.read_pages(&entry.pages, data)?;
        data.truncate(entry.len as usize);
        self.stats.add_pages_read(entry.pages.len() as u64);
        self.stats.add_blob_read(entry.len);
        self.stats.add_run_read(run);
        let hot = tilestore_obs::hot();
        hot.blob_reads.inc();
        hot.tile_bytes.record(entry.len);
        Ok(entry.len as usize)
    }

    /// Physical placement of a BLOB: its first page, page count, and how
    /// many physically consecutive runs its pages form. Planners sort tile
    /// fetches by `first_page` so curve-ordered neighbours coalesce.
    ///
    /// # Errors
    /// [`StorageError::UnknownBlob`].
    pub fn blob_placement(&self, id: BlobId) -> Result<BlobPlacement> {
        let inner = lock(&self.inner);
        let entry = inner
            .entries
            .get(&id.0)
            .ok_or(StorageError::UnknownBlob { blob: id.0 })?;
        let mut runs = 0u64;
        for (i, p) in entry.pages.iter().enumerate() {
            if i == 0 || p.0 != entry.pages[i - 1].0 + 1 {
                runs += 1;
            }
        }
        Ok(BlobPlacement {
            first_page: entry.pages[0],
            pages: entry.pages.len() as u64,
            runs,
        })
    }

    /// Reads several BLOBs with one batched page read, returning each
    /// BLOB's payload as a `(offset, len)` byte range into `out` (in the
    /// order of `ids`). The page lists are concatenated before the read, so
    /// blobs that sit on physically consecutive pages — the invariant the
    /// defragmenter establishes — coalesce into single positioned reads
    /// even across blob boundaries.
    ///
    /// # Errors
    /// [`StorageError::UnknownBlob`] (no pages are read) or backend read
    /// errors.
    pub fn read_batch(&self, ids: &[BlobId], out: &mut Vec<u8>) -> Result<Vec<(usize, usize)>> {
        let _span =
            tilestore_obs::tracer().span_with("blob_read_batch", || format!("blobs={}", ids.len()));
        let page_size = self.store.page_size();
        // Snapshot the entries up front so the batch sees one consistent
        // directory state and unknown ids fail before any I/O.
        let entries = {
            let inner = lock(&self.inner);
            ids.iter()
                .map(|id| {
                    inner
                        .entries
                        .get(&id.0)
                        .cloned()
                        .ok_or(StorageError::UnknownBlob { blob: id.0 })
                })
                .collect::<Result<Vec<_>>>()?
        };
        let mut pages = Vec::with_capacity(entries.iter().map(|e| e.pages.len()).sum());
        let mut ranges = Vec::with_capacity(entries.len());
        for e in &entries {
            ranges.push((pages.len() * page_size, e.len as usize));
            pages.extend_from_slice(&e.pages);
        }
        out.resize(pages.len() * page_size, 0);
        let run = self.store.read_pages(&pages, out)?;
        self.stats.add_pages_read(pages.len() as u64);
        self.stats.add_run_read(run);
        let hot = tilestore_obs::hot();
        for e in &entries {
            self.stats.add_blob_read(e.len);
            hot.blob_reads.inc();
            hot.tile_bytes.record(e.len);
        }
        Ok(ranges)
    }

    /// Creates a BLOB like [`BlobStore::create`], but on freshly allocated,
    /// physically consecutive pages — the free list is never consulted. The
    /// defragmenter uses this to rewrite an object's tiles in curve order at
    /// the end of the file, where consecutive creates yield consecutive page
    /// runs; the displaced pages are quarantined by the usual delete path
    /// and reclaimed after the commit.
    ///
    /// # Errors
    /// Backend allocation/write errors.
    pub fn create_contiguous(&self, data: &[u8]) -> Result<BlobId> {
        let _span = tilestore_obs::tracer()
            .span_with("blob_create_contiguous", || format!("bytes={}", data.len()));
        let page_size = self.store.page_size();
        let needed = self.pages_for(data.len() as u64);
        let pages = self.store.allocate(needed)?;
        let mut buf = vec![0u8; page_size];
        for (i, &page) in pages.iter().enumerate() {
            let start = i * page_size;
            let end = ((i + 1) * page_size).min(data.len());
            if start < data.len() {
                let chunk = &data[start..end];
                buf[..chunk.len()].copy_from_slice(chunk);
                buf[chunk.len()..].fill(0);
            } else {
                buf.fill(0);
            }
            self.store.write_page(page, &buf)?;
        }
        self.stats.add_pages_written(pages.len() as u64);
        self.stats.add_blob_written(data.len() as u64);
        let hot = tilestore_obs::hot();
        hot.blob_writes.inc();
        hot.tile_bytes.record(data.len() as u64);
        let id = {
            let mut inner = lock(&self.inner);
            let id = inner.next_id;
            inner.next_id += 1;
            inner.entries.insert(
                id,
                BlobEntry {
                    pages,
                    len: data.len() as u64,
                },
            );
            BlobId(id)
        };
        Ok(id)
    }

    /// Overwrites a BLOB with new contents, copy-on-write: the new payload
    /// is written to fresh (or free-listed) pages and the directory entry
    /// swaps over only when every page landed. On any error the entry and
    /// the old pages are untouched, and the scratch pages return to the
    /// free list. The replaced pages are quarantined until the next catalog
    /// commit ([`BlobStore::release_freed_pages`]).
    ///
    /// # Errors
    /// [`StorageError::UnknownBlob`] or backend errors; the blob keeps its
    /// prior contents in every error case.
    pub fn update(&self, id: BlobId, data: &[u8]) -> Result<()> {
        let page_size = self.store.page_size();
        let needed = self.pages_for(data.len() as u64);
        // Check existence and take scratch pages from the free list without
        // touching the entry itself.
        let mut new_pages = {
            let mut inner = lock(&self.inner);
            if !inner.entries.contains_key(&id.0) {
                return Err(StorageError::UnknownBlob { blob: id.0 });
            }
            let mut pages = Vec::with_capacity(needed as usize);
            while (pages.len() as u64) < needed {
                match inner.free_pages.pop() {
                    Some(p) => pages.push(p),
                    None => break,
                }
            }
            pages
        };
        let write_all = |new_pages: &mut Vec<PageId>| -> Result<()> {
            if (new_pages.len() as u64) < needed {
                new_pages.extend(self.store.allocate(needed - new_pages.len() as u64)?);
            }
            let mut buf = vec![0u8; page_size];
            for (i, &page) in new_pages.iter().enumerate() {
                let start = i * page_size;
                let end = ((i + 1) * page_size).min(data.len());
                if start < data.len() {
                    let chunk = &data[start..end];
                    buf[..chunk.len()].copy_from_slice(chunk);
                    buf[chunk.len()..].fill(0);
                } else {
                    buf.fill(0);
                }
                self.store.write_page(page, &buf)?;
            }
            Ok(())
        };
        if let Err(e) = write_all(&mut new_pages) {
            // Roll back: the scratch pages never joined the entry, so they
            // can return to the free pool directly; the directory entry and
            // the old pages are exactly as before the call.
            lock(&self.inner).free_pages.extend(new_pages);
            return Err(e);
        }
        self.stats.add_pages_written(new_pages.len() as u64);
        self.stats.add_blob_written(data.len() as u64);
        let hot = tilestore_obs::hot();
        hot.blob_writes.inc();
        hot.tile_bytes.record(data.len() as u64);
        let mut inner = lock(&self.inner);
        let old_pages = match inner.entries.get_mut(&id.0) {
            Some(entry) => {
                let old = std::mem::replace(&mut entry.pages, new_pages);
                entry.len = data.len() as u64;
                old
            }
            None => {
                // Deleted concurrently: hand the scratch pages back rather
                // than resurrecting the blob.
                inner.free_pages.extend(new_pages);
                return Err(StorageError::UnknownBlob { blob: id.0 });
            }
        };
        inner.limbo.extend(old_pages);
        Ok(())
    }

    /// Deletes a BLOB. Its pages are quarantined until the next catalog
    /// commit, then become reusable.
    ///
    /// # Errors
    /// [`StorageError::UnknownBlob`].
    pub fn delete(&self, id: BlobId) -> Result<()> {
        let mut inner = lock(&self.inner);
        let entry = inner
            .entries
            .remove(&id.0)
            .ok_or(StorageError::UnknownBlob { blob: id.0 })?;
        inner.limbo.extend(entry.pages);
        Ok(())
    }

    /// Cross-checks the directory against the page store: every referenced
    /// page must be inside the allocated range, no page may be referenced
    /// twice, and every allocated page should be accounted for. Unreferenced
    /// (orphaned) pages arise when a crash lands between page writes and the
    /// catalog commit; they are safe to reclaim.
    #[must_use]
    pub fn check_pages(&self) -> PageCheck {
        let inner = lock(&self.inner);
        let allocated = self.store.allocated();
        let mut seen = std::collections::BTreeMap::<u64, u64>::new();
        let mut dangling = Vec::new();
        let mut mark = |p: PageId, dangling: &mut Vec<PageId>| {
            if p.0 >= allocated {
                dangling.push(p);
            }
            *seen.entry(p.0).or_insert(0) += 1;
        };
        for e in inner.entries.values() {
            for &p in &e.pages {
                mark(p, &mut dangling);
            }
        }
        for &p in inner.free_pages.iter().chain(inner.limbo.iter()) {
            mark(p, &mut dangling);
        }
        let duplicated: Vec<PageId> = seen
            .iter()
            .filter(|&(_, &n)| n > 1)
            .map(|(&p, _)| PageId(p))
            .collect();
        let orphaned: Vec<PageId> = (0..allocated)
            .filter(|p| !seen.contains_key(p))
            .map(PageId)
            .collect();
        PageCheck {
            allocated,
            orphaned,
            dangling,
            duplicated,
        }
    }

    /// Reclaims every orphaned page onto the free list, returning how many
    /// were recovered. Orphans are pages a crash left allocated but
    /// unreferenced; the committed catalog never points at them, so reusing
    /// them is safe.
    pub fn reclaim_orphans(&self) -> u64 {
        let orphaned = self.check_pages().orphaned;
        let n = orphaned.len() as u64;
        if n > 0 {
            let mut inner = lock(&self.inner);
            inner.free_pages.extend(orphaned);
            tilestore_obs::hot().orphaned_pages_reclaimed.add(n);
        }
        n
    }
}

/// Result of [`BlobStore::check_pages`]: how the directory's page
/// references line up with the page store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageCheck {
    /// Pages allocated in the backing store.
    pub allocated: u64,
    /// Allocated pages referenced by no blob and no free list — leaked by a
    /// crash between page writes and the catalog commit; reclaimable.
    pub orphaned: Vec<PageId>,
    /// Referenced pages outside the allocated range — the catalog is newer
    /// than the page file (or the file was truncated); not repairable.
    pub dangling: Vec<PageId>,
    /// Pages referenced more than once (two blobs, or a blob and the free
    /// list) — directory corruption; not repairable.
    pub duplicated: Vec<PageId>,
}

impl PageCheck {
    /// True when the directory and page store are fully consistent.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.orphaned.is_empty() && self.dangling.is_empty() && self.duplicated.is_empty()
    }

    /// True when every inconsistency is a reclaimable orphan.
    #[must_use]
    pub fn is_repairable(&self) -> bool {
        self.dangling.is_empty() && self.duplicated.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::MemPageStore;

    fn store() -> BlobStore<MemPageStore> {
        BlobStore::new(MemPageStore::new(1024).unwrap())
    }

    #[test]
    fn create_read_round_trip() {
        let bs = store();
        let data: Vec<u8> = (0..3000).map(|i| (i % 256) as u8).collect();
        let id = bs.create(&data).unwrap();
        assert_eq!(bs.read(id).unwrap(), data);
        assert_eq!(bs.blob_len(id).unwrap(), 3000);
        assert_eq!(bs.blob_count(), 1);
    }

    #[test]
    fn io_accounting_counts_whole_pages() {
        let bs = store();
        let id = bs.create(&vec![1u8; 2500]).unwrap(); // 3 pages of 1024
        bs.stats().reset();
        bs.read(id).unwrap();
        let s = bs.stats().snapshot();
        assert_eq!(s.pages_read, 3);
        assert_eq!(s.blobs_read, 1);
        assert_eq!(s.bytes_read, 2500);
    }

    #[test]
    fn placement_reports_runs() {
        let bs = store();
        let a = bs.create(&vec![1u8; 2048]).unwrap(); // pages 0,1
        let b = bs.create(&vec![2u8; 1024]).unwrap(); // page 2
        let p = bs.blob_placement(a).unwrap();
        assert_eq!(p.first_page, PageId(0));
        assert_eq!(p.pages, 2);
        assert_eq!(p.runs, 1);
        // Free the middle blob, then create a 2-page blob: it draws page 2
        // from the free list plus a fresh page 3 — still one run here, so
        // fragment it for real with a free page that is not adjacent.
        bs.delete(b).unwrap();
        bs.release_freed_pages();
        let c = bs.create(&vec![3u8; 2048]).unwrap(); // pages 2,3 (contiguous)
        assert_eq!(bs.blob_placement(c).unwrap().runs, 1);
        bs.delete(a).unwrap();
        bs.release_freed_pages();
        // Free list now holds pages 0,1 (popped from the back: 1 then 0),
        // so this blob's payload order is 1,0 — two runs.
        let d = bs.create(&vec![4u8; 2048]).unwrap();
        let p = bs.blob_placement(d).unwrap();
        assert_eq!(p.first_page, PageId(1));
        assert_eq!(p.runs, 2);
        assert!(bs.blob_placement(BlobId(99)).is_err());
    }

    #[test]
    fn read_batch_returns_each_payload_and_coalesces() {
        let bs = store();
        let payloads: Vec<Vec<u8>> = (0..4u8)
            .map(|i| vec![i; 700 + 400 * i as usize]) // 1..=3 pages each
            .collect();
        let ids: Vec<BlobId> = payloads.iter().map(|p| bs.create(p).unwrap()).collect();
        bs.stats().reset();
        let mut out = Vec::new();
        let ranges = bs.read_batch(&ids, &mut out).unwrap();
        assert_eq!(ranges.len(), 4);
        for (i, &(off, len)) in ranges.iter().enumerate() {
            assert_eq!(&out[off..off + len], payloads[i].as_slice());
        }
        let s = bs.stats().snapshot();
        assert_eq!(s.blobs_read, 4);
        let total_pages: u64 = payloads.iter().map(|p| bs.pages_for(p.len() as u64)).sum();
        assert_eq!(s.pages_read, total_pages);
        // Sequential creates land on consecutive pages, so the whole batch
        // is one physical run.
        assert_eq!(s.runs_coalesced, 1);
        assert_eq!(s.pages_read_run, total_pages);
        // An unknown id fails the whole batch before any I/O.
        bs.stats().reset();
        assert!(bs.read_batch(&[ids[0], BlobId(99)], &mut out).is_err());
        assert_eq!(bs.stats().snapshot().pages_read, 0);
    }

    #[test]
    fn create_contiguous_skips_the_free_list() {
        let bs = store();
        let a = bs.create(&vec![1u8; 2048]).unwrap();
        bs.delete(a).unwrap();
        bs.release_freed_pages();
        assert_eq!(bs.free_page_count(), 2);
        let data: Vec<u8> = (0..3000).map(|i| (i % 251) as u8).collect();
        let id = bs.create_contiguous(&data).unwrap();
        // The free pages were left alone; fresh pages were appended.
        assert_eq!(bs.free_page_count(), 2);
        let p = bs.blob_placement(id).unwrap();
        assert_eq!(p.first_page, PageId(2));
        assert_eq!(p.runs, 1);
        assert_eq!(bs.read(id).unwrap(), data);
    }

    #[test]
    fn empty_blob_occupies_one_page() {
        let bs = store();
        let id = bs.create(&[]).unwrap();
        assert_eq!(bs.read(id).unwrap(), Vec::<u8>::new());
        assert_eq!(bs.page_store().allocated(), 1);
    }

    #[test]
    fn delete_recycles_pages_after_commit() {
        let bs = store();
        let a = bs.create(&vec![1u8; 2048]).unwrap(); // 2 pages
        bs.delete(a).unwrap();
        // Freed pages are quarantined until the next catalog commit: a
        // create before the commit must not overwrite them.
        assert_eq!(bs.quarantined_page_count(), 2);
        assert_eq!(bs.free_page_count(), 0);
        assert_eq!(bs.release_freed_pages(), 2);
        let before = bs.page_store().allocated();
        let b = bs.create(&vec![2u8; 2048]).unwrap(); // reuses freed pages
        assert_eq!(bs.page_store().allocated(), before);
        assert_eq!(bs.read(b).unwrap(), vec![2u8; 2048]);
        assert!(matches!(bs.read(a), Err(StorageError::UnknownBlob { .. })));
        assert!(bs.delete(a).is_err());
    }

    #[test]
    fn update_grows_and_shrinks() {
        let bs = store();
        let id = bs.create(&[1u8; 100]).unwrap();
        bs.update(id, &vec![2u8; 5000]).unwrap();
        assert_eq!(bs.read(id).unwrap(), vec![2u8; 5000]);
        bs.update(id, &[3u8; 10]).unwrap();
        assert_eq!(bs.read(id).unwrap(), vec![3u8; 10]);
        // Replaced pages become reusable after the commit point.
        bs.release_freed_pages();
        let before = bs.page_store().allocated();
        let other = bs.create(&vec![4u8; 4096]).unwrap();
        assert_eq!(bs.page_store().allocated(), before);
        assert_eq!(bs.read(other).unwrap(), vec![4u8; 4096]);
    }

    #[test]
    fn update_failure_keeps_old_contents_and_free_list() {
        use crate::fault::{FaultInjectingPageStore, FaultPlan};
        let bs = BlobStore::new(FaultInjectingPageStore::new(
            MemPageStore::new(1024).unwrap(),
        ));
        let old: Vec<u8> = (0..2500).map(|i| (i % 256) as u8).collect();
        let id = bs.create(&old).unwrap(); // ops 0..=3: allocate + 3 writes
                                           // Seed the free list so the failed update draws from it.
        let scratch = bs.create(&vec![9u8; 2048]).unwrap();
        bs.delete(scratch).unwrap();
        bs.release_freed_pages();
        assert_eq!(bs.free_page_count(), 2);
        // Fail the second page write of the update, transiently.
        let next_op = bs.page_store().ops();
        bs.page_store()
            .set_plan(FaultPlan::transient(&[next_op + 2]));
        let err = bs.update(id, &vec![7u8; 3000]).unwrap_err();
        assert!(matches!(err, StorageError::Injected { .. }));
        // The blob still reads its prior contents; every scratch page (the
        // two free-listed ones plus the one freshly allocated) returned to
        // the free list.
        assert_eq!(bs.read(id).unwrap(), old);
        assert_eq!(bs.blob_len(id).unwrap(), 2500);
        assert_eq!(bs.free_page_count(), 3);
        // A retry then succeeds.
        bs.update(id, &vec![7u8; 3000]).unwrap();
        assert_eq!(bs.read(id).unwrap(), vec![7u8; 3000]);
    }

    #[test]
    fn update_failure_during_allocation_rolls_back() {
        use crate::fault::{FaultInjectingPageStore, FaultPlan};
        let bs = BlobStore::new(FaultInjectingPageStore::new(
            MemPageStore::new(1024).unwrap(),
        ));
        let id = bs.create(&vec![5u8; 1000]).unwrap();
        let next_op = bs.page_store().ops();
        // Fail the allocate itself (first op of the growing update).
        bs.page_store().set_plan(FaultPlan::transient(&[next_op]));
        assert!(bs.update(id, &vec![6u8; 4000]).is_err());
        assert_eq!(bs.read(id).unwrap(), vec![5u8; 1000]);
        assert_eq!(bs.free_page_count(), 0);
        assert_eq!(bs.quarantined_page_count(), 0);
    }

    #[test]
    fn check_pages_reports_and_reclaims_orphans() {
        let bs = store();
        let keep = bs.create(&vec![1u8; 3000]).unwrap(); // 3 pages
        assert!(bs.check_pages().is_clean());
        // Simulate a crash that left pages allocated but unreferenced: a
        // directory snapshot taken *before* an extra create, restored over
        // the same page store.
        let dir = bs.directory();
        bs.create(&vec![2u8; 2048]).unwrap(); // 2 more pages, not in `dir`
        let BlobStore { store: pages, .. } = bs;
        let bs = BlobStore::with_directory(pages, dir);
        let check = bs.check_pages();
        assert_eq!(check.allocated, 5);
        assert_eq!(check.orphaned, vec![PageId(3), PageId(4)]);
        assert!(check.dangling.is_empty() && check.duplicated.is_empty());
        assert!(check.is_repairable() && !check.is_clean());
        assert_eq!(bs.reclaim_orphans(), 2);
        assert!(bs.check_pages().is_clean());
        assert_eq!(bs.free_page_count(), 2);
        assert_eq!(bs.read(keep).unwrap(), vec![1u8; 3000]);
    }

    #[test]
    fn check_pages_flags_dangling_and_duplicates() {
        let mem = MemPageStore::new(1024).unwrap();
        // Hand-build a directory referencing page 7 (never allocated) and
        // page 0 twice.
        let bs = BlobStore::new(mem);
        bs.create(&vec![1u8; 512]).unwrap(); // page 0
        let mut dir = bs.directory();
        dir.free_pages.push(PageId(0)); // duplicate: live and free
        dir.free_pages.push(PageId(7)); // dangling
        let BlobStore { store: pages, .. } = bs;
        let bs = BlobStore::with_directory(pages, dir);
        let check = bs.check_pages();
        assert_eq!(check.dangling, vec![PageId(7)]);
        assert_eq!(check.duplicated, vec![PageId(0)]);
        assert!(!check.is_repairable());
    }

    #[test]
    fn directory_round_trip_preserves_blobs() {
        let mem = MemPageStore::new(1024).unwrap();
        let bs = BlobStore::new(mem);
        let data = vec![9u8; 1500];
        let id = bs.create(&data).unwrap();
        let dir = bs.directory();
        // Re-wrap the same page store (simulating reopen).
        let BlobStore { store, .. } = bs;
        let bs2 = BlobStore::with_directory(store, dir);
        assert_eq!(bs2.read(id).unwrap(), data);
        // Fresh ids don't collide with restored ones.
        let id2 = bs2.create(&[1, 2, 3]).unwrap();
        assert_ne!(id, id2);
    }

    #[test]
    fn directory_excluding_frees_retired_blobs_in_the_export() {
        let bs = store();
        let keep = bs.create(&vec![1u8; 2048]).unwrap(); // pages 0,1
        let retired = bs.create(&vec![2u8; 1024]).unwrap(); // page 2
        let exclude: std::collections::BTreeSet<u64> = [retired.0].into_iter().collect();
        let dir = bs.directory_excluding(&exclude);
        // The export omits the retired blob and frees its pages...
        assert_eq!(dir.blobs().count(), 1);
        assert_eq!(dir.blobs().next().unwrap().0, keep);
        assert_eq!(dir.free_pages(), &[PageId(2)]);
        // ...while the in-memory store still serves it to live snapshots.
        assert_eq!(bs.read(retired).unwrap(), vec![2u8; 1024]);
        // A reopen from the export sees a clean page accounting.
        let BlobStore { store: pages, .. } = bs;
        let bs2 = BlobStore::with_directory(pages, dir);
        assert!(bs2.check_pages().is_clean());
        assert_eq!(bs2.read(keep).unwrap(), vec![1u8; 2048]);
        assert!(bs2.read(retired).is_err());
    }

    #[test]
    fn many_blobs_keep_distinct_contents() {
        let bs = store();
        let ids: Vec<BlobId> = (0..50u8)
            .map(|i| bs.create(&vec![i; (i as usize + 1) * 37]).unwrap())
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(bs.read(id).unwrap(), vec![i as u8; (i + 1) * 37]);
        }
    }
}
