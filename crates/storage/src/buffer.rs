//! LRU buffer pool over a page store.
//!
//! The paper measures cold-cache retrieval times (`t_o`); the pool exists to
//! show (and benchmark) how caching changes the picture, and to serve as the
//! realistic substrate a DBMS would run on. It wraps any [`PageStore`] and
//! is itself a [`PageStore`], so the BLOB layer can run with or without it.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::error::Result;
use crate::page::{PageId, PageStore};
use crate::stats::IoStats;

/// A write-through LRU page cache.
pub struct BufferPool<S> {
    store: S,
    capacity: usize,
    stats: IoStats,
    inner: Mutex<PoolInner>,
}

#[derive(Debug, Default)]
struct PoolInner {
    /// page -> (frame payload, LRU tick of last use)
    frames: HashMap<u64, (Box<[u8]>, u64)>,
    tick: u64,
}

impl<S: PageStore> BufferPool<S> {
    /// Wraps `store` with an LRU cache of `capacity` frames.
    ///
    /// # Errors
    /// [`crate::StorageError::ZeroCapacity`] when `capacity == 0`.
    pub fn new(store: S, capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(crate::error::StorageError::ZeroCapacity);
        }
        Ok(BufferPool {
            store,
            capacity,
            stats: IoStats::new(),
            inner: Mutex::new(PoolInner::default()),
        })
    }

    /// Cache hit/miss statistics.
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The wrapped page store.
    #[must_use]
    pub fn inner_store(&self) -> &S {
        &self.store
    }

    /// Number of frames currently cached.
    #[must_use]
    pub fn cached_frames(&self) -> usize {
        self.inner.lock().unwrap().frames.len()
    }

    /// Drops every cached frame (cold-start measurements).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.frames.clear();
    }

    fn evict_if_full(inner: &mut PoolInner, capacity: usize) {
        while inner.frames.len() >= capacity {
            let victim = inner
                .frames
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(&page, _)| page)
                .expect("frames non-empty when len >= capacity >= 1");
            inner.frames.remove(&victim);
        }
    }
}

impl<S: PageStore> PageStore for BufferPool<S> {
    fn page_size(&self) -> usize {
        self.store.page_size()
    }

    fn allocated(&self) -> u64 {
        self.store.allocated()
    }

    fn allocate(&self, count: u64) -> Result<Vec<PageId>> {
        self.store.allocate(count)
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((frame, last)) = inner.frames.get_mut(&page.0) {
                buf.copy_from_slice(frame);
                *last = tick;
                self.stats.add_cache_hit();
                tilestore_obs::hot().cache_hits.inc();
                return Ok(());
            }
        }
        // Miss: fetch outside the lock-held fast path, then install.
        self.stats.add_cache_miss();
        tilestore_obs::hot().cache_misses.inc();
        self.store.read_page(page, buf)?;
        let mut inner = self.inner.lock().unwrap();
        Self::evict_if_full(&mut inner, self.capacity);
        inner.tick += 1;
        let tick = inner.tick;
        inner
            .frames
            .insert(page.0, (buf.to_vec().into_boxed_slice(), tick));
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()> {
        // Write-through: the store is always current.
        self.store.write_page(page, buf)?;
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((frame, last)) = inner.frames.get_mut(&page.0) {
            frame.copy_from_slice(buf);
            *last = tick;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::MemPageStore;

    fn pool(capacity: usize) -> BufferPool<MemPageStore> {
        BufferPool::new(MemPageStore::new(1024).unwrap(), capacity).unwrap()
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(BufferPool::new(MemPageStore::new(1024).unwrap(), 0).is_err());
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let p = pool(4);
        let pages = p.allocate(1).unwrap();
        let payload = vec![5u8; 1024];
        p.write_page(pages[0], &payload).unwrap();
        let mut buf = vec![0u8; 1024];
        p.read_page(pages[0], &mut buf).unwrap();
        p.read_page(pages[0], &mut buf).unwrap();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(buf, payload);
        let s = p.stats().snapshot();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(2);
        let pages = p.allocate(3).unwrap();
        let mut buf = vec![0u8; 1024];
        p.read_page(pages[0], &mut buf).unwrap(); // cache: {0}
        p.read_page(pages[1], &mut buf).unwrap(); // cache: {0,1}
        p.read_page(pages[0], &mut buf).unwrap(); // refresh 0
        p.read_page(pages[2], &mut buf).unwrap(); // evicts 1
        assert_eq!(p.cached_frames(), 2);
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_hits, 1);
        p.read_page(pages[1], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_misses, 1);
    }

    #[test]
    fn write_through_updates_cached_frame() {
        let p = pool(2);
        let pages = p.allocate(1).unwrap();
        let mut buf = vec![0u8; 1024];
        p.write_page(pages[0], &vec![1u8; 1024]).unwrap();
        p.read_page(pages[0], &mut buf).unwrap(); // install frame
        p.write_page(pages[0], &vec![2u8; 1024]).unwrap();
        p.read_page(pages[0], &mut buf).unwrap(); // served from cache
        assert_eq!(buf, vec![2u8; 1024]);
        // And the backing store is current too.
        let mut direct = vec![0u8; 1024];
        p.inner_store().read_page(pages[0], &mut direct).unwrap();
        assert_eq!(direct, vec![2u8; 1024]);
    }

    #[test]
    fn clear_forces_cold_reads() {
        let p = pool(4);
        let pages = p.allocate(1).unwrap();
        let mut buf = vec![0u8; 1024];
        p.read_page(pages[0], &mut buf).unwrap();
        p.clear();
        assert_eq!(p.cached_frames(), 0);
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_misses, 1);
    }
}
