//! Sharded LRU buffer pool over a page store.
//!
//! The paper measures cold-cache retrieval times (`t_o`); the pool exists to
//! show (and benchmark) how caching changes the picture, and to serve as the
//! realistic substrate a DBMS would run on. It wraps any [`PageStore`] and
//! is itself a [`PageStore`], so the BLOB layer can run with or without it.
//!
//! # Sharding
//!
//! The frame table is split into `N` shards (a power of two), each with its
//! own mutex, LRU state, pin table and `capacity / N` frames. A page maps to
//! a shard by a Fibonacci hash of its id, so concurrent readers touching
//! different pages contend on different locks instead of funnelling through
//! one global mutex. Within a shard, recency is tracked with a tick-indexed
//! ordered map (`tick → page`), so eviction is an O(log n) pop of the oldest
//! tick instead of an O(n) scan.
//!
//! # Freshness invariant
//!
//! The pool is write-through, and it guarantees: **after `write_page(p, new)`
//! returns, no read of `p` observes bytes older than `new`**. The miss path
//! fetches from the store outside the lock; each shard keeps a write-version
//! counter, sampled when the miss starts, and the fetched bytes are installed
//! only if no write landed on the shard in between — otherwise the (possibly
//! stale) fetch is discarded and the frame table is left untouched. This is
//! conservative (a write to a *different* page in the same shard also voids
//! the install), which costs at most a re-fetch, never staleness.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};

use tilestore_obs::Counter;

use crate::error::Result;
use crate::page::{lock, PageId, PageStore, RunRead};
use crate::stats::IoStats;

/// Default number of shards, clamped down so every shard holds ≥ 1 frame.
pub const DEFAULT_SHARDS: usize = 8;

/// A write-through, sharded LRU page cache.
pub struct BufferPool<S> {
    store: S,
    stats: IoStats,
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; the shard count is a power of two.
    mask: u64,
}

/// One lock domain of the pool: its own LRU state and frame budget.
struct Shard {
    capacity: usize,
    inner: Mutex<PoolInner>,
    /// Per-shard cache counters (`pool.shard<i>.cache_hits` / `_misses`),
    /// pre-resolved so the hot path never takes the registry lock.
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

#[derive(Debug, Default)]
struct PoolInner {
    /// page -> (frame payload, LRU tick of last use)
    frames: HashMap<u64, (Box<[u8]>, u64)>,
    /// LRU tick of last use -> page; the first entry is the eviction victim.
    /// Invariant: `order` and `frames` hold exactly the same pages, with
    /// matching ticks (ticks are unique, drawn from a monotonic counter).
    order: BTreeMap<u64, u64>,
    /// page -> pin count. Pinned pages are exempt from eviction; the BLOB
    /// layer pins a tile's pages for the duration of the tile read so a
    /// concurrent scan cannot evict a frame out from under a reader.
    pins: HashMap<u64, u32>,
    tick: u64,
    /// Bumped by every `write_page` that maps to this shard. A miss samples
    /// it before fetching; if it moved by install time the fetched bytes may
    /// predate a completed write and are discarded.
    writes: u64,
}

impl PoolInner {
    /// Draws the next recency tick.
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Moves `page` (already cached, at `old_tick`) to `new_tick`.
    fn touch(&mut self, page: u64, old_tick: u64, new_tick: u64) {
        self.order.remove(&old_tick);
        self.order.insert(new_tick, page);
    }

    /// Installs `page` at `tick`, evicting the least recently used
    /// *unpinned* frames while the shard is at or above `capacity`. When
    /// every cached frame is pinned the shard temporarily exceeds capacity
    /// rather than dropping a frame a reader is still using.
    fn install(&mut self, page: u64, payload: Box<[u8]>, tick: u64, capacity: usize) {
        while self.frames.len() >= capacity {
            let victim = self
                .order
                .iter()
                .map(|(&t, &p)| (t, p))
                .find(|(_, p)| !self.pins.contains_key(p));
            match victim {
                Some((victim_tick, victim_page)) => {
                    self.order.remove(&victim_tick);
                    self.frames.remove(&victim_page);
                }
                None => break,
            }
        }
        self.frames.insert(page, (payload, tick));
        self.order.insert(tick, page);
    }
}

/// Largest power of two `<= n` (`n >= 1`).
fn floor_pow2(n: usize) -> usize {
    1 << (usize::BITS - 1 - n.leading_zeros())
}

impl<S: PageStore> BufferPool<S> {
    /// Wraps `store` with an LRU cache of `capacity` frames, split across
    /// [`DEFAULT_SHARDS`] shards (fewer when `capacity` is small).
    ///
    /// # Errors
    /// [`crate::StorageError::ZeroCapacity`] when `capacity == 0`.
    pub fn new(store: S, capacity: usize) -> Result<Self> {
        BufferPool::with_shards(store, capacity, DEFAULT_SHARDS)
    }

    /// Wraps `store` with an LRU cache of `capacity` frames split across
    /// `shards` lock domains. The shard count is rounded down to a power of
    /// two and clamped to `[1, capacity]` so every shard owns at least one
    /// frame; `capacity` splits evenly with any remainder going to the
    /// lowest-numbered shards, so the totals always add up to `capacity`.
    ///
    /// # Errors
    /// [`crate::StorageError::ZeroCapacity`] when `capacity == 0`.
    pub fn with_shards(store: S, capacity: usize, shards: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(crate::error::StorageError::ZeroCapacity);
        }
        let n = floor_pow2(shards.max(1)).min(floor_pow2(capacity));
        let reg = tilestore_obs::metrics();
        let shards: Vec<Shard> = (0..n)
            .map(|i| Shard {
                capacity: capacity / n + usize::from(i < capacity % n),
                inner: Mutex::new(PoolInner::default()),
                hits: reg.counter(&format!("pool.shard{i}.cache_hits")),
                misses: reg.counter(&format!("pool.shard{i}.cache_misses")),
            })
            .collect();
        Ok(BufferPool {
            store,
            stats: IoStats::new(),
            shards: shards.into_boxed_slice(),
            mask: (n - 1) as u64,
        })
    }

    /// The shard a page id maps to. Fibonacci hashing spreads the sequential
    /// page ids a tile occupies across shards, so one tile read touches
    /// several lock domains instead of hammering one.
    fn shard_index(&self, page: u64) -> usize {
        (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33 & self.mask) as usize
    }

    fn shard(&self, page: u64) -> &Shard {
        &self.shards[self.shard_index(page)]
    }

    /// Locks a shard, counting contention: a failed `try_lock` bumps
    /// `pool.shard_contention` before falling back to a blocking acquire.
    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, PoolInner> {
        match shard.inner.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => {
                tilestore_obs::hot().pool_shard_contention.inc();
                lock(&shard.inner)
            }
        }
    }

    /// Cache hit/miss statistics.
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The wrapped page store.
    #[must_use]
    pub fn inner_store(&self) -> &S {
        &self.store
    }

    /// Number of lock shards the frame table is split across.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of frames currently cached, across all shards.
    #[must_use]
    pub fn cached_frames(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock(&s.inner).frames.len())
            .sum()
    }

    /// Drops every cached frame (cold-start measurements). Pins survive: a
    /// pinned page simply re-enters the pool on its next read.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut inner = lock(&shard.inner);
            inner.frames.clear();
            inner.order.clear();
        }
    }

    /// Number of pages currently pinned (with any positive pin count).
    #[must_use]
    pub fn pinned_pages(&self) -> usize {
        self.shards.iter().map(|s| lock(&s.inner).pins.len()).sum()
    }
}

impl<S: PageStore> PageStore for BufferPool<S> {
    fn page_size(&self) -> usize {
        self.store.page_size()
    }

    fn allocated(&self) -> u64 {
        self.store.allocated()
    }

    fn allocate(&self, count: u64) -> Result<Vec<PageId>> {
        self.store.allocate(count)
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        let shard = self.shard(page.0);
        let miss_version = {
            let mut inner = self.lock_shard(shard);
            let tick = inner.next_tick();
            if let Some((frame, last)) = inner.frames.get_mut(&page.0) {
                buf.copy_from_slice(frame);
                let old = *last;
                *last = tick;
                inner.touch(page.0, old, tick);
                self.stats.add_cache_hit();
                shard.hits.inc();
                tilestore_obs::hot().cache_hits.inc();
                return Ok(());
            }
            inner.writes
        };
        // Miss: fetch outside the lock, then install under a version guard.
        self.stats.add_cache_miss();
        shard.misses.inc();
        tilestore_obs::hot().cache_misses.inc();
        self.store.read_page(page, buf)?;
        let mut inner = self.lock_shard(shard);
        if inner.writes != miss_version {
            // A write landed on this shard while the fetch was in flight,
            // so the fetched bytes may predate a write that has already
            // returned to its caller. Installing them would leave the cache
            // permanently stale; hand them to the caller (the read merely
            // overlapped the write) but leave the frame table alone.
            return Ok(());
        }
        let tick = inner.next_tick();
        if let Some((_, last)) = inner.frames.get_mut(&page.0) {
            // A concurrent miss installed the page first. Its bytes are as
            // fresh as ours (same unmoved write version): just touch.
            let old = *last;
            *last = tick;
            inner.touch(page.0, old, tick);
            return Ok(());
        }
        inner.install(
            page.0,
            buf.to_vec().into_boxed_slice(),
            tick,
            shard.capacity,
        );
        Ok(())
    }

    fn run_read_supported(&self) -> bool {
        self.store.run_read_supported()
    }

    /// Delegates to the store: run reads bypass the cache (write-through
    /// keeps the store current, and nothing is installed, so the stale-frame
    /// guard is not involved).
    fn read_page_run(&self, first: PageId, count: usize, buf: &mut [u8]) -> Result<()> {
        self.store.read_page_run(first, count, buf)
    }

    fn read_pages(&self, pages: &[PageId], buf: &mut [u8]) -> Result<RunRead> {
        let ps = self.store.page_size();
        assert_eq!(buf.len(), pages.len() * ps, "buffer/pages length mismatch");
        // Pass 1: group by shard and serve hits under one lock acquisition
        // per shard — the convoy-killer for band-parallel tile fetches,
        // which used to take three pool locks (pin, read, unpin) per page.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &page) in pages.iter().enumerate() {
            by_shard[self.shard_index(page.0)].push(i);
        }
        let mut miss_idx: Vec<usize> = Vec::new();
        let mut versions = vec![0u64; self.shards.len()];
        for (si, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let shard = &self.shards[si];
            let mut hits = 0u64;
            let misses_before = miss_idx.len();
            {
                let mut inner = self.lock_shard(shard);
                for &i in idxs {
                    let tick = inner.next_tick();
                    if let Some((frame, last)) = inner.frames.get_mut(&pages[i].0) {
                        buf[i * ps..(i + 1) * ps].copy_from_slice(frame);
                        let old = *last;
                        *last = tick;
                        inner.touch(pages[i].0, old, tick);
                        hits += 1;
                    } else {
                        miss_idx.push(i);
                    }
                }
                versions[si] = inner.writes;
            }
            let misses = (miss_idx.len() - misses_before) as u64;
            if hits > 0 {
                self.stats.add_cache_hits(hits);
                shard.hits.add(hits);
                tilestore_obs::hot().cache_hits.add(hits);
            }
            if misses > 0 {
                self.stats.add_cache_misses(misses);
                shard.misses.add(misses);
                tilestore_obs::hot().cache_misses.add(misses);
            }
        }
        if miss_idx.is_empty() {
            return Ok(RunRead::default());
        }
        // Pass 2: fetch misses from the store straight into the caller's
        // buffer. The bytes never transit the cache, so no pinning is needed
        // to protect them from eviction. Misses that are consecutive both in
        // the caller's order and in page id have physically adjacent frames
        // and a contiguous destination slice — fetch each such run with one
        // positioned read. Coalescing only changes how the miss bytes are
        // fetched; the pass-1 version sample and the pass-3 install guard
        // are untouched, so the stale-frame invariant holds as before.
        miss_idx.sort_unstable();
        let coalesce = self.store.run_read_supported();
        let mut run = RunRead::default();
        let mut k = 0;
        while k < miss_idx.len() {
            let start = miss_idx[k];
            let mut len = 1;
            while coalesce
                && k + len < miss_idx.len()
                && miss_idx[k + len] == start + len
                && pages[start + len].0 == pages[start].0 + len as u64
            {
                len += 1;
            }
            if len > 1 {
                self.store.read_page_run(
                    pages[start],
                    len,
                    &mut buf[start * ps..(start + len) * ps],
                )?;
                run.runs_coalesced += 1;
                run.pages_in_runs += len as u64;
                run.readahead_bytes += (len * ps) as u64;
            } else {
                self.store
                    .read_page(pages[start], &mut buf[start * ps..(start + 1) * ps])?;
            }
            k += len;
        }
        if run.runs_coalesced > 0 {
            self.stats.add_run_read(run);
            let hot = tilestore_obs::hot();
            hot.runs_coalesced.add(run.runs_coalesced);
            hot.readahead_bytes.add(run.readahead_bytes);
        }
        // Pass 3: install the fetched frames, one lock per shard, each
        // guarded by that shard's write version sampled in pass 1.
        let mut installs: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for &i in &miss_idx {
            installs[self.shard_index(pages[i].0)].push(i);
        }
        for (si, idxs) in installs.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let shard = &self.shards[si];
            let mut inner = self.lock_shard(shard);
            if inner.writes != versions[si] {
                continue; // see read_page: the fetch may predate a write
            }
            for &i in idxs {
                let tick = inner.next_tick();
                if let Some((_, last)) = inner.frames.get_mut(&pages[i].0) {
                    let old = *last;
                    *last = tick;
                    inner.touch(pages[i].0, old, tick);
                    continue;
                }
                let payload = buf[i * ps..(i + 1) * ps].to_vec().into_boxed_slice();
                inner.install(pages[i].0, payload, tick, shard.capacity);
            }
        }
        Ok(run)
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()> {
        // Write-through: the store is always current.
        self.store.write_page(page, buf)?;
        let shard = self.shard(page.0);
        let mut inner = self.lock_shard(shard);
        inner.writes += 1;
        let tick = inner.next_tick();
        if let Some((frame, last)) = inner.frames.get_mut(&page.0) {
            frame.copy_from_slice(buf);
            let old = *last;
            *last = tick;
            inner.touch(page.0, old, tick);
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        // Write-through means no dirty frames: delegate to the store.
        self.store.sync()
    }

    fn pin_page(&self, page: PageId) {
        let mut inner = self.lock_shard(self.shard(page.0));
        *inner.pins.entry(page.0).or_insert(0) += 1;
    }

    fn unpin_page(&self, page: PageId) {
        let mut inner = self.lock_shard(self.shard(page.0));
        if let Some(count) = inner.pins.get_mut(&page.0) {
            *count -= 1;
            if *count == 0 {
                inner.pins.remove(&page.0);
            }
        } else {
            drop(inner);
            // A pin-leak or double-unpin upstream: loud in debug builds,
            // counted in release so it surfaces in the ops plane.
            debug_assert!(false, "unpin_page({}) without a matching pin", page.0);
            tilestore_obs::hot().pin_underflow.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::MemPageStore;

    /// Single-shard pool: the tests below that pin an exact global LRU
    /// order need one lock domain; sharded behavior has its own tests.
    fn pool(capacity: usize) -> BufferPool<MemPageStore> {
        BufferPool::with_shards(MemPageStore::new(1024).unwrap(), capacity, 1).unwrap()
    }

    /// Checks the `frames`/`order` cross-invariant on every shard.
    fn assert_coherent<S: PageStore>(p: &BufferPool<S>) {
        for shard in p.shards.iter() {
            let inner = lock(&shard.inner);
            assert_eq!(inner.frames.len(), inner.order.len());
            for (&tick, &page) in &inner.order {
                assert_eq!(inner.frames.get(&page).map(|(_, t)| *t), Some(tick));
            }
        }
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(BufferPool::new(MemPageStore::new(1024).unwrap(), 0).is_err());
    }

    #[test]
    fn shard_count_is_clamped_and_capacity_splits_exactly() {
        let mk = |cap, shards| {
            BufferPool::with_shards(MemPageStore::new(1024).unwrap(), cap, shards).unwrap()
        };
        // Rounded down to a power of two, clamped so each shard has ≥ 1 frame.
        assert_eq!(mk(64, 7).shard_count(), 4);
        assert_eq!(mk(64, 16).shard_count(), 16);
        assert_eq!(mk(3, 16).shard_count(), 2);
        assert_eq!(mk(1, 16).shard_count(), 1);
        assert_eq!(mk(5, 0).shard_count(), 1);
        // Capacities sum to the requested total, remainder to low shards.
        let p = mk(11, 4);
        let caps: Vec<usize> = p.shards.iter().map(|s| s.capacity).collect();
        assert_eq!(caps, vec![3, 3, 3, 2]);
        assert_eq!(caps.iter().sum::<usize>(), 11);
    }

    #[test]
    fn sharded_pool_never_exceeds_total_capacity() {
        let p = BufferPool::with_shards(MemPageStore::new(1024).unwrap(), 8, 4).unwrap();
        let pages = p.allocate(64).unwrap();
        let mut buf = vec![0u8; 1024];
        for _ in 0..3 {
            for &pg in &pages {
                p.read_page(pg, &mut buf).unwrap();
                assert!(p.cached_frames() <= 8);
            }
        }
        assert_coherent(&p);
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let p = pool(4);
        let pages = p.allocate(1).unwrap();
        let payload = vec![5u8; 1024];
        p.write_page(pages[0], &payload).unwrap();
        let mut buf = vec![0u8; 1024];
        p.read_page(pages[0], &mut buf).unwrap();
        p.read_page(pages[0], &mut buf).unwrap();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(buf, payload);
        let s = p.stats().snapshot();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 2);
        assert_coherent(&p);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(2);
        let pages = p.allocate(3).unwrap();
        let mut buf = vec![0u8; 1024];
        p.read_page(pages[0], &mut buf).unwrap(); // cache: {0}
        p.read_page(pages[1], &mut buf).unwrap(); // cache: {0,1}
        p.read_page(pages[0], &mut buf).unwrap(); // refresh 0
        p.read_page(pages[2], &mut buf).unwrap(); // evicts 1
        assert_eq!(p.cached_frames(), 2);
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_hits, 1);
        p.read_page(pages[1], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_misses, 1);
        assert_coherent(&p);
    }

    #[test]
    fn write_refresh_changes_eviction_order() {
        let p = pool(2);
        let pages = p.allocate(3).unwrap();
        let mut buf = vec![0u8; 1024];
        p.read_page(pages[0], &mut buf).unwrap(); // cache: {0}
        p.read_page(pages[1], &mut buf).unwrap(); // cache: {0,1}
        p.write_page(pages[0], &vec![1u8; 1024]).unwrap(); // refresh 0
        p.read_page(pages[2], &mut buf).unwrap(); // evicts 1, not 0
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_hits, 1, "page 0 was refreshed");
        assert_coherent(&p);
    }

    #[test]
    fn eviction_stays_linear_under_scan() {
        // A miss-heavy scan over a full pool must evict exactly one frame
        // per miss (O(log n) each), never growing past capacity.
        let p = pool(8);
        let pages = p.allocate(64).unwrap();
        let mut buf = vec![0u8; 1024];
        for _ in 0..4 {
            for &pg in &pages {
                p.read_page(pg, &mut buf).unwrap();
                assert!(p.cached_frames() <= 8);
            }
        }
        let s = p.stats().snapshot();
        assert_eq!(s.cache_misses, 256, "pure scan: every access misses");
        assert_coherent(&p);
    }

    #[test]
    fn write_through_updates_cached_frame() {
        let p = pool(2);
        let pages = p.allocate(1).unwrap();
        let mut buf = vec![0u8; 1024];
        p.write_page(pages[0], &vec![1u8; 1024]).unwrap();
        p.read_page(pages[0], &mut buf).unwrap(); // install frame
        p.write_page(pages[0], &vec![2u8; 1024]).unwrap();
        p.read_page(pages[0], &mut buf).unwrap(); // served from cache
        assert_eq!(buf, vec![2u8; 1024]);
        // And the backing store is current too.
        let mut direct = vec![0u8; 1024];
        p.inner_store().read_page(pages[0], &mut direct).unwrap();
        assert_eq!(direct, vec![2u8; 1024]);
    }

    #[test]
    fn clear_forces_cold_reads() {
        let p = pool(4);
        let pages = p.allocate(1).unwrap();
        let mut buf = vec![0u8; 1024];
        p.read_page(pages[0], &mut buf).unwrap();
        p.clear();
        assert_eq!(p.cached_frames(), 0);
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_misses, 1);
        assert_coherent(&p);
    }

    #[test]
    fn batch_read_pages_matches_per_page_reads() {
        let p = BufferPool::with_shards(MemPageStore::new(1024).unwrap(), 8, 4).unwrap();
        let pages = p.allocate(12).unwrap();
        for (i, &pg) in pages.iter().enumerate() {
            p.write_page(pg, &vec![i as u8 + 1; 1024]).unwrap();
        }
        // Warm a subset so the batch mixes hits and misses.
        let mut one = vec![0u8; 1024];
        for &pg in &pages[..4] {
            p.read_page(pg, &mut one).unwrap();
        }
        p.stats().reset();
        let mut buf = vec![0u8; 12 * 1024];
        p.read_pages(&pages, &mut buf).unwrap();
        for (i, chunk) in buf.chunks(1024).enumerate() {
            assert_eq!(chunk, &vec![i as u8 + 1; 1024][..], "page {i}");
        }
        let s = p.stats().snapshot();
        assert_eq!(s.cache_hits, 4);
        assert_eq!(s.cache_misses, 8);
        // Whatever survived eviction (capacity is 8 < 12 pages) now hits;
        // every page is exactly one hit or one miss either way.
        let resident = p.cached_frames() as u64;
        assert!(resident > 0 && resident <= 8);
        p.stats().reset();
        p.read_pages(&pages, &mut buf).unwrap();
        let s = p.stats().snapshot();
        assert_eq!(s.cache_hits, resident);
        assert_eq!(s.cache_hits + s.cache_misses, 12);
        assert!(p.cached_frames() <= 8);
        assert_coherent(&p);
    }

    #[test]
    fn pinned_frames_survive_a_miss_heavy_scan() {
        let p = pool(2);
        let pages = p.allocate(6).unwrap();
        let mut buf = vec![0u8; 1024];
        p.write_page(pages[0], &vec![7u8; 1024]).unwrap();
        p.read_page(pages[0], &mut buf).unwrap(); // install frame 0
        p.pin_page(pages[0]);
        assert_eq!(p.pinned_pages(), 1);
        // A scan over 5 other pages would normally evict frame 0 (LRU);
        // the pin must keep it resident.
        for &pg in &pages[1..] {
            p.read_page(pg, &mut buf).unwrap();
        }
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_hits, 1, "pinned frame evicted");
        assert_eq!(buf, vec![7u8; 1024]);
        // Pins nest: one unpin of a doubly-pinned page keeps it protected.
        p.pin_page(pages[0]);
        p.unpin_page(pages[0]);
        for &pg in &pages[1..] {
            p.read_page(pg, &mut buf).unwrap();
        }
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_hits, 1);
        // After the last unpin it becomes evictable again.
        p.unpin_page(pages[0]);
        assert_eq!(p.pinned_pages(), 0);
        for &pg in &pages[1..] {
            p.read_page(pg, &mut buf).unwrap();
        }
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_misses, 1);
        assert_coherent(&p);
    }

    #[test]
    fn fully_pinned_pool_overflows_instead_of_evicting() {
        let p = pool(2);
        let pages = p.allocate(3).unwrap();
        let mut buf = vec![0u8; 1024];
        p.read_page(pages[0], &mut buf).unwrap();
        p.read_page(pages[1], &mut buf).unwrap();
        p.pin_page(pages[0]);
        p.pin_page(pages[1]);
        // Capacity is 2 and both frames are pinned: the third page must
        // still be cacheable (temporarily exceeding capacity) rather than
        // dropping a pinned frame.
        p.read_page(pages[2], &mut buf).unwrap();
        assert_eq!(p.cached_frames(), 3);
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        p.read_page(pages[1], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_hits, 2);
        p.unpin_page(pages[0]);
        p.unpin_page(pages[1]);
        // The next install drains the overflow back under capacity.
        let extra = p.allocate(1).unwrap();
        p.read_page(extra[0], &mut buf).unwrap();
        assert!(p.cached_frames() <= 2);
        assert_coherent(&p);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "without a matching pin"))]
    fn unpin_without_pin_is_loud() {
        let p = pool(2);
        let pages = p.allocate(1).unwrap();
        let before = tilestore_obs::hot().pin_underflow.get();
        p.unpin_page(pages[0]);
        // Release builds reach here and must have counted the underflow.
        assert!(tilestore_obs::hot().pin_underflow.get() > before);
    }

    #[test]
    fn concurrent_readers_and_writer_stay_consistent() {
        use std::sync::atomic::{AtomicBool, Ordering};
        // Every page is filled with a single repeated byte; a torn or stale
        // frame would surface as a mixed-byte read. Runs on the default
        // sharded layout so cross-shard locking is exercised.
        let p = BufferPool::new(MemPageStore::new(1024).unwrap(), 8).unwrap();
        let pages = p.allocate(32).unwrap();
        for (i, &pg) in pages.iter().enumerate() {
            p.write_page(pg, &vec![i as u8; 1024]).unwrap();
        }
        let stop = AtomicBool::new(false);
        let reads_done = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            // One writer cycling the value of every page, keeping the
            // single-byte-fill invariant.
            s.spawn(|| {
                for round in 1u32..=20 {
                    for (i, &pg) in pages.iter().enumerate() {
                        let v = (i as u32 + round) as u8;
                        p.write_page(pg, &vec![v; 1024]).unwrap();
                    }
                }
                stop.store(true, Ordering::Release);
            });
            // Four readers hammering random-ish pages.
            for t in 0..4u64 {
                let p = &p;
                let stop = &stop;
                let reads_done = &reads_done;
                let pages = &pages;
                s.spawn(move || {
                    let mut buf = vec![0u8; 1024];
                    let mut x = t + 1;
                    let mut local = 0u64;
                    while !stop.load(Ordering::Acquire) || local < 200 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let pg = pages[(x >> 33) as usize % pages.len()];
                        p.read_page(pg, &mut buf).unwrap();
                        let first = buf[0];
                        assert!(
                            buf.iter().all(|&b| b == first),
                            "torn/stale frame for page {}",
                            pg.0
                        );
                        local += 1;
                        if local > 100_000 {
                            break;
                        }
                    }
                    reads_done.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        // Counter consistency: every read was either a hit or a miss.
        let s = p.stats().snapshot();
        assert_eq!(
            s.cache_hits + s.cache_misses,
            reads_done.load(Ordering::Relaxed)
        );
        assert!(p.cached_frames() <= 8);
        assert_coherent(&p);
    }
}
