//! LRU buffer pool over a page store.
//!
//! The paper measures cold-cache retrieval times (`t_o`); the pool exists to
//! show (and benchmark) how caching changes the picture, and to serve as the
//! realistic substrate a DBMS would run on. It wraps any [`PageStore`] and
//! is itself a [`PageStore`], so the BLOB layer can run with or without it.
//!
//! Recency is tracked with a tick-indexed ordered map (`tick → page`)
//! alongside the frame table, so eviction is an O(log n) pop of the oldest
//! tick instead of an O(n) scan — a full cache under a miss-heavy scan used
//! to degrade to O(n²).

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use crate::error::Result;
use crate::page::{lock, PageId, PageStore};
use crate::stats::IoStats;

/// A write-through LRU page cache.
pub struct BufferPool<S> {
    store: S,
    capacity: usize,
    stats: IoStats,
    inner: Mutex<PoolInner>,
}

#[derive(Debug, Default)]
struct PoolInner {
    /// page -> (frame payload, LRU tick of last use)
    frames: HashMap<u64, (Box<[u8]>, u64)>,
    /// LRU tick of last use -> page; the first entry is the eviction victim.
    /// Invariant: `order` and `frames` hold exactly the same pages, with
    /// matching ticks (ticks are unique, drawn from a monotonic counter).
    order: BTreeMap<u64, u64>,
    /// page -> pin count. Pinned pages are exempt from eviction; the BLOB
    /// layer pins a tile's pages for the duration of the tile read so a
    /// concurrent scan cannot evict a frame out from under a reader.
    pins: HashMap<u64, u32>,
    tick: u64,
}

impl PoolInner {
    /// Draws the next recency tick.
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Moves `page` (already cached, at `old_tick`) to `new_tick`.
    fn touch(&mut self, page: u64, old_tick: u64, new_tick: u64) {
        self.order.remove(&old_tick);
        self.order.insert(new_tick, page);
    }

    /// Installs `page` at `tick`, evicting the least recently used
    /// *unpinned* frames while the pool is at or above `capacity`. When
    /// every cached frame is pinned the pool temporarily exceeds capacity
    /// rather than dropping a frame a reader is still using.
    fn install(&mut self, page: u64, payload: Box<[u8]>, tick: u64, capacity: usize) {
        while self.frames.len() >= capacity {
            let victim = self
                .order
                .iter()
                .map(|(&t, &p)| (t, p))
                .find(|(_, p)| !self.pins.contains_key(p));
            match victim {
                Some((victim_tick, victim_page)) => {
                    self.order.remove(&victim_tick);
                    self.frames.remove(&victim_page);
                }
                None => break,
            }
        }
        self.frames.insert(page, (payload, tick));
        self.order.insert(tick, page);
    }
}

impl<S: PageStore> BufferPool<S> {
    /// Wraps `store` with an LRU cache of `capacity` frames.
    ///
    /// # Errors
    /// [`crate::StorageError::ZeroCapacity`] when `capacity == 0`.
    pub fn new(store: S, capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(crate::error::StorageError::ZeroCapacity);
        }
        Ok(BufferPool {
            store,
            capacity,
            stats: IoStats::new(),
            inner: Mutex::new(PoolInner::default()),
        })
    }

    /// Cache hit/miss statistics.
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The wrapped page store.
    #[must_use]
    pub fn inner_store(&self) -> &S {
        &self.store
    }

    /// Number of frames currently cached.
    #[must_use]
    pub fn cached_frames(&self) -> usize {
        lock(&self.inner).frames.len()
    }

    /// Drops every cached frame (cold-start measurements). Pins survive: a
    /// pinned page simply re-enters the pool on its next read.
    pub fn clear(&self) {
        let mut inner = lock(&self.inner);
        inner.frames.clear();
        inner.order.clear();
    }

    /// Number of pages currently pinned (with any positive pin count).
    #[must_use]
    pub fn pinned_pages(&self) -> usize {
        lock(&self.inner).pins.len()
    }
}

impl<S: PageStore> PageStore for BufferPool<S> {
    fn page_size(&self) -> usize {
        self.store.page_size()
    }

    fn allocated(&self) -> u64 {
        self.store.allocated()
    }

    fn allocate(&self, count: u64) -> Result<Vec<PageId>> {
        self.store.allocate(count)
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        {
            let mut inner = lock(&self.inner);
            let tick = inner.next_tick();
            if let Some((frame, last)) = inner.frames.get_mut(&page.0) {
                buf.copy_from_slice(frame);
                let old = *last;
                *last = tick;
                inner.touch(page.0, old, tick);
                self.stats.add_cache_hit();
                tilestore_obs::hot().cache_hits.inc();
                return Ok(());
            }
        }
        // Miss: fetch outside the lock-held fast path, then install.
        self.stats.add_cache_miss();
        tilestore_obs::hot().cache_misses.inc();
        self.store.read_page(page, buf)?;
        let mut inner = lock(&self.inner);
        let tick = inner.next_tick();
        // A concurrent read may have installed the page while the lock was
        // released; refresh it instead of double-inserting.
        if let Some((frame, last)) = inner.frames.get_mut(&page.0) {
            frame.copy_from_slice(buf);
            let old = *last;
            *last = tick;
            inner.touch(page.0, old, tick);
            return Ok(());
        }
        inner.install(page.0, buf.to_vec().into_boxed_slice(), tick, self.capacity);
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()> {
        // Write-through: the store is always current.
        self.store.write_page(page, buf)?;
        let mut inner = lock(&self.inner);
        let tick = inner.next_tick();
        if let Some((frame, last)) = inner.frames.get_mut(&page.0) {
            frame.copy_from_slice(buf);
            let old = *last;
            *last = tick;
            inner.touch(page.0, old, tick);
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        // Write-through means no dirty frames: delegate to the store.
        self.store.sync()
    }

    fn pin_page(&self, page: PageId) {
        let mut inner = lock(&self.inner);
        *inner.pins.entry(page.0).or_insert(0) += 1;
    }

    fn unpin_page(&self, page: PageId) {
        let mut inner = lock(&self.inner);
        if let Some(count) = inner.pins.get_mut(&page.0) {
            *count -= 1;
            if *count == 0 {
                inner.pins.remove(&page.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::MemPageStore;

    fn pool(capacity: usize) -> BufferPool<MemPageStore> {
        BufferPool::new(MemPageStore::new(1024).unwrap(), capacity).unwrap()
    }

    /// Checks the `frames`/`order` cross-invariant after a test.
    fn assert_coherent<S: PageStore>(p: &BufferPool<S>) {
        let inner = lock(&p.inner);
        assert_eq!(inner.frames.len(), inner.order.len());
        for (&tick, &page) in &inner.order {
            assert_eq!(inner.frames.get(&page).map(|(_, t)| *t), Some(tick));
        }
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(BufferPool::new(MemPageStore::new(1024).unwrap(), 0).is_err());
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let p = pool(4);
        let pages = p.allocate(1).unwrap();
        let payload = vec![5u8; 1024];
        p.write_page(pages[0], &payload).unwrap();
        let mut buf = vec![0u8; 1024];
        p.read_page(pages[0], &mut buf).unwrap();
        p.read_page(pages[0], &mut buf).unwrap();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(buf, payload);
        let s = p.stats().snapshot();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 2);
        assert_coherent(&p);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(2);
        let pages = p.allocate(3).unwrap();
        let mut buf = vec![0u8; 1024];
        p.read_page(pages[0], &mut buf).unwrap(); // cache: {0}
        p.read_page(pages[1], &mut buf).unwrap(); // cache: {0,1}
        p.read_page(pages[0], &mut buf).unwrap(); // refresh 0
        p.read_page(pages[2], &mut buf).unwrap(); // evicts 1
        assert_eq!(p.cached_frames(), 2);
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_hits, 1);
        p.read_page(pages[1], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_misses, 1);
        assert_coherent(&p);
    }

    #[test]
    fn write_refresh_changes_eviction_order() {
        let p = pool(2);
        let pages = p.allocate(3).unwrap();
        let mut buf = vec![0u8; 1024];
        p.read_page(pages[0], &mut buf).unwrap(); // cache: {0}
        p.read_page(pages[1], &mut buf).unwrap(); // cache: {0,1}
        p.write_page(pages[0], &vec![1u8; 1024]).unwrap(); // refresh 0
        p.read_page(pages[2], &mut buf).unwrap(); // evicts 1, not 0
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_hits, 1, "page 0 was refreshed");
        assert_coherent(&p);
    }

    #[test]
    fn eviction_stays_linear_under_scan() {
        // A miss-heavy scan over a full pool must evict exactly one frame
        // per miss (O(log n) each), never growing past capacity.
        let p = pool(8);
        let pages = p.allocate(64).unwrap();
        let mut buf = vec![0u8; 1024];
        for _ in 0..4 {
            for &pg in &pages {
                p.read_page(pg, &mut buf).unwrap();
                assert!(p.cached_frames() <= 8);
            }
        }
        let s = p.stats().snapshot();
        assert_eq!(s.cache_misses, 256, "pure scan: every access misses");
        assert_coherent(&p);
    }

    #[test]
    fn write_through_updates_cached_frame() {
        let p = pool(2);
        let pages = p.allocate(1).unwrap();
        let mut buf = vec![0u8; 1024];
        p.write_page(pages[0], &vec![1u8; 1024]).unwrap();
        p.read_page(pages[0], &mut buf).unwrap(); // install frame
        p.write_page(pages[0], &vec![2u8; 1024]).unwrap();
        p.read_page(pages[0], &mut buf).unwrap(); // served from cache
        assert_eq!(buf, vec![2u8; 1024]);
        // And the backing store is current too.
        let mut direct = vec![0u8; 1024];
        p.inner_store().read_page(pages[0], &mut direct).unwrap();
        assert_eq!(direct, vec![2u8; 1024]);
    }

    #[test]
    fn clear_forces_cold_reads() {
        let p = pool(4);
        let pages = p.allocate(1).unwrap();
        let mut buf = vec![0u8; 1024];
        p.read_page(pages[0], &mut buf).unwrap();
        p.clear();
        assert_eq!(p.cached_frames(), 0);
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_misses, 1);
        assert_coherent(&p);
    }

    #[test]
    fn pinned_frames_survive_a_miss_heavy_scan() {
        let p = pool(2);
        let pages = p.allocate(6).unwrap();
        let mut buf = vec![0u8; 1024];
        p.write_page(pages[0], &vec![7u8; 1024]).unwrap();
        p.read_page(pages[0], &mut buf).unwrap(); // install frame 0
        p.pin_page(pages[0]);
        assert_eq!(p.pinned_pages(), 1);
        // A scan over 5 other pages would normally evict frame 0 (LRU);
        // the pin must keep it resident.
        for &pg in &pages[1..] {
            p.read_page(pg, &mut buf).unwrap();
        }
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_hits, 1, "pinned frame evicted");
        assert_eq!(buf, vec![7u8; 1024]);
        // Pins nest: one unpin of a doubly-pinned page keeps it protected.
        p.pin_page(pages[0]);
        p.unpin_page(pages[0]);
        for &pg in &pages[1..] {
            p.read_page(pg, &mut buf).unwrap();
        }
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_hits, 1);
        // After the last unpin it becomes evictable again.
        p.unpin_page(pages[0]);
        assert_eq!(p.pinned_pages(), 0);
        for &pg in &pages[1..] {
            p.read_page(pg, &mut buf).unwrap();
        }
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_misses, 1);
        assert_coherent(&p);
    }

    #[test]
    fn fully_pinned_pool_overflows_instead_of_evicting() {
        let p = pool(2);
        let pages = p.allocate(3).unwrap();
        let mut buf = vec![0u8; 1024];
        p.read_page(pages[0], &mut buf).unwrap();
        p.read_page(pages[1], &mut buf).unwrap();
        p.pin_page(pages[0]);
        p.pin_page(pages[1]);
        // Capacity is 2 and both frames are pinned: the third page must
        // still be cacheable (temporarily exceeding capacity) rather than
        // dropping a pinned frame.
        p.read_page(pages[2], &mut buf).unwrap();
        assert_eq!(p.cached_frames(), 3);
        p.stats().reset();
        p.read_page(pages[0], &mut buf).unwrap();
        p.read_page(pages[1], &mut buf).unwrap();
        assert_eq!(p.stats().snapshot().cache_hits, 2);
        p.unpin_page(pages[0]);
        p.unpin_page(pages[1]);
        // The next install drains the overflow back under capacity.
        let extra = p.allocate(1).unwrap();
        p.read_page(extra[0], &mut buf).unwrap();
        assert!(p.cached_frames() <= 2);
        assert_coherent(&p);
    }

    #[test]
    fn concurrent_readers_and_writer_stay_consistent() {
        use std::sync::atomic::{AtomicBool, Ordering};
        // Every page is filled with a single repeated byte; a torn or stale
        // frame would surface as a mixed-byte read.
        let p = pool(8);
        let pages = p.allocate(32).unwrap();
        for (i, &pg) in pages.iter().enumerate() {
            p.write_page(pg, &vec![i as u8; 1024]).unwrap();
        }
        let stop = AtomicBool::new(false);
        let reads_done = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            // One writer cycling the value of every page, keeping the
            // single-byte-fill invariant.
            s.spawn(|| {
                for round in 1u32..=20 {
                    for (i, &pg) in pages.iter().enumerate() {
                        let v = (i as u32 + round) as u8;
                        p.write_page(pg, &vec![v; 1024]).unwrap();
                    }
                }
                stop.store(true, Ordering::Release);
            });
            // Four readers hammering random-ish pages.
            for t in 0..4u64 {
                let p = &p;
                let stop = &stop;
                let reads_done = &reads_done;
                let pages = &pages;
                s.spawn(move || {
                    let mut buf = vec![0u8; 1024];
                    let mut x = t + 1;
                    let mut local = 0u64;
                    while !stop.load(Ordering::Acquire) || local < 200 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let pg = pages[(x >> 33) as usize % pages.len()];
                        p.read_page(pg, &mut buf).unwrap();
                        let first = buf[0];
                        assert!(
                            buf.iter().all(|&b| b == first),
                            "torn/stale frame for page {}",
                            pg.0
                        );
                        local += 1;
                        if local > 100_000 {
                            break;
                        }
                    }
                    reads_done.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        // Counter consistency: every read was either a hit or a miss.
        let s = p.stats().snapshot();
        assert_eq!(
            s.cache_hits + s.cache_misses,
            reads_done.load(Ordering::Relaxed)
        );
        assert!(p.cached_frames() <= 8);
        assert_coherent(&p);
    }
}
