//! I/O statistics shared across the storage stack.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

/// Thread-safe I/O counters. Cloning shares the underlying counters.
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    blobs_read: AtomicU64,
    blobs_written: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    runs_coalesced: AtomicU64,
    pages_read_run: AtomicU64,
    readahead_bytes: AtomicU64,
}

/// An immutable snapshot of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Pages fetched from the page store.
    pub pages_read: u64,
    /// Pages written to the page store.
    pub pages_written: u64,
    /// BLOB read operations — each is a "seek" in the disk cost model,
    /// since a BLOB's pages are laid out contiguously.
    pub blobs_read: u64,
    /// BLOB write operations.
    pub blobs_written: u64,
    /// Payload bytes read from BLOBs.
    pub bytes_read: u64,
    /// Payload bytes written to BLOBs.
    pub bytes_written: u64,
    /// Buffer-pool hits (page served without touching the store).
    pub cache_hits: u64,
    /// Buffer-pool misses.
    pub cache_misses: u64,
    /// Physically consecutive page runs fetched with a single positioned
    /// read instead of one read per page.
    pub runs_coalesced: u64,
    /// Pages that arrived via coalesced runs. Pages read one at a time are
    /// `pages_read - pages_read_run`.
    pub pages_read_run: u64,
    /// Payload bytes fetched by coalesced runs.
    pub readahead_bytes: u64,
}

impl IoSnapshot {
    /// Difference between two snapshots (`self` taken after `earlier`).
    #[must_use]
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            pages_read: self.pages_read - earlier.pages_read,
            pages_written: self.pages_written - earlier.pages_written,
            blobs_read: self.blobs_read - earlier.blobs_read,
            blobs_written: self.blobs_written - earlier.blobs_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            runs_coalesced: self.runs_coalesced - earlier.runs_coalesced,
            pages_read_run: self.pages_read_run - earlier.pages_read_run,
            readahead_bytes: self.readahead_bytes - earlier.readahead_bytes,
        }
    }
}

impl ToJson for IoSnapshot {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("pages_read", self.pages_read.to_json()),
            ("pages_written", self.pages_written.to_json()),
            ("blobs_read", self.blobs_read.to_json()),
            ("blobs_written", self.blobs_written.to_json()),
            ("bytes_read", self.bytes_read.to_json()),
            ("bytes_written", self.bytes_written.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("cache_misses", self.cache_misses.to_json()),
            ("runs_coalesced", self.runs_coalesced.to_json()),
            ("pages_read_run", self.pages_read_run.to_json()),
            ("readahead_bytes", self.readahead_bytes.to_json()),
        ])
    }
}

impl FromJson for IoSnapshot {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(IoSnapshot {
            pages_read: u64::from_json(v.field("pages_read")?)?,
            pages_written: u64::from_json(v.field("pages_written")?)?,
            blobs_read: u64::from_json(v.field("blobs_read")?)?,
            blobs_written: u64::from_json(v.field("blobs_written")?)?,
            bytes_read: u64::from_json(v.field("bytes_read")?)?,
            bytes_written: u64::from_json(v.field("bytes_written")?)?,
            cache_hits: u64::from_json(v.field("cache_hits")?)?,
            cache_misses: u64::from_json(v.field("cache_misses")?)?,
            // Run counters postdate persisted stats from older builds;
            // absent fields read as zero.
            runs_coalesced: match v.get("runs_coalesced") {
                Some(j) => u64::from_json(j)?,
                None => 0,
            },
            pages_read_run: match v.get("pages_read_run") {
                Some(j) => u64::from_json(j)?,
                None => 0,
            },
            readahead_bytes: match v.get("readahead_bytes") {
                Some(j) => u64::from_json(j)?,
                None => 0,
            },
        })
    }
}

impl IoStats {
    /// Fresh counters at zero.
    #[must_use]
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Records `n` pages read.
    pub fn add_pages_read(&self, n: u64) {
        self.inner.pages_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` pages written.
    pub fn add_pages_written(&self, n: u64) {
        self.inner.pages_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one BLOB read of `bytes` payload bytes.
    pub fn add_blob_read(&self, bytes: u64) {
        self.inner.blobs_read.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one BLOB write of `bytes` payload bytes.
    pub fn add_blob_written(&self, bytes: u64) {
        self.inner.blobs_written.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a buffer-pool hit.
    pub fn add_cache_hit(&self) {
        self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` buffer-pool hits (batch read paths).
    pub fn add_cache_hits(&self, n: u64) {
        self.inner.cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a buffer-pool miss.
    pub fn add_cache_miss(&self) {
        self.inner.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` buffer-pool misses (batch read paths).
    pub fn add_cache_misses(&self, n: u64) {
        self.inner.cache_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Records the run accounting of one batch read: how many coalesced
    /// runs it issued, how many pages they covered, and the payload bytes
    /// they fetched.
    pub fn add_run_read(&self, run: crate::page::RunRead) {
        if run.runs_coalesced == 0 {
            return;
        }
        self.inner
            .runs_coalesced
            .fetch_add(run.runs_coalesced, Ordering::Relaxed);
        self.inner
            .pages_read_run
            .fetch_add(run.pages_in_runs, Ordering::Relaxed);
        self.inner
            .readahead_bytes
            .fetch_add(run.readahead_bytes, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    #[must_use]
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            pages_read: self.inner.pages_read.load(Ordering::Relaxed),
            pages_written: self.inner.pages_written.load(Ordering::Relaxed),
            blobs_read: self.inner.blobs_read.load(Ordering::Relaxed),
            blobs_written: self.inner.blobs_written.load(Ordering::Relaxed),
            bytes_read: self.inner.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.inner.bytes_written.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.inner.cache_misses.load(Ordering::Relaxed),
            runs_coalesced: self.inner.runs_coalesced.load(Ordering::Relaxed),
            pages_read_run: self.inner.pages_read_run.load(Ordering::Relaxed),
            readahead_bytes: self.inner.readahead_bytes.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.inner.pages_read.store(0, Ordering::Relaxed);
        self.inner.pages_written.store(0, Ordering::Relaxed);
        self.inner.blobs_read.store(0, Ordering::Relaxed);
        self.inner.blobs_written.store(0, Ordering::Relaxed);
        self.inner.bytes_read.store(0, Ordering::Relaxed);
        self.inner.bytes_written.store(0, Ordering::Relaxed);
        self.inner.cache_hits.store(0, Ordering::Relaxed);
        self.inner.cache_misses.store(0, Ordering::Relaxed);
        self.inner.runs_coalesced.store(0, Ordering::Relaxed);
        self.inner.pages_read_run.store(0, Ordering::Relaxed);
        self.inner.readahead_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let stats = IoStats::new();
        stats.add_pages_read(4);
        stats.add_blob_read(1000);
        stats.add_cache_hit();
        stats.add_cache_miss();
        let s = stats.snapshot();
        assert_eq!(s.pages_read, 4);
        assert_eq!(s.blobs_read, 1);
        assert_eq!(s.bytes_read, 1000);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        stats.reset();
        assert_eq!(stats.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn clones_share_counters() {
        let a = IoStats::new();
        let b = a.clone();
        b.add_pages_written(2);
        assert_eq!(a.snapshot().pages_written, 2);
    }

    #[test]
    fn since_computes_deltas() {
        let stats = IoStats::new();
        stats.add_pages_read(10);
        let before = stats.snapshot();
        stats.add_pages_read(7);
        stats.add_blob_read(100);
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.pages_read, 7);
        assert_eq!(delta.blobs_read, 1);
        assert_eq!(delta.bytes_read, 100);
    }

    #[test]
    fn run_reads_accumulate_and_round_trip() {
        let stats = IoStats::new();
        stats.add_run_read(crate::page::RunRead {
            runs_coalesced: 2,
            pages_in_runs: 9,
            readahead_bytes: 9 * 4096,
        });
        stats.add_run_read(crate::page::RunRead::default()); // no-op
        let s = stats.snapshot();
        assert_eq!(s.runs_coalesced, 2);
        assert_eq!(s.pages_read_run, 9);
        assert_eq!(s.readahead_bytes, 9 * 4096);
        let back = IoSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        stats.reset();
        assert_eq!(stats.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn snapshots_without_run_fields_still_parse() {
        // Stats persisted before the run counters existed lack the fields.
        let j = Json::parse(
            r#"{"pages_read": 3, "pages_written": 0, "blobs_read": 1,
                "blobs_written": 0, "bytes_read": 10, "bytes_written": 0,
                "cache_hits": 0, "cache_misses": 0}"#,
        )
        .unwrap();
        let s = IoSnapshot::from_json(&j).unwrap();
        assert_eq!(s.pages_read, 3);
        assert_eq!(s.runs_coalesced, 0);
        assert_eq!(s.pages_read_run, 0);
        assert_eq!(s.readahead_bytes, 0);
    }
}
