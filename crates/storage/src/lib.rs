//! Page-based BLOB storage substrate.
//!
//! Stands in for the O₂ object store the paper ran on (§5/§6): tiles are
//! BLOBs ([`BlobStore`]) laid out on fixed-size pages ([`PageStore`], with
//! [`FilePageStore`] and [`MemPageStore`] backends), optionally cached by an
//! LRU [`BufferPool`]. Every operation is accounted in [`IoStats`], and
//! [`CostModel`] converts the counts into the deterministic model seconds
//! used to reproduce the paper's `t_o` measurements.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod blob;
mod buffer;
mod cost;
mod error;
mod page;
mod stats;

pub use blob::{BlobDirectory, BlobId, BlobStore};
pub use buffer::BufferPool;
pub use cost::CostModel;
pub use error::{Result, StorageError};
pub use page::{FilePageStore, MemPageStore, PageId, PageStore, DEFAULT_PAGE_SIZE, MIN_PAGE_SIZE};
pub use stats::{IoSnapshot, IoStats};
