//! Page-based BLOB storage substrate.
//!
//! Stands in for the O₂ object store the paper ran on (§5/§6): tiles are
//! BLOBs ([`BlobStore`]) laid out on fixed-size pages ([`PageStore`], with
//! [`FilePageStore`] and [`MemPageStore`] backends), optionally cached by an
//! LRU [`BufferPool`]. Every operation is accounted in [`IoStats`], and
//! [`CostModel`] converts the counts into the deterministic model seconds
//! used to reproduce the paper's `t_o` measurements.
//!
//! Crash safety: [`FilePageStore`] frames every page with a checksum header
//! so torn writes are detected on read, pages freed by [`BlobStore`] are
//! quarantined until the next durable commit, and
//! [`FaultInjectingPageStore`] lets tests crash the store at any operation.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod blob;
mod buffer;
mod cost;
mod error;
mod fault;
mod page;
mod stats;

pub use blob::{BlobDirectory, BlobId, BlobPlacement, BlobStore, PageCheck};
pub use buffer::{BufferPool, DEFAULT_SHARDS};
pub use cost::CostModel;
pub use error::{Result, StorageError};
pub use fault::{FaultInjectingPageStore, FaultPlan};
pub use page::{
    FilePageStore, MemPageStore, PageId, PageStore, RunRead, TornWritable, DEFAULT_PAGE_SIZE,
    FRAME_HEADER, MIN_PAGE_SIZE,
};
pub use stats::{IoSnapshot, IoStats};
