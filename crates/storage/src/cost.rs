//! Deterministic disk cost model.
//!
//! The paper reports wall-clock seconds on a 1997-era Sun Ultra with a local
//! SCSI disk. Absolute numbers are unreproducible; what matters is that the
//! cost of a query is dominated by (a) a seek per BLOB fetched and (b) a
//! transfer per page read — the two quantities the tiling strategies
//! optimize. [`CostModel`] converts an [`IoSnapshot`] plus index/CPU
//! counters into model seconds so speedup tables reproduce exactly.

use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::stats::IoSnapshot;

/// Linear disk/CPU cost model. All values are seconds (per unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one seek (charged once per BLOB read — a tile's pages are
    /// contiguous).
    pub seek_s: f64,
    /// Cost of transferring one page.
    pub page_transfer_s: f64,
    /// Cost of visiting one index node.
    pub index_node_s: f64,
    /// Cost of post-processing one cell that lands in the result
    /// (bulk run copy).
    pub cpu_cell_s: f64,
    /// Cost of handling one *wasted* cell — read as part of a border tile
    /// but clipped away. Clipping walks the tile region cell-wise /
    /// short-run-wise (~1 µs per cell in 1999-era per-cell composition code), which §6.1 identifies as the dominant CPU cost of
    /// regular tiling ("data has to be copied from the border tiles to
    /// calculate the end result").
    pub cpu_waste_cell_s: f64,
}

impl CostModel {
    /// Parameters modelled on the paper's late-90s setup (Sun Ultra I with
    /// a local SCSI disk behind the O₂ object store): BLOB pages are
    /// clustered, so the per-tile positioning cost is a short 0.5 ms hop,
    /// transfer runs at ~10 MB/s (0.75 ms per 8 KiB page), index nodes cost
    /// 5 µs, and post-processing (decode + copy on an UltraSPARC) ~100 ns
    /// per cell. Transfer dominates, as in the paper, where `t_o` tracks
    /// the amount of data read (§6.1 attributes the directional speedup to
    /// "the amount of data read … in the border tiles").
    #[must_use]
    pub fn classic_disk() -> Self {
        CostModel {
            seek_s: 0.5e-3,
            page_transfer_s: 0.75e-3,
            index_node_s: 5.0e-6,
            cpu_cell_s: 100.0e-9,
            cpu_waste_cell_s: 1.0e-6,
        }
    }

    /// A seek-dominated model (8 ms seek, fast transfer) for the ablation
    /// showing how scheme rankings shift when positioning cost dominates —
    /// e.g. unclustered BLOBs or very small tiles.
    #[must_use]
    pub fn seek_dominated() -> Self {
        CostModel {
            seek_s: 8.0e-3,
            page_transfer_s: 0.1e-3,
            index_node_s: 5.0e-6,
            cpu_cell_s: 100.0e-9,
            cpu_waste_cell_s: 1.0e-6,
        }
    }

    /// A model with free CPU, isolating the I/O components.
    #[must_use]
    pub fn io_only() -> Self {
        CostModel {
            cpu_cell_s: 0.0,
            cpu_waste_cell_s: 0.0,
            index_node_s: 0.0,
            ..Self::classic_disk()
        }
    }

    /// Tile-retrieval cost `t_o`: seeks plus page transfers.
    #[must_use]
    pub fn t_o(&self, io: &IoSnapshot) -> f64 {
        io.blobs_read as f64 * self.seek_s + io.pages_read as f64 * self.page_transfer_s
    }

    /// Tile-retrieval cost `t_o` when coalesced run reads are accounted:
    /// each coalesced run costs one positioning operation regardless of how
    /// many blobs it spans, while pages read one at a time keep their
    /// per-page seek. Transfers are unchanged — coalescing removes
    /// positioning cost, not data volume. With no coalesced runs this
    /// reduces to charging a seek per page read singly, an upper bound on
    /// [`CostModel::t_o`]'s per-blob charge, so compare like with like.
    #[must_use]
    pub fn t_o_coalesced(&self, io: &IoSnapshot) -> f64 {
        let positioned = io.pages_read - io.pages_read_run + io.runs_coalesced;
        positioned as f64 * self.seek_s + io.pages_read as f64 * self.page_transfer_s
    }

    /// Index-access cost `t_ix` for `nodes` visited index nodes.
    #[must_use]
    pub fn t_ix(&self, nodes: u64) -> f64 {
        nodes as f64 * self.index_node_s
    }

    /// Post-processing cost `t_cpu`: `useful` cells composed into the
    /// result (bulk copies and default fills) plus `wasted` cells fetched
    /// with border tiles but clipped away.
    #[must_use]
    pub fn t_cpu(&self, useful: u64, wasted: u64) -> f64 {
        useful as f64 * self.cpu_cell_s + wasted as f64 * self.cpu_waste_cell_s
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::classic_disk()
    }
}

impl ToJson for CostModel {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seek_s", self.seek_s.to_json()),
            ("page_transfer_s", self.page_transfer_s.to_json()),
            ("index_node_s", self.index_node_s.to_json()),
            ("cpu_cell_s", self.cpu_cell_s.to_json()),
            ("cpu_waste_cell_s", self.cpu_waste_cell_s.to_json()),
        ])
    }
}

impl FromJson for CostModel {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CostModel {
            seek_s: f64::from_json(v.field("seek_s")?)?,
            page_transfer_s: f64::from_json(v.field("page_transfer_s")?)?,
            index_node_s: f64::from_json(v.field("index_node_s")?)?,
            cpu_cell_s: f64::from_json(v.field("cpu_cell_s")?)?,
            cpu_waste_cell_s: f64::from_json(v.field("cpu_waste_cell_s")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_o_charges_seek_per_blob_and_transfer_per_page() {
        let m = CostModel::classic_disk();
        let io = IoSnapshot {
            blobs_read: 2,
            pages_read: 10,
            ..IoSnapshot::default()
        };
        let expected = 2.0 * 0.5e-3 + 10.0 * 0.75e-3;
        assert!((m.t_o(&io) - expected).abs() < 1e-12);
    }

    #[test]
    fn fewer_seeks_cost_less_for_same_pages() {
        // The core motivation for larger adapted tiles: same data volume,
        // fewer tiles -> cheaper.
        let m = CostModel::classic_disk();
        let many = IoSnapshot {
            blobs_read: 40,
            pages_read: 100,
            ..IoSnapshot::default()
        };
        let few = IoSnapshot {
            blobs_read: 4,
            pages_read: 100,
            ..IoSnapshot::default()
        };
        assert!(m.t_o(&few) < m.t_o(&many));
    }

    #[test]
    fn coalesced_runs_pay_one_seek_each() {
        let m = CostModel::seek_dominated();
        // 100 pages fetched as scattered singles vs. as 4 coalesced runs.
        let scattered = IoSnapshot {
            pages_read: 100,
            ..IoSnapshot::default()
        };
        let coalesced = IoSnapshot {
            pages_read: 100,
            runs_coalesced: 4,
            pages_read_run: 100,
            ..IoSnapshot::default()
        };
        let expected_scattered = 100.0 * 8.0e-3 + 100.0 * 0.1e-3;
        let expected_coalesced = 4.0 * 8.0e-3 + 100.0 * 0.1e-3;
        assert!((m.t_o_coalesced(&scattered) - expected_scattered).abs() < 1e-12);
        assert!((m.t_o_coalesced(&coalesced) - expected_coalesced).abs() < 1e-12);
        assert!(m.t_o_coalesced(&coalesced) < m.t_o_coalesced(&scattered) / 1.5);
    }

    #[test]
    fn io_only_zeroes_cpu_and_index() {
        let m = CostModel::io_only();
        assert_eq!(m.t_cpu(1_000_000, 1_000_000), 0.0);
        assert_eq!(m.t_ix(1_000), 0.0);
        assert!(
            m.t_o(&IoSnapshot {
                blobs_read: 1,
                pages_read: 1,
                ..IoSnapshot::default()
            }) > 0.0
        );
    }
}
