//! Page abstraction and backends.
//!
//! The storage system reads and writes fixed-size pages — "accesses by the
//! storage system are to whole pages" (§2). Two backends are provided: a
//! file-backed store (the normal case) and an in-memory store (tests and
//! benchmarks that must exclude OS I/O noise).
//!
//! # Durability
//!
//! [`FilePageStore`] frames every page with a 16-byte header (magic, page
//! id, CRC-32 of the payload) so a write torn by a crash or a misdirected
//! write is detected on the next read instead of silently serving garbage.
//! [`PageStore::sync`] flushes a backend to stable storage; the engine
//! calls it at commit points before publishing a new catalog.

use std::cell::RefCell;
use std::fs::{File, OpenOptions};
use std::path::Path;

use std::sync::{Mutex, MutexGuard, PoisonError};

use tilestore_testkit::{crc32, FromJson, Json, JsonError, ToJson};

use crate::error::{Result, StorageError};

/// Locks a mutex, recovering from poisoning: storage must stay usable after
/// a worker thread panicked while holding a lock (one bad request must not
/// take the whole store down).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Default page size: 8 KiB, typical of late-90s database systems.
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// Minimum accepted page size.
pub const MIN_PAGE_SIZE: usize = 512;

/// Bytes of the on-disk frame header a [`FilePageStore`] prepends to every
/// page: 4-byte magic, 8-byte page id, 4-byte CRC-32 of the payload.
pub const FRAME_HEADER: usize = 16;

/// Magic bytes opening every written page frame.
const FRAME_MAGIC: [u8; 4] = *b"TSPG";

/// Identifier of a page within a page store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl ToJson for PageId {
    fn to_json(&self) -> Json {
        Json::UInt(self.0)
    }
}

impl FromJson for PageId {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(PageId(u64::from_json(v)?))
    }
}

/// Accounting for one batch read: how many physically consecutive page
/// runs were fetched with a single positioned read each, how many pages
/// those runs covered, and the payload bytes they transferred. Callers
/// fold it into their [`crate::IoStats`] so per-query counters can prove
/// coalescing happened (not just that latency moved).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunRead {
    /// Multi-page runs served by one positioned read each.
    pub runs_coalesced: u64,
    /// Pages covered by those runs.
    pub pages_in_runs: u64,
    /// Payload bytes fetched by those runs.
    pub readahead_bytes: u64,
}

impl RunRead {
    /// Folds another batch's accounting into this one.
    pub fn merge(&mut self, other: RunRead) {
        self.runs_coalesced += other.runs_coalesced;
        self.pages_in_runs += other.pages_in_runs;
        self.readahead_bytes += other.readahead_bytes;
    }
}

/// A store of fixed-size pages.
///
/// Implementations must be internally synchronized: `&self` methods may be
/// called from multiple threads.
pub trait PageStore: Send + Sync {
    /// The page size in bytes.
    fn page_size(&self) -> usize;

    /// Number of pages currently allocated.
    fn allocated(&self) -> u64;

    /// Allocates `count` fresh pages, returning their ids (contiguous).
    ///
    /// # Errors
    /// Propagates backend I/O errors.
    fn allocate(&self, count: u64) -> Result<Vec<PageId>>;

    /// Reads one page into `buf` (must be exactly `page_size` long).
    ///
    /// # Errors
    /// [`StorageError::PageOutOfRange`], [`StorageError::ChecksumMismatch`]
    /// for a torn/corrupt frame, or backend I/O errors.
    fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()>;

    /// Whether consecutively numbered pages are physically adjacent in this
    /// backend and [`PageStore::read_page_run`] fetches such a run with one
    /// physical read. Batch readers only claim `runs_coalesced` credit over
    /// backends that return `true`; the default is `false`.
    fn run_read_supported(&self) -> bool {
        false
    }

    /// Reads `count` consecutively numbered pages starting at `first` into
    /// `buf` (exactly `count * page_size` long). Backends whose page ids map
    /// to adjacent physical locations override this with a single positioned
    /// read; the default falls back to one [`PageStore::read_page`] per page.
    ///
    /// # Errors
    /// As [`PageStore::read_page`]; on error the buffer contents are
    /// unspecified.
    fn read_page_run(&self, first: PageId, count: usize, buf: &mut [u8]) -> Result<()> {
        let ps = self.page_size();
        assert_eq!(buf.len(), count * ps, "buffer/run length mismatch");
        for i in 0..count {
            let page = PageId(first.0 + i as u64);
            self.read_page(page, &mut buf[i * ps..(i + 1) * ps])?;
        }
        Ok(())
    }

    /// Reads `pages.len()` pages into `buf`, which must be exactly
    /// `pages.len() * page_size` long; page `i` lands at offset
    /// `i * page_size`. The default groups maximal runs of consecutively
    /// numbered pages and fetches each with one [`PageStore::read_page_run`]
    /// call when the backend supports it; caching stores override the whole
    /// method to batch their locking (the buffer pool serves all hits in a
    /// shard under one lock acquisition). Returns the run accounting so
    /// callers can record how much of the batch was coalesced.
    ///
    /// # Errors
    /// As [`PageStore::read_page`]; on error the buffer contents are
    /// unspecified.
    fn read_pages(&self, pages: &[PageId], buf: &mut [u8]) -> Result<RunRead> {
        let ps = self.page_size();
        assert_eq!(buf.len(), pages.len() * ps, "buffer/pages length mismatch");
        let mut run = RunRead::default();
        if !self.run_read_supported() {
            for (i, &page) in pages.iter().enumerate() {
                self.read_page(page, &mut buf[i * ps..(i + 1) * ps])?;
            }
            return Ok(run);
        }
        let mut i = 0;
        while i < pages.len() {
            let mut j = i + 1;
            while j < pages.len() && pages[j].0 == pages[j - 1].0 + 1 {
                j += 1;
            }
            if j - i > 1 {
                self.read_page_run(pages[i], j - i, &mut buf[i * ps..j * ps])?;
                run.runs_coalesced += 1;
                run.pages_in_runs += (j - i) as u64;
                run.readahead_bytes += ((j - i) * ps) as u64;
            } else {
                self.read_page(pages[i], &mut buf[i * ps..(i + 1) * ps])?;
            }
            i = j;
        }
        if run.runs_coalesced > 0 {
            let hot = tilestore_obs::hot();
            hot.runs_coalesced.add(run.runs_coalesced);
            hot.readahead_bytes.add(run.readahead_bytes);
        }
        Ok(run)
    }

    /// Writes one page from `buf` (must be exactly `page_size` long).
    ///
    /// # Errors
    /// [`StorageError::PageOutOfRange`] or backend I/O errors.
    fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()>;

    /// Flushes every completed write to stable storage. The engine calls
    /// this at commit points, before publishing a catalog that references
    /// the written pages.
    ///
    /// # Errors
    /// Backend I/O errors.
    fn sync(&self) -> Result<()>;

    /// Pins a page: a caching store must keep its frame resident (exempt
    /// from eviction) until a matching [`PageStore::unpin_page`]. Pins
    /// nest. Non-caching backends need no bookkeeping — the default is a
    /// no-op. The BLOB layer pins every page of a tile for the duration of
    /// the tile read, so a concurrent scan cannot evict a frame mid-read.
    fn pin_page(&self, _page: PageId) {}

    /// Releases one pin taken by [`PageStore::pin_page`].
    fn unpin_page(&self, _page: PageId) {}
}

/// Backends that can simulate a write torn by a crash: only a prefix of the
/// physical frame reaches the medium. Drives the fault-injection harness;
/// never used by production code paths.
pub trait TornWritable {
    /// Writes only the first `frame_bytes` bytes of the physical frame that
    /// a full [`PageStore::write_page`] of `buf` would produce, leaving the
    /// rest of the frame as it was.
    ///
    /// # Errors
    /// [`StorageError::PageOutOfRange`] or backend I/O errors.
    fn partial_write_page(&self, page: PageId, buf: &[u8], frame_bytes: usize) -> Result<()>;
}

fn check_page_size(size: usize) -> Result<()> {
    if size < MIN_PAGE_SIZE {
        return Err(StorageError::BadPageSize { size });
    }
    Ok(())
}

/// In-memory page store.
#[derive(Debug)]
pub struct MemPageStore {
    page_size: usize,
    pages: Mutex<Vec<Box<[u8]>>>,
}

impl MemPageStore {
    /// Creates an empty in-memory store with the given page size.
    ///
    /// # Errors
    /// [`StorageError::BadPageSize`] for undersized pages.
    pub fn new(page_size: usize) -> Result<Self> {
        check_page_size(page_size)?;
        Ok(MemPageStore {
            page_size,
            pages: Mutex::new(Vec::new()),
        })
    }
}

impl PageStore for MemPageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocated(&self) -> u64 {
        lock(&self.pages).len() as u64
    }

    fn allocate(&self, count: u64) -> Result<Vec<PageId>> {
        let mut pages = lock(&self.pages);
        let first = pages.len() as u64;
        for _ in 0..count {
            pages.push(vec![0u8; self.page_size].into_boxed_slice());
        }
        Ok((first..first + count).map(PageId).collect())
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page");
        let pages = lock(&self.pages);
        let data = pages
            .get(page.0 as usize)
            .ok_or(StorageError::PageOutOfRange {
                page: page.0,
                allocated: pages.len() as u64,
            })?;
        buf.copy_from_slice(data);
        Ok(())
    }

    fn run_read_supported(&self) -> bool {
        true
    }

    /// Consecutive ids are adjacent vector slots: one lock acquisition
    /// serves the whole run.
    fn read_page_run(&self, first: PageId, count: usize, buf: &mut [u8]) -> Result<()> {
        assert_eq!(buf.len(), count * self.page_size, "buffer/run mismatch");
        let pages = lock(&self.pages);
        for i in 0..count {
            let id = first.0 + i as u64;
            let data = pages.get(id as usize).ok_or(StorageError::PageOutOfRange {
                page: id,
                allocated: pages.len() as u64,
            })?;
            buf[i * self.page_size..(i + 1) * self.page_size].copy_from_slice(data);
        }
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page");
        let mut pages = lock(&self.pages);
        let allocated = pages.len() as u64;
        let data = pages
            .get_mut(page.0 as usize)
            .ok_or(StorageError::PageOutOfRange {
                page: page.0,
                allocated,
            })?;
        data.copy_from_slice(buf);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

impl TornWritable for MemPageStore {
    /// Memory pages carry no frame header, so a torn write lands the first
    /// `frame_bytes` payload bytes and keeps the old tail.
    fn partial_write_page(&self, page: PageId, buf: &[u8], frame_bytes: usize) -> Result<()> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page");
        let mut pages = lock(&self.pages);
        let allocated = pages.len() as u64;
        let data = pages
            .get_mut(page.0 as usize)
            .ok_or(StorageError::PageOutOfRange {
                page: page.0,
                allocated,
            })?;
        let n = frame_bytes.min(self.page_size);
        data[..n].copy_from_slice(&buf[..n]);
        Ok(())
    }
}

/// File-backed page store with checksummed frames.
///
/// Each page lives at `page_id × (page_size + FRAME_HEADER)` in a single
/// file, prefixed by a header holding a magic, the page id and a CRC-32 of
/// the payload. Reads verify the header: an all-zero frame is a
/// never-written page (reads back as zeroes), anything else must carry a
/// matching id and checksum or the read fails instead of returning torn
/// data.
///
/// # Concurrency
///
/// Reads and writes use positioned I/O (`pread`/`pwrite` on Unix) on a
/// shared file handle, so concurrent page accesses from the executor's
/// worker threads proceed without serializing on a lock; only the
/// allocation counter is mutex-protected. Frame staging buffers are
/// per-thread.
#[derive(Debug)]
pub struct FilePageStore {
    page_size: usize,
    file: File,
    allocated: Mutex<u64>,
    /// Serializes the seek+read/write pairs on targets without positioned
    /// I/O; unused on Unix.
    #[cfg(not(unix))]
    io_lock: Mutex<()>,
}

thread_local! {
    /// Per-thread frame staging buffer (header + payload), sized on use.
    static FRAME_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

impl FilePageStore {
    /// Creates (or truncates) a page file at `path`.
    ///
    /// # Errors
    /// [`StorageError::BadPageSize`] or file-creation I/O errors.
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> Result<Self> {
        check_page_size(page_size)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FilePageStore {
            page_size,
            file,
            allocated: Mutex::new(0),
            #[cfg(not(unix))]
            io_lock: Mutex::new(()),
        })
    }

    /// Opens an existing page file; the allocated page count is derived
    /// from the file length.
    ///
    /// # Errors
    /// [`StorageError::BadPageSize`] or file-open I/O errors.
    pub fn open<P: AsRef<Path>>(path: P, page_size: usize) -> Result<Self> {
        check_page_size(page_size)?;
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(FilePageStore {
            page_size,
            file,
            allocated: Mutex::new(len / Self::frame_size_of(page_size)),
            #[cfg(not(unix))]
            io_lock: Mutex::new(()),
        })
    }

    fn frame_size_of(page_size: usize) -> u64 {
        (FRAME_HEADER + page_size) as u64
    }

    /// Bytes one page occupies on disk (header + payload).
    #[must_use]
    pub fn frame_size(&self) -> u64 {
        Self::frame_size_of(self.page_size)
    }

    /// Fails unless `page` is inside the allocated range.
    fn check_in_range(&self, page: PageId) -> Result<()> {
        let allocated = *lock(&self.allocated);
        if page.0 >= allocated {
            return Err(StorageError::PageOutOfRange {
                page: page.0,
                allocated,
            });
        }
        Ok(())
    }

    #[cfg(unix)]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)
    }

    #[cfg(unix)]
    fn write_at(&self, buf: &[u8], offset: u64) -> std::io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(buf, offset)
    }

    #[cfg(not(unix))]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let _io = lock(&self.io_lock);
        let mut f = &self.file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }

    #[cfg(not(unix))]
    fn write_at(&self, buf: &[u8], offset: u64) -> std::io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        let _io = lock(&self.io_lock);
        let mut f = &self.file;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(buf)
    }

    /// Runs `f` with this thread's staging buffer resized to one frame.
    fn with_frame_buf<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let frame_len = FRAME_HEADER + self.page_size;
        FRAME_BUF.with(|b| {
            let mut buf = b.borrow_mut();
            buf.resize(frame_len, 0);
            f(&mut buf[..frame_len])
        })
    }

    /// Fills a frame (header + payload) for `page` into `frame`.
    fn encode_frame(frame: &mut [u8], page: PageId, payload: &[u8]) {
        frame[0..4].copy_from_slice(&FRAME_MAGIC);
        frame[4..12].copy_from_slice(&page.0.to_le_bytes());
        frame[12..16].copy_from_slice(&crc32(payload).to_le_bytes());
        frame[FRAME_HEADER..].copy_from_slice(payload);
    }

    /// Verifies a frame read for `page` and copies the payload into `buf`.
    fn decode_frame(frame: &[u8], page: PageId, buf: &mut [u8]) -> Result<()> {
        let header = &frame[..FRAME_HEADER];
        if header.iter().all(|&b| b == 0) {
            // Never written (fresh allocation): reads back as zeroes. A torn
            // first write of fewer than 4 bytes also lands here and yields
            // the pre-write zero state, which is a consistent prior state.
            buf.fill(0);
            return Ok(());
        }
        if frame[0..4] != FRAME_MAGIC {
            tilestore_obs::hot().checksum_failures.inc();
            return Err(StorageError::ChecksumMismatch { page: page.0 });
        }
        let stored_id = u64::from_le_bytes(frame[4..12].try_into().expect("8-byte slice"));
        if stored_id != page.0 {
            tilestore_obs::hot().checksum_failures.inc();
            return Err(StorageError::MisdirectedPage {
                expected: page.0,
                found: stored_id,
            });
        }
        let stored_crc = u32::from_le_bytes(frame[12..16].try_into().expect("4-byte slice"));
        if stored_crc != crc32(&frame[FRAME_HEADER..]) {
            tilestore_obs::hot().checksum_failures.inc();
            return Err(StorageError::ChecksumMismatch { page: page.0 });
        }
        buf.copy_from_slice(&frame[FRAME_HEADER..]);
        Ok(())
    }
}

impl PageStore for FilePageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocated(&self) -> u64 {
        *lock(&self.allocated)
    }

    fn allocate(&self, count: u64) -> Result<Vec<PageId>> {
        let mut allocated = lock(&self.allocated);
        let first = *allocated;
        *allocated += count;
        let new_len = *allocated * self.frame_size();
        self.file.set_len(new_len)?;
        Ok((first..first + count).map(PageId).collect())
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page");
        self.check_in_range(page)?;
        let offset = page.0 * self.frame_size();
        self.with_frame_buf(|frame| {
            self.read_at(frame, offset)?;
            Self::decode_frame(frame, page, buf)
        })?;
        tilestore_obs::hot().pages_read.inc();
        tilestore_obs::tracer().event("page_read", || format!("page={}", page.0));
        Ok(())
    }

    fn run_read_supported(&self) -> bool {
        true
    }

    /// Frames of consecutive page ids are adjacent in the file, so the
    /// whole run arrives with one positioned read; each frame is then
    /// verified exactly as a single-page read would.
    fn read_page_run(&self, first: PageId, count: usize, buf: &mut [u8]) -> Result<()> {
        assert_eq!(buf.len(), count * self.page_size, "buffer/run mismatch");
        if count == 0 {
            return Ok(());
        }
        self.check_in_range(PageId(first.0 + count as u64 - 1))?;
        let fs = self.frame_size() as usize;
        // The thread-local staging buffer holds exactly one frame; a run
        // needs its own scratch.
        let mut frames = vec![0u8; count * fs];
        self.read_at(&mut frames, first.0 * self.frame_size())?;
        for i in 0..count {
            let page = PageId(first.0 + i as u64);
            Self::decode_frame(
                &frames[i * fs..(i + 1) * fs],
                page,
                &mut buf[i * self.page_size..(i + 1) * self.page_size],
            )?;
        }
        tilestore_obs::hot().pages_read.add(count as u64);
        tilestore_obs::tracer().event("page_run_read", || {
            format!("first={} count={count}", first.0)
        });
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page");
        self.check_in_range(page)?;
        let offset = page.0 * self.frame_size();
        self.with_frame_buf(|frame| {
            Self::encode_frame(frame, page, buf);
            self.write_at(frame, offset)
        })?;
        tilestore_obs::hot().pages_written.inc();
        tilestore_obs::tracer().event("page_write", || format!("page={}", page.0));
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }
}

impl TornWritable for FilePageStore {
    fn partial_write_page(&self, page: PageId, buf: &[u8], frame_bytes: usize) -> Result<()> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page");
        self.check_in_range(page)?;
        let offset = page.0 * self.frame_size();
        self.with_frame_buf(|frame| {
            Self::encode_frame(frame, page, buf);
            let n = frame_bytes.min(frame.len());
            self.write_at(&frame[..n], offset)
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn PageStore) {
        assert_eq!(store.allocated(), 0);
        let pages = store.allocate(3).unwrap();
        assert_eq!(pages, vec![PageId(0), PageId(1), PageId(2)]);
        assert_eq!(store.allocated(), 3);

        let ps = store.page_size();
        let payload: Vec<u8> = (0..ps).map(|i| (i % 256) as u8).collect();
        store.write_page(PageId(1), &payload).unwrap();

        let mut buf = vec![0u8; ps];
        store.read_page(PageId(1), &mut buf).unwrap();
        assert_eq!(buf, payload);

        // Untouched page reads back as zeroes.
        store.read_page(PageId(0), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));

        // Out-of-range access errors.
        assert!(matches!(
            store.read_page(PageId(3), &mut buf),
            Err(StorageError::PageOutOfRange { page: 3, .. })
        ));
        assert!(store.write_page(PageId(99), &payload).is_err());
        store.sync().unwrap();
    }

    #[test]
    fn poisoned_locks_recover() {
        let m = Mutex::new(5);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 5);
    }

    #[test]
    fn mem_store_round_trip() {
        let store = MemPageStore::new(DEFAULT_PAGE_SIZE).unwrap();
        exercise(&store);
    }

    #[test]
    fn file_store_round_trip() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let store = FilePageStore::create(dir.path().join("pages.db"), 1024).unwrap();
        exercise(&store);
    }

    #[test]
    fn file_store_reopen_preserves_pages() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let path = dir.path().join("pages.db");
        let payload = vec![7u8; 1024];
        {
            let store = FilePageStore::create(&path, 1024).unwrap();
            store.allocate(2).unwrap();
            store.write_page(PageId(1), &payload).unwrap();
            store.sync().unwrap();
        }
        let store = FilePageStore::open(&path, 1024).unwrap();
        assert_eq!(store.allocated(), 2);
        let mut buf = vec![0u8; 1024];
        store.read_page(PageId(1), &mut buf).unwrap();
        assert_eq!(buf, payload);
    }

    #[test]
    fn file_store_concurrent_readers_and_writers() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let store = FilePageStore::create(dir.path().join("pages.db"), 512).unwrap();
        let pages = store.allocate(8).unwrap();
        for (i, &p) in pages.iter().enumerate() {
            store.write_page(p, &vec![i as u8; 512]).unwrap();
        }
        std::thread::scope(|s| {
            for (i, &p) in pages.iter().enumerate() {
                let store = &store;
                s.spawn(move || {
                    for round in 0..20u8 {
                        let mut buf = vec![0u8; 512];
                        store.read_page(p, &mut buf).unwrap();
                        assert!(buf.iter().all(|&b| b == buf[0]), "torn page observed");
                        store
                            .write_page(p, &vec![(i as u8).wrapping_add(round); 512])
                            .unwrap();
                    }
                });
            }
        });
        let mut buf = vec![0u8; 512];
        for (i, &p) in pages.iter().enumerate() {
            store.read_page(p, &mut buf).unwrap();
            assert_eq!(buf[0], (i as u8).wrapping_add(19));
        }
    }

    /// A batch with consecutive runs, a lone page, and a reversed pair:
    /// results must match per-page reads, and only the true runs coalesce.
    fn exercise_runs(store: &dyn PageStore) {
        let ps = store.page_size();
        let pages = store.allocate(8).unwrap();
        for (i, &p) in pages.iter().enumerate() {
            store.write_page(p, &vec![i as u8 + 1; ps]).unwrap();
        }
        // [0,1,2] run, [5] single, [4,3] not a run (descending).
        let batch = [
            PageId(0),
            PageId(1),
            PageId(2),
            PageId(5),
            PageId(4),
            PageId(3),
        ];
        let mut buf = vec![0u8; batch.len() * ps];
        let run = store.read_pages(&batch, &mut buf).unwrap();
        for (i, &p) in batch.iter().enumerate() {
            assert!(
                buf[i * ps..(i + 1) * ps]
                    .iter()
                    .all(|&b| b == p.0 as u8 + 1),
                "page {} landed wrong",
                p.0
            );
        }
        if store.run_read_supported() {
            assert_eq!(run.runs_coalesced, 1, "exactly the [0,1,2] run");
            assert_eq!(run.pages_in_runs, 3);
            assert_eq!(run.readahead_bytes, 3 * ps as u64);
        } else {
            assert_eq!(run, RunRead::default());
        }
        // A run straight through read_page_run, plus out-of-range checks.
        let mut buf = vec![0u8; 2 * ps];
        store.read_page_run(PageId(6), 2, &mut buf).unwrap();
        assert!(buf[..ps].iter().all(|&b| b == 7));
        assert!(buf[ps..].iter().all(|&b| b == 8));
        assert!(store.read_page_run(PageId(7), 2, &mut buf).is_err());
    }

    #[test]
    fn mem_store_coalesces_runs() {
        let store = MemPageStore::new(512).unwrap();
        exercise_runs(&store);
    }

    #[test]
    fn file_store_coalesces_runs() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let store = FilePageStore::create(dir.path().join("pages.db"), 512).unwrap();
        exercise_runs(&store);
    }

    #[test]
    fn run_read_verifies_every_frame() {
        // A frame torn in the middle of a run must fail the whole batch,
        // exactly as a single-page read of that page would.
        let dir = tilestore_testkit::tempdir().unwrap();
        let store = FilePageStore::create(dir.path().join("pages.db"), 512).unwrap();
        let pages = store.allocate(3).unwrap();
        for &p in &pages {
            store.write_page(p, &vec![5u8; 512]).unwrap();
        }
        store
            .partial_write_page(pages[1], &vec![6u8; 512], (FRAME_HEADER + 512) / 2)
            .unwrap();
        let mut buf = vec![0u8; 3 * 512];
        assert!(matches!(
            store.read_page_run(PageId(0), 3, &mut buf),
            Err(StorageError::ChecksumMismatch { page: 1 })
        ));
    }

    #[test]
    fn rejects_tiny_pages() {
        assert!(matches!(
            MemPageStore::new(16),
            Err(StorageError::BadPageSize { size: 16 })
        ));
    }

    #[test]
    fn torn_write_detected_by_checksum() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let store = FilePageStore::create(dir.path().join("pages.db"), 512).unwrap();
        let pages = store.allocate(1).unwrap();
        let old: Vec<u8> = vec![3u8; 512];
        store.write_page(pages[0], &old).unwrap();
        // A rewrite torn half-way through the frame leaves a frame whose
        // header describes the new payload but whose tail is still old.
        let new: Vec<u8> = (0..512).map(|i| (i % 256) as u8).collect();
        store
            .partial_write_page(pages[0], &new, (FRAME_HEADER + 512) / 2)
            .unwrap();
        let mut buf = vec![0u8; 512];
        assert!(matches!(
            store.read_page(pages[0], &mut buf),
            Err(StorageError::ChecksumMismatch { page: 0 })
        ));
        // A full rewrite repairs the page.
        store.write_page(pages[0], &new).unwrap();
        store.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(buf, new);
    }

    #[test]
    fn torn_first_write_reads_as_never_written() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let store = FilePageStore::create(dir.path().join("pages.db"), 512).unwrap();
        let pages = store.allocate(1).unwrap();
        // Fewer than 4 header bytes land: header stays all-zero on disk
        // only if 0 bytes landed; with 2 bytes of magic the frame is
        // detected as corrupt rather than served.
        store
            .partial_write_page(pages[0], &vec![9u8; 512], 2)
            .unwrap();
        let mut buf = vec![0u8; 512];
        assert!(store.read_page(pages[0], &mut buf).is_err());
    }

    #[test]
    fn misdirected_write_detected() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let path = dir.path().join("pages.db");
        let store = FilePageStore::create(&path, 512).unwrap();
        store.allocate(2).unwrap();
        store.write_page(PageId(0), &vec![1u8; 512]).unwrap();
        store.write_page(PageId(1), &vec![2u8; 512]).unwrap();
        drop(store);
        // Swap the two frames on disk: checksums are valid but ids do not
        // match the slots.
        let mut raw = std::fs::read(&path).unwrap();
        let fs = FRAME_HEADER + 512;
        let (a, b) = raw.split_at_mut(fs);
        a.swap_with_slice(&mut b[..fs]);
        std::fs::write(&path, &raw).unwrap();
        let store = FilePageStore::open(&path, 512).unwrap();
        let mut buf = vec![0u8; 512];
        assert!(matches!(
            store.read_page(PageId(0), &mut buf),
            Err(StorageError::MisdirectedPage {
                expected: 0,
                found: 1
            })
        ));
    }
}
