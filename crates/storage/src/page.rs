//! Page abstraction and backends.
//!
//! The storage system reads and writes fixed-size pages — "accesses by the
//! storage system are to whole pages" (§2). Two backends are provided: a
//! file-backed store (the normal case) and an in-memory store (tests and
//! benchmarks that must exclude OS I/O noise).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use std::sync::Mutex;

use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::error::{Result, StorageError};

/// Default page size: 8 KiB, typical of late-90s database systems.
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// Minimum accepted page size.
pub const MIN_PAGE_SIZE: usize = 512;

/// Identifier of a page within a page store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl ToJson for PageId {
    fn to_json(&self) -> Json {
        Json::UInt(self.0)
    }
}

impl FromJson for PageId {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(PageId(u64::from_json(v)?))
    }
}

/// A store of fixed-size pages.
///
/// Implementations must be internally synchronized: `&self` methods may be
/// called from multiple threads.
pub trait PageStore: Send + Sync {
    /// The page size in bytes.
    fn page_size(&self) -> usize;

    /// Number of pages currently allocated.
    fn allocated(&self) -> u64;

    /// Allocates `count` fresh pages, returning their ids (contiguous).
    ///
    /// # Errors
    /// Propagates backend I/O errors.
    fn allocate(&self, count: u64) -> Result<Vec<PageId>>;

    /// Reads one page into `buf` (must be exactly `page_size` long).
    ///
    /// # Errors
    /// [`StorageError::PageOutOfRange`] or backend I/O errors.
    fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()>;

    /// Writes one page from `buf` (must be exactly `page_size` long).
    ///
    /// # Errors
    /// [`StorageError::PageOutOfRange`] or backend I/O errors.
    fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()>;
}

fn check_page_size(size: usize) -> Result<()> {
    if size < MIN_PAGE_SIZE {
        return Err(StorageError::BadPageSize { size });
    }
    Ok(())
}

/// In-memory page store.
#[derive(Debug)]
pub struct MemPageStore {
    page_size: usize,
    pages: Mutex<Vec<Box<[u8]>>>,
}

impl MemPageStore {
    /// Creates an empty in-memory store with the given page size.
    ///
    /// # Errors
    /// [`StorageError::BadPageSize`] for undersized pages.
    pub fn new(page_size: usize) -> Result<Self> {
        check_page_size(page_size)?;
        Ok(MemPageStore {
            page_size,
            pages: Mutex::new(Vec::new()),
        })
    }
}

impl PageStore for MemPageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocated(&self) -> u64 {
        self.pages.lock().unwrap().len() as u64
    }

    fn allocate(&self, count: u64) -> Result<Vec<PageId>> {
        let mut pages = self.pages.lock().unwrap();
        let first = pages.len() as u64;
        for _ in 0..count {
            pages.push(vec![0u8; self.page_size].into_boxed_slice());
        }
        Ok((first..first + count).map(PageId).collect())
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page");
        let pages = self.pages.lock().unwrap();
        let data = pages
            .get(page.0 as usize)
            .ok_or(StorageError::PageOutOfRange {
                page: page.0,
                allocated: pages.len() as u64,
            })?;
        buf.copy_from_slice(data);
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page");
        let mut pages = self.pages.lock().unwrap();
        let allocated = pages.len() as u64;
        let data = pages
            .get_mut(page.0 as usize)
            .ok_or(StorageError::PageOutOfRange {
                page: page.0,
                allocated,
            })?;
        data.copy_from_slice(buf);
        Ok(())
    }
}

/// File-backed page store: pages live at `page_id × page_size` offsets of a
/// single file.
#[derive(Debug)]
pub struct FilePageStore {
    page_size: usize,
    inner: Mutex<FileInner>,
}

#[derive(Debug)]
struct FileInner {
    file: File,
    allocated: u64,
}

impl FilePageStore {
    /// Creates (or truncates) a page file at `path`.
    ///
    /// # Errors
    /// [`StorageError::BadPageSize`] or file-creation I/O errors.
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> Result<Self> {
        check_page_size(page_size)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FilePageStore {
            page_size,
            inner: Mutex::new(FileInner { file, allocated: 0 }),
        })
    }

    /// Opens an existing page file; the allocated page count is derived
    /// from the file length.
    ///
    /// # Errors
    /// [`StorageError::BadPageSize`] or file-open I/O errors.
    pub fn open<P: AsRef<Path>>(path: P, page_size: usize) -> Result<Self> {
        check_page_size(page_size)?;
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(FilePageStore {
            page_size,
            inner: Mutex::new(FileInner {
                file,
                allocated: len / page_size as u64,
            }),
        })
    }
}

impl PageStore for FilePageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocated(&self) -> u64 {
        self.inner.lock().unwrap().allocated
    }

    fn allocate(&self, count: u64) -> Result<Vec<PageId>> {
        let mut inner = self.inner.lock().unwrap();
        let first = inner.allocated;
        inner.allocated += count;
        let new_len = inner.allocated * self.page_size as u64;
        inner.file.set_len(new_len)?;
        Ok((first..first + count).map(PageId).collect())
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page");
        let mut inner = self.inner.lock().unwrap();
        if page.0 >= inner.allocated {
            return Err(StorageError::PageOutOfRange {
                page: page.0,
                allocated: inner.allocated,
            });
        }
        inner
            .file
            .seek(SeekFrom::Start(page.0 * self.page_size as u64))?;
        inner.file.read_exact(buf)?;
        tilestore_obs::hot().pages_read.inc();
        tilestore_obs::tracer().event("page_read", || format!("page={}", page.0));
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page");
        let mut inner = self.inner.lock().unwrap();
        if page.0 >= inner.allocated {
            return Err(StorageError::PageOutOfRange {
                page: page.0,
                allocated: inner.allocated,
            });
        }
        inner
            .file
            .seek(SeekFrom::Start(page.0 * self.page_size as u64))?;
        inner.file.write_all(buf)?;
        tilestore_obs::hot().pages_written.inc();
        tilestore_obs::tracer().event("page_write", || format!("page={}", page.0));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn PageStore) {
        assert_eq!(store.allocated(), 0);
        let pages = store.allocate(3).unwrap();
        assert_eq!(pages, vec![PageId(0), PageId(1), PageId(2)]);
        assert_eq!(store.allocated(), 3);

        let ps = store.page_size();
        let payload: Vec<u8> = (0..ps).map(|i| (i % 256) as u8).collect();
        store.write_page(PageId(1), &payload).unwrap();

        let mut buf = vec![0u8; ps];
        store.read_page(PageId(1), &mut buf).unwrap();
        assert_eq!(buf, payload);

        // Untouched page reads back as zeroes.
        store.read_page(PageId(0), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));

        // Out-of-range access errors.
        assert!(matches!(
            store.read_page(PageId(3), &mut buf),
            Err(StorageError::PageOutOfRange { page: 3, .. })
        ));
        assert!(store.write_page(PageId(99), &payload).is_err());
    }

    #[test]
    fn mem_store_round_trip() {
        let store = MemPageStore::new(DEFAULT_PAGE_SIZE).unwrap();
        exercise(&store);
    }

    #[test]
    fn file_store_round_trip() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let store = FilePageStore::create(dir.path().join("pages.db"), 1024).unwrap();
        exercise(&store);
    }

    #[test]
    fn file_store_reopen_preserves_pages() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let path = dir.path().join("pages.db");
        let payload = vec![7u8; 1024];
        {
            let store = FilePageStore::create(&path, 1024).unwrap();
            store.allocate(2).unwrap();
            store.write_page(PageId(1), &payload).unwrap();
        }
        let store = FilePageStore::open(&path, 1024).unwrap();
        assert_eq!(store.allocated(), 2);
        let mut buf = vec![0u8; 1024];
        store.read_page(PageId(1), &mut buf).unwrap();
        assert_eq!(buf, payload);
    }

    #[test]
    fn rejects_tiny_pages() {
        assert!(matches!(
            MemPageStore::new(16),
            Err(StorageError::BadPageSize { size: 16 })
        ));
    }
}
