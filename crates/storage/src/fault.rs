//! Fault injection for crash-consistency testing.
//!
//! [`FaultInjectingPageStore`] wraps any [`PageStore`] and fails its
//! operations according to a [`FaultPlan`]: hard crash after N operations,
//! a torn (half-landed) page write followed by a crash, or transient
//! one-off errors. The crash-consistency property tests drive a full
//! create → insert → save → retile workload with a crash injected at every
//! operation index and assert the database always reopens into a committed
//! state.
//!
//! This module lives in the storage crate (not `testkit`) because it must
//! implement the [`PageStore`] trait, which `testkit` cannot depend on
//! without a dependency cycle.

use std::sync::Mutex;

use crate::error::{Result, StorageError};
use crate::page::{PageId, PageStore, TornWritable};

/// What faults to inject, expressed over a global operation index counting
/// every `allocate`/`read_page`/`write_page`/`sync` call in order.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Crash point: the operation with this index and every later one fail
    /// with [`StorageError::Injected`]. Models the process dying — once
    /// tripped the store never recovers.
    pub fail_at: Option<u64>,
    /// Torn-write point: if the operation with this index is a page write,
    /// only the first `.1` bytes of its physical frame land before the
    /// store crashes (as with [`FaultPlan::fail_at`]). Models power loss
    /// mid-`write(2)`.
    pub torn_write_at: Option<(u64, usize)>,
    /// Transient faults: these operation indices fail with
    /// [`StorageError::Injected`] but the store keeps working afterwards.
    /// Models retriable I/O errors (EINTR, ENOSPC later freed, ...).
    pub transient: Vec<u64>,
}

impl FaultPlan {
    /// A plan that never fails.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Crash at operation index `op`.
    #[must_use]
    pub fn fail_at(op: u64) -> Self {
        FaultPlan {
            fail_at: Some(op),
            ..FaultPlan::default()
        }
    }

    /// Tear the write at operation index `op` after `frame_bytes` bytes,
    /// then crash.
    #[must_use]
    pub fn torn_write_at(op: u64, frame_bytes: usize) -> Self {
        FaultPlan {
            torn_write_at: Some((op, frame_bytes)),
            ..FaultPlan::default()
        }
    }

    /// Fail exactly the given operation indices, transiently.
    #[must_use]
    pub fn transient(ops: &[u64]) -> Self {
        FaultPlan {
            transient: ops.to_vec(),
            ..FaultPlan::default()
        }
    }
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    ops: u64,
    crashed: bool,
}

/// Outcome of consulting the fault plan for one operation.
enum Gate {
    /// Perform the operation normally.
    Proceed,
    /// Perform a torn write of this many frame bytes, then report a crash.
    Torn(usize),
}

/// A [`PageStore`] wrapper that injects faults according to a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultInjectingPageStore<S> {
    inner: S,
    state: Mutex<FaultState>,
}

impl<S> FaultInjectingPageStore<S> {
    /// Wraps `inner` with no faults planned.
    #[must_use]
    pub fn new(inner: S) -> Self {
        FaultInjectingPageStore {
            inner,
            state: Mutex::new(FaultState {
                plan: FaultPlan::none(),
                ops: 0,
                crashed: false,
            }),
        }
    }

    /// Wraps `inner` with a fault plan armed.
    #[must_use]
    pub fn with_plan(inner: S, plan: FaultPlan) -> Self {
        let store = FaultInjectingPageStore::new(inner);
        store.set_plan(plan);
        store
    }

    /// Replaces the fault plan (the operation counter keeps running).
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut state = self.state.lock().unwrap();
        state.plan = plan;
        state.crashed = false;
    }

    /// Number of operations performed (or attempted) so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// Whether a crash fault has tripped.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// The wrapped store.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consults the plan for the next operation; `is_write` enables the
    /// torn-write fault.
    fn gate(&self, is_write: bool) -> Result<Gate> {
        let mut state = self.state.lock().unwrap();
        if state.crashed {
            return Err(StorageError::Injected { op: state.ops });
        }
        let op = state.ops;
        state.ops += 1;
        if state.plan.transient.contains(&op) {
            return Err(StorageError::Injected { op });
        }
        if let Some((torn_op, bytes)) = state.plan.torn_write_at {
            if op == torn_op && is_write {
                state.crashed = true;
                return Ok(Gate::Torn(bytes));
            }
        }
        if let Some(fail_op) = state.plan.fail_at {
            if op >= fail_op {
                state.crashed = true;
                return Err(StorageError::Injected { op });
            }
        }
        Ok(Gate::Proceed)
    }
}

impl<S: PageStore + TornWritable> PageStore for FaultInjectingPageStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocated(&self) -> u64 {
        self.inner.allocated()
    }

    fn allocate(&self, count: u64) -> Result<Vec<PageId>> {
        match self.gate(false)? {
            Gate::Proceed | Gate::Torn(_) => self.inner.allocate(count),
        }
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        match self.gate(false)? {
            Gate::Proceed | Gate::Torn(_) => self.inner.read_page(page, buf),
        }
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()> {
        match self.gate(true)? {
            Gate::Proceed => self.inner.write_page(page, buf),
            Gate::Torn(bytes) => {
                // The prefix lands, then the "process" dies mid-write.
                self.inner.partial_write_page(page, buf, bytes)?;
                Err(StorageError::Injected {
                    op: self.state.lock().unwrap().ops - 1,
                })
            }
        }
    }

    fn sync(&self) -> Result<()> {
        match self.gate(false)? {
            Gate::Proceed | Gate::Torn(_) => self.inner.sync(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::MemPageStore;

    fn store(plan: FaultPlan) -> FaultInjectingPageStore<MemPageStore> {
        FaultInjectingPageStore::with_plan(MemPageStore::new(512).unwrap(), plan)
    }

    #[test]
    fn no_plan_is_transparent() {
        let s = store(FaultPlan::none());
        let pages = s.allocate(2).unwrap();
        s.write_page(pages[0], &[1u8; 512]).unwrap();
        let mut buf = [0u8; 512];
        s.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(buf, [1u8; 512]);
        s.sync().unwrap();
        assert_eq!(s.ops(), 4);
        assert!(!s.crashed());
    }

    #[test]
    fn crash_is_permanent() {
        let s = store(FaultPlan::fail_at(1));
        let pages = s.allocate(1).unwrap(); // op 0: fine
        let err = s.write_page(pages[0], &[2u8; 512]).unwrap_err(); // op 1: crash
        assert!(matches!(err, StorageError::Injected { op: 1 }));
        assert!(s.crashed());
        // Everything after the crash keeps failing.
        let mut buf = [0u8; 512];
        assert!(s.read_page(pages[0], &mut buf).is_err());
        assert!(s.sync().is_err());
        assert!(s.allocate(1).is_err());
        // The write never reached the inner store.
        s.inner().read_page(pages[0], &mut buf).unwrap();
        assert_eq!(buf, [0u8; 512]);
    }

    #[test]
    fn transient_fault_recovers() {
        let s = store(FaultPlan::transient(&[1]));
        let pages = s.allocate(1).unwrap();
        assert!(s.write_page(pages[0], &[3u8; 512]).is_err());
        assert!(!s.crashed());
        // Retry succeeds.
        s.write_page(pages[0], &[3u8; 512]).unwrap();
        let mut buf = [0u8; 512];
        s.read_page(pages[0], &mut buf).unwrap();
        assert_eq!(buf, [3u8; 512]);
    }

    #[test]
    fn torn_write_lands_prefix_then_crashes() {
        let s = store(FaultPlan::torn_write_at(1, 256));
        let pages = s.allocate(1).unwrap();
        let err = s.write_page(pages[0], &[7u8; 512]).unwrap_err();
        assert!(matches!(err, StorageError::Injected { .. }));
        assert!(s.crashed());
        // Half the payload landed in the (unframed) memory store.
        let mut buf = [0u8; 512];
        s.inner().read_page(pages[0], &mut buf).unwrap();
        assert_eq!(&buf[..256], &[7u8; 256][..]);
        assert_eq!(&buf[256..], &[0u8; 256][..]);
    }
}
