//! Concurrency suite for the buffer pool: the stale-frame regression repro
//! and freshness properties across shard counts.
//!
//! The central invariant: **the cache never serves bytes older than the
//! last completed `write_page`**. The pool is write-through, so the store
//! is always current; a cached frame is allowed to lag only while a write
//! is still in flight, never after it returned.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Mutex;

use tilestore_storage::{BufferPool, MemPageStore, PageId, PageStore, Result};

/// A pass-through page store that, once armed, pauses exactly one
/// `read_page` *after* the bytes were fetched from the inner store and
/// before they are returned to the caller — the window in which the
/// buffer pool's miss path holds pre-fetch bytes it has not installed yet.
struct PausingStore<S> {
    inner: S,
    armed: AtomicBool,
    fetched: Mutex<Sender<()>>,
    resume: Mutex<Receiver<()>>,
}

impl<S: PageStore> PageStore for PausingStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocated(&self) -> u64 {
        self.inner.allocated()
    }

    fn allocate(&self, count: u64) -> Result<Vec<PageId>> {
        self.inner.allocate(count)
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        self.inner.read_page(page, buf)?;
        if self.armed.swap(false, Ordering::AcqRel) {
            // Bytes are fetched; hold them hostage until the test says the
            // concurrent write has fully completed.
            self.fetched.lock().unwrap().send(()).unwrap();
            self.resume.lock().unwrap().recv().unwrap();
        }
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()> {
        self.inner.write_page(page, buf)
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

/// The PR-8 stale-frame race, deterministically interleaved:
///
/// 1. reader misses on page P and fetches the old bytes from the store;
/// 2. before the reader re-acquires the pool lock, a writer completes
///    `write_page(P, new)` (write-through: the store now holds `new`;
///    there is no frame to refresh, so the cache stays empty);
/// 3. the reader resumes and installs its pre-fetch bytes.
///
/// On the pre-fix pool the install wins and every subsequent read is a
/// cache hit serving the *old* bytes while the store holds the new ones —
/// a permanently stale frame. The fixed pool discards the install because
/// the shard's write version moved between miss start and install.
#[test]
fn stale_frame_race_is_not_cached() {
    let ps = 1024usize;
    let (fetched_tx, fetched_rx) = std::sync::mpsc::channel();
    let (resume_tx, resume_rx) = std::sync::mpsc::channel();
    let store = PausingStore {
        inner: MemPageStore::new(ps).unwrap(),
        armed: AtomicBool::new(false),
        fetched: Mutex::new(fetched_tx),
        resume: Mutex::new(resume_rx),
    };
    let pool = BufferPool::new(store, 8).unwrap();
    let page = pool.allocate(1).unwrap()[0];
    pool.write_page(page, &vec![1u8; ps]).unwrap();
    assert_eq!(pool.cached_frames(), 0, "write-through must not install");

    pool.inner_store().armed.store(true, Ordering::Release);
    std::thread::scope(|s| {
        let reader = s.spawn(|| {
            let mut buf = vec![0u8; ps];
            pool.read_page(page, &mut buf).unwrap();
            // The read overlapped the write, so either value is a legal
            // return — the invariant under test is about the *cache*.
            assert!(buf == vec![1u8; ps] || buf == vec![2u8; ps]);
        });
        // The reader fetched the old bytes and is paused pre-install.
        fetched_rx.recv().unwrap();
        pool.write_page(page, &vec![2u8; ps]).unwrap();
        resume_tx.send(()).unwrap();
        reader.join().unwrap();
    });

    // After the write completed, every read — cached or not — must see the
    // new bytes. The buggy pool serves the stale install as a hit here.
    let mut buf = vec![0u8; ps];
    pool.read_page(page, &mut buf).unwrap();
    assert_eq!(
        buf,
        vec![2u8; ps],
        "cache serves pre-write bytes after write_page returned"
    );
    let mut direct = vec![0u8; ps];
    pool.inner_store().read_page(page, &mut direct).unwrap();
    assert_eq!(direct, vec![2u8; ps], "store must hold the new bytes");
}

/// Freshness property: one writer per page bumps a monotonic version byte;
/// readers must never observe a version going backwards on any page. Runs
/// across shard counts 1 / 4 / 16 so the single-shard configuration — the
/// pre-PR-8 layout — stays covered by the same invariant.
#[test]
fn page_versions_never_go_backwards_across_shard_counts() {
    for &shards in &[1usize, 4, 16] {
        let ps = 512usize;
        let pool = BufferPool::with_shards(MemPageStore::new(ps).unwrap(), 8, shards).unwrap();
        let pages = pool.allocate(24).unwrap();
        for &pg in &pages {
            pool.write_page(pg, &vec![0u8; ps]).unwrap();
        }
        // floor[i]: highest version whose write_page has *returned* — a
        // sound lower bound for any read that starts afterwards.
        let floor: Vec<AtomicU64> = (0..pages.len()).map(|_| AtomicU64::new(0)).collect();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            // Writer: bumps each page's version byte in round-robin; the
            // page payload is the version repeated, so a torn frame is
            // also detectable. The floor is published only after the write
            // completed.
            s.spawn(|| {
                for v in 1u8..=30 {
                    for (i, &pg) in pages.iter().enumerate() {
                        pool.write_page(pg, &vec![v; ps]).unwrap();
                        floor[i].store(u64::from(v), Ordering::Release);
                    }
                }
                stop.store(true, Ordering::Release);
            });
            for t in 0..3u64 {
                let pool = &pool;
                let pages = &pages;
                let floor = &floor;
                let stop = &stop;
                s.spawn(move || {
                    let mut buf = vec![0u8; ps];
                    let mut last = vec![0u64; pages.len()];
                    let mut x = t.wrapping_mul(0x9E37_79B9) + 1;
                    let mut reads = 0u32;
                    while !stop.load(Ordering::Acquire) || reads < 400 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let i = (x >> 33) as usize % pages.len();
                        // Sampled *before* the read: any version already
                        // fully written must be visible to it.
                        let committed = floor[i].load(Ordering::Acquire);
                        pool.read_page(pages[i], &mut buf).unwrap();
                        let v = u64::from(buf[0]);
                        assert!(
                            buf.iter().all(|&b| u64::from(b) == v),
                            "torn frame on page {} (shards={shards})",
                            pages[i].0
                        );
                        assert!(
                            v >= committed,
                            "page {} stale: saw {v}, write {committed} had completed \
                             (shards={shards})",
                            pages[i].0
                        );
                        // This thread's own reads are ordered, so its view
                        // of each page must be monotonic outright.
                        assert!(
                            v >= last[i],
                            "page {} went backwards: saw {v} after {} (shards={shards})",
                            pages[i].0,
                            last[i]
                        );
                        last[i] = v;
                        reads += 1;
                        if reads > 200_000 {
                            break;
                        }
                    }
                });
            }
        });
        // Every page must settle at the final version.
        let mut buf = vec![0u8; ps];
        for &pg in &pages {
            pool.read_page(pg, &mut buf).unwrap();
            assert_eq!(buf, vec![30u8; ps], "shards={shards}");
        }
    }
}
