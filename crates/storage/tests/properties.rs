//! Model-based property tests: the BLOB store must behave like a simple
//! `HashMap<BlobId, Vec<u8>>` under any interleaving of operations, and the
//! buffer pool must be transparent.

use std::collections::HashMap;

use proptest::prelude::*;
use tilestore_storage::{BlobStore, BufferPool, MemPageStore, PageStore};

#[derive(Debug, Clone)]
enum Op {
    Create(Vec<u8>),
    /// Update the i-th live blob (modulo) with new contents.
    Update(usize, Vec<u8>),
    /// Delete the i-th live blob (modulo).
    Delete(usize),
    /// Read the i-th live blob (modulo) and compare against the model.
    Read(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let payload = proptest::collection::vec(any::<u8>(), 0..3000);
    prop_oneof![
        3 => payload.clone().prop_map(Op::Create),
        2 => (any::<usize>(), payload).prop_map(|(i, p)| Op::Update(i, p)),
        1 => any::<usize>().prop_map(Op::Delete),
        3 => any::<usize>().prop_map(Op::Read),
    ]
}

fn run_model(store: &BlobStore<impl PageStore>, ops: Vec<Op>) {
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut live: Vec<tilestore_storage::BlobId> = Vec::new();
    for op in ops {
        match op {
            Op::Create(data) => {
                let id = store.create(&data).unwrap();
                assert!(!model.contains_key(&id.0), "id reuse of live blob");
                model.insert(id.0, data);
                live.push(id);
            }
            Op::Update(i, data) => {
                if live.is_empty() {
                    continue;
                }
                let id = live[i % live.len()];
                store.update(id, &data).unwrap();
                model.insert(id.0, data);
            }
            Op::Delete(i) => {
                if live.is_empty() {
                    continue;
                }
                let id = live.swap_remove(i % live.len());
                store.delete(id).unwrap();
                model.remove(&id.0);
                assert!(store.read(id).is_err(), "deleted blob must not read");
            }
            Op::Read(i) => {
                if live.is_empty() {
                    continue;
                }
                let id = live[i % live.len()];
                assert_eq!(store.read(id).unwrap(), model[&id.0]);
            }
        }
    }
    // Final sweep: every live blob matches the model.
    for id in &live {
        assert_eq!(store.read(*id).unwrap(), model[&id.0]);
        assert_eq!(store.blob_len(*id).unwrap(), model[&id.0].len() as u64);
    }
    assert_eq!(store.blob_count(), model.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blob_store_matches_hashmap_model(
        ops in proptest::collection::vec(op_strategy(), 0..40),
        page_size_kb in 1usize..4,
    ) {
        let store = BlobStore::new(MemPageStore::new(page_size_kb * 1024).unwrap());
        run_model(&store, ops);
    }

    #[test]
    fn buffer_pool_is_transparent(
        ops in proptest::collection::vec(op_strategy(), 0..40),
        capacity in 1usize..12,
    ) {
        // The same model must hold when an LRU pool sits under the BLOBs —
        // caching must never change observable contents.
        let pool = BufferPool::new(MemPageStore::new(1024).unwrap(), capacity).unwrap();
        let store = BlobStore::new(pool);
        run_model(&store, ops);
    }

    #[test]
    fn directory_round_trip_under_churn(
        ops in proptest::collection::vec(op_strategy(), 0..30),
    ) {
        // Export/import of the directory preserves every live blob.
        let store = BlobStore::new(MemPageStore::new(1024).unwrap());
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut live: Vec<tilestore_storage::BlobId> = Vec::new();
        for op in ops {
            match op {
                Op::Create(data) => {
                    let id = store.create(&data).unwrap();
                    model.insert(id.0, data);
                    live.push(id);
                }
                Op::Update(i, data) => {
                    if live.is_empty() { continue; }
                    let id = live[i % live.len()];
                    store.update(id, &data).unwrap();
                    model.insert(id.0, data);
                }
                Op::Delete(i) => {
                    if live.is_empty() { continue; }
                    let id = live.swap_remove(i % live.len());
                    store.delete(id).unwrap();
                    model.remove(&id.0);
                }
                Op::Read(_) => {}
            }
        }
        let dir = store.directory();
        let reopened = BlobStore::with_directory(
            // In-memory stores do not persist pages, so reuse the original's
            // page store by moving it out via the directory + same store.
            // (FilePageStore round-trips are covered in the engine tests.)
            {
                // Rebuild a store with identical page contents.
                let src = store;
                let page_size = src.page_store().page_size();
                let pages = src.page_store().allocated();
                let dst = MemPageStore::new(page_size).unwrap();
                dst.allocate(pages).unwrap();
                let mut buf = vec![0u8; page_size];
                for p in 0..pages {
                    src.page_store()
                        .read_page(tilestore_storage::PageId(p), &mut buf)
                        .unwrap();
                    dst.write_page(tilestore_storage::PageId(p), &buf).unwrap();
                }
                dst
            },
            dir,
        );
        for id in &live {
            prop_assert_eq!(reopened.read(*id).unwrap(), model[&id.0].clone());
        }
    }
}
