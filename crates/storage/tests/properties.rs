//! Model-based property tests: the BLOB store must behave like a simple
//! `HashMap<BlobId, Vec<u8>>` under any interleaving of operations, and the
//! buffer pool must be transparent.

use std::collections::HashMap;

use tilestore_storage::{BlobStore, BufferPool, MemPageStore, PageStore};
use tilestore_testkit::prop::{check, Source};
use tilestore_testkit::prop_assert_eq;

#[derive(Debug, Clone)]
enum Op {
    Create(Vec<u8>),
    /// Update the i-th live blob (modulo) with new contents.
    Update(usize, Vec<u8>),
    /// Delete the i-th live blob (modulo).
    Delete(usize),
    /// Read the i-th live blob (modulo) and compare against the model.
    Read(usize),
}

/// A payload of 0..3000 arbitrary bytes.
fn payload(s: &mut Source) -> Vec<u8> {
    s.vec_of(0, 2999, Source::u8)
}

fn op(s: &mut Source) -> Op {
    match s.weighted(&[3, 2, 1, 3]) {
        0 => Op::Create(payload(s)),
        1 => {
            let i = s.usize_in(0, usize::MAX - 1);
            Op::Update(i, payload(s))
        }
        2 => Op::Delete(s.usize_in(0, usize::MAX - 1)),
        _ => Op::Read(s.usize_in(0, usize::MAX - 1)),
    }
}

fn ops(s: &mut Source, max: usize) -> Vec<Op> {
    s.vec_of(0, max, op)
}

fn run_model(store: &BlobStore<impl PageStore>, ops: &[Op]) {
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut live: Vec<tilestore_storage::BlobId> = Vec::new();
    for op in ops {
        match op {
            Op::Create(data) => {
                let id = store.create(data).unwrap();
                assert!(!model.contains_key(&id.0), "id reuse of live blob");
                model.insert(id.0, data.clone());
                live.push(id);
            }
            Op::Update(i, data) => {
                if live.is_empty() {
                    continue;
                }
                let id = live[i % live.len()];
                store.update(id, data).unwrap();
                model.insert(id.0, data.clone());
            }
            Op::Delete(i) => {
                if live.is_empty() {
                    continue;
                }
                let id = live.swap_remove(i % live.len());
                store.delete(id).unwrap();
                model.remove(&id.0);
                assert!(store.read(id).is_err(), "deleted blob must not read");
            }
            Op::Read(i) => {
                if live.is_empty() {
                    continue;
                }
                let id = live[i % live.len()];
                assert_eq!(store.read(id).unwrap(), model[&id.0]);
            }
        }
    }
    // Final sweep: every live blob matches the model.
    for id in &live {
        assert_eq!(store.read(*id).unwrap(), model[&id.0]);
        assert_eq!(store.blob_len(*id).unwrap(), model[&id.0].len() as u64);
    }
    assert_eq!(store.blob_count(), model.len());
}

#[test]
fn blob_store_matches_hashmap_model() {
    check(
        "blob_store_matches_hashmap_model",
        64,
        |s| (ops(s, 39), s.usize_in(1, 3)),
        |(ops, page_size_kb)| {
            let store = BlobStore::new(MemPageStore::new(page_size_kb * 1024).unwrap());
            run_model(&store, ops);
            Ok(())
        },
    );
}

#[test]
fn buffer_pool_is_transparent() {
    check(
        "buffer_pool_is_transparent",
        64,
        |s| (ops(s, 39), s.usize_in(1, 11)),
        |(ops, capacity)| {
            // The same model must hold when an LRU pool sits under the BLOBs —
            // caching must never change observable contents.
            let pool = BufferPool::new(MemPageStore::new(1024).unwrap(), *capacity).unwrap();
            let store = BlobStore::new(pool);
            run_model(&store, ops);
            Ok(())
        },
    );
}

#[test]
fn directory_round_trip_under_churn() {
    check(
        "directory_round_trip_under_churn",
        64,
        |s| ops(s, 29),
        |ops| {
            // Export/import of the directory preserves every live blob.
            let store = BlobStore::new(MemPageStore::new(1024).unwrap());
            let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
            let mut live: Vec<tilestore_storage::BlobId> = Vec::new();
            for op in ops {
                match op {
                    Op::Create(data) => {
                        let id = store.create(data).unwrap();
                        model.insert(id.0, data.clone());
                        live.push(id);
                    }
                    Op::Update(i, data) => {
                        if live.is_empty() {
                            continue;
                        }
                        let id = live[i % live.len()];
                        store.update(id, data).unwrap();
                        model.insert(id.0, data.clone());
                    }
                    Op::Delete(i) => {
                        if live.is_empty() {
                            continue;
                        }
                        let id = live.swap_remove(i % live.len());
                        store.delete(id).unwrap();
                        model.remove(&id.0);
                    }
                    Op::Read(_) => {}
                }
            }
            let dir = store.directory();
            let reopened = BlobStore::with_directory(
                // In-memory stores do not persist pages, so rebuild a store
                // with identical page contents to simulate a reopen.
                // (FilePageStore round-trips are covered in the engine tests.)
                {
                    let src = store;
                    let page_size = src.page_store().page_size();
                    let pages = src.page_store().allocated();
                    let dst = MemPageStore::new(page_size).unwrap();
                    dst.allocate(pages).unwrap();
                    let mut buf = vec![0u8; page_size];
                    for p in 0..pages {
                        src.page_store()
                            .read_page(tilestore_storage::PageId(p), &mut buf)
                            .unwrap();
                        dst.write_page(tilestore_storage::PageId(p), &buf).unwrap();
                    }
                    dst
                },
                dir,
            );
            for id in &live {
                prop_assert_eq!(reopened.read(*id).unwrap(), model[&id.0].clone());
            }
            Ok(())
        },
    );
}

/// The directory itself survives a JSON round trip.
#[test]
fn directory_json_round_trip() {
    check(
        "directory_json_round_trip",
        64,
        |s| ops(s, 19),
        |ops| {
            let store = BlobStore::new(MemPageStore::new(1024).unwrap());
            let mut live: Vec<tilestore_storage::BlobId> = Vec::new();
            for op in ops {
                match op {
                    Op::Create(data) => live.push(store.create(data).unwrap()),
                    Op::Update(i, data) => {
                        if !live.is_empty() {
                            let id = live[i % live.len()];
                            store.update(id, data).unwrap();
                        }
                    }
                    Op::Delete(i) => {
                        if !live.is_empty() {
                            let id = live.swap_remove(i % live.len());
                            store.delete(id).unwrap();
                        }
                    }
                    Op::Read(_) => {}
                }
            }
            let dir = store.directory();
            let text = tilestore_testkit::json::to_string(&dir);
            let back: tilestore_storage::BlobDirectory =
                tilestore_testkit::json::from_str(&text).unwrap();
            prop_assert_eq!(&back, &dir);
            Ok(())
        },
    );
}
