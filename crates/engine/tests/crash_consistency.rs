//! Crash-consistency property tests.
//!
//! A [`FaultInjectingPageStore`] crashes a full create → insert → save →
//! retile → save workload at every page-store operation index (and tears
//! page writes at a sample of them). After each simulated crash the
//! directory is reopened through the normal recovery path and must contain
//! exactly the last committed state: the right catalog epoch, the right
//! cell contents, no torn catalog, no lost tiles, and — after recovery
//! recommits — zero `fsck` inconsistencies.

use std::fs;
use std::path::Path;

use tilestore_engine::{
    fsck, Array, CellPredicate, CellType, Database, MddType, PredOp, CATALOG_FILE,
    CATALOG_TMP_FILE, PAGES_FILE,
};
use tilestore_storage::{
    FaultInjectingPageStore, FaultPlan, FilePageStore, DEFAULT_PAGE_SIZE, FRAME_HEADER,
};
use tilestore_tiling::{AlignedTiling, Scheme};

type FaultyDb = Database<FaultInjectingPageStore<FilePageStore>>;

fn data_a() -> Array {
    Array::from_fn("[0:19,0:19]".parse().unwrap(), |p| {
        (p[0] * 100 + p[1] + 1) as u32
    })
    .unwrap()
}

fn data_b() -> Array {
    Array::from_fn("[20:39,0:19]".parse().unwrap(), |p| {
        (p[0] * 100 + p[1] + 7) as u32
    })
    .unwrap()
}

/// The full committed contents after `commits` successful saves, queried
/// over the union domain (uncovered cells read the u32 default, 0).
fn expected_contents(commits: u64) -> Array {
    let mut full = Array::filled("[0:39,0:19]".parse().unwrap(), &0u32.to_le_bytes()).unwrap();
    full.paste(&data_a()).unwrap();
    if commits >= 2 {
        full.paste(&data_b()).unwrap();
    }
    full
}

/// Opens a fresh fault-wrapped database in `dir` and runs the unfaulted
/// phase 0: create the object, insert `data_a`, commit (epoch 1).
fn phase0(dir: &Path) -> FaultyDb {
    fs::create_dir_all(dir).unwrap();
    let store = FilePageStore::create(dir.join(PAGES_FILE), DEFAULT_PAGE_SIZE).unwrap();
    let db = Database::with_store(FaultInjectingPageStore::new(store));
    db.create_object(
        "m",
        MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 1024)),
    )
    .unwrap();
    db.insert("m", &data_a()).unwrap();
    db.save(dir).unwrap();
    db
}

struct Outcome {
    /// Successful commits (1 = only phase 0's).
    commits: u64,
    /// Operation index right after phase 0 (first faultable op).
    ops0: u64,
    /// Operation count after the whole workload (dry runs only).
    total_ops: u64,
}

/// Runs the workload with `plan` armed after phase 0, stopping at the
/// first injected failure as a dead process would.
fn run_workload(dir: &Path, plan: Option<FaultPlan>) -> Outcome {
    let db = phase0(dir);
    let ops0 = db.blob_store().page_store().ops();
    if let Some(plan) = plan {
        db.blob_store().page_store().set_plan(plan);
    }
    let mut out = Outcome {
        commits: 1,
        ops0,
        total_ops: 0,
    };
    let crashed = (|| -> Result<(), tilestore_engine::EngineError> {
        db.insert("m", &data_b())?;
        db.save(dir)?;
        out.commits = 2;
        db.retile("m", Scheme::Aligned(AlignedTiling::regular(2, 2048)))?;
        db.save(dir)?;
        out.commits = 3;
        Ok(())
    })()
    .is_err();
    let _ = crashed; // the outcome, not the error, is what matters
    out.total_ops = db.blob_store().page_store().ops();
    out
}

/// Reopens after a crash and asserts the database is exactly the state of
/// the last completed commit, then proves recovery converges: one fresh
/// commit makes fsck fully clean.
fn assert_recovers(dir: &Path, commits: u64, what: &str) {
    let db = Database::open_dir(dir)
        .unwrap_or_else(|e| panic!("{what}: reopen after crash failed: {e}"));
    assert_eq!(db.catalog_epoch(), commits, "{what}: wrong committed epoch");
    assert!(
        !dir.join(CATALOG_TMP_FILE).exists(),
        "{what}: stale tmp survived recovery"
    );
    let region = "[0:39,0:19]".parse().unwrap();
    let q = db
        .range_query("m", &region)
        .unwrap_or_else(|e| panic!("{what}: committed data unreadable: {e}"));
    assert_eq!(
        q.array,
        expected_contents(commits),
        "{what}: lost or torn tiles"
    );
    // The synopsis/bitmap-index surface must also survive the crash: a
    // pruned masked read agrees byte-for-byte with masking the recovered
    // contents in plain code.
    assert_predicate_reads_clean(&db, &region, commits, what);
    // Recovery reclaimed any orphans in memory; recommitting persists the
    // repair, after which the directory must audit perfectly clean.
    db.save(dir)
        .unwrap_or_else(|e| panic!("{what}: post-recovery save failed: {e}"));
    let report = fsck(dir).unwrap();
    assert!(
        report.is_clean(),
        "{what}: fsck dirty after recovery: {report}"
    );
    assert!(
        report.missing_index_blobs.is_empty(),
        "{what}: dangling bitmap-index blob: {report}"
    );
}

/// Runs `WHERE m >= 2000` through the recovered database and checks the
/// result against masking [`expected_contents`] cell-by-cell.
fn assert_predicate_reads_clean<S: tilestore_storage::PageStore>(
    db: &Database<S>,
    region: &tilestore_geometry::Domain,
    commits: u64,
    what: &str,
) {
    let pred = CellPredicate {
        op: PredOp::Ge,
        literal: 2000.0,
    };
    let full = expected_contents(commits);
    let masked_bytes: Vec<u8> = full
        .to_cells::<u32>()
        .unwrap()
        .into_iter()
        .map(|v| if f64::from(v) >= 2000.0 { v } else { 0 })
        .flat_map(u32::to_le_bytes)
        .collect();
    let masked = Array::from_bytes(region.clone(), 4, masked_bytes).unwrap();
    let q = db
        .range_query_where("m", region, Some(&pred))
        .unwrap_or_else(|e| panic!("{what}: predicate read failed after recovery: {e}"));
    assert_eq!(q.array, masked, "{what}: predicate read diverged");
}

#[test]
fn crash_at_every_operation_recovers_to_a_committed_state() {
    // Dry run: learn the operation range of the faulted phase.
    let dry_dir = tilestore_testkit::tempdir().unwrap();
    let dry = run_workload(dry_dir.path(), None);
    assert_eq!(dry.commits, 3, "dry run must complete");
    assert!(dry.total_ops > dry.ops0, "workload must touch the store");
    // Crash at every op index (strided only if the workload ever grows
    // large enough to threaten the test-time budget).
    let range = dry.total_ops - dry.ops0;
    let stride = (range / 160).max(1);
    let mut tested = 0u64;
    for k in (dry.ops0..dry.total_ops).step_by(stride as usize) {
        let dir = tilestore_testkit::tempdir().unwrap();
        let out = run_workload(dir.path(), Some(FaultPlan::fail_at(k)));
        assert!(out.commits < 3, "crash at op {k} did not stop the workload");
        assert_recovers(dir.path(), out.commits, &format!("crash at op {k}"));
        tested += 1;
    }
    assert!(tested >= 10, "suspiciously few crash points ({tested})");
}

/// Like [`run_workload`] but the faulted phase ends in compaction: insert
/// `data_b`, save (commit 2), `defrag` (full blob rewrite in centroid
/// curve order), save (commit 3).
fn run_defrag_workload(dir: &Path, plan: Option<FaultPlan>) -> Outcome {
    let db = phase0(dir);
    let ops0 = db.blob_store().page_store().ops();
    if let Some(plan) = plan {
        db.blob_store().page_store().set_plan(plan);
    }
    let mut out = Outcome {
        commits: 1,
        ops0,
        total_ops: 0,
    };
    let _ = (|| -> Result<(), tilestore_engine::EngineError> {
        db.insert("m", &data_b())?;
        db.save(dir)?;
        out.commits = 2;
        let receipt = db.defrag("m")?;
        // The two inserts left an index blob between the tile groups, so
        // the curve prefix is broken and the defrag must really rewrite.
        assert!(
            receipt.stats.bytes_rewritten > 0,
            "defrag workload found nothing to compact"
        );
        db.save(dir)?;
        out.commits = 3;
        Ok(())
    })();
    out.total_ops = db.blob_store().page_store().ops();
    out
}

#[test]
fn crash_at_every_defrag_operation_recovers_to_a_committed_state() {
    // The compaction commit swaps every tile's placement and quarantines
    // the displaced blobs; a crash anywhere in that protocol must leave
    // the last committed contents readable and the directory repairable.
    let dry_dir = tilestore_testkit::tempdir().unwrap();
    let dry = run_defrag_workload(dry_dir.path(), None);
    assert_eq!(dry.commits, 3, "dry run must complete");
    let range = dry.total_ops - dry.ops0;
    let stride = (range / 160).max(1);
    let mut tested = 0u64;
    for k in (dry.ops0..dry.total_ops).step_by(stride as usize) {
        let dir = tilestore_testkit::tempdir().unwrap();
        let out = run_defrag_workload(dir.path(), Some(FaultPlan::fail_at(k)));
        assert!(out.commits < 3, "crash at op {k} did not stop the workload");
        assert_recovers(dir.path(), out.commits, &format!("defrag crash at op {k}"));
        tested += 1;
    }
    assert!(tested >= 10, "suspiciously few crash points ({tested})");
}

#[test]
fn torn_writes_never_corrupt_committed_state() {
    let dry_dir = tilestore_testkit::tempdir().unwrap();
    let dry = run_workload(dry_dir.path(), None);
    // Tear each sampled write mid-frame: header plus half the payload
    // lands, the rest never does.
    let torn_bytes = FRAME_HEADER + DEFAULT_PAGE_SIZE / 2;
    for k in (dry.ops0..dry.total_ops).step_by(3) {
        let dir = tilestore_testkit::tempdir().unwrap();
        let out = run_workload(dir.path(), Some(FaultPlan::torn_write_at(k, torn_bytes)));
        // If op k is not a write the plan never fires and the workload
        // completes; both outcomes must satisfy the recovery property.
        assert_recovers(dir.path(), out.commits, &format!("torn write at op {k}"));
    }
}

#[test]
fn crash_during_save_leaves_previous_commit_intact() {
    // The dedicated regression for the old non-atomic save: die inside
    // save (at its page-store sync), leave a garbage staging file behind,
    // and reopen — the previous commit must come back untouched.
    let dir = tilestore_testkit::tempdir().unwrap();
    let db = phase0(dir.path());
    db.insert("m", &data_b()).unwrap();
    let next_op = db.blob_store().page_store().ops();
    db.blob_store()
        .page_store()
        .set_plan(FaultPlan::fail_at(next_op));
    assert!(db.save(dir.path()).is_err(), "save must hit the crash");
    drop(db);
    // A crash later in the protocol leaves a half-written staging file.
    fs::write(dir.path().join(CATALOG_TMP_FILE), b"{\"page_size\": 40").unwrap();
    let report = fsck(dir.path()).unwrap();
    assert!(report.stale_tmp && !report.is_clean());
    assert_recovers(dir.path(), 1, "crash inside save");
}

#[test]
fn transient_store_errors_do_not_poison_the_database() {
    // A one-off I/O failure surfaces as an error but the database stays
    // usable and the retried commit succeeds.
    let dir = tilestore_testkit::tempdir().unwrap();
    let db = phase0(dir.path());
    let next_op = db.blob_store().page_store().ops();
    db.blob_store()
        .page_store()
        .set_plan(FaultPlan::transient(&[next_op]));
    assert!(db.insert("m", &data_b()).is_err());
    db.insert("m", &data_b()).unwrap();
    db.save(dir.path()).unwrap();
    drop(db);
    let db = Database::open_dir(dir.path()).unwrap();
    let q = db
        .range_query("m", &"[0:39,0:19]".parse().unwrap())
        .unwrap();
    assert_eq!(q.array, expected_contents(2));
    db.save(dir.path()).unwrap();
    assert!(fsck(dir.path()).unwrap().is_clean());
}

/// Removes every `"key": value` member from a JSON text, where the value
/// is an object or a bare number (the only shapes the stripped fields
/// take). The member is never first in its object, so the preceding comma
/// is removed with it.
fn strip_json_members(text: &str, key: &str) -> String {
    let needle = format!("\"{key}\"");
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find(&needle) {
        let b = rest.as_bytes();
        let mut start = pos;
        while start > 0 && (b[start - 1] as char).is_whitespace() {
            start -= 1;
        }
        assert_eq!(b[start - 1], b',', "member must follow a comma");
        start -= 1;
        let mut k = pos + needle.len();
        while (b[k] as char).is_whitespace() {
            k += 1;
        }
        assert_eq!(b[k], b':');
        k += 1;
        while (b[k] as char).is_whitespace() {
            k += 1;
        }
        if b[k] == b'{' {
            let mut depth = 1;
            k += 1;
            while depth > 0 {
                match b[k] {
                    b'{' => depth += 1,
                    b'}' => depth -= 1,
                    _ => {}
                }
                k += 1;
            }
        } else {
            while b[k].is_ascii_digit() {
                k += 1;
            }
        }
        out.push_str(&rest[..start]);
        rest = &rest[k..];
    }
    out.push_str(rest);
    out
}

#[test]
fn pre_synopsis_catalogs_hydrate_and_prune_on_open() {
    // A catalog written before synopses existed has no "synopsis" tile
    // fields and no "value_index_blob"; opening it must rescan payloads,
    // rebuild the bitmap index, and leave a directory that commits clean.
    let dir = tilestore_testkit::tempdir().unwrap();
    {
        let db = phase0(dir.path());
        db.insert("m", &data_b()).unwrap();
        db.save(dir.path()).unwrap();
    }
    let path = dir.path().join(CATALOG_FILE);
    let text = fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"synopsis\""), "modern catalog has synopses");
    assert!(text.contains("\"value_index_blob\""));
    let stripped = strip_json_members(&strip_json_members(&text, "synopsis"), "value_index_blob");
    assert!(!stripped.contains("synopsis") && !stripped.contains("value_index_blob"));
    fs::write(&path, stripped).unwrap();

    // The old bitmap blob is now an orphan in the page file; open must
    // still succeed and rebuild the whole value-index surface.
    let db = Database::open_dir(dir.path()).unwrap();
    let region = "[0:39,0:19]".parse().unwrap();
    assert_predicate_reads_clean(&db, &region, 2, "pre-synopsis catalog");
    // Rebuilt synopses actually prune: every tile of data_a tops out at
    // 1920 < 2000, so a `>= 2000` read skips at least one tile.
    let pred = CellPredicate {
        op: PredOp::Ge,
        literal: 2000.0,
    };
    let q = db.range_query_where("m", &region, Some(&pred)).unwrap();
    assert!(q.stats.tiles_pruned > 0, "stats: {:?}", q.stats);
    db.save(dir.path()).unwrap();
    let report = fsck(dir.path()).unwrap();
    assert!(report.is_clean(), "fsck dirty after hydration: {report}");
    assert!(report.missing_index_blobs.is_empty());
}

#[test]
fn crash_with_a_live_snapshot_recovers_cleanly() {
    // A snapshot pinned at crash time must not leak retired blobs into the
    // durable state: the commit taken while the snapshot was live exports
    // them as free space, so recovery finds a clean directory.
    let dir = tilestore_testkit::tempdir().unwrap();
    {
        let db = phase0(dir.path());
        let snap = db.begin_read();
        db.retile("m", Scheme::Aligned(AlignedTiling::regular(2, 2048)))
            .unwrap();
        db.save(dir.path()).unwrap();
        // The snapshot still reads pre-retile state right up to the "crash".
        let q = snap
            .range_query("m", &"[0:19,0:19]".parse().unwrap())
            .unwrap();
        assert_eq!(q.array, data_a());
        // Process dies here with the snapshot live: no Drop-side reclaim
        // runs for the retired blobs.
        std::mem::forget(snap);
    }
    let report = fsck(dir.path()).unwrap();
    assert!(report.is_clean(), "fsck dirty after crash: {report}");
    let db = Database::open_dir(dir.path()).unwrap();
    assert_eq!(db.catalog_epoch(), 2);
    let q = db
        .range_query("m", &"[0:39,0:19]".parse().unwrap())
        .unwrap();
    assert_eq!(q.array, expected_contents(1));
    db.save(dir.path()).unwrap();
    assert!(fsck(dir.path()).unwrap().is_clean());
}
