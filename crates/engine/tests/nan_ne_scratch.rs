use tilestore_engine::{CellPredicate, CellType, PredOp, TileSynopsis};

#[test]
fn all_nan_tile_ne_should_not_prune() {
    let cell = CellType::of::<f64>();
    let mut payload = Vec::new();
    for _ in 0..4 {
        payload.extend_from_slice(&f64::NAN.to_le_bytes());
    }
    let syn = TileSynopsis::scan(&cell, &payload);
    assert!(syn.has_nan());
    assert_eq!(syn.bins(), 0);
    let p = CellPredicate {
        op: PredOp::Ne,
        literal: 0.0,
    };
    // NaN != 0.0 is true, so every cell matches and pruning is unsound.
    assert!(p.matches(f64::NAN));
    assert!(
        !p.prunes_tile(&syn),
        "BUG REPRODUCED: all-NaN tile pruned under !="
    );
}
