//! The tentpole guarantee of snapshot reads: a query that overlaps a slow
//! writer completes without blocking behind it and observes the pre-writer
//! epoch.
//!
//! A [`GatedStore`] wraps the in-memory page store and stalls every write
//! (and page allocation) while its gate is closed; reads pass straight
//! through. Closing the gate and launching a retile therefore freezes the
//! writer mid-rewrite — exactly the window in which the old whole-database
//! lock used to make readers queue up.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use tilestore_engine::{Array, CellType, Database, MddType};
use tilestore_storage::{MemPageStore, PageId, PageStore};
use tilestore_tiling::{AlignedTiling, Scheme};

struct GateState {
    closed: bool,
    waiting: usize,
}

/// Page store whose mutating operations block while the gate is closed.
struct GatedStore {
    inner: MemPageStore,
    gate: Mutex<GateState>,
    cv: Condvar,
}

impl GatedStore {
    fn new() -> Self {
        GatedStore {
            inner: MemPageStore::new(tilestore_storage::DEFAULT_PAGE_SIZE).unwrap(),
            gate: Mutex::new(GateState {
                closed: false,
                waiting: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn close(&self) {
        self.gate.lock().unwrap().closed = true;
    }

    fn open(&self) {
        self.gate.lock().unwrap().closed = false;
        self.cv.notify_all();
    }

    /// Blocks the calling writer while the gate is closed.
    fn block_point(&self) {
        let mut g = self.gate.lock().unwrap();
        if !g.closed {
            return;
        }
        g.waiting += 1;
        self.cv.notify_all();
        while g.closed {
            g = self.cv.wait(g).unwrap();
        }
        g.waiting -= 1;
    }

    /// Waits until at least one writer is parked on the closed gate.
    fn wait_for_blocked_writer(&self, timeout: Duration) -> bool {
        let mut g = self.gate.lock().unwrap();
        while g.waiting == 0 {
            let (next, res) = self.cv.wait_timeout(g, timeout).unwrap();
            g = next;
            if res.timed_out() {
                return g.waiting > 0;
            }
        }
        true
    }
}

impl PageStore for GatedStore {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocated(&self) -> u64 {
        self.inner.allocated()
    }

    fn allocate(&self, count: u64) -> tilestore_storage::Result<Vec<PageId>> {
        self.block_point();
        self.inner.allocate(count)
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> tilestore_storage::Result<()> {
        self.inner.read_page(page, buf)
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> tilestore_storage::Result<()> {
        self.block_point();
        self.inner.write_page(page, buf)
    }

    fn sync(&self) -> tilestore_storage::Result<()> {
        self.block_point();
        self.inner.sync()
    }
}

fn grid() -> Array {
    Array::from_fn("[0:31,0:31]".parse().unwrap(), |p| {
        (p[0] * 32 + p[1]) as u32
    })
    .unwrap()
}

#[test]
fn query_during_a_stalled_retile_completes_on_the_old_epoch() {
    let db = Database::with_store(GatedStore::new());
    db.create_object(
        "m",
        MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 1024)),
    )
    .unwrap();
    db.insert("m", &grid()).unwrap();
    let epoch_before = db.begin_read().epoch();

    // Freeze all writes, then start a retile: it stalls mid-rewrite while
    // holding the writer lock, exactly like a long-running reorganization.
    db.blob_store().page_store().close();
    let retile_done = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            db.retile("m", Scheme::Aligned(AlignedTiling::regular(2, 4096)))
                .unwrap();
            retile_done.store(true, Ordering::SeqCst);
        });
        assert!(
            db.blob_store()
                .page_store()
                .wait_for_blocked_writer(Duration::from_secs(10)),
            "retile never reached the gate"
        );

        // The reader must finish while the retile is still parked: acquiring
        // the snapshot and executing the query takes no writer-held lock.
        let snap = db.begin_read();
        assert_eq!(snap.epoch(), epoch_before, "reader sees pre-retile epoch");
        let q = snap
            .range_query("m", &"[0:31,0:31]".parse().unwrap())
            .unwrap();
        assert_eq!(q.array, grid());
        assert_eq!(q.epoch, epoch_before);
        assert!(
            !retile_done.load(Ordering::SeqCst),
            "query must complete before the retile finishes"
        );
        drop(snap);

        // Release the writer; its commit bumps the epoch past the reader's.
        db.blob_store().page_store().open();
    });
    assert!(retile_done.load(Ordering::SeqCst));
    let after = db.begin_read();
    assert!(after.epoch() > epoch_before, "retile committed a new epoch");
    assert_eq!(
        after
            .range_query("m", &"[0:31,0:31]".parse().unwrap())
            .unwrap()
            .array,
        grid(),
        "contents are unchanged by the retile"
    );
}

#[test]
fn writers_queue_behind_each_other_but_never_behind_readers() {
    let db = Database::with_store(GatedStore::new());
    db.create_object(
        "m",
        MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 1024)),
    )
    .unwrap();
    db.insert("m", &grid()).unwrap();

    // Park a retile on the write gate, then hold a long-lived snapshot open
    // across the whole stall. Readers neither wait for the writer nor make
    // the writer wait once the gate opens.
    db.blob_store().page_store().close();
    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            db.retile("m", Scheme::Aligned(AlignedTiling::regular(2, 2048)))
                .unwrap()
        });
        assert!(db
            .blob_store()
            .page_store()
            .wait_for_blocked_writer(Duration::from_secs(10)));
        let held = db.begin_read();
        for _ in 0..8 {
            let q = db
                .begin_read()
                .range_query("m", &"[0:7,0:7]".parse().unwrap())
                .unwrap();
            assert_eq!(q.epoch, held.epoch());
        }
        db.blob_store().page_store().open();
        let receipt = writer.join().unwrap();
        assert!(receipt.epoch > held.epoch());
        // The pinned snapshot still reads its own epoch's tiles.
        assert_eq!(
            held.range_query("m", &"[0:31,0:31]".parse().unwrap())
                .unwrap()
                .array,
            grid()
        );
    });
}
