//! Property tests for the engine's core invariant: for any array, any
//! tiling scheme and any query region, `insert` followed by `range_query`
//! returns exactly the original cells (default value outside coverage).

use proptest::prelude::*;
use tilestore_engine::{Array, CellType, Database, MddType};
use tilestore_geometry::{Domain, Point, PointIter};
use tilestore_tiling::{
    AlignedTiling, AreasOfInterestTiling, DirectionalTiling, AxisPartition, Scheme, SingleTile,
    TileConfig,
};

fn domain(dim: usize) -> impl Strategy<Value = Domain> {
    proptest::collection::vec((-20i64..20, 1i64..25), dim).prop_map(|bounds| {
        let bounds: Vec<(i64, i64)> = bounds
            .into_iter()
            .map(|(lo, ext)| (lo, lo + ext))
            .collect();
        Domain::from_bounds(&bounds).unwrap()
    })
}

fn subdomain(dom: Domain) -> impl Strategy<Value = Domain> {
    let per_axis: Vec<BoxedStrategy<(i64, i64)>> = dom
        .ranges()
        .iter()
        .map(|r| {
            let (lo, hi) = (r.lo(), r.hi());
            (lo..=hi)
                .prop_flat_map(move |a| (Just(a), a..=hi))
                .boxed()
        })
        .collect();
    per_axis.prop_map(|b| Domain::from_bounds(&b).unwrap())
}

/// A random scheme of any of the implemented families.
fn scheme(dom: Domain) -> impl Strategy<Value = Scheme> {
    let dim = dom.dim();
    let max_sizes = prop_oneof![Just(512u64), Just(2048u64), Just(16 * 1024u64)];
    let aligned = max_sizes
        .clone()
        .prop_map(move |m| Scheme::Aligned(AlignedTiling::regular(dim, m)));
    let single = Just(Scheme::SingleTile(SingleTile));
    let slice_cfg = (0..dim).prop_flat_map(move |star_axis| {
        max_sizes.clone().prop_map(move |m| {
            let entries: Vec<tilestore_tiling::Extent> = (0..dim)
                .map(|i| {
                    if i == star_axis {
                        tilestore_tiling::Extent::Unbounded
                    } else {
                        tilestore_tiling::Extent::Fixed(1)
                    }
                })
                .collect();
            Scheme::Aligned(AlignedTiling::new(TileConfig::new(entries).unwrap(), m))
        })
    });
    let dom_dir = dom.clone();
    let directional = (0.2f64..0.8).prop_map(move |f| {
        let r = dom_dir.axis(0);
        let cut = r.lo() + ((r.extent() as f64) * f) as i64;
        let points = if cut > r.lo() && cut < r.hi() {
            vec![r.lo(), cut, r.hi()]
        } else {
            vec![r.lo(), r.hi()]
        };
        Scheme::Directional(DirectionalTiling::new(
            vec![AxisPartition::new(0, points)],
            2048,
        ))
    });
    let dom_aoi = dom;
    let aoi = proptest::collection::vec(subdomain(dom_aoi), 1..3)
        .prop_map(|areas| Scheme::AreasOfInterest(AreasOfInterestTiling::new(areas, 4096)));
    prop_oneof![aligned, single, slice_cfg, directional, aoi]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn insert_query_round_trip(
        (dom, sch, query) in domain(2).prop_flat_map(|d| {
            (Just(d.clone()), scheme(d.clone()), subdomain(d))
        }),
    ) {
        let mut db = Database::in_memory().unwrap();
        db.create_object(
            "obj",
            MddType::new(CellType::of::<u16>(), tilestore_geometry::DefDomain::unlimited(2).unwrap()),
            sch,
        ).unwrap();
        let data = Array::from_fn(dom.clone(), |p| {
            (p[0] * 131 + p[1] * 7) as u16
        }).unwrap();
        db.insert("obj", &data).unwrap();

        // Querying any subregion returns exactly the original cells.
        let (out, stats) = db.range_query("obj", &query).unwrap();
        prop_assert_eq!(&out, &data.extract(&query).unwrap());
        prop_assert_eq!(stats.cells_copied, query.cells());
        prop_assert_eq!(stats.cells_defaulted, 0);
        // Tiles processed cover at least the query.
        prop_assert!(stats.cells_processed >= query.cells());
    }

    #[test]
    fn partial_coverage_reads_default_outside(
        dom in domain(2),
        probe in domain(2),
    ) {
        let mut db = Database::in_memory().unwrap();
        db.create_object(
            "obj",
            MddType::new(
                CellType::with_default("u16", 0xABu16.to_le_bytes().to_vec()),
                tilestore_geometry::DefDomain::unlimited(2).unwrap(),
            ),
            Scheme::Aligned(AlignedTiling::regular(2, 1024)),
        ).unwrap();
        let data = Array::from_fn(dom.clone(), |p| (p[0] + p[1] + 1000) as u16).unwrap();
        db.insert("obj", &data).unwrap();

        let (out, _) = db.range_query("obj", &probe).unwrap();
        let layout = tilestore_geometry::RowMajor::new(probe.clone()).unwrap();
        for p in PointIter::new(probe.clone()).take(512) {
            let got: u16 = out.get(&p).unwrap();
            if dom.contains_point(&p) {
                prop_assert_eq!(got, (p[0] + p[1] + 1000) as u16);
            } else {
                prop_assert_eq!(got, 0xAB, "point {} offset {}", p.clone(),
                    layout.offset_of(&p).unwrap());
            }
        }
    }

    #[test]
    fn retile_preserves_content(
        (dom, s1, s2) in domain(2).prop_flat_map(|d| {
            (Just(d.clone()), scheme(d.clone()), scheme(d))
        }),
    ) {
        let mut db = Database::in_memory().unwrap();
        db.create_object(
            "obj",
            MddType::new(CellType::of::<u16>(), tilestore_geometry::DefDomain::unlimited(2).unwrap()),
            s1,
        ).unwrap();
        let data = Array::from_fn(dom.clone(), |p| (p[0] * 3 + p[1]) as u16).unwrap();
        db.insert("obj", &data).unwrap();
        db.retile("obj", s2).unwrap();
        let (out, _) = db.range_query("obj", &dom).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn point_queries_agree_with_bulk(
        dom in domain(3),
        seed in any::<u64>(),
    ) {
        let mut db = Database::in_memory().unwrap();
        db.create_object(
            "vol",
            MddType::new(CellType::of::<u32>(), tilestore_geometry::DefDomain::unlimited(3).unwrap()),
            Scheme::Aligned(AlignedTiling::regular(3, 2048)),
        ).unwrap();
        let data = Array::from_fn(dom.clone(), |p| {
            (p[0] * 10007 + p[1] * 101 + p[2]) as u32
        }).unwrap();
        db.insert("vol", &data).unwrap();
        // Probe three pseudo-random points.
        let mut x = seed | 1;
        for _ in 0..3 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let coords: Vec<i64> = (0..3)
                .map(|a| {
                    let r = dom.axis(a);
                    r.lo() + ((x >> (a * 16)) % r.extent().max(1)) as i64
                })
                .collect();
            let p = Point::new(coords).unwrap();
            let cell = Domain::cell(&p);
            let (one, _) = db.range_query("vol", &cell).unwrap();
            prop_assert_eq!(
                one.get::<u32>(&p).unwrap(),
                data.get::<u32>(&p).unwrap()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Update/delete model check: the stored object must always agree with
    /// a shadow dense array maintained by plain writes.
    #[test]
    fn update_and_delete_match_shadow_model(
        base in domain(2),
        patches in proptest::collection::vec((domain(2), any::<u16>(), any::<bool>()), 1..6),
    ) {
        let mut db = Database::in_memory().unwrap();
        db.create_object(
            "obj",
            MddType::new(CellType::of::<u16>(), tilestore_geometry::DefDomain::unlimited(2).unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 512)),
        ).unwrap();
        let initial = Array::from_fn(base.clone(), |p| (p[0] * 31 + p[1] + 1) as u16).unwrap();
        db.insert("obj", &initial).unwrap();

        // Shadow model over the hull of everything we will touch.
        let mut world = base.clone();
        for (d, _, _) in &patches {
            world = world.hull(d).unwrap();
        }
        let mut shadow = Array::filled(world.clone(), &[0, 0]).unwrap();
        shadow.paste(&initial).unwrap();

        for (region, value, is_delete) in &patches {
            if *is_delete {
                db.delete_region("obj", region).unwrap();
                shadow.fill(region, &[0, 0]).unwrap();
            } else {
                let patch = Array::filled(region.clone(), &value.to_le_bytes()).unwrap();
                db.update("obj", &patch).unwrap();
                shadow.paste(&patch).unwrap();
            }
        }

        let (out, _) = db.range_query("obj", &world).unwrap();
        prop_assert_eq!(out, shadow);
    }
}
