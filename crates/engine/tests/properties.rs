//! Property tests for the engine's core invariant: for any array, any
//! tiling scheme and any query region, `insert` followed by `range_query`
//! returns exactly the original cells (default value outside coverage).

use tilestore_engine::{
    AggKind, AggValue, Array, CellPredicate, CellType, Database, MddType, PredOp, TileSynopsis,
};
use tilestore_geometry::{Domain, Point, PointIter};
use tilestore_testkit::prop::{check, Source};
use tilestore_testkit::{prop_assert, prop_assert_eq};
use tilestore_tiling::{
    AlignedTiling, AreasOfInterestTiling, AxisPartition, DirectionalTiling, Scheme, SingleTile,
    TileConfig,
};

fn domain(s: &mut Source, dim: usize) -> Domain {
    let bounds: Vec<(i64, i64)> = (0..dim)
        .map(|_| {
            let lo = s.i64_in(-20, 19);
            let ext = s.i64_in(1, 24);
            (lo, lo + ext)
        })
        .collect();
    Domain::from_bounds(&bounds).unwrap()
}

fn subdomain(s: &mut Source, dom: &Domain) -> Domain {
    let bounds: Vec<(i64, i64)> = dom
        .ranges()
        .iter()
        .map(|r| {
            let a = s.i64_in(r.lo(), r.hi());
            let b = s.i64_in(a, r.hi());
            (a, b)
        })
        .collect();
    Domain::from_bounds(&bounds).unwrap()
}

fn max_size(s: &mut Source) -> u64 {
    [512u64, 2048, 16 * 1024][s.usize_in(0, 2)]
}

/// A random scheme of any of the implemented families.
fn scheme(s: &mut Source, dom: &Domain) -> Scheme {
    let dim = dom.dim();
    match s.weighted(&[1, 1, 1, 1, 1]) {
        0 => Scheme::Aligned(AlignedTiling::regular(dim, max_size(s))),
        1 => Scheme::SingleTile(SingleTile),
        2 => {
            let star_axis = s.usize_in(0, dim - 1);
            let entries: Vec<tilestore_tiling::Extent> = (0..dim)
                .map(|i| {
                    if i == star_axis {
                        tilestore_tiling::Extent::Unbounded
                    } else {
                        tilestore_tiling::Extent::Fixed(1)
                    }
                })
                .collect();
            Scheme::Aligned(AlignedTiling::new(
                TileConfig::new(entries).unwrap(),
                max_size(s),
            ))
        }
        3 => {
            let f = 0.2 + 0.6 * s.f64_unit();
            let r = dom.axis(0);
            let cut = r.lo() + ((r.extent() as f64) * f) as i64;
            let points = if cut > r.lo() && cut < r.hi() {
                vec![r.lo(), cut, r.hi()]
            } else {
                vec![r.lo(), r.hi()]
            };
            Scheme::Directional(DirectionalTiling::new(
                vec![AxisPartition::new(0, points)],
                2048,
            ))
        }
        _ => {
            let areas = s.vec_of(1, 2, |s| subdomain(s, dom));
            Scheme::AreasOfInterest(AreasOfInterestTiling::new(areas, 4096))
        }
    }
}

#[test]
fn insert_query_round_trip() {
    check(
        "insert_query_round_trip",
        64,
        |s| {
            let dom = domain(s, 2);
            let sch = scheme(s, &dom);
            let query = subdomain(s, &dom);
            (dom, sch, query)
        },
        |(dom, sch, query)| {
            let db = Database::in_memory().unwrap();
            db.create_object(
                "obj",
                MddType::new(
                    CellType::of::<u16>(),
                    tilestore_geometry::DefDomain::unlimited(2).unwrap(),
                ),
                sch.clone(),
            )
            .unwrap();
            let data = Array::from_fn(dom.clone(), |p| (p[0] * 131 + p[1] * 7) as u16).unwrap();
            db.insert("obj", &data).unwrap();

            // Querying any subregion returns exactly the original cells.
            let q = db.range_query("obj", query).unwrap();
            prop_assert_eq!(&q.array, &data.extract(query).unwrap());
            prop_assert_eq!(q.stats.cells_copied, query.cells());
            prop_assert_eq!(q.stats.cells_defaulted, 0);
            // Tiles processed cover at least the query.
            prop_assert!(q.stats.cells_processed >= query.cells());
            Ok(())
        },
    );
}

#[test]
fn partial_coverage_reads_default_outside() {
    check(
        "partial_coverage_reads_default_outside",
        64,
        |s| (domain(s, 2), domain(s, 2)),
        |(dom, probe)| {
            let db = Database::in_memory().unwrap();
            db.create_object(
                "obj",
                MddType::new(
                    CellType::with_default("u16", 0xABu16.to_le_bytes().to_vec()),
                    tilestore_geometry::DefDomain::unlimited(2).unwrap(),
                ),
                Scheme::Aligned(AlignedTiling::regular(2, 1024)),
            )
            .unwrap();
            let data = Array::from_fn(dom.clone(), |p| (p[0] + p[1] + 1000) as u16).unwrap();
            db.insert("obj", &data).unwrap();

            let out = db.range_query("obj", probe).unwrap().array;
            let layout = tilestore_geometry::RowMajor::new(probe.clone()).unwrap();
            for p in PointIter::new(probe.clone()).take(512) {
                let got: u16 = out.get(&p).unwrap();
                if dom.contains_point(&p) {
                    prop_assert_eq!(got, (p[0] + p[1] + 1000) as u16);
                } else {
                    prop_assert_eq!(
                        got,
                        0xAB,
                        "point {} offset {}",
                        p.clone(),
                        layout.offset_of(&p).unwrap()
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn retile_preserves_content() {
    check(
        "retile_preserves_content",
        64,
        |s| {
            let dom = domain(s, 2);
            let s1 = scheme(s, &dom);
            let s2 = scheme(s, &dom);
            (dom, s1, s2)
        },
        |(dom, s1, s2)| {
            let db = Database::in_memory().unwrap();
            db.create_object(
                "obj",
                MddType::new(
                    CellType::of::<u16>(),
                    tilestore_geometry::DefDomain::unlimited(2).unwrap(),
                ),
                s1.clone(),
            )
            .unwrap();
            let data = Array::from_fn(dom.clone(), |p| (p[0] * 3 + p[1]) as u16).unwrap();
            db.insert("obj", &data).unwrap();
            db.retile("obj", s2.clone()).unwrap();
            let out = db.range_query("obj", dom).unwrap().array;
            prop_assert_eq!(out, data);
            Ok(())
        },
    );
}

#[test]
fn point_queries_agree_with_bulk() {
    check(
        "point_queries_agree_with_bulk",
        64,
        |s| (domain(s, 3), s.next_u64()),
        |(dom, seed)| {
            let db = Database::in_memory().unwrap();
            db.create_object(
                "vol",
                MddType::new(
                    CellType::of::<u32>(),
                    tilestore_geometry::DefDomain::unlimited(3).unwrap(),
                ),
                Scheme::Aligned(AlignedTiling::regular(3, 2048)),
            )
            .unwrap();
            let data =
                Array::from_fn(dom.clone(), |p| (p[0] * 10007 + p[1] * 101 + p[2]) as u32).unwrap();
            db.insert("vol", &data).unwrap();
            // Probe three pseudo-random points.
            let mut x = seed | 1;
            for _ in 0..3 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let coords: Vec<i64> = (0..3)
                    .map(|a| {
                        let r = dom.axis(a);
                        r.lo() + ((x >> (a * 16)) % r.extent().max(1)) as i64
                    })
                    .collect();
                let p = Point::new(coords).unwrap();
                let cell = Domain::cell(&p);
                let one = db.range_query("vol", &cell).unwrap().array;
                prop_assert_eq!(one.get::<u32>(&p).unwrap(), data.get::<u32>(&p).unwrap());
            }
            Ok(())
        },
    );
}

/// A random cell predicate whose literal lands in and around the value
/// range the data functions below produce (u16 cells, so 0..=65535 after
/// wrapping), with occasional fractional literals that no cell equals.
fn cell_predicate(s: &mut Source) -> CellPredicate {
    let op = [
        PredOp::Gt,
        PredOp::Ge,
        PredOp::Lt,
        PredOp::Le,
        PredOp::Eq,
        PredOp::Ne,
    ][s.usize_in(0, 5)];
    let literal = match s.usize_in(0, 2) {
        // A value the data function actually produces somewhere.
        0 => (s.i64_in(-25, 25) * 131 + s.i64_in(-25, 25) * 7) as u16 as f64,
        // Anywhere in (and slightly outside) the representable range.
        1 => s.i64_in(-100, 66_000) as f64,
        // Fractional: equality can never hold, comparisons still split.
        _ => s.i64_in(0, 5_000) as f64 + 0.5,
    };
    CellPredicate { op, literal }
}

/// Predicate pushdown must be pure optimization: for any array, tiling and
/// predicate, the pruned masked read is byte-identical to masking a full
/// scan cell-by-cell, and filtered aggregates agree with the masked array.
#[test]
fn predicate_pruning_matches_full_scan() {
    check(
        "predicate_pruning_matches_full_scan",
        64,
        |s| {
            let dom = domain(s, 2);
            let sch = scheme(s, &dom);
            let query = subdomain(s, &dom);
            let pred = cell_predicate(s);
            (dom, sch, query, pred)
        },
        |(dom, sch, query, pred)| {
            let db = Database::in_memory().unwrap();
            db.create_object(
                "obj",
                MddType::new(
                    CellType::of::<u16>(),
                    tilestore_geometry::DefDomain::unlimited(2).unwrap(),
                ),
                sch.clone(),
            )
            .unwrap();
            let value = |p: &Point| (p[0] * 131 + p[1] * 7) as u16;
            let data = Array::from_fn(dom.clone(), &value).unwrap();
            db.insert("obj", &data).unwrap();

            // The reference result: a full scan masked cell-by-cell in
            // plain test code (failing cells read as the default, 0).
            let expected = Array::from_fn(query.clone(), |p| {
                let v = value(p);
                if pred.matches(f64::from(v)) {
                    v
                } else {
                    0
                }
            })
            .unwrap();

            let q = db.range_query_where("obj", query, Some(pred)).unwrap();
            prop_assert_eq!(&q.array, &expected);
            let total_tiles = db.object("obj").unwrap().tile_count() as u64;
            prop_assert!(
                q.stats.tiles_pruned + q.stats.tiles_read <= total_tiles,
                "pruned {} + read {} > {} tiles",
                q.stats.tiles_pruned,
                q.stats.tiles_read,
                total_tiles
            );

            // Filtered aggregates agree with the masked reference array.
            let cells: Vec<u16> = expected.to_cells().unwrap();
            let snap = db.begin_read();
            let (count, _) = snap
                .aggregate_where("obj", query, AggKind::CountNonDefault, Some(pred))
                .unwrap();
            prop_assert_eq!(
                count,
                AggValue::Count(cells.iter().filter(|&&v| v != 0).count() as u64)
            );
            let (sum, _) = snap
                .aggregate_where("obj", query, AggKind::Sum, Some(pred))
                .unwrap();
            let expect_sum: f64 = cells.iter().map(|&v| f64::from(v)).sum();
            prop_assert_eq!(sum, AggValue::Number(expect_sum));
            let (max, _) = snap
                .aggregate_where("obj", query, AggKind::Max, Some(pred))
                .unwrap();
            let expect_max = cells.iter().copied().max().map(f64::from).unwrap();
            prop_assert_eq!(max, AggValue::Number(expect_max));
            Ok(())
        },
    );
}

/// Regression (PR 6): an all-NaN tile must not be pruned under `!=` — NaN
/// satisfies every `!=` comparison, so pruning would drop matching cells.
/// The synopsis excludes NaN from its extrema and bins, which makes the
/// `has_nan` flag the only thing blocking the constant-tile rule.
#[test]
fn all_nan_tile_ne_is_never_pruned() {
    let cell = CellType::of::<f64>();
    let mut payload = Vec::new();
    for _ in 0..4 {
        payload.extend_from_slice(&f64::NAN.to_le_bytes());
    }
    let syn = TileSynopsis::scan(&cell, &payload);
    assert!(syn.has_nan());
    assert_eq!(syn.bins(), 0);
    let p = CellPredicate {
        op: PredOp::Ne,
        literal: 0.0,
    };
    // NaN != 0.0 is true, so every cell matches and pruning is unsound.
    assert!(p.matches(f64::NAN));
    assert!(!p.prunes_tile(&syn), "all-NaN tile pruned under !=");
    assert!(p.prune_rule(&syn).is_none());
}

/// EXPLAIN must be the executor's decision procedure, not a description of
/// it: for any array, tiling, region and predicate, the report's fetched
/// and pruned tile counts reconcile exactly with the executed statement's
/// `tiles_read` / `tiles_pruned` counters — for masked range reads and for
/// every condenser kind.
#[test]
fn explain_reconciles_with_executor_counters() {
    check(
        "explain_reconciles_with_executor_counters",
        64,
        |s| {
            let dom = domain(s, 2);
            let sch = scheme(s, &dom);
            let query = subdomain(s, &dom);
            let pred = cell_predicate(s);
            let with_pred = s.bool();
            let kind = s.usize_in(0, 6);
            (dom, sch, query, pred, with_pred, kind)
        },
        |(dom, sch, query, pred, with_pred, kind)| {
            let db = Database::in_memory().unwrap();
            db.create_object(
                "obj",
                MddType::new(
                    CellType::of::<u16>(),
                    tilestore_geometry::DefDomain::unlimited(2).unwrap(),
                ),
                sch.clone(),
            )
            .unwrap();
            let data = Array::from_fn(dom.clone(), |p| (p[0] * 131 + p[1] * 7) as u16).unwrap();
            db.insert("obj", &data).unwrap();
            let snap = db.begin_read();
            let predicate = with_pred.then_some(pred);

            // Range read: plan first, then execute, same snapshot.
            let plan = snap.explain_range("obj", query, predicate).unwrap();
            let q = snap.range_query_where("obj", query, predicate).unwrap();
            prop_assert_eq!(
                plan.fetched(),
                q.stats.tiles_read,
                "range fetched mismatch: {:?}",
                plan
            );
            prop_assert_eq!(
                plan.pruned(),
                q.stats.tiles_pruned,
                "range pruned mismatch: {:?}",
                plan
            );
            prop_assert_eq!(
                plan.tiles.len() as u64,
                q.stats.tiles_read + q.stats.tiles_pruned
            );

            // Condenser: the aggregate path adds the synopsis short-circuit.
            let agg = [
                AggKind::Sum,
                AggKind::Avg,
                AggKind::Min,
                AggKind::Max,
                AggKind::CountNonDefault,
                AggKind::SomeNonDefault,
                AggKind::AllNonDefault,
            ][*kind];
            let plan = snap
                .explain_aggregate("obj", query, agg, predicate)
                .unwrap();
            let (_, stats) = snap.aggregate_where("obj", query, agg, predicate).unwrap();
            prop_assert_eq!(
                plan.fetched(),
                stats.tiles_read,
                "{:?} fetched mismatch: {:?}",
                agg,
                plan
            );
            prop_assert_eq!(
                plan.pruned(),
                stats.tiles_pruned,
                "{:?} pruned mismatch: {:?}",
                agg,
                plan
            );
            Ok(())
        },
    );
}

/// Every tile of every object must carry a synopsis that agrees exactly
/// with a fresh scan of its payload, and the bitmap index must mirror the
/// per-tile bin masks — across insert, update, delete and retile.
#[test]
fn synopses_stay_consistent_under_mutation() {
    check(
        "synopses_stay_consistent_under_mutation",
        48,
        |s| {
            let base = domain(s, 2);
            let patches = s.vec_of(1, 4, |s| (domain(s, 2), s.u16(), s.bool()));
            let final_scheme = scheme(s, &base);
            (base, patches, final_scheme)
        },
        |(base, patches, final_scheme)| {
            let db = Database::in_memory().unwrap();
            db.create_object(
                "obj",
                MddType::new(
                    CellType::of::<u16>(),
                    tilestore_geometry::DefDomain::unlimited(2).unwrap(),
                ),
                Scheme::Aligned(AlignedTiling::regular(2, 512)),
            )
            .unwrap();
            let initial = Array::from_fn(base.clone(), |p| (p[0] * 31 + p[1] + 1) as u16).unwrap();
            db.insert("obj", &initial).unwrap();
            assert_synopses_consistent(&db)?;

            for (region, value, is_delete) in patches {
                if *is_delete {
                    db.delete_region("obj", region).unwrap();
                } else {
                    let patch = Array::filled(region.clone(), &value.to_le_bytes()).unwrap();
                    db.update("obj", &patch).unwrap();
                }
                assert_synopses_consistent(&db)?;
            }
            db.retile("obj", final_scheme.clone()).unwrap();
            assert_synopses_consistent(&db)
        },
    );
}

fn assert_synopses_consistent(
    db: &Database<tilestore_storage::MemPageStore>,
) -> Result<(), String> {
    let meta = db.object("obj").unwrap();
    let mut or_of_masks = 0u64;
    for (i, tile) in meta.tiles.iter().enumerate() {
        let Some(syn) = &tile.synopsis else {
            return Err(format!("tile {i} over {} has no synopsis", tile.domain));
        };
        prop_assert_eq!(syn.cells(), tile.domain.cells());
        prop_assert!(syn.non_default() <= syn.cells());
        // null_mask is zero exactly when no cell holds the default.
        prop_assert_eq!(syn.null_mask() == 0, syn.non_default() == syn.cells());
        prop_assert!(syn.is_numeric() && !syn.has_nan());
        if syn.cells() > 0 {
            prop_assert!(syn.min().unwrap() <= syn.max().unwrap());
        }
        // The stored synopsis agrees exactly with a fresh scan of the
        // tile's cells (a range query of the tile domain returns them in
        // storage order).
        let payload = db.range_query("obj", &tile.domain).unwrap().array;
        let fresh = TileSynopsis::scan(&meta.mdd_type.cell, payload.bytes());
        prop_assert_eq!(*syn, fresh, "tile {} over {}", i, tile.domain);
        or_of_masks |= syn.bins();
    }
    let Some(ix) = &meta.value_index else {
        return Err("object has no bitmap value index".to_string());
    };
    prop_assert_eq!(ix.len(), meta.tiles.len());
    prop_assert_eq!(ix.summary(), or_of_masks);
    for (i, tile) in meta.tiles.iter().enumerate() {
        prop_assert_eq!(ix.tile_mask(i), tile.synopsis.as_ref().unwrap().bins());
    }
    Ok(())
}

/// Update/delete model check: the stored object must always agree with
/// a shadow dense array maintained by plain writes.
#[test]
fn update_and_delete_match_shadow_model() {
    check(
        "update_and_delete_match_shadow_model",
        64,
        |s| {
            let base = domain(s, 2);
            let patches = s.vec_of(1, 5, |s| (domain(s, 2), s.u16(), s.bool()));
            (base, patches)
        },
        |(base, patches)| {
            let db = Database::in_memory().unwrap();
            db.create_object(
                "obj",
                MddType::new(
                    CellType::of::<u16>(),
                    tilestore_geometry::DefDomain::unlimited(2).unwrap(),
                ),
                Scheme::Aligned(AlignedTiling::regular(2, 512)),
            )
            .unwrap();
            let initial = Array::from_fn(base.clone(), |p| (p[0] * 31 + p[1] + 1) as u16).unwrap();
            db.insert("obj", &initial).unwrap();

            // Shadow model over the hull of everything we will touch.
            let mut world = base.clone();
            for (d, _, _) in patches {
                world = world.hull(d).unwrap();
            }
            let mut shadow = Array::filled(world.clone(), &[0, 0]).unwrap();
            shadow.paste(&initial).unwrap();

            for (region, value, is_delete) in patches {
                if *is_delete {
                    db.delete_region("obj", region).unwrap();
                    shadow.fill(region, &[0, 0]).unwrap();
                } else {
                    let patch = Array::filled(region.clone(), &value.to_le_bytes()).unwrap();
                    db.update("obj", &patch).unwrap();
                    shadow.paste(&patch).unwrap();
                }
            }

            let out = db.range_query("obj", &world).unwrap().array;
            prop_assert_eq!(out, shadow);
            Ok(())
        },
    );
}
