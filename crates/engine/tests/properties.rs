//! Property tests for the engine's core invariant: for any array, any
//! tiling scheme and any query region, `insert` followed by `range_query`
//! returns exactly the original cells (default value outside coverage).

use tilestore_engine::{Array, CellType, Database, MddType};
use tilestore_geometry::{Domain, Point, PointIter};
use tilestore_testkit::prop::{check, Source};
use tilestore_testkit::{prop_assert, prop_assert_eq};
use tilestore_tiling::{
    AlignedTiling, AreasOfInterestTiling, AxisPartition, DirectionalTiling, Scheme, SingleTile,
    TileConfig,
};

fn domain(s: &mut Source, dim: usize) -> Domain {
    let bounds: Vec<(i64, i64)> = (0..dim)
        .map(|_| {
            let lo = s.i64_in(-20, 19);
            let ext = s.i64_in(1, 24);
            (lo, lo + ext)
        })
        .collect();
    Domain::from_bounds(&bounds).unwrap()
}

fn subdomain(s: &mut Source, dom: &Domain) -> Domain {
    let bounds: Vec<(i64, i64)> = dom
        .ranges()
        .iter()
        .map(|r| {
            let a = s.i64_in(r.lo(), r.hi());
            let b = s.i64_in(a, r.hi());
            (a, b)
        })
        .collect();
    Domain::from_bounds(&bounds).unwrap()
}

fn max_size(s: &mut Source) -> u64 {
    [512u64, 2048, 16 * 1024][s.usize_in(0, 2)]
}

/// A random scheme of any of the implemented families.
fn scheme(s: &mut Source, dom: &Domain) -> Scheme {
    let dim = dom.dim();
    match s.weighted(&[1, 1, 1, 1, 1]) {
        0 => Scheme::Aligned(AlignedTiling::regular(dim, max_size(s))),
        1 => Scheme::SingleTile(SingleTile),
        2 => {
            let star_axis = s.usize_in(0, dim - 1);
            let entries: Vec<tilestore_tiling::Extent> = (0..dim)
                .map(|i| {
                    if i == star_axis {
                        tilestore_tiling::Extent::Unbounded
                    } else {
                        tilestore_tiling::Extent::Fixed(1)
                    }
                })
                .collect();
            Scheme::Aligned(AlignedTiling::new(
                TileConfig::new(entries).unwrap(),
                max_size(s),
            ))
        }
        3 => {
            let f = 0.2 + 0.6 * s.f64_unit();
            let r = dom.axis(0);
            let cut = r.lo() + ((r.extent() as f64) * f) as i64;
            let points = if cut > r.lo() && cut < r.hi() {
                vec![r.lo(), cut, r.hi()]
            } else {
                vec![r.lo(), r.hi()]
            };
            Scheme::Directional(DirectionalTiling::new(
                vec![AxisPartition::new(0, points)],
                2048,
            ))
        }
        _ => {
            let areas = s.vec_of(1, 2, |s| subdomain(s, dom));
            Scheme::AreasOfInterest(AreasOfInterestTiling::new(areas, 4096))
        }
    }
}

#[test]
fn insert_query_round_trip() {
    check(
        "insert_query_round_trip",
        64,
        |s| {
            let dom = domain(s, 2);
            let sch = scheme(s, &dom);
            let query = subdomain(s, &dom);
            (dom, sch, query)
        },
        |(dom, sch, query)| {
            let db = Database::in_memory().unwrap();
            db.create_object(
                "obj",
                MddType::new(
                    CellType::of::<u16>(),
                    tilestore_geometry::DefDomain::unlimited(2).unwrap(),
                ),
                sch.clone(),
            )
            .unwrap();
            let data = Array::from_fn(dom.clone(), |p| (p[0] * 131 + p[1] * 7) as u16).unwrap();
            db.insert("obj", &data).unwrap();

            // Querying any subregion returns exactly the original cells.
            let q = db.range_query("obj", query).unwrap();
            prop_assert_eq!(&q.array, &data.extract(query).unwrap());
            prop_assert_eq!(q.stats.cells_copied, query.cells());
            prop_assert_eq!(q.stats.cells_defaulted, 0);
            // Tiles processed cover at least the query.
            prop_assert!(q.stats.cells_processed >= query.cells());
            Ok(())
        },
    );
}

#[test]
fn partial_coverage_reads_default_outside() {
    check(
        "partial_coverage_reads_default_outside",
        64,
        |s| (domain(s, 2), domain(s, 2)),
        |(dom, probe)| {
            let db = Database::in_memory().unwrap();
            db.create_object(
                "obj",
                MddType::new(
                    CellType::with_default("u16", 0xABu16.to_le_bytes().to_vec()),
                    tilestore_geometry::DefDomain::unlimited(2).unwrap(),
                ),
                Scheme::Aligned(AlignedTiling::regular(2, 1024)),
            )
            .unwrap();
            let data = Array::from_fn(dom.clone(), |p| (p[0] + p[1] + 1000) as u16).unwrap();
            db.insert("obj", &data).unwrap();

            let out = db.range_query("obj", probe).unwrap().array;
            let layout = tilestore_geometry::RowMajor::new(probe.clone()).unwrap();
            for p in PointIter::new(probe.clone()).take(512) {
                let got: u16 = out.get(&p).unwrap();
                if dom.contains_point(&p) {
                    prop_assert_eq!(got, (p[0] + p[1] + 1000) as u16);
                } else {
                    prop_assert_eq!(
                        got,
                        0xAB,
                        "point {} offset {}",
                        p.clone(),
                        layout.offset_of(&p).unwrap()
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn retile_preserves_content() {
    check(
        "retile_preserves_content",
        64,
        |s| {
            let dom = domain(s, 2);
            let s1 = scheme(s, &dom);
            let s2 = scheme(s, &dom);
            (dom, s1, s2)
        },
        |(dom, s1, s2)| {
            let db = Database::in_memory().unwrap();
            db.create_object(
                "obj",
                MddType::new(
                    CellType::of::<u16>(),
                    tilestore_geometry::DefDomain::unlimited(2).unwrap(),
                ),
                s1.clone(),
            )
            .unwrap();
            let data = Array::from_fn(dom.clone(), |p| (p[0] * 3 + p[1]) as u16).unwrap();
            db.insert("obj", &data).unwrap();
            db.retile("obj", s2.clone()).unwrap();
            let out = db.range_query("obj", dom).unwrap().array;
            prop_assert_eq!(out, data);
            Ok(())
        },
    );
}

#[test]
fn point_queries_agree_with_bulk() {
    check(
        "point_queries_agree_with_bulk",
        64,
        |s| (domain(s, 3), s.next_u64()),
        |(dom, seed)| {
            let db = Database::in_memory().unwrap();
            db.create_object(
                "vol",
                MddType::new(
                    CellType::of::<u32>(),
                    tilestore_geometry::DefDomain::unlimited(3).unwrap(),
                ),
                Scheme::Aligned(AlignedTiling::regular(3, 2048)),
            )
            .unwrap();
            let data =
                Array::from_fn(dom.clone(), |p| (p[0] * 10007 + p[1] * 101 + p[2]) as u32).unwrap();
            db.insert("vol", &data).unwrap();
            // Probe three pseudo-random points.
            let mut x = seed | 1;
            for _ in 0..3 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let coords: Vec<i64> = (0..3)
                    .map(|a| {
                        let r = dom.axis(a);
                        r.lo() + ((x >> (a * 16)) % r.extent().max(1)) as i64
                    })
                    .collect();
                let p = Point::new(coords).unwrap();
                let cell = Domain::cell(&p);
                let one = db.range_query("vol", &cell).unwrap().array;
                prop_assert_eq!(one.get::<u32>(&p).unwrap(), data.get::<u32>(&p).unwrap());
            }
            Ok(())
        },
    );
}

/// Update/delete model check: the stored object must always agree with
/// a shadow dense array maintained by plain writes.
#[test]
fn update_and_delete_match_shadow_model() {
    check(
        "update_and_delete_match_shadow_model",
        64,
        |s| {
            let base = domain(s, 2);
            let patches = s.vec_of(1, 5, |s| (domain(s, 2), s.u16(), s.bool()));
            (base, patches)
        },
        |(base, patches)| {
            let db = Database::in_memory().unwrap();
            db.create_object(
                "obj",
                MddType::new(
                    CellType::of::<u16>(),
                    tilestore_geometry::DefDomain::unlimited(2).unwrap(),
                ),
                Scheme::Aligned(AlignedTiling::regular(2, 512)),
            )
            .unwrap();
            let initial = Array::from_fn(base.clone(), |p| (p[0] * 31 + p[1] + 1) as u16).unwrap();
            db.insert("obj", &initial).unwrap();

            // Shadow model over the hull of everything we will touch.
            let mut world = base.clone();
            for (d, _, _) in patches {
                world = world.hull(d).unwrap();
            }
            let mut shadow = Array::filled(world.clone(), &[0, 0]).unwrap();
            shadow.paste(&initial).unwrap();

            for (region, value, is_delete) in patches {
                if *is_delete {
                    db.delete_region("obj", region).unwrap();
                    shadow.fill(region, &[0, 0]).unwrap();
                } else {
                    let patch = Array::filled(region.clone(), &value.to_le_bytes()).unwrap();
                    db.update("obj", &patch).unwrap();
                    shadow.paste(&patch).unwrap();
                }
            }

            let out = db.range_query("obj", &world).unwrap().array;
            prop_assert_eq!(out, shadow);
            Ok(())
        },
    );
}
