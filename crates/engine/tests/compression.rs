//! Engine-level compression tests: selective per-tile compression must be
//! transparent to queries and actually shrink sparse/smooth objects.

use tilestore_compress::{Codec, CompressionPolicy};
use tilestore_engine::{Array, CellType, Database, MddType};
use tilestore_geometry::{DefDomain, Domain, Point};
use tilestore_tiling::{AlignedTiling, Scheme};

fn d(s: &str) -> Domain {
    s.parse().unwrap()
}

fn db_with(policy: CompressionPolicy) -> Database<tilestore_storage::MemPageStore> {
    let db = Database::in_memory().unwrap();
    db.create_object(
        "obj",
        MddType::new(CellType::of::<u32>(), DefDomain::unlimited(2).unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 16 * 1024)),
    )
    .unwrap();
    db.set_compression("obj", policy).unwrap();
    db
}

/// A sparse array: 1% non-zero cells.
fn sparse_array(dom: &Domain) -> Array {
    Array::from_fn(dom.clone(), |p| {
        if (p[0] * 131 + p[1]) % 100 == 0 {
            (p[0] + p[1] + 1) as u32
        } else {
            0
        }
    })
    .unwrap()
}

#[test]
fn compressed_objects_answer_queries_exactly() {
    let dom = d("[0:199,0:199]");
    let data = sparse_array(&dom);
    for policy in [
        CompressionPolicy::None,
        CompressionPolicy::Fixed(Codec::PackBits),
        CompressionPolicy::Fixed(Codec::DeltaPackBits),
        CompressionPolicy::Fixed(Codec::ChunkOffset),
        CompressionPolicy::selective_default(),
    ] {
        let db = db_with(policy.clone());
        db.insert("obj", &data).unwrap();
        let all = db.range_query("obj", &dom).unwrap().array;
        assert_eq!(all, data, "{policy:?}");
        let sub = db.range_query("obj", &d("[50:149,30:59]")).unwrap().array;
        assert_eq!(
            sub,
            data.extract(&d("[50:149,30:59]")).unwrap(),
            "{policy:?}"
        );
    }
}

#[test]
fn sparse_data_shrinks_physical_storage() {
    let dom = d("[0:199,0:199]");
    let data = sparse_array(&dom);

    let raw = db_with(CompressionPolicy::None);
    raw.insert("obj", &data).unwrap();
    let raw_bytes = raw.object_physical_bytes("obj").unwrap();

    let packed = db_with(CompressionPolicy::selective_default());
    packed.insert("obj", &data).unwrap();
    let packed_bytes = packed.object_physical_bytes("obj").unwrap();

    assert!(
        packed_bytes * 5 < raw_bytes,
        "expected >5x shrink on 1%-dense data: {packed_bytes} vs {raw_bytes}"
    );
    // And fewer pages are read per query — compression reduces t_o.
    let q = d("[0:99,0:99]");
    let raw_stats = raw.range_query("obj", &q).unwrap().stats;
    let packed_stats = packed.range_query("obj", &q).unwrap().stats;
    assert!(packed_stats.io.pages_read < raw_stats.io.pages_read);
}

#[test]
fn mixed_codecs_within_one_object() {
    // Insert one batch raw, then switch the policy and grow the object:
    // both generations of tiles must read back correctly.
    let db = db_with(CompressionPolicy::None);
    let first = sparse_array(&d("[0:99,0:99]"));
    db.insert("obj", &first).unwrap();
    db.set_compression("obj", CompressionPolicy::selective_default())
        .unwrap();
    let second = sparse_array(&d("[200:299,0:99]"));
    db.insert("obj", &second).unwrap();

    let a = db.range_query("obj", &d("[0:99,0:99]")).unwrap().array;
    assert_eq!(a, first);
    let b = db.range_query("obj", &d("[200:299,0:99]")).unwrap().array;
    assert_eq!(b, second);
}

#[test]
fn retile_rewrites_under_new_policy() {
    let dom = d("[0:99,0:99]");
    let data = sparse_array(&dom);
    let db = db_with(CompressionPolicy::None);
    db.insert("obj", &data).unwrap();
    let before = db.object_physical_bytes("obj").unwrap();

    db.set_compression("obj", CompressionPolicy::selective_default())
        .unwrap();
    db.retile("obj", Scheme::Aligned(AlignedTiling::regular(2, 16 * 1024)))
        .unwrap();
    let after = db.object_physical_bytes("obj").unwrap();
    assert!(
        after < before,
        "retile under compression: {after} vs {before}"
    );

    let out = db.range_query("obj", &dom).unwrap().array;
    assert_eq!(out, data);
}

#[test]
fn compression_persists_across_reopen() {
    let dir = tilestore_testkit::tempdir().unwrap();
    let dom = d("[0:99,0:99]");
    let data = sparse_array(&dom);
    {
        let db = Database::create_dir(dir.path()).unwrap();
        db.create_object(
            "obj",
            MddType::new(CellType::of::<u32>(), DefDomain::unlimited(2).unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 16 * 1024)),
        )
        .unwrap();
        db.set_compression("obj", CompressionPolicy::selective_default())
            .unwrap();
        db.insert("obj", &data).unwrap();
        db.save(dir.path()).unwrap();
    }
    let db = Database::open_dir(dir.path()).unwrap();
    let out = db.range_query("obj", &dom).unwrap().array;
    assert_eq!(out, data);
    assert_eq!(
        db.object("obj").unwrap().compression,
        CompressionPolicy::selective_default()
    );
    let probe = Point::from_slice(&[0, 0]);
    assert_eq!(out.get::<u32>(&probe).unwrap(), 1);
}
