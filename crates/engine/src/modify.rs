//! Modification of stored cells: updates and removal of regions.
//!
//! §2: storage management must support "sparsity, growth and shrinkage of
//! arrays corresponding to the insertion and removal of data".
//!
//! * [`Database::update`] overwrites cells — covered cells are rewritten in
//!   their tiles; newly-touched (previously uncovered) areas are tiled by
//!   the object's scheme and stored, so an update over a partially covered
//!   region both modifies and grows the object;
//! * [`Database::delete_region`] removes cells — tiles fully inside the
//!   region are dropped; border tiles are split into their remainder boxes
//!   (arbitrary tiling makes the resulting non-aligned layout legal). The
//!   current domain *shrinks* to the hull of the remaining tiles.
//!
//! Both are copy-on-write: a rewritten or split tile gets a *new* BLOB and
//! the old one is retired, so snapshots begun before the write keep reading
//! the old cells (never an in-place overwrite a reader could tear on).

use tilestore_compress::CellContext;
use tilestore_geometry::{difference, uncovered, Domain};
use tilestore_index::RPlusTree;
use tilestore_storage::{BlobId, PageStore};
use tilestore_tiling::TilingStrategy;

use crate::array::Array;
use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::mdd::TileMeta;
use crate::snapshot::{read_tile_payload, WriteReceipt};
use crate::synopsis::TileSynopsis;

/// Statistics of an [`Database::update`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Existing tiles whose cells were rewritten.
    pub tiles_rewritten: u64,
    /// New tiles created for previously uncovered areas.
    pub tiles_created: u64,
    /// Cells overwritten in existing tiles.
    pub cells_updated: u64,
}

/// Statistics of a [`Database::delete_region`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeleteStats {
    /// Tiles removed entirely.
    pub tiles_dropped: u64,
    /// Border tiles split into remainder boxes.
    pub tiles_split: u64,
    /// Cells removed from storage.
    pub cells_removed: u64,
}

impl<S: PageStore> Database<S> {
    /// Overwrites the cells of `array.domain()` with `array`'s values.
    ///
    /// Unlike [`Database::insert`], overlap with existing tiles is the
    /// *point*: covered cells are rewritten (each touched tile is re-encoded
    /// into a fresh BLOB under the object's compression policy); uncovered
    /// parts of the region are tiled by the object's scheme and added. The
    /// current domain grows by closure as with inserts.
    ///
    /// # Errors
    /// Type/domain validation errors, tiling and storage errors.
    pub fn update(&self, name: &str, array: &Array) -> Result<WriteReceipt<UpdateStats>> {
        let _w = self.lock_writer();
        let cat = self.current_catalog();
        let meta = &cat.entry(name)?.meta;
        let cell_size = meta.cell_size();
        if array.cell_size() != cell_size {
            return Err(EngineError::CellSizeMismatch {
                expected: cell_size,
                got: array.cell_size(),
            });
        }
        if !meta.mdd_type.definition.admits(array.domain()) {
            return Err(EngineError::OutsideDefinitionDomain {
                domain: array.domain().to_string(),
                definition: meta.mdd_type.definition.to_string(),
            });
        }
        let hits = meta.index.search(array.domain()).hits;
        let cell_type = &meta.mdd_type.cell;
        let ctx = CellContext {
            cell_size,
            default: &cell_type.default,
        };
        let mut stats = UpdateStats::default();
        let mut covered: Vec<Domain> = Vec::with_capacity(hits.len());
        let mut new_meta = (**meta).clone();
        let mut retired: Vec<BlobId> = Vec::new();

        // Rewrite intersected tiles copy-on-write.
        for pos in &hits {
            let old = &meta.tiles[*pos as usize];
            let payload = read_tile_payload(self.blob_store(), meta, old)?;
            let mut tile = Array::from_bytes(old.domain.clone(), cell_size, payload)?;
            let updated = tile.paste(array)?;
            let (stream, scan) =
                tilestore_compress::compress_with_scan(&meta.compression, tile.bytes(), &ctx)
                    .map_err(|e| EngineError::Catalog(format!("compression failed: {e}")))?;
            new_meta.tiles[*pos as usize].blob = self.blob_store().create(&stream)?;
            new_meta.tiles[*pos as usize].synopsis =
                Some(TileSynopsis::from_scan(cell_type, tile.bytes(), scan));
            retired.push(old.blob);
            stats.tiles_rewritten += 1;
            stats.cells_updated += updated;
            covered.push(old.domain.clone());
        }

        // Tile and store the previously uncovered remainder.
        let remainder = uncovered(array.domain(), &covered)?;
        for piece in remainder {
            let spec = meta.scheme.partition(&piece, cell_size)?;
            for tile_domain in spec.tiles() {
                let tile = array.extract(tile_domain)?;
                let (stream, scan) =
                    tilestore_compress::compress_with_scan(&meta.compression, tile.bytes(), &ctx)
                        .map_err(|e| EngineError::Catalog(format!("compression failed: {e}")))?;
                let blob = self.blob_store().create(&stream)?;
                let at = new_meta.tiles.len() as u64;
                new_meta.tiles.push(TileMeta {
                    domain: tile_domain.clone(),
                    blob,
                    synopsis: Some(TileSynopsis::from_scan(cell_type, tile.bytes(), scan)),
                });
                new_meta.index.insert(tile_domain.clone(), at)?;
                stats.tiles_created += 1;
            }
        }

        // Grow the current domain by closure.
        new_meta.current_domain = Some(match new_meta.current_domain.take() {
            Some(cur) => cur.hull(array.domain())?,
            None => array.domain().clone(),
        });
        retired.extend(self.refresh_value_index(&mut new_meta)?);
        let epoch = self.install_object(&cat, name, new_meta, retired);
        Ok(WriteReceipt { stats, epoch })
    }

    /// Removes every stored cell inside `region`. Reading the region
    /// afterwards returns the default value; the current domain shrinks to
    /// the hull of the remaining tiles (`None` when nothing remains).
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`]; storage errors.
    pub fn delete_region(&self, name: &str, region: &Domain) -> Result<WriteReceipt<DeleteStats>> {
        let _w = self.lock_writer();
        let cat = self.current_catalog();
        let meta = &cat.entry(name)?.meta;
        let cell_size = meta.cell_size();
        let hits = meta.index.search(region).hits;
        let cell_type = &meta.mdd_type.cell;
        let ctx = CellContext {
            cell_size,
            default: &cell_type.default,
        };
        let mut stats = DeleteStats::default();
        let mut drop_positions: Vec<u64> = Vec::new();
        let mut replacement_tiles: Vec<TileMeta> = Vec::new();
        let mut retired: Vec<BlobId> = Vec::new();

        for pos in &hits {
            let old = &meta.tiles[*pos as usize];
            if region.contains_domain(&old.domain) {
                // Whole tile vanishes.
                retired.push(old.blob);
                stats.tiles_dropped += 1;
                stats.cells_removed += old.domain.cells();
                drop_positions.push(*pos);
                continue;
            }
            // Border tile: keep only the remainder boxes, each in a fresh
            // BLOB; the original stays readable for live snapshots.
            let payload = read_tile_payload(self.blob_store(), meta, old)?;
            let tile = Array::from_bytes(old.domain.clone(), cell_size, payload)?;
            for piece in difference(&old.domain, region) {
                let part = tile.extract(&piece)?;
                let (stream, scan) =
                    tilestore_compress::compress_with_scan(&meta.compression, part.bytes(), &ctx)
                        .map_err(|e| EngineError::Catalog(format!("compression failed: {e}")))?;
                replacement_tiles.push(TileMeta {
                    domain: piece,
                    blob: self.blob_store().create(&stream)?,
                    synopsis: Some(TileSynopsis::from_scan(cell_type, part.bytes(), scan)),
                });
            }
            retired.push(old.blob);
            stats.tiles_split += 1;
            stats.cells_removed += old.domain.intersection(region).map_or(0, |i| i.cells());
            drop_positions.push(*pos);
        }

        if drop_positions.is_empty() {
            return Ok(WriteReceipt {
                stats,
                epoch: cat.version,
            });
        }

        // Rebuild the tile list and index without the dropped tiles, with
        // the replacements appended; the current domain is the hull of what
        // remains (shrinkage).
        let mut kept: Vec<TileMeta> = meta
            .tiles
            .iter()
            .enumerate()
            .filter(|(i, _)| !drop_positions.contains(&(*i as u64)))
            .map(|(_, t)| t.clone())
            .collect();
        kept.extend(replacement_tiles);
        let entries: Vec<(Domain, u64)> = kept
            .iter()
            .enumerate()
            .map(|(i, t)| (t.domain.clone(), i as u64))
            .collect();
        let mut new_meta = (**meta).clone();
        new_meta.index = RPlusTree::bulk_load(
            new_meta.mdd_type.dim(),
            tilestore_index::DEFAULT_FANOUT,
            entries,
        )?;
        new_meta.current_domain = kept
            .iter()
            .map(|t| t.domain.clone())
            .reduce(|a, b| a.hull(&b).expect("uniform dimensionality"));
        new_meta.tiles = kept;
        retired.extend(self.refresh_value_index(&mut new_meta)?);
        let epoch = self.install_object(&cat, name, new_meta, retired);
        Ok(WriteReceipt { stats, epoch })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::celltype::CellType;
    use crate::mdd::MddType;
    use tilestore_geometry::{DefDomain, Point};
    use tilestore_tiling::{AlignedTiling, Scheme};

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    fn setup() -> Database<tilestore_storage::MemPageStore> {
        let db = Database::in_memory().unwrap();
        db.create_object(
            "m",
            MddType::new(CellType::of::<u16>(), DefDomain::unlimited(2).unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 512)),
        )
        .unwrap();
        db.insert(
            "m",
            &Array::from_fn(d("[0:31,0:31]"), |p| (p[0] * 32 + p[1]) as u16).unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn update_overwrites_covered_cells() {
        let db = setup();
        let patch = Array::filled(d("[10:20,10:20]"), &9999u16.to_le_bytes()).unwrap();
        let stats = db.update("m", &patch).unwrap();
        assert!(stats.tiles_rewritten > 0);
        assert_eq!(stats.tiles_created, 0);
        assert_eq!(stats.cells_updated, 121);
        let q = db.range_query("m", &d("[0:31,0:31]")).unwrap();
        assert_eq!(
            q.array.get::<u16>(&Point::from_slice(&[15, 15])).unwrap(),
            9999
        );
        assert_eq!(
            q.array.get::<u16>(&Point::from_slice(&[5, 5])).unwrap(),
            5 * 32 + 5
        );
    }

    #[test]
    fn update_grows_into_uncovered_space() {
        let db = setup();
        // Patch straddling coverage: half over existing cells, half beyond.
        let patch = Array::filled(d("[24:39,0:15]"), &7u16.to_le_bytes()).unwrap();
        let stats = db.update("m", &patch).unwrap();
        assert!(stats.tiles_rewritten > 0);
        assert!(stats.tiles_created > 0, "uncovered part must be stored");
        assert_eq!(
            db.object("m").unwrap().current_domain,
            Some(d("[0:39,0:31]"))
        );
        let q = db.range_query("m", &d("[24:39,0:15]")).unwrap();
        assert!(q.array.to_cells::<u16>().unwrap().iter().all(|&c| c == 7));
    }

    #[test]
    fn update_validates_type_and_domain() {
        let db = setup();
        let wrong = Array::filled(d("[0:1,0:1]"), &[1u8]).unwrap();
        assert!(matches!(
            db.update("m", &wrong),
            Err(EngineError::CellSizeMismatch { .. })
        ));
        assert!(db.update("nope", &wrong).is_err());
    }

    #[test]
    fn delete_whole_tiles_and_read_default() {
        let db = setup();
        let before_blobs = db.blob_store().blob_count();
        let stats = db.delete_region("m", &d("[0:15,0:15]")).unwrap();
        assert!(stats.tiles_dropped > 0);
        assert_eq!(stats.cells_removed, 256);
        assert!(db.blob_store().blob_count() < before_blobs + stats.tiles_split as usize * 4);
        let q = db.range_query("m", &d("[0:15,0:15]")).unwrap();
        assert!(q.array.to_cells::<u16>().unwrap().iter().all(|&c| c == 0));
        // Cells outside the deleted region survive.
        let q = db.range_query("m", &d("[16:31,0:31]")).unwrap();
        assert_eq!(
            q.array.get::<u16>(&Point::from_slice(&[20, 20])).unwrap(),
            20 * 32 + 20
        );
    }

    #[test]
    fn delete_splits_border_tiles() {
        let db = setup();
        // A region not aligned to the 16x16 tile grid.
        let region = d("[5:12,5:26]");
        let stats = db.delete_region("m", &region).unwrap();
        assert!(stats.tiles_split > 0);
        assert_eq!(stats.cells_removed, region.cells());
        let q = db.range_query("m", &d("[0:31,0:31]")).unwrap();
        for p in tilestore_geometry::PointIter::new(d("[0:31,0:31]")) {
            let got: u16 = q.array.get(&p).unwrap();
            if region.contains_point(&p) {
                assert_eq!(got, 0, "deleted cell {p} must read default");
            } else {
                assert_eq!(got, (p[0] * 32 + p[1]) as u16, "cell {p} must survive");
            }
        }
    }

    #[test]
    fn delete_shrinks_current_domain() {
        let db = setup();
        db.delete_region("m", &d("[16:31,0:31]")).unwrap();
        assert_eq!(
            db.object("m").unwrap().current_domain,
            Some(d("[0:15,0:31]")),
            "current domain shrinks to the remaining hull"
        );
        // Deleting everything empties the object.
        db.delete_region("m", &d("[0:31,0:31]")).unwrap();
        assert_eq!(db.object("m").unwrap().current_domain, None);
        assert_eq!(db.object("m").unwrap().tile_count(), 0);
        assert_eq!(db.blob_store().blob_count(), 0);
        // And it can be refilled.
        db.insert("m", &Array::filled(d("[0:3,0:3]"), &[1, 0]).unwrap())
            .unwrap();
        assert_eq!(db.object("m").unwrap().current_domain, Some(d("[0:3,0:3]")));
    }

    #[test]
    fn delete_disjoint_region_is_a_noop() {
        let db = setup();
        let before = db.object("m").unwrap().tile_count();
        let receipt = db.delete_region("m", &d("[100:110,100:110]")).unwrap();
        assert_eq!(receipt.stats, DeleteStats::default());
        assert_eq!(db.object("m").unwrap().tile_count(), before);
        // No catalog swap happened: the epoch is unchanged.
        assert_eq!(receipt.epoch, db.begin_read().epoch());
    }

    #[test]
    fn update_then_delete_with_compression() {
        use tilestore_compress::CompressionPolicy;
        let db = setup();
        db.set_compression("m", CompressionPolicy::selective_default())
            .unwrap();
        let patch = Array::filled(d("[8:23,8:23]"), &0xABCDu16.to_le_bytes()).unwrap();
        db.update("m", &patch).unwrap();
        db.delete_region("m", &d("[0:7,0:31]")).unwrap();
        let q = db.range_query("m", &d("[0:31,0:31]")).unwrap();
        assert_eq!(
            q.array.get::<u16>(&Point::from_slice(&[10, 10])).unwrap(),
            0xABCD
        );
        assert_eq!(q.array.get::<u16>(&Point::from_slice(&[3, 3])).unwrap(), 0);
        assert_eq!(
            q.array.get::<u16>(&Point::from_slice(&[30, 3])).unwrap(),
            30 * 32 + 3
        );
    }

    #[test]
    fn snapshot_reads_pre_update_cells() {
        let db = setup();
        let snap = db.begin_read();
        let patch = Array::filled(d("[0:31,0:31]"), &4242u16.to_le_bytes()).unwrap();
        db.update("m", &patch).unwrap();
        // The snapshot still sees the original values; a fresh read sees
        // the patch.
        let old = snap.range_query("m", &d("[3:3,4:4]")).unwrap();
        assert_eq!(
            old.array.get::<u16>(&Point::from_slice(&[3, 4])).unwrap(),
            3 * 32 + 4
        );
        let new = db.range_query("m", &d("[3:3,4:4]")).unwrap();
        assert_eq!(
            new.array.get::<u16>(&Point::from_slice(&[3, 4])).unwrap(),
            4242
        );
    }
}
