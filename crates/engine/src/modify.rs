//! In-place modification: cell updates and removal of regions.
//!
//! §2: storage management must support "sparsity, growth and shrinkage of
//! arrays corresponding to the insertion and removal of data".
//!
//! * [`Database::update`] overwrites cells — covered cells are rewritten in
//!   their tiles; newly-touched (previously uncovered) areas are tiled by
//!   the object's scheme and stored, so an update over a partially covered
//!   region both modifies and grows the object;
//! * [`Database::delete_region`] removes cells — tiles fully inside the
//!   region are dropped; border tiles are split into their remainder boxes
//!   (arbitrary tiling makes the resulting non-aligned layout legal). The
//!   current domain *shrinks* to the hull of the remaining tiles.

use tilestore_compress::CellContext;
use tilestore_geometry::{difference, uncovered, Domain};
use tilestore_index::RPlusTree;
use tilestore_storage::PageStore;
use tilestore_tiling::TilingStrategy;

use crate::array::Array;
use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::mdd::TileMeta;

/// Statistics of an [`Database::update`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Existing tiles whose cells were rewritten.
    pub tiles_rewritten: u64,
    /// New tiles created for previously uncovered areas.
    pub tiles_created: u64,
    /// Cells overwritten in existing tiles.
    pub cells_updated: u64,
}

/// Statistics of a [`Database::delete_region`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeleteStats {
    /// Tiles removed entirely.
    pub tiles_dropped: u64,
    /// Border tiles split into remainder boxes.
    pub tiles_split: u64,
    /// Cells removed from storage.
    pub cells_removed: u64,
}

impl<S: PageStore> Database<S> {
    /// Overwrites the cells of `array.domain()` with `array`'s values.
    ///
    /// Unlike [`Database::insert`], overlap with existing tiles is the
    /// *point*: covered cells are rewritten in place (tile BLOBs are
    /// re-encoded under the object's compression policy); uncovered parts
    /// of the region are tiled by the object's scheme and added. The
    /// current domain grows by closure as with inserts.
    ///
    /// # Errors
    /// Type/domain validation errors, tiling and storage errors.
    pub fn update(&mut self, name: &str, array: &Array) -> Result<UpdateStats> {
        let (cell_size, compression, default, scheme, hits) = {
            let meta = self.object(name)?;
            if array.cell_size() != meta.cell_size() {
                return Err(EngineError::CellSizeMismatch {
                    expected: meta.cell_size(),
                    got: array.cell_size(),
                });
            }
            if !meta.mdd_type.definition.admits(array.domain()) {
                return Err(EngineError::OutsideDefinitionDomain {
                    domain: array.domain().to_string(),
                    definition: meta.mdd_type.definition.to_string(),
                });
            }
            (
                meta.cell_size(),
                meta.compression.clone(),
                meta.mdd_type.cell.default.clone(),
                meta.scheme.clone(),
                meta.index.search(array.domain()).hits,
            )
        };
        let ctx = CellContext {
            cell_size,
            default: &default,
        };
        let mut stats = UpdateStats::default();
        let mut covered: Vec<Domain> = Vec::with_capacity(hits.len());

        // Rewrite intersected tiles.
        for pos in &hits {
            let (tile_domain, blob) = {
                let meta = self.object(name)?;
                let t = &meta.tiles[*pos as usize];
                (t.domain.clone(), t.blob)
            };
            let meta = self.object(name)?;
            let payload = self.read_tile_payload(meta, &meta.tiles[*pos as usize])?;
            let mut tile = Array::from_bytes(tile_domain.clone(), cell_size, payload)?;
            let updated = tile.paste(array)?;
            let stream = tilestore_compress::compress(&compression, tile.bytes(), &ctx)
                .map_err(|e| EngineError::Catalog(format!("compression failed: {e}")))?;
            self.blob_store_mut().update(blob, &stream)?;
            stats.tiles_rewritten += 1;
            stats.cells_updated += updated;
            covered.push(tile_domain);
        }

        // Tile and store the previously uncovered remainder.
        let remainder = uncovered(array.domain(), &covered)?;
        for piece in remainder {
            let spec = scheme.partition(&piece, cell_size)?;
            for tile_domain in spec.tiles() {
                let tile = array.extract(tile_domain)?;
                let stream = tilestore_compress::compress(&compression, tile.bytes(), &ctx)
                    .map_err(|e| EngineError::Catalog(format!("compression failed: {e}")))?;
                let blob = self.blob_store_mut().create(&stream)?;
                self.push_tile(name, tile_domain.clone(), blob)?;
                stats.tiles_created += 1;
            }
        }

        // Grow the current domain by closure.
        self.grow_current_domain(name, array.domain())?;
        Ok(stats)
    }

    /// Removes every stored cell inside `region`. Reading the region
    /// afterwards returns the default value; the current domain shrinks to
    /// the hull of the remaining tiles (`None` when nothing remains).
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`]; storage errors.
    pub fn delete_region(&mut self, name: &str, region: &Domain) -> Result<DeleteStats> {
        let (cell_size, compression, default, hits) = {
            let meta = self.object(name)?;
            (
                meta.cell_size(),
                meta.compression.clone(),
                meta.mdd_type.cell.default.clone(),
                meta.index.search(region).hits,
            )
        };
        let ctx = CellContext {
            cell_size,
            default: &default,
        };
        let mut stats = DeleteStats::default();
        let mut drop_positions: Vec<u64> = Vec::new();
        let mut replacement_tiles: Vec<TileMeta> = Vec::new();

        for pos in &hits {
            let (tile_domain, blob) = {
                let meta = self.object(name)?;
                let t = &meta.tiles[*pos as usize];
                (t.domain.clone(), t.blob)
            };
            if region.contains_domain(&tile_domain) {
                // Whole tile vanishes.
                self.blob_store_mut().delete(blob)?;
                stats.tiles_dropped += 1;
                stats.cells_removed += tile_domain.cells();
                drop_positions.push(*pos);
                continue;
            }
            // Border tile: keep only the remainder boxes.
            let meta = self.object(name)?;
            let payload = self.read_tile_payload(meta, &meta.tiles[*pos as usize])?;
            let tile = Array::from_bytes(tile_domain.clone(), cell_size, payload)?;
            let remainder = difference(&tile_domain, region);
            for piece in remainder {
                let part = tile.extract(&piece)?;
                let stream = tilestore_compress::compress(&compression, part.bytes(), &ctx)
                    .map_err(|e| EngineError::Catalog(format!("compression failed: {e}")))?;
                let new_blob = self.blob_store_mut().create(&stream)?;
                replacement_tiles.push(TileMeta {
                    domain: piece,
                    blob: new_blob,
                });
            }
            self.blob_store_mut().delete(blob)?;
            stats.tiles_split += 1;
            stats.cells_removed += tile_domain.intersection(region).map_or(0, |i| i.cells());
            drop_positions.push(*pos);
        }

        if !drop_positions.is_empty() {
            self.rebuild_tiles(name, &drop_positions, replacement_tiles)?;
        }
        Ok(stats)
    }
}

// Internal helpers on Database used by the modification paths; kept in this
// module to keep `database.rs` focused on the §5 core.
impl<S: PageStore> Database<S> {
    /// Appends one tile to an object (tile list + index).
    pub(crate) fn push_tile(
        &mut self,
        name: &str,
        domain: Domain,
        blob: tilestore_storage::BlobId,
    ) -> Result<()> {
        let meta = self.object_mut(name)?;
        let pos = meta.tiles.len() as u64;
        meta.tiles.push(TileMeta {
            domain: domain.clone(),
            blob,
        });
        meta.index.insert(domain, pos)?;
        Ok(())
    }

    /// Grows the current domain by closure with `domain`.
    pub(crate) fn grow_current_domain(&mut self, name: &str, domain: &Domain) -> Result<()> {
        let meta = self.object_mut(name)?;
        meta.current_domain = Some(match meta.current_domain.take() {
            Some(cur) => cur.hull(domain)?,
            None => domain.clone(),
        });
        Ok(())
    }

    /// Rebuilds the tile list and index after removals, installing
    /// `replacements`, and recomputes the (possibly shrunken) current
    /// domain.
    fn rebuild_tiles(
        &mut self,
        name: &str,
        dropped: &[u64],
        replacements: Vec<TileMeta>,
    ) -> Result<()> {
        let meta = self.object_mut(name)?;
        let mut kept: Vec<TileMeta> = meta
            .tiles
            .drain(..)
            .enumerate()
            .filter(|(i, _)| !dropped.contains(&(*i as u64)))
            .map(|(_, t)| t)
            .collect();
        kept.extend(replacements);
        let entries: Vec<(Domain, u64)> = kept
            .iter()
            .enumerate()
            .map(|(i, t)| (t.domain.clone(), i as u64))
            .collect();
        meta.index = RPlusTree::bulk_load(
            meta.mdd_type.dim(),
            tilestore_index::DEFAULT_FANOUT,
            entries,
        )?;
        // Shrinkage: the current domain is the hull of what remains.
        meta.current_domain = kept
            .iter()
            .map(|t| t.domain.clone())
            .reduce(|a, b| a.hull(&b).expect("uniform dimensionality"));
        meta.tiles = kept;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::celltype::CellType;
    use crate::mdd::MddType;
    use tilestore_geometry::{DefDomain, Point};
    use tilestore_tiling::{AlignedTiling, Scheme};

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    fn setup() -> Database<tilestore_storage::MemPageStore> {
        let mut db = Database::in_memory().unwrap();
        db.create_object(
            "m",
            MddType::new(CellType::of::<u16>(), DefDomain::unlimited(2).unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 512)),
        )
        .unwrap();
        db.insert(
            "m",
            &Array::from_fn(d("[0:31,0:31]"), |p| (p[0] * 32 + p[1]) as u16).unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn update_overwrites_covered_cells() {
        let mut db = setup();
        let patch = Array::filled(d("[10:20,10:20]"), &9999u16.to_le_bytes()).unwrap();
        let stats = db.update("m", &patch).unwrap();
        assert!(stats.tiles_rewritten > 0);
        assert_eq!(stats.tiles_created, 0);
        assert_eq!(stats.cells_updated, 121);
        let (out, _) = db.range_query("m", &d("[0:31,0:31]")).unwrap();
        assert_eq!(out.get::<u16>(&Point::from_slice(&[15, 15])).unwrap(), 9999);
        assert_eq!(
            out.get::<u16>(&Point::from_slice(&[5, 5])).unwrap(),
            5 * 32 + 5
        );
    }

    #[test]
    fn update_grows_into_uncovered_space() {
        let mut db = setup();
        // Patch straddling coverage: half over existing cells, half beyond.
        let patch = Array::filled(d("[24:39,0:15]"), &7u16.to_le_bytes()).unwrap();
        let stats = db.update("m", &patch).unwrap();
        assert!(stats.tiles_rewritten > 0);
        assert!(stats.tiles_created > 0, "uncovered part must be stored");
        assert_eq!(
            db.object("m").unwrap().current_domain,
            Some(d("[0:39,0:31]"))
        );
        let (out, _) = db.range_query("m", &d("[24:39,0:15]")).unwrap();
        assert!(out.to_cells::<u16>().unwrap().iter().all(|&c| c == 7));
    }

    #[test]
    fn update_validates_type_and_domain() {
        let mut db = setup();
        let wrong = Array::filled(d("[0:1,0:1]"), &[1u8]).unwrap();
        assert!(matches!(
            db.update("m", &wrong),
            Err(EngineError::CellSizeMismatch { .. })
        ));
        assert!(db.update("nope", &wrong).is_err());
    }

    #[test]
    fn delete_whole_tiles_and_read_default() {
        let mut db = setup();
        let before_blobs = db.blob_store().blob_count();
        let stats = db.delete_region("m", &d("[0:15,0:15]")).unwrap();
        assert!(stats.tiles_dropped > 0);
        assert_eq!(stats.cells_removed, 256);
        assert!(db.blob_store().blob_count() < before_blobs + stats.tiles_split as usize * 4);
        let (out, _) = db.range_query("m", &d("[0:15,0:15]")).unwrap();
        assert!(out.to_cells::<u16>().unwrap().iter().all(|&c| c == 0));
        // Cells outside the deleted region survive.
        let (out, _) = db.range_query("m", &d("[16:31,0:31]")).unwrap();
        assert_eq!(
            out.get::<u16>(&Point::from_slice(&[20, 20])).unwrap(),
            20 * 32 + 20
        );
    }

    #[test]
    fn delete_splits_border_tiles() {
        let mut db = setup();
        // A region not aligned to the 16x16 tile grid.
        let region = d("[5:12,5:26]");
        let stats = db.delete_region("m", &region).unwrap();
        assert!(stats.tiles_split > 0);
        assert_eq!(stats.cells_removed, region.cells());
        let (out, _) = db.range_query("m", &d("[0:31,0:31]")).unwrap();
        for p in tilestore_geometry::PointIter::new(d("[0:31,0:31]")) {
            let got: u16 = out.get(&p).unwrap();
            if region.contains_point(&p) {
                assert_eq!(got, 0, "deleted cell {p} must read default");
            } else {
                assert_eq!(got, (p[0] * 32 + p[1]) as u16, "cell {p} must survive");
            }
        }
    }

    #[test]
    fn delete_shrinks_current_domain() {
        let mut db = setup();
        db.delete_region("m", &d("[16:31,0:31]")).unwrap();
        assert_eq!(
            db.object("m").unwrap().current_domain,
            Some(d("[0:15,0:31]")),
            "current domain shrinks to the remaining hull"
        );
        // Deleting everything empties the object.
        db.delete_region("m", &d("[0:31,0:31]")).unwrap();
        assert_eq!(db.object("m").unwrap().current_domain, None);
        assert_eq!(db.object("m").unwrap().tile_count(), 0);
        assert_eq!(db.blob_store().blob_count(), 0);
        // And it can be refilled.
        db.insert("m", &Array::filled(d("[0:3,0:3]"), &[1, 0]).unwrap())
            .unwrap();
        assert_eq!(db.object("m").unwrap().current_domain, Some(d("[0:3,0:3]")));
    }

    #[test]
    fn delete_disjoint_region_is_a_noop() {
        let mut db = setup();
        let before = db.object("m").unwrap().tile_count();
        let stats = db.delete_region("m", &d("[100:110,100:110]")).unwrap();
        assert_eq!(stats, DeleteStats::default());
        assert_eq!(db.object("m").unwrap().tile_count(), before);
    }

    #[test]
    fn update_then_delete_with_compression() {
        use tilestore_compress::CompressionPolicy;
        let mut db = setup();
        db.set_compression("m", CompressionPolicy::selective_default())
            .unwrap();
        let patch = Array::filled(d("[8:23,8:23]"), &0xABCDu16.to_le_bytes()).unwrap();
        db.update("m", &patch).unwrap();
        db.delete_region("m", &d("[0:7,0:31]")).unwrap();
        let (out, _) = db.range_query("m", &d("[0:31,0:31]")).unwrap();
        assert_eq!(
            out.get::<u16>(&Point::from_slice(&[10, 10])).unwrap(),
            0xABCD
        );
        assert_eq!(out.get::<u16>(&Point::from_slice(&[3, 3])).unwrap(), 0);
        assert_eq!(
            out.get::<u16>(&Point::from_slice(&[30, 3])).unwrap(),
            30 * 32 + 3
        );
    }
}
