//! Error type for the MDD storage engine.

use std::fmt;

use tilestore_geometry::GeometryError;
use tilestore_index::IndexError;
use tilestore_storage::StorageError;
use tilestore_tiling::TilingError;

/// Errors raised by the storage engine.
#[derive(Debug)]
pub enum EngineError {
    /// An underlying geometric operation failed.
    Geometry(GeometryError),
    /// A tiling algorithm failed.
    Tiling(TilingError),
    /// The storage substrate failed.
    Storage(StorageError),
    /// The tile index failed.
    Index(IndexError),
    /// An MDD object name that already exists.
    ObjectExists(String),
    /// An MDD object name that does not exist.
    UnknownObject(String),
    /// The array's cell size does not match the object's cell type.
    CellSizeMismatch {
        /// Cell size of the object's type.
        expected: usize,
        /// Cell size supplied.
        got: usize,
    },
    /// The array or query domain is not admitted by the object's
    /// definition domain.
    OutsideDefinitionDomain {
        /// The offending domain (display form).
        domain: String,
        /// The definition domain (display form).
        definition: String,
    },
    /// Inserted data overlaps cells already stored (tiles must stay
    /// disjoint).
    OverlapsExistingTiles {
        /// The offending domain (display form).
        domain: String,
    },
    /// A query against an object that holds no cells yet.
    EmptyObject(String),
    /// Data length does not match the domain/cell-size product.
    DataLengthMismatch {
        /// Bytes expected.
        expected: u64,
        /// Bytes supplied.
        got: u64,
    },
    /// An access region that cannot be resolved against the object.
    BadAccessRegion(String),
    /// Catalog (de)serialization failed.
    Catalog(String),
    /// A log-driven operation was requested but the database has no
    /// attached access recorder (in-memory databases record only the
    /// volatile in-process log).
    NoAccessRecorder,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Geometry(e) => write!(f, "geometry error: {e}"),
            EngineError::Tiling(e) => write!(f, "tiling error: {e}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Index(e) => write!(f, "index error: {e}"),
            EngineError::ObjectExists(n) => write!(f, "MDD object {n:?} already exists"),
            EngineError::UnknownObject(n) => write!(f, "unknown MDD object {n:?}"),
            EngineError::CellSizeMismatch { expected, got } => {
                write!(f, "cell size mismatch: object has {expected}, got {got}")
            }
            EngineError::OutsideDefinitionDomain { domain, definition } => {
                write!(f, "domain {domain} outside definition domain {definition}")
            }
            EngineError::OverlapsExistingTiles { domain } => {
                write!(f, "insert at {domain} overlaps existing tiles")
            }
            EngineError::EmptyObject(n) => write!(f, "MDD object {n:?} holds no cells"),
            EngineError::DataLengthMismatch { expected, got } => {
                write!(
                    f,
                    "data length mismatch: expected {expected} bytes, got {got}"
                )
            }
            EngineError::BadAccessRegion(s) => write!(f, "bad access region: {s}"),
            EngineError::Catalog(s) => write!(f, "catalog error: {s}"),
            EngineError::NoAccessRecorder => {
                write!(f, "no access recorder attached to this database")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Geometry(e) => Some(e),
            EngineError::Tiling(e) => Some(e),
            EngineError::Storage(e) => Some(e),
            EngineError::Index(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeometryError> for EngineError {
    fn from(e: GeometryError) -> Self {
        EngineError::Geometry(e)
    }
}

impl From<TilingError> for EngineError {
    fn from(e: TilingError) -> Self {
        EngineError::Tiling(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<IndexError> for EngineError {
    fn from(e: IndexError) -> Self {
        EngineError::Index(e)
    }
}

/// Convenience result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
