//! Cell types — the base types `T` of MDD objects (§3).
//!
//! The storage manager treats cells as opaque fixed-size byte strings
//! ([`CellType`]); the typed layer ([`CellValue`]) gives applications
//! ergonomic access for the common scalar and pixel types.

use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

/// Runtime descriptor of a cell type: a name, a fixed size, and the default
/// value used for cells in uncovered areas (§4: "areas left empty are
/// considered to be covered by cells with a default value").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellType {
    /// Human-readable type name (e.g. `"u32"`, `"rgb"`).
    pub name: String,
    /// Cell size in bytes.
    pub size: usize,
    /// Default cell value, exactly `size` bytes.
    pub default: Vec<u8>,
}

impl CellType {
    /// A cell type with an all-zero default value.
    #[must_use]
    pub fn zeroed(name: &str, size: usize) -> Self {
        CellType {
            name: name.to_string(),
            size,
            default: vec![0u8; size],
        }
    }

    /// A cell type with an explicit default value (`default.len()` is the
    /// cell size).
    #[must_use]
    pub fn with_default(name: &str, default: Vec<u8>) -> Self {
        CellType {
            name: name.to_string(),
            size: default.len(),
            default,
        }
    }

    /// The descriptor of a typed cell, with `T::default()` as default value.
    #[must_use]
    pub fn of<T: CellValue>() -> Self {
        let mut default = vec![0u8; T::SIZE];
        T::default().write_bytes(&mut default);
        CellType {
            name: T::NAME.to_string(),
            size: T::SIZE,
            default,
        }
    }
}

impl ToJson for CellType {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("size", self.size.to_json()),
            ("default", self.default.to_json()),
        ])
    }
}

impl FromJson for CellType {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CellType {
            name: String::from_json(v.field("name")?)?,
            size: usize::from_json(v.field("size")?)?,
            default: Vec::from_json(v.field("default")?)?,
        })
    }
}

/// A fixed-size value usable as an MDD cell.
///
/// Multi-byte integers and floats use little-endian encoding; the encoding
/// only needs to be internally consistent (the engine never interprets cell
/// bytes).
pub trait CellValue: Copy + Default + PartialEq + std::fmt::Debug {
    /// Size of the encoded value in bytes.
    const SIZE: usize;
    /// Type name used in [`CellType::name`].
    const NAME: &'static str;

    /// Encodes the value into `out` (exactly `SIZE` bytes).
    fn write_bytes(&self, out: &mut [u8]);

    /// Decodes a value from `bytes` (exactly `SIZE` bytes).
    fn read_bytes(bytes: &[u8]) -> Self;
}

macro_rules! impl_cell_value_int {
    ($($t:ty => $name:literal),* $(,)?) => {
        $(
            impl CellValue for $t {
                const SIZE: usize = std::mem::size_of::<$t>();
                const NAME: &'static str = $name;

                fn write_bytes(&self, out: &mut [u8]) {
                    out.copy_from_slice(&self.to_le_bytes());
                }

                fn read_bytes(bytes: &[u8]) -> Self {
                    <$t>::from_le_bytes(bytes.try_into().expect("exact cell size"))
                }
            }
        )*
    };
}

impl_cell_value_int!(
    u8 => "u8",
    i8 => "i8",
    u16 => "u16",
    i16 => "i16",
    u32 => "u32",
    i32 => "i32",
    u64 => "u64",
    i64 => "i64",
    f32 => "f32",
    f64 => "f64",
);

/// An RGB pixel — the 3-byte cell of the paper's animation object (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Creates a pixel.
    #[must_use]
    pub fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }
}

impl CellValue for Rgb {
    const SIZE: usize = 3;
    const NAME: &'static str = "rgb";

    fn write_bytes(&self, out: &mut [u8]) {
        out[0] = self.r;
        out[1] = self.g;
        out[2] = self.b;
    }

    fn read_bytes(bytes: &[u8]) -> Self {
        Rgb {
            r: bytes[0],
            g: bytes[1],
            b: bytes[2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut buf = [0u8; 8];
        42u32.write_bytes(&mut buf[..4]);
        assert_eq!(u32::read_bytes(&buf[..4]), 42);
        (-7i64).write_bytes(&mut buf);
        assert_eq!(i64::read_bytes(&buf), -7);
        let mut fbuf = [0u8; 8];
        3.5f64.write_bytes(&mut fbuf);
        assert_eq!(f64::read_bytes(&fbuf), 3.5);
    }

    #[test]
    fn rgb_round_trip() {
        let px = Rgb::new(10, 20, 30);
        let mut buf = [0u8; 3];
        px.write_bytes(&mut buf);
        assert_eq!(Rgb::read_bytes(&buf), px);
        assert_eq!(Rgb::SIZE, 3);
    }

    #[test]
    fn cell_type_descriptors() {
        let t = CellType::of::<u32>();
        assert_eq!(t.name, "u32");
        assert_eq!(t.size, 4);
        assert_eq!(t.default, vec![0, 0, 0, 0]);

        let z = CellType::zeroed("blob16", 16);
        assert_eq!(z.size, 16);

        let d = CellType::with_default("flag", vec![0xFF]);
        assert_eq!(d.size, 1);
        assert_eq!(d.default, vec![0xFF]);
    }
}
