//! Streaming aggregation over tile parts (§5.1 access type (c)).
//!
//! Sub-aggregations — "to perform a subaggregation" over dicing/slicing
//! selections — are the access type that motivates directional tiling.
//! [`Database::aggregate`] computes them tile-at-a-time: each intersected
//! tile is fetched once and its clipped cells folded into the accumulator,
//! without ever materializing the full result array. Uncovered areas
//! contribute the type's default value.

use tilestore_geometry::{Domain, RunIter};
use tilestore_storage::PageStore;

use crate::celltype::CellType;
use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::predicate::CellPredicate;
use crate::stats::QueryStats;
use crate::synopsis::TileSynopsis;

/// The aggregation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Sum of all cells (numeric cell types only).
    Sum,
    /// Arithmetic mean (numeric cell types only).
    Avg,
    /// Minimum cell value (numeric cell types only).
    Min,
    /// Maximum cell value (numeric cell types only).
    Max,
    /// Number of cells different from the type's default value (any cell
    /// type).
    CountNonDefault,
    /// Whether any cell differs from the default (any cell type).
    SomeNonDefault,
    /// Whether every cell differs from the default (any cell type).
    AllNonDefault,
}

impl AggKind {
    /// Stable short name used in EXPLAIN reports and diagnostics.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AggKind::Sum => "sum",
            AggKind::Avg => "avg",
            AggKind::Min => "min",
            AggKind::Max => "max",
            AggKind::CountNonDefault => "count",
            AggKind::SomeNonDefault => "some",
            AggKind::AllNonDefault => "all",
        }
    }
}

/// Whether an aggregation of `kind` over a fully-contained tile can be
/// answered from its synopsis alone (the planner's short-circuit rule;
/// see [`Accumulator::accepts_synopsis`] — shared with EXPLAIN so the
/// report and the executor can never disagree).
pub(crate) fn kind_accepts_synopsis(kind: AggKind, syn: &TileSynopsis) -> bool {
    match kind {
        AggKind::Sum | AggKind::Avg => false,
        AggKind::Min | AggKind::Max => syn.is_numeric(),
        AggKind::CountNonDefault | AggKind::SomeNonDefault | AggKind::AllNonDefault => true,
    }
}

/// Result of an aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggValue {
    /// A numeric result (`Sum`, `Avg`, `Min`, `Max`).
    Number(f64),
    /// A count (`CountNonDefault`).
    Count(u64),
    /// A boolean (`SomeNonDefault`, `AllNonDefault`).
    Bool(bool),
}

impl std::fmt::Display for AggValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggValue::Number(v) => write!(f, "{v}"),
            AggValue::Count(v) => write!(f, "{v}"),
            AggValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl AggValue {
    /// The numeric value, if this is a [`AggValue::Number`].
    #[must_use]
    pub fn as_number(&self) -> Option<f64> {
        match self {
            AggValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The count, if this is a [`AggValue::Count`].
    #[must_use]
    pub fn as_count(&self) -> Option<u64> {
        match self {
            AggValue::Count(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean, if this is a [`AggValue::Bool`].
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AggValue::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

/// Decodes one cell as `f64` according to the cell type's name.
pub(crate) fn decode_numeric(cell: &CellType, bytes: &[u8]) -> Result<f64> {
    let v = match cell.name.as_str() {
        "u8" => f64::from(bytes[0]),
        "i8" => f64::from(bytes[0] as i8),
        "u16" => f64::from(u16::from_le_bytes([bytes[0], bytes[1]])),
        "i16" => f64::from(i16::from_le_bytes([bytes[0], bytes[1]])),
        "u32" => f64::from(u32::from_le_bytes(bytes.try_into().expect("4-byte cell"))),
        "i32" => f64::from(i32::from_le_bytes(bytes.try_into().expect("4-byte cell"))),
        "u64" => u64::from_le_bytes(bytes.try_into().expect("8-byte cell")) as f64,
        "i64" => i64::from_le_bytes(bytes.try_into().expect("8-byte cell")) as f64,
        "f32" => f64::from(f32::from_le_bytes(bytes.try_into().expect("4-byte cell"))),
        "f64" => f64::from_le_bytes(bytes.try_into().expect("8-byte cell")),
        other => {
            return Err(EngineError::BadAccessRegion(format!(
                "cell type {other:?} is not numeric; only count/some/all aggregate it"
            )))
        }
    };
    Ok(v)
}

/// Streaming accumulator.
#[derive(Debug)]
struct Accumulator {
    kind: AggKind,
    sum: f64,
    min: f64,
    max: f64,
    non_default: u64,
    cells: u64,
}

impl Accumulator {
    fn new(kind: AggKind) -> Self {
        Accumulator {
            kind,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            non_default: 0,
            cells: 0,
        }
    }

    fn needs_numeric(&self) -> bool {
        matches!(
            self.kind,
            AggKind::Sum | AggKind::Avg | AggKind::Min | AggKind::Max
        )
    }

    fn feed(&mut self, cell_type: &CellType, bytes: &[u8]) -> Result<()> {
        self.cells += 1;
        if bytes != cell_type.default.as_slice() {
            self.non_default += 1;
        }
        if self.needs_numeric() {
            let v = decode_numeric(cell_type, bytes)?;
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        Ok(())
    }

    /// Folds a whole tile's synopsis into the accumulator without touching
    /// the payload — the short-circuit for min/max/count/some/all over
    /// tiles fully contained in the queried region. Callers must ensure
    /// the synopsis is numeric when the kind needs extrema.
    fn feed_synopsis(&mut self, syn: &TileSynopsis) {
        self.cells += syn.cells();
        self.non_default += syn.non_default();
        if self.needs_numeric() {
            if let (Some(min), Some(max)) = (syn.min(), syn.max()) {
                self.min = self.min.min(min);
                self.max = self.max.max(max);
            }
        }
    }

    /// Whether [`Accumulator::feed_synopsis`] computes the same result as
    /// streaming `syn`'s tile cell by cell: sums stream unconditionally
    /// (their value depends on fold order for floats), extrema need the
    /// numeric half of the synopsis.
    fn accepts_synopsis(&self, syn: &TileSynopsis) -> bool {
        kind_accepts_synopsis(self.kind, syn)
    }

    /// Feeds `count` copies of the default value (uncovered areas).
    fn feed_default(&mut self, cell_type: &CellType, count: u64) -> Result<()> {
        if count == 0 {
            return Ok(());
        }
        self.cells += count;
        if self.needs_numeric() {
            let v = decode_numeric(cell_type, &cell_type.default)?;
            self.sum += v * count as f64;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        Ok(())
    }

    fn finish(self) -> AggValue {
        match self.kind {
            AggKind::Sum => AggValue::Number(self.sum),
            AggKind::Avg => AggValue::Number(if self.cells == 0 {
                f64::NAN
            } else {
                self.sum / self.cells as f64
            }),
            AggKind::Min => AggValue::Number(self.min),
            AggKind::Max => AggValue::Number(self.max),
            AggKind::CountNonDefault => AggValue::Count(self.non_default),
            AggKind::SomeNonDefault => AggValue::Bool(self.non_default > 0),
            AggKind::AllNonDefault => AggValue::Bool(self.non_default == self.cells),
        }
    }
}

/// Aggregates a materialized array in memory (used by the query layer for
/// condensers over induced expressions, where streaming over stored tiles
/// is not possible).
///
/// # Errors
/// Numeric decoding errors for non-numeric cell types under numeric kinds.
pub fn aggregate_array(
    cell_type: &CellType,
    array: &crate::array::Array,
    kind: AggKind,
) -> Result<AggValue> {
    let mut acc = Accumulator::new(kind);
    for chunk in array.bytes().chunks_exact(cell_type.size.max(1)) {
        acc.feed(cell_type, chunk)?;
    }
    Ok(acc.finish())
}

impl<S: PageStore> crate::snapshot::Snapshot<S> {
    /// Computes an aggregation over `region`, streaming tile by tile
    /// against this snapshot's catalog.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`], domain validation errors, numeric
    /// decoding errors for non-numeric cell types under numeric kinds.
    pub fn aggregate(
        &self,
        name: &str,
        region: &Domain,
        kind: AggKind,
    ) -> Result<(AggValue, QueryStats)> {
        self.aggregate_where(name, region, kind, None)
    }

    /// Computes an aggregation with an optional cell-value predicate:
    /// cells failing `cell <op> literal` contribute the type's default
    /// value, matching the masked-select semantics of
    /// [`crate::Snapshot::range_query_where`]. Tiles the synopsis or
    /// bitmap index proves cannot match are folded in as all-default
    /// without fetching their blobs; without a predicate, min/max/count/
    /// some/all over tiles fully contained in `region` short-circuit on
    /// the synopsis alone. Both count in [`QueryStats::tiles_pruned`].
    ///
    /// # Errors
    /// The errors of [`crate::Snapshot::aggregate`]; a predicate over a
    /// non-numeric cell type is rejected up front.
    pub fn aggregate_where(
        &self,
        name: &str,
        region: &Domain,
        kind: AggKind,
        predicate: Option<&CellPredicate>,
    ) -> Result<(AggValue, QueryStats)> {
        let entry = self.catalog.entry(name)?;
        let meta = &entry.meta;
        if !meta.mdd_type.definition.admits(region) {
            return Err(EngineError::OutsideDefinitionDomain {
                domain: region.to_string(),
                definition: meta.mdd_type.definition.to_string(),
            });
        }
        if predicate.is_some() {
            decode_numeric(&meta.mdd_type.cell, &meta.mdd_type.cell.default)?;
        }
        let _req = self.request_scope();
        let _span = tilestore_obs::tracer().span_with("aggregate", || {
            format!("object={name} region={region} kind={}", kind.as_str())
        });
        entry.log.record(region);
        let cell_type = meta.mdd_type.cell.clone();
        let cell_size = cell_type.size;
        let mut acc = Accumulator::new(kind);

        let search = meta.index.search(region);
        let candidates = predicate.map(CellPredicate::candidate_bins);
        let io_before = self.blobs.stats().snapshot();
        let mut stats = QueryStats {
            index_nodes: search.nodes_visited,
            ..QueryStats::default()
        };
        for &pos in &search.hits {
            let tile = &meta.tiles[pos as usize];
            let clip = tile
                .domain
                .intersection(region)
                .expect("index returned an intersecting tile");
            if let (Some(p), Some(bins)) = (predicate, candidates) {
                let by_bitmap = p.bins_can_prune()
                    && meta
                        .value_index
                        .as_ref()
                        .is_some_and(|ix| ix.tile_mask(pos as usize) & bins == 0);
                let by_synopsis = tile.synopsis.as_ref().is_some_and(|s| p.prunes_tile(s));
                if by_bitmap || by_synopsis {
                    // No cell matches: the whole clip reads as default.
                    acc.feed_default(&cell_type, clip.cells())?;
                    stats.tiles_pruned += 1;
                    continue;
                }
            } else if region.contains_domain(&tile.domain) {
                if let Some(syn) = &tile.synopsis {
                    if acc.accepts_synopsis(syn) {
                        acc.feed_synopsis(syn);
                        stats.tiles_pruned += 1;
                        continue;
                    }
                }
            }
            let bytes = crate::snapshot::read_tile_payload(&self.blobs, meta, tile)?;
            for run in RunIter::new(&tile.domain, &clip)? {
                let start = run.outer_offset as usize * cell_size;
                for k in 0..run.len as usize {
                    let at = start + k * cell_size;
                    let cell = &bytes[at..at + cell_size];
                    match predicate {
                        Some(p) if !p.matches(decode_numeric(&cell_type, cell)?) => {
                            acc.feed(&cell_type, &cell_type.default)?;
                        }
                        _ => acc.feed(&cell_type, cell)?,
                    }
                }
            }
            stats.tiles_read += 1;
            stats.cells_processed += tile.domain.cells();
            stats.cells_copied += clip.cells();
        }
        // Uncovered cells contribute defaults.
        let covered: u64 = acc.cells;
        let total = region.cells();
        acc.feed_default(&cell_type, total - covered)?;
        stats.cells_defaulted = total - covered;
        stats.io = self.blobs.stats().snapshot().since(&io_before);
        tilestore_obs::hot().tiles_pruned.add(stats.tiles_pruned);
        Ok((acc.finish(), stats))
    }
}

impl<S: PageStore> Database<S> {
    /// Computes an aggregation over `region` against a fresh snapshot.
    /// Shorthand for `begin_read().aggregate(..)`.
    ///
    /// # Errors
    /// See [`crate::snapshot::Snapshot::aggregate`].
    pub fn aggregate(
        &self,
        name: &str,
        region: &Domain,
        kind: AggKind,
    ) -> Result<(AggValue, QueryStats)> {
        self.begin_read().aggregate(name, region, kind)
    }

    /// Computes a predicate-masked aggregation against a fresh snapshot.
    /// Shorthand for `begin_read().aggregate_where(..)`.
    ///
    /// # Errors
    /// See [`crate::snapshot::Snapshot::aggregate_where`].
    pub fn aggregate_where(
        &self,
        name: &str,
        region: &Domain,
        kind: AggKind,
        predicate: Option<&CellPredicate>,
    ) -> Result<(AggValue, QueryStats)> {
        self.begin_read()
            .aggregate_where(name, region, kind, predicate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::mdd::MddType;
    use tilestore_geometry::DefDomain;
    use tilestore_tiling::{AlignedTiling, Scheme};

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    fn setup() -> Database<tilestore_storage::MemPageStore> {
        let db = Database::in_memory().unwrap();
        db.create_object(
            "grid",
            MddType::new(CellType::of::<u32>(), DefDomain::unlimited(2).unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 1024)),
        )
        .unwrap();
        // 20x20 grid of value = x (row index).
        db.insert(
            "grid",
            &Array::from_fn(d("[0:19,0:19]"), |p| p[0] as u32).unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn sum_avg_min_max_over_subregion() {
        let db = setup();
        let region = d("[5:9,0:19]"); // rows 5..=9, 20 cols each
        let (sum, stats) = db.aggregate("grid", &region, AggKind::Sum).unwrap();
        assert_eq!(sum.as_number().unwrap(), ((5 + 6 + 7 + 8 + 9) * 20) as f64);
        assert!(stats.tiles_read >= 1);
        let (avg, _) = db.aggregate("grid", &region, AggKind::Avg).unwrap();
        assert!((avg.as_number().unwrap() - 7.0).abs() < 1e-12);
        let (min, _) = db.aggregate("grid", &region, AggKind::Min).unwrap();
        assert_eq!(min.as_number().unwrap(), 5.0);
        let (max, _) = db.aggregate("grid", &region, AggKind::Max).unwrap();
        assert_eq!(max.as_number().unwrap(), 9.0);
    }

    #[test]
    fn counting_kinds_work_for_any_cell_type() {
        let db = setup();
        // Row 0 is all zeros (= default); rows 1..5 are non-default.
        let (count, _) = db
            .aggregate("grid", &d("[0:4,0:19]"), AggKind::CountNonDefault)
            .unwrap();
        assert_eq!(count.as_count().unwrap(), 4 * 20);
        let (some, _) = db
            .aggregate("grid", &d("[0:0,0:19]"), AggKind::SomeNonDefault)
            .unwrap();
        assert!(!some.as_bool().unwrap());
        let (all, _) = db
            .aggregate("grid", &d("[1:4,0:19]"), AggKind::AllNonDefault)
            .unwrap();
        assert!(all.as_bool().unwrap());
    }

    #[test]
    fn uncovered_areas_contribute_defaults() {
        let db = setup();
        // Query beyond coverage: the extra rows are default (0).
        let region = d("[15:24,0:19]");
        let (sum, stats) = db.aggregate("grid", &region, AggKind::Sum).unwrap();
        let expected: u32 = (15..=19).map(|x| x * 20).sum();
        assert_eq!(sum.as_number().unwrap(), f64::from(expected));
        assert_eq!(stats.cells_defaulted, 5 * 20);
        let (avg, _) = db.aggregate("grid", &region, AggKind::Avg).unwrap();
        assert!((avg.as_number().unwrap() - f64::from(expected) / 200.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_matches_materialized_query() {
        let db = setup();
        let region = d("[3:17,2:18]");
        let arr = db.range_query("grid", &region).unwrap().array;
        let brute: f64 = arr
            .to_cells::<u32>()
            .unwrap()
            .iter()
            .map(|&c| f64::from(c))
            .sum();
        let (sum, _) = db.aggregate("grid", &region, AggKind::Sum).unwrap();
        assert_eq!(sum.as_number().unwrap(), brute);
    }

    #[test]
    fn numeric_kinds_reject_rgb() {
        use crate::celltype::Rgb;
        let db = Database::in_memory().unwrap();
        db.create_object(
            "img",
            MddType::new(CellType::of::<Rgb>(), DefDomain::unlimited(2).unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 1024)),
        )
        .unwrap();
        db.insert(
            "img",
            &Array::from_fn(d("[0:3,0:3]"), |_| Rgb::new(1, 2, 3)).unwrap(),
        )
        .unwrap();
        assert!(db.aggregate("img", &d("[0:3,0:3]"), AggKind::Sum).is_err());
        let (count, _) = db
            .aggregate("img", &d("[0:3,0:3]"), AggKind::CountNonDefault)
            .unwrap();
        assert_eq!(count.as_count().unwrap(), 16);
    }

    #[test]
    fn aggregate_array_matches_streaming() {
        let db = setup();
        let region = d("[2:9,3:12]");
        let arr = db.range_query("grid", &region).unwrap().array;
        let cell = CellType::of::<u32>();
        for kind in [AggKind::Sum, AggKind::Avg, AggKind::Min, AggKind::Max] {
            let (streamed, _) = db.aggregate("grid", &region, kind).unwrap();
            let in_memory = aggregate_array(&cell, &arr, kind).unwrap();
            assert_eq!(streamed, in_memory, "{kind:?}");
        }
        let (count_s, _) = db
            .aggregate("grid", &region, AggKind::CountNonDefault)
            .unwrap();
        let count_m = aggregate_array(&cell, &arr, AggKind::CountNonDefault).unwrap();
        assert_eq!(count_s, count_m);
    }

    #[test]
    fn empty_region_average_is_nan_free_path() {
        // A 1-cell region exercises the smallest path.
        let db = setup();
        let (avg, _) = db.aggregate("grid", &d("[7:7,7:7]"), AggKind::Avg).unwrap();
        assert_eq!(avg.as_number().unwrap(), 7.0);
    }
}
