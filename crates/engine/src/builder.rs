//! Unified construction of [`Database`] instances.
//!
//! Before the builder existed, optional collaborators (access recorder,
//! executor pool, compression default) were bolted on after construction
//! via `attach_*` setters, and every entry point (`in_memory`,
//! `with_store`, `open_dir`) had to be wired by hand at each call site.
//! [`DatabaseBuilder`] gathers the options once and applies them in every
//! terminal:
//!
//! ```
//! use std::sync::Arc;
//! use tilestore_engine::DatabaseBuilder;
//! use tilestore_exec::ThreadPool;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let db = DatabaseBuilder::new()
//!     .executor(Arc::new(ThreadPool::new(2)))
//!     .in_memory()?;
//! assert!(db.executor().is_some());
//! # Ok(())
//! # }
//! ```

use std::path::Path;
use std::sync::Arc;

use tilestore_compress::CompressionPolicy;
use tilestore_exec::ThreadPool;
use tilestore_obs::AccessRecorder;
use tilestore_storage::{MemPageStore, PageStore, DEFAULT_SHARDS};

use crate::database::Database;
use crate::error::Result;
use crate::persist::{CachedFileStore, DEFAULT_CACHE_PAGES};

/// Configures the optional collaborators of a [`Database`] and then builds
/// it over any backing store. Obtained from [`Database::builder`].
pub struct DatabaseBuilder {
    recorder: Option<AccessRecorder>,
    executor: Option<Arc<ThreadPool>>,
    compression: Option<CompressionPolicy>,
    cache_pages: usize,
    cache_shards: usize,
}

impl Default for DatabaseBuilder {
    fn default() -> Self {
        DatabaseBuilder {
            recorder: None,
            executor: None,
            compression: None,
            cache_pages: DEFAULT_CACHE_PAGES,
            cache_shards: DEFAULT_SHARDS,
        }
    }
}

impl DatabaseBuilder {
    /// An empty builder: no recorder, no executor, `CompressionPolicy::None`
    /// for new objects.
    #[must_use]
    pub fn new() -> Self {
        DatabaseBuilder::default()
    }

    /// Attaches a persistent access recorder (see [`Database::set_recorder`]).
    /// For `open_dir`/`create_dir` this *replaces* the directory's default
    /// recorder.
    #[must_use]
    pub fn recorder(mut self, recorder: AccessRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Attaches a thread pool for parallel query execution and tile
    /// materialization (see [`Database::set_executor`]).
    #[must_use]
    pub fn executor(mut self, pool: Arc<ThreadPool>) -> Self {
        self.executor = Some(pool);
        self
    }

    /// Sets the compression policy newly created objects start with
    /// (individual objects can still override it via
    /// [`Database::set_compression`]).
    #[must_use]
    pub fn compression(mut self, policy: CompressionPolicy) -> Self {
        self.compression = Some(policy);
        self
    }

    /// Total buffer-pool frames for file-backed databases (default
    /// [`DEFAULT_CACHE_PAGES`]). Only affects `create_dir`/`open_dir`.
    #[must_use]
    pub fn cache_pages(mut self, pages: usize) -> Self {
        self.cache_pages = pages;
        self
    }

    /// Buffer-pool shard count for file-backed databases (default
    /// [`DEFAULT_SHARDS`]; rounded to a power of two and clamped so every
    /// shard owns at least one frame). Only affects `create_dir`/`open_dir`.
    #[must_use]
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards;
        self
    }

    fn apply<S: PageStore>(self, mut db: Database<S>) -> Database<S> {
        if let Some(policy) = self.compression {
            db.set_default_compression(policy);
        }
        if let Some(recorder) = self.recorder {
            db.set_recorder(recorder);
        }
        if let Some(pool) = self.executor {
            db.set_executor(pool);
        }
        db
    }

    /// Builds an in-memory database.
    ///
    /// # Errors
    /// See [`Database::in_memory`].
    pub fn in_memory(self) -> Result<Database<MemPageStore>> {
        Ok(self.apply(Database::in_memory()?))
    }

    /// Builds a database over an arbitrary page store.
    #[must_use]
    pub fn with_store<S: PageStore>(self, store: S) -> Database<S> {
        self.apply(Database::with_store(store))
    }

    /// Creates a new file-backed database directory and builds over it,
    /// served through a sharded [`CachedFileStore`] buffer pool with this
    /// builder's cache geometry.
    ///
    /// # Errors
    /// See [`Database::create_dir`].
    pub fn create_dir<P: AsRef<Path>>(self, dir: P) -> Result<Database<CachedFileStore>> {
        let db = Database::create_dir_with_cache(dir, self.cache_pages, self.cache_shards)?;
        Ok(self.apply(db))
    }

    /// Reopens a saved database directory and builds over it, served
    /// through a sharded [`CachedFileStore`] buffer pool with this
    /// builder's cache geometry.
    ///
    /// # Errors
    /// See [`Database::open_dir`].
    pub fn open_dir<P: AsRef<Path>>(self, dir: P) -> Result<Database<CachedFileStore>> {
        let db = Database::open_dir_with_cache(dir, self.cache_pages, self.cache_shards)?;
        Ok(self.apply(db))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilestore_compress::Codec;
    use tilestore_geometry::Domain;
    use tilestore_tiling::Scheme;

    use crate::array::Array;
    use crate::celltype::CellType;
    use crate::mdd::MddType;

    #[test]
    fn builder_applies_every_option() {
        let db = DatabaseBuilder::new()
            .executor(Arc::new(ThreadPool::new(2)))
            .compression(CompressionPolicy::Fixed(Codec::PackBits))
            .in_memory()
            .unwrap();
        assert!(db.executor().is_some());
        db.create_object(
            "flat",
            MddType::new(CellType::of::<u8>(), "[0:*]".parse().unwrap()),
            Scheme::default_for(1),
        )
        .unwrap();
        assert_eq!(
            db.object("flat").unwrap().compression,
            CompressionPolicy::Fixed(Codec::PackBits),
            "default compression flows into created objects"
        );
        // And it actually compresses: a constant array shrinks on disk.
        let dom: Domain = "[0:8191]".parse().unwrap();
        db.insert("flat", &Array::filled(dom.clone(), &[7]).unwrap())
            .unwrap();
        assert!(db.object_physical_bytes("flat").unwrap() < dom.cells());
    }

    #[test]
    fn builder_defaults_match_plain_construction() {
        let db = DatabaseBuilder::new().in_memory().unwrap();
        assert!(db.executor().is_none());
        assert!(db.recorder().is_none());
        db.create_object(
            "o",
            MddType::new(CellType::of::<u8>(), "[0:*]".parse().unwrap()),
            Scheme::default_for(1),
        )
        .unwrap();
        assert_eq!(db.object("o").unwrap().compression, CompressionPolicy::None);
    }

    #[test]
    fn builder_opens_directories_with_options() {
        let dir = tilestore_testkit::tempdir().unwrap();
        {
            let db = DatabaseBuilder::new().create_dir(dir.path()).unwrap();
            assert!(db.recorder().is_some(), "create_dir wires a recorder");
            db.create_object(
                "o",
                MddType::new(CellType::of::<u8>(), "[0:*]".parse().unwrap()),
                Scheme::default_for(1),
            )
            .unwrap();
            db.save(dir.path()).unwrap();
        }
        let db = DatabaseBuilder::new()
            .executor(Arc::new(ThreadPool::new(2)))
            .open_dir(dir.path())
            .unwrap();
        assert!(db.executor().is_some());
        assert_eq!(db.object_names(), vec!["o".to_string()]);
    }
}
