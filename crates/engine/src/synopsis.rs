//! Per-tile synopses: small statistics computed when a tile's payload is
//! in hand (insert, retile, update) and persisted with the tile metadata.
//!
//! A synopsis bounds what the tile's cells can be without decompressing
//! the blob: min/max/sum over the numeric interpretation, the non-default
//! cell count, a coarse null mask, and the value-bin membership mask the
//! hierarchical bitmap index aggregates. The read path uses these to prune
//! tiles under value predicates and to short-circuit min/max/count/some/
//! all condensers.

use tilestore_compress::{scan_cells, CellContext, CellScan};
use tilestore_index::value_bin;
use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::aggregate::decode_numeric;
use crate::celltype::CellType;

/// Statistics of one tile's payload.
///
/// Extrema and the sum are stored as IEEE-754 bit patterns so they survive
/// the catalog's JSON round-trip exactly (decimal float formatting is
/// lossy). For non-numeric cell types only the byte-level half is
/// meaningful: [`TileSynopsis::min`]/[`max`](TileSynopsis::max)/
/// [`sum`](TileSynopsis::sum) return `None` and the bin mask is all-ones
/// ("unknown" — never prunes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSynopsis {
    cells: u64,
    non_default: u64,
    null_mask: u64,
    bins: u64,
    numeric: bool,
    has_nan: bool,
    min_bits: u64,
    max_bits: u64,
    sum_bits: u64,
}

impl TileSynopsis {
    /// Builds a synopsis from a payload plus the byte-level scan already
    /// gathered during compression.
    #[must_use]
    pub fn from_scan(cell_type: &CellType, payload: &[u8], scan: CellScan) -> Self {
        let mut syn = TileSynopsis {
            cells: scan.cells,
            non_default: scan.non_default,
            null_mask: scan.null_mask,
            bins: !0,
            numeric: false,
            has_nan: false,
            min_bits: f64::INFINITY.to_bits(),
            max_bits: f64::NEG_INFINITY.to_bits(),
            sum_bits: 0f64.to_bits(),
        };
        // A cell type decode_numeric rejects stays byte-level only; probe
        // with the default value (decoding depends on the name, not bytes).
        if decode_numeric(cell_type, &cell_type.default).is_err() {
            return syn;
        }
        syn.numeric = true;
        syn.bins = 0;
        let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0f64);
        for cell in payload.chunks_exact(cell_type.size.max(1)) {
            let v = decode_numeric(cell_type, cell).expect("numeric cell type");
            sum += v;
            min = min.min(v);
            max = max.max(v);
            match value_bin(v) {
                Some(bin) => syn.bins |= 1 << bin,
                None => syn.has_nan = true,
            }
        }
        syn.min_bits = min.to_bits();
        syn.max_bits = max.to_bits();
        syn.sum_bits = sum.to_bits();
        syn
    }

    /// Builds a synopsis by scanning `payload` from scratch.
    #[must_use]
    pub fn scan(cell_type: &CellType, payload: &[u8]) -> Self {
        let ctx = CellContext {
            cell_size: cell_type.size,
            default: &cell_type.default,
        };
        Self::from_scan(cell_type, payload, scan_cells(payload, &ctx))
    }

    /// Total number of cells in the tile.
    #[must_use]
    pub fn cells(&self) -> u64 {
        self.cells
    }

    /// Number of cells different from the type's default value.
    #[must_use]
    pub fn non_default(&self) -> u64 {
        self.non_default
    }

    /// Coarse mask of where default ("null") cells sit: the tile's cells
    /// in storage order are split into 64 chunks; bit `k` is set iff chunk
    /// `k` holds at least one default cell. Zero iff fully non-default.
    #[must_use]
    pub fn null_mask(&self) -> u64 {
        self.null_mask
    }

    /// Value-bin membership mask (see [`tilestore_index::value_bin`]).
    /// All-ones for non-numeric cell types: "could be anything".
    #[must_use]
    pub fn bins(&self) -> u64 {
        self.bins
    }

    /// Whether the cell type decodes to `f64` (extrema/sum are meaningful).
    #[must_use]
    pub fn is_numeric(&self) -> bool {
        self.numeric
    }

    /// Whether any cell decoded to NaN (NaN is excluded from the extrema
    /// and the bin mask; predicate pruning must stay conservative for it).
    #[must_use]
    pub fn has_nan(&self) -> bool {
        self.has_nan
    }

    /// Minimum cell value (`None` for non-numeric types; `+inf` bits for
    /// an empty or all-NaN payload surface as `Some(inf)`).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.numeric.then(|| f64::from_bits(self.min_bits))
    }

    /// Maximum cell value (`None` for non-numeric types).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.numeric.then(|| f64::from_bits(self.max_bits))
    }

    /// Sum of all cell values (`None` for non-numeric types).
    #[must_use]
    pub fn sum(&self) -> Option<f64> {
        self.numeric.then(|| f64::from_bits(self.sum_bits))
    }
}

impl ToJson for TileSynopsis {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cells", self.cells.to_json()),
            ("non_default", self.non_default.to_json()),
            ("null_mask", self.null_mask.to_json()),
            ("bins", self.bins.to_json()),
            ("numeric", self.numeric.to_json()),
            ("nan", self.has_nan.to_json()),
            ("min_bits", self.min_bits.to_json()),
            ("max_bits", self.max_bits.to_json()),
            ("sum_bits", self.sum_bits.to_json()),
        ])
    }
}

impl FromJson for TileSynopsis {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(TileSynopsis {
            cells: u64::from_json(v.field("cells")?)?,
            non_default: u64::from_json(v.field("non_default")?)?,
            null_mask: u64::from_json(v.field("null_mask")?)?,
            bins: u64::from_json(v.field("bins")?)?,
            numeric: bool::from_json(v.field("numeric")?)?,
            has_nan: bool::from_json(v.field("nan")?)?,
            min_bits: u64::from_json(v.field("min_bits")?)?,
            max_bits: u64::from_json(v.field("max_bits")?)?,
            sum_bits: u64::from_json(v.field("sum_bits")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::celltype::Rgb;
    use tilestore_testkit::json;

    fn payload<T: crate::celltype::CellValue>(values: &[T]) -> Vec<u8> {
        let mut out = vec![0u8; values.len() * T::SIZE];
        for (i, v) in values.iter().enumerate() {
            v.write_bytes(&mut out[i * T::SIZE..(i + 1) * T::SIZE]);
        }
        out
    }

    #[test]
    fn numeric_synopsis_captures_extrema_and_counts() {
        let cell = CellType::of::<i32>();
        let syn = TileSynopsis::scan(&cell, &payload(&[3i32, -7, 0, 12, 0]));
        assert_eq!(syn.cells(), 5);
        assert_eq!(syn.non_default(), 3); // two zeros are the default
        assert_ne!(syn.null_mask(), 0);
        assert!(syn.is_numeric());
        assert!(!syn.has_nan());
        assert_eq!(syn.min(), Some(-7.0));
        assert_eq!(syn.max(), Some(12.0));
        assert_eq!(syn.sum(), Some(8.0));
        // Each distinct value's bin is present.
        for v in [3.0, -7.0, 0.0, 12.0] {
            let bin = tilestore_index::value_bin(v).unwrap();
            assert_ne!(syn.bins() & (1 << bin), 0, "missing bin of {v}");
        }
    }

    #[test]
    fn non_numeric_synopsis_is_byte_level_only() {
        let cell = CellType::of::<Rgb>();
        let syn = TileSynopsis::scan(&cell, &payload(&[Rgb::new(1, 2, 3), Rgb::default()]));
        assert_eq!(syn.cells(), 2);
        assert_eq!(syn.non_default(), 1);
        assert!(!syn.is_numeric());
        assert_eq!(syn.min(), None);
        assert_eq!(syn.max(), None);
        assert_eq!(syn.sum(), None);
        assert_eq!(syn.bins(), !0, "non-numeric bins are all-ones (unknown)");
    }

    #[test]
    fn nan_cells_are_flagged_and_excluded_from_extrema() {
        let cell = CellType::of::<f64>();
        let syn = TileSynopsis::scan(&cell, &payload(&[1.5f64, f64::NAN, -2.5]));
        assert!(syn.has_nan());
        assert_eq!(syn.min(), Some(-2.5));
        assert_eq!(syn.max(), Some(1.5));
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let cell = CellType::of::<f64>();
        // 0.1 + 0.2 style sums don't survive decimal formatting; the bits
        // representation must round-trip exactly anyway.
        let syn = TileSynopsis::scan(&cell, &payload(&[0.1f64, 0.2, -1.0 / 3.0]));
        let text = json::to_string(&syn);
        let back: TileSynopsis = json::from_str(&text).unwrap();
        assert_eq!(back, syn);
        assert_eq!(back.sum().unwrap().to_bits(), syn.sum().unwrap().to_bits());
    }

    #[test]
    fn empty_payload_synopsis() {
        let cell = CellType::of::<u16>();
        let syn = TileSynopsis::scan(&cell, &[]);
        assert_eq!(syn.cells(), 0);
        assert_eq!(syn.non_default(), 0);
        assert_eq!(syn.null_mask(), 0);
        assert_eq!(syn.bins(), 0);
        assert_eq!(syn.min(), Some(f64::INFINITY));
        assert_eq!(syn.max(), Some(f64::NEG_INFINITY));
    }
}
