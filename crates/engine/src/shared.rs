//! Shared-database wrapper for concurrent serving.
//!
//! [`Database`] itself is single-writer: queries take `&self` but inserts,
//! re-tiles and catalog saves take `&mut self`. A server handling many
//! connections needs one database shared across threads with reads running
//! concurrently and writes exclusive — exactly a reader-writer lock.
//! [`SharedDatabase`] packages that policy so every caller goes through the
//! same poison-recovering accessors instead of hand-rolling `RwLock` use.

use std::sync::{Arc, PoisonError, RwLock};

use tilestore_storage::PageStore;

use crate::database::Database;

/// A [`Database`] behind an `Arc<RwLock>`: clone-to-share, closure-based
/// access, poison recovery.
///
/// Lock poisoning is deliberately swallowed: a panicking request handler
/// must not condemn every later request to an error. The engine's internal
/// invariants are guarded by its own per-structure locks and commit
/// protocol, not by this outer lock, so the data a poisoned guard exposes
/// is no worse than what any other thread would have seen.
pub struct SharedDatabase<S: PageStore> {
    inner: Arc<RwLock<Database<S>>>,
}

impl<S: PageStore> Clone for SharedDatabase<S> {
    fn clone(&self) -> Self {
        SharedDatabase {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: PageStore> SharedDatabase<S> {
    /// Wraps a database for shared use.
    #[must_use]
    pub fn new(db: Database<S>) -> Self {
        SharedDatabase {
            inner: Arc::new(RwLock::new(db)),
        }
    }

    /// Runs `f` under the shared (read) lock. Use for queries and any other
    /// `&Database` access; readers run concurrently.
    pub fn read<R>(&self, f: impl FnOnce(&Database<S>) -> R) -> R {
        let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        f(&guard)
    }

    /// Runs `f` under the exclusive (write) lock. Use for inserts, re-tiles,
    /// catalog saves and anything else needing `&mut Database`.
    pub fn write<R>(&self, f: impl FnOnce(&mut Database<S>) -> R) -> R {
        let mut guard = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::celltype::CellType;
    use crate::mdd::MddType;
    use tilestore_geometry::Domain;
    use tilestore_tiling::{AlignedTiling, Scheme};

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    #[test]
    fn concurrent_readers_with_interleaved_writer() {
        let shared = SharedDatabase::new(Database::in_memory().unwrap());
        shared.write(|db| {
            db.create_object(
                "obj",
                MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
                Scheme::Aligned(AlignedTiling::regular(2, 1024)),
            )
            .unwrap();
            db.insert(
                "obj",
                &Array::from_fn(d("[0:29,0:29]"), |p| (p[0] * 100 + p[1]) as u32).unwrap(),
            )
            .unwrap();
        });
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shared = shared.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let (out, _) = shared
                            .read(|db| db.range_query("obj", &d("[5:14,5:14]")))
                            .unwrap();
                        assert_eq!(out.domain().cells(), 100);
                    }
                });
            }
            let writer = shared.clone();
            s.spawn(move || {
                for i in 0..5u64 {
                    let lo = 30 + i as i64 * 10;
                    let dom: Domain = format!("[{lo}:{},0:29]", lo + 9).parse().unwrap();
                    writer
                        .write(|db| {
                            db.insert(
                                "obj",
                                &Array::from_fn(dom.clone(), |p| (p[0] * 100 + p[1]) as u32)
                                    .unwrap(),
                            )
                        })
                        .unwrap();
                }
            });
        });
        let total = shared.read(|db| db.object("obj").unwrap().current_domain.clone());
        assert_eq!(total, Some(d("[0:79,0:29]")));
    }

    #[test]
    fn survives_a_panicking_writer() {
        let shared = SharedDatabase::new(Database::in_memory().unwrap());
        let s2 = shared.clone();
        let _ = std::thread::spawn(move || {
            s2.write(|_db| panic!("handler bug"));
        })
        .join();
        // The lock is poisoned but access still works.
        assert!(shared.read(|db| db.object_names().is_empty()));
        shared.write(|db| {
            db.create_object(
                "after",
                MddType::new(CellType::of::<u8>(), "[0:*]".parse().unwrap()),
                Scheme::default_for(1),
            )
            .unwrap();
        });
        assert_eq!(shared.read(|db| db.object_names().len()), 1);
    }
}
