//! Shared-database handle for concurrent serving.
//!
//! Since every [`Database`] method takes `&self` — readers go through
//! epoch-stamped snapshots, writers serialize on an internal mutex — a
//! server needs nothing more than an `Arc` to share one database across
//! connection threads. [`SharedDatabase`] is that `Arc`, kept as a named
//! type so the serving layer has a stable vocabulary: `Deref` exposes the
//! whole engine API and [`SharedDatabase::snapshot`] marks the places where
//! a request pins a consistent read view.
//!
//! The closure-based `read`/`write` accessors of the old `RwLock` wrapper
//! are gone: queries no longer hold *any* lock across I/O, so there is no
//! critical section left for a closure to delimit.

use std::ops::Deref;
use std::sync::Arc;

use tilestore_storage::PageStore;

use crate::database::Database;
use crate::snapshot::Snapshot;

/// A cloneable handle to one shared [`Database`].
pub struct SharedDatabase<S: PageStore> {
    inner: Arc<Database<S>>,
}

impl<S: PageStore> Clone for SharedDatabase<S> {
    fn clone(&self) -> Self {
        SharedDatabase {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: PageStore> Deref for SharedDatabase<S> {
    type Target = Database<S>;

    fn deref(&self) -> &Database<S> {
        &self.inner
    }
}

impl<S: PageStore> SharedDatabase<S> {
    /// Wraps a database for shared use.
    #[must_use]
    pub fn new(db: Database<S>) -> Self {
        SharedDatabase {
            inner: Arc::new(db),
        }
    }

    /// Pins the current catalog epoch and returns a read session; alias of
    /// [`Database::begin_read`] kept for call-site clarity in servers.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot<S> {
        self.inner.begin_read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::celltype::CellType;
    use crate::mdd::MddType;
    use tilestore_geometry::Domain;
    use tilestore_tiling::{AlignedTiling, Scheme};

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    #[test]
    fn concurrent_readers_with_interleaved_writer() {
        let shared = SharedDatabase::new(Database::in_memory().unwrap());
        shared
            .create_object(
                "obj",
                MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
                Scheme::Aligned(AlignedTiling::regular(2, 1024)),
            )
            .unwrap();
        shared
            .insert(
                "obj",
                &Array::from_fn(d("[0:29,0:29]"), |p| (p[0] * 100 + p[1]) as u32).unwrap(),
            )
            .unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shared = shared.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let q = shared
                            .snapshot()
                            .range_query("obj", &d("[5:14,5:14]"))
                            .unwrap();
                        assert_eq!(q.array.domain().cells(), 100);
                    }
                });
            }
            let writer = shared.clone();
            s.spawn(move || {
                for i in 0..5u64 {
                    let lo = 30 + i as i64 * 10;
                    let dom: Domain = format!("[{lo}:{},0:29]", lo + 9).parse().unwrap();
                    writer
                        .insert(
                            "obj",
                            &Array::from_fn(dom.clone(), |p| (p[0] * 100 + p[1]) as u32).unwrap(),
                        )
                        .unwrap();
                }
            });
        });
        let total = shared.object("obj").unwrap().current_domain.clone();
        assert_eq!(total, Some(d("[0:79,0:29]")));
    }

    #[test]
    fn snapshots_from_clones_share_one_epoch_sequence() {
        let shared = SharedDatabase::new(Database::in_memory().unwrap());
        let other = shared.clone();
        shared
            .create_object(
                "obj",
                MddType::new(CellType::of::<u8>(), "[0:*]".parse().unwrap()),
                Scheme::default_for(1),
            )
            .unwrap();
        let receipt = shared
            .insert("obj", &Array::filled(d("[0:9]"), &[1]).unwrap())
            .unwrap();
        assert_eq!(other.snapshot().epoch(), receipt.epoch);
        // Deref exposes the whole engine API on either handle.
        assert_eq!(other.object_names(), vec!["obj".to_string()]);
    }
}
