//! Dense multidimensional arrays — the values flowing in and out of the
//! storage manager.
//!
//! An [`Array`] owns a row-major byte buffer over a bounded [`Domain`].
//! Typed construction and access go through [`CellValue`]; the engine
//! itself only moves bytes.

use tilestore_geometry::{copy_region, fill_region, Domain, Point, PointIter, RowMajor};

use crate::celltype::CellValue;
use crate::error::{EngineError, Result};

/// A dense, row-major multidimensional array of fixed-size cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Array {
    domain: Domain,
    cell_size: usize,
    data: Vec<u8>,
}

impl Array {
    /// An array over `domain` with every cell set to `default` (whose
    /// length is the cell size).
    ///
    /// # Errors
    /// [`EngineError::Geometry`] when the domain size overflows.
    pub fn filled(domain: Domain, default: &[u8]) -> Result<Self> {
        let cells = domain.cell_count()?;
        let cell_size = default.len();
        let mut data = vec![0u8; (cells as usize) * cell_size];
        if default.iter().any(|&b| b != 0) {
            for chunk in data.chunks_exact_mut(cell_size) {
                chunk.copy_from_slice(default);
            }
        }
        Ok(Array {
            domain,
            cell_size,
            data,
        })
    }

    /// An array from raw row-major bytes.
    ///
    /// # Errors
    /// [`EngineError::DataLengthMismatch`] when `data.len()` differs from
    /// `cells × cell_size`.
    pub fn from_bytes(domain: Domain, cell_size: usize, data: Vec<u8>) -> Result<Self> {
        let expected = domain.size_bytes(cell_size)?;
        if data.len() as u64 != expected {
            return Err(EngineError::DataLengthMismatch {
                expected,
                got: data.len() as u64,
            });
        }
        Ok(Array {
            domain,
            cell_size,
            data,
        })
    }

    /// An array from typed cells in row-major order.
    ///
    /// # Errors
    /// [`EngineError::DataLengthMismatch`] when the value count differs from
    /// the domain's cell count.
    pub fn from_cells<T: CellValue>(domain: Domain, cells: &[T]) -> Result<Self> {
        let expected = domain.cell_count()?;
        if cells.len() as u64 != expected {
            return Err(EngineError::DataLengthMismatch {
                expected: expected * T::SIZE as u64,
                got: (cells.len() * T::SIZE) as u64,
            });
        }
        let mut data = vec![0u8; cells.len() * T::SIZE];
        for (chunk, value) in data.chunks_exact_mut(T::SIZE).zip(cells) {
            value.write_bytes(chunk);
        }
        Ok(Array {
            domain,
            cell_size: T::SIZE,
            data,
        })
    }

    /// An array computed cell-by-cell from a function of the coordinates.
    ///
    /// # Errors
    /// [`EngineError::Geometry`] when the domain size overflows.
    pub fn from_fn<T: CellValue, F: FnMut(&Point) -> T>(domain: Domain, mut f: F) -> Result<Self> {
        let cells = domain.cell_count()? as usize;
        let mut data = vec![0u8; cells * T::SIZE];
        for (chunk, point) in data
            .chunks_exact_mut(T::SIZE)
            .zip(PointIter::new(domain.clone()))
        {
            f(&point).write_bytes(chunk);
        }
        Ok(Array {
            domain,
            cell_size: T::SIZE,
            data,
        })
    }

    /// The array's spatial domain.
    #[must_use]
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Cell size in bytes.
    #[must_use]
    pub fn cell_size(&self) -> usize {
        self.cell_size
    }

    /// The raw row-major bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Total size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Reads the typed cell at `point`.
    ///
    /// # Errors
    /// [`EngineError::CellSizeMismatch`] when `T` has the wrong size;
    /// [`EngineError::Geometry`] when the point is outside the domain.
    pub fn get<T: CellValue>(&self, point: &Point) -> Result<T> {
        if T::SIZE != self.cell_size {
            return Err(EngineError::CellSizeMismatch {
                expected: self.cell_size,
                got: T::SIZE,
            });
        }
        let layout = RowMajor::new(self.domain.clone())?;
        let off = layout.offset_of(point)? as usize * self.cell_size;
        Ok(T::read_bytes(&self.data[off..off + self.cell_size]))
    }

    /// Writes the typed cell at `point`.
    ///
    /// # Errors
    /// Same as [`Array::get`].
    pub fn set<T: CellValue>(&mut self, point: &Point, value: T) -> Result<()> {
        if T::SIZE != self.cell_size {
            return Err(EngineError::CellSizeMismatch {
                expected: self.cell_size,
                got: T::SIZE,
            });
        }
        let layout = RowMajor::new(self.domain.clone())?;
        let off = layout.offset_of(point)? as usize * self.cell_size;
        value.write_bytes(&mut self.data[off..off + self.cell_size]);
        Ok(())
    }

    /// Decodes the whole array into typed cells in row-major order.
    ///
    /// # Errors
    /// [`EngineError::CellSizeMismatch`] when `T` has the wrong size.
    pub fn to_cells<T: CellValue>(&self) -> Result<Vec<T>> {
        if T::SIZE != self.cell_size {
            return Err(EngineError::CellSizeMismatch {
                expected: self.cell_size,
                got: T::SIZE,
            });
        }
        Ok(self
            .data
            .chunks_exact(self.cell_size)
            .map(T::read_bytes)
            .collect())
    }

    /// Extracts a rectangular sub-array.
    ///
    /// # Errors
    /// [`EngineError::Geometry`] when `region` is not inside the domain.
    pub fn extract(&self, region: &Domain) -> Result<Array> {
        let mut out = Array::filled(region.clone(), &vec![0u8; self.cell_size])?;
        copy_region(
            &self.domain,
            &self.data,
            region,
            &mut out.data,
            region,
            self.cell_size,
        )?;
        Ok(out)
    }

    /// Copies the overlapping region of `src` into this array. Returns the
    /// number of cells copied (0 when the domains are disjoint).
    ///
    /// # Errors
    /// [`EngineError::CellSizeMismatch`] when cell sizes differ.
    pub fn paste(&mut self, src: &Array) -> Result<u64> {
        if src.cell_size != self.cell_size {
            return Err(EngineError::CellSizeMismatch {
                expected: self.cell_size,
                got: src.cell_size,
            });
        }
        let Some(overlap) = self.domain.intersection(&src.domain) else {
            return Ok(0);
        };
        Ok(copy_region(
            &src.domain,
            &src.data,
            &self.domain,
            &mut self.data,
            &overlap,
            self.cell_size,
        )?)
    }

    /// Fills `region` with a repeated `cell` value. Returns cells filled.
    ///
    /// # Errors
    /// [`EngineError::Geometry`] when `region` escapes the domain.
    pub fn fill(&mut self, region: &Domain, cell: &[u8]) -> Result<u64> {
        debug_assert_eq!(cell.len(), self.cell_size);
        Ok(fill_region(&self.domain, &mut self.data, region, cell)?)
    }

    /// Reinterprets the array over a new domain with the same cell count —
    /// used to drop the degenerate axes of a *section* result (§5.1 (d)).
    /// Row-major order is preserved when removing extent-1 axes, so the
    /// byte buffer is reused as-is.
    ///
    /// # Errors
    /// [`EngineError::DataLengthMismatch`] when the cell counts differ.
    pub fn reshaped(self, domain: Domain) -> Result<Array> {
        let expected = domain.size_bytes(self.cell_size)?;
        if self.data.len() as u64 != expected {
            return Err(EngineError::DataLengthMismatch {
                expected,
                got: self.data.len() as u64,
            });
        }
        Ok(Array {
            domain,
            cell_size: self.cell_size,
            data: self.data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::celltype::Rgb;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    #[test]
    fn filled_and_get_set() {
        let mut a = Array::filled(d("[0:1,0:1]"), &7u32.to_le_bytes()).unwrap();
        assert_eq!(a.get::<u32>(&Point::from_slice(&[1, 1])).unwrap(), 7);
        a.set(&Point::from_slice(&[0, 1]), 42u32).unwrap();
        assert_eq!(a.get::<u32>(&Point::from_slice(&[0, 1])).unwrap(), 42);
        assert_eq!(a.size_bytes(), 16);
        assert!(a.get::<u8>(&Point::from_slice(&[0, 0])).is_err());
        assert!(a.get::<u32>(&Point::from_slice(&[5, 5])).is_err());
    }

    #[test]
    fn from_cells_round_trip() {
        let cells: Vec<u16> = (0..12).collect();
        let a = Array::from_cells(d("[0:2,0:3]"), &cells).unwrap();
        assert_eq!(a.to_cells::<u16>().unwrap(), cells);
        assert!(Array::from_cells(d("[0:2,0:3]"), &cells[..5]).is_err());
    }

    #[test]
    fn from_fn_uses_coordinates() {
        let a = Array::from_fn(d("[0:2,0:2]"), |p| (p[0] * 10 + p[1]) as u32).unwrap();
        assert_eq!(a.get::<u32>(&Point::from_slice(&[2, 1])).unwrap(), 21);
    }

    #[test]
    fn extract_and_paste() {
        let a = Array::from_fn(d("[0:3,0:3]"), |p| (p[0] * 4 + p[1]) as u8).unwrap();
        let sub = a.extract(&d("[1:2,1:2]")).unwrap();
        assert_eq!(sub.to_cells::<u8>().unwrap(), vec![5, 6, 9, 10]);

        let mut big = Array::filled(d("[0:3,0:3]"), &[0xFF]).unwrap();
        let copied = big.paste(&sub).unwrap();
        assert_eq!(copied, 4);
        assert_eq!(big.get::<u8>(&Point::from_slice(&[1, 2])).unwrap(), 6);
        assert_eq!(big.get::<u8>(&Point::from_slice(&[0, 0])).unwrap(), 0xFF);

        // Paste with partial overlap clips correctly.
        let mut side = Array::filled(d("[2:5,2:5]"), &[0]).unwrap();
        let copied = side.paste(&a).unwrap();
        assert_eq!(copied, 4); // overlap [2:3,2:3]
        assert_eq!(side.get::<u8>(&Point::from_slice(&[3, 3])).unwrap(), 15);

        // Disjoint paste copies nothing.
        let mut far = Array::filled(d("[50:51,50:51]"), &[0]).unwrap();
        assert_eq!(far.paste(&a).unwrap(), 0);
    }

    #[test]
    fn rgb_arrays() {
        let a = Array::from_fn(d("[0:1,0:1]"), |p| Rgb::new(p[0] as u8, p[1] as u8, 99)).unwrap();
        assert_eq!(a.cell_size(), 3);
        assert_eq!(
            a.get::<Rgb>(&Point::from_slice(&[1, 0])).unwrap(),
            Rgb::new(1, 0, 99)
        );
    }

    #[test]
    fn reshaped_drops_degenerate_axes() {
        let a = Array::from_cells(d("[5:5,0:3]"), &[1u8, 2, 3, 4]).unwrap();
        let flat = a.reshaped(d("[0:3]")).unwrap();
        assert_eq!(flat.to_cells::<u8>().unwrap(), vec![1, 2, 3, 4]);
        let bad = Array::from_cells(d("[0:3]"), &[1u8, 2, 3, 4]).unwrap();
        assert!(bad.reshaped(d("[0:4]")).is_err());
    }

    #[test]
    fn fill_region_with_default() {
        let mut a = Array::filled(d("[0:2,0:2]"), &[1]).unwrap();
        let n = a.fill(&d("[1:1,0:2]"), &[9]).unwrap();
        assert_eq!(n, 3);
        assert_eq!(a.to_cells::<u8>().unwrap(), vec![1, 1, 1, 9, 9, 9, 1, 1, 1]);
    }

    #[test]
    fn from_bytes_validates_length() {
        assert!(Array::from_bytes(d("[0:1]"), 2, vec![0; 4]).is_ok());
        assert!(matches!(
            Array::from_bytes(d("[0:1]"), 2, vec![0; 5]),
            Err(EngineError::DataLengthMismatch {
                expected: 4,
                got: 5
            })
        ));
    }
}
