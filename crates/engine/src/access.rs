//! The access model of §5.1 and the access log feeding statistic tiling.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

use tilestore_geometry::{AxisRange, Domain};
use tilestore_tiling::AccessRecord;

use crate::error::{EngineError, Result};

/// A region access in the §5.1 classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessRegion {
    /// (a) the whole object.
    Whole,
    /// (b) a full-dimensional subarea (range query).
    Range(Domain),
    /// (c) a partial range query: bounds on some directions only (dicing /
    /// slicing / sub-aggregation); `None` leaves a direction unconstrained.
    Partial(Vec<Option<AxisRange>>),
    /// (d) a section: fixed coordinates along some directions, producing a
    /// result of lower dimensionality.
    Section(Vec<Option<i64>>),
}

impl AccessRegion {
    /// Resolves the access against the object's current domain into a
    /// concrete full-dimensional query region plus the axes that are fixed
    /// (to be dropped from the result's dimensionality, for sections).
    ///
    /// # Errors
    /// [`EngineError::BadAccessRegion`] for dimension mismatches, empty
    /// constraint ranges or section coordinates outside the current domain.
    pub fn resolve(&self, current: &Domain) -> Result<(Domain, Vec<usize>)> {
        match self {
            AccessRegion::Whole => Ok((current.clone(), Vec::new())),
            AccessRegion::Range(q) => {
                if q.dim() != current.dim() {
                    return Err(EngineError::BadAccessRegion(format!(
                        "range query {q} has dimensionality {}, object has {}",
                        q.dim(),
                        current.dim()
                    )));
                }
                Ok((q.clone(), Vec::new()))
            }
            AccessRegion::Partial(constraints) => {
                if constraints.len() != current.dim() {
                    return Err(EngineError::BadAccessRegion(format!(
                        "partial query constrains {} axes, object has {}",
                        constraints.len(),
                        current.dim()
                    )));
                }
                let mut region = current.clone();
                for (axis, c) in constraints.iter().enumerate() {
                    if let Some(r) = c {
                        region = region.with_axis(axis, *r)?;
                    }
                }
                Ok((region, Vec::new()))
            }
            AccessRegion::Section(coords) => {
                if coords.len() != current.dim() {
                    return Err(EngineError::BadAccessRegion(format!(
                        "section fixes {} axes, object has {}",
                        coords.len(),
                        current.dim()
                    )));
                }
                let mut region = current.clone();
                let mut fixed = Vec::new();
                for (axis, c) in coords.iter().enumerate() {
                    if let Some(x) = c {
                        let r = AxisRange::new(*x, *x).expect("degenerate range");
                        region = region.with_axis(axis, r)?;
                        fixed.push(axis);
                    }
                }
                if fixed.len() == coords.len() {
                    return Err(EngineError::BadAccessRegion(
                        "section fixes every axis; use a point read instead".to_string(),
                    ));
                }
                Ok((region, fixed))
            }
        }
    }
}

/// Locks the entry map, recovering from poisoning: a panicking worker
/// thread must not permanently disable query logging — the log holds plain
/// aggregated counts, which stay internally consistent even if a panic
/// interrupted the panicking thread's own update.
fn lock(
    m: &Mutex<BTreeMap<String, (Domain, u64)>>,
) -> MutexGuard<'_, BTreeMap<String, (Domain, u64)>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-object log of executed accesses, aggregated by region.
///
/// §5.2: "Statistic tiling automatically calculates areas of interest from
/// a list of accesses to an MDD. This list is obtained from an application
/// or database log file of access operations." The log is in-memory state
/// (a database would read it back from its operation log), so it is not
/// part of the persisted catalog.
#[derive(Debug, Default)]
pub struct AccessLog {
    entries: Mutex<BTreeMap<String, (Domain, u64)>>,
}

impl AccessLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        AccessLog::default()
    }

    /// Records one access to `region`.
    pub fn record(&self, region: &Domain) {
        let mut entries = lock(&self.entries);
        entries
            .entry(region.to_string())
            .and_modify(|(_, c)| *c += 1)
            .or_insert_with(|| (region.clone(), 1));
    }

    /// Number of distinct regions recorded.
    #[must_use]
    pub fn distinct_regions(&self) -> usize {
        lock(&self.entries).len()
    }

    /// Total accesses recorded.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        lock(&self.entries).values().map(|(_, c)| *c).sum()
    }

    /// Exports the log as tiling [`AccessRecord`]s.
    #[must_use]
    pub fn to_records(&self) -> Vec<AccessRecord> {
        lock(&self.entries)
            .values()
            .map(|(region, count)| AccessRecord::new(region.clone(), *count))
            .collect()
    }

    /// Clears the log.
    pub fn clear(&self) {
        lock(&self.entries).clear();
    }
}

impl Clone for AccessLog {
    fn clone(&self) -> Self {
        AccessLog {
            entries: Mutex::new(lock(&self.entries).clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    #[test]
    fn whole_resolves_to_current_domain() {
        let cur = d("[0:9,0:9]");
        let (r, fixed) = AccessRegion::Whole.resolve(&cur).unwrap();
        assert_eq!(r, cur);
        assert!(fixed.is_empty());
    }

    #[test]
    fn partial_constrains_named_axes_only() {
        let cur = d("[0:9,0:9,0:9]");
        let access = AccessRegion::Partial(vec![
            Some(AxisRange::new(2, 4).unwrap()),
            None,
            Some(AxisRange::new(7, 9).unwrap()),
        ]);
        let (r, _) = access.resolve(&cur).unwrap();
        assert_eq!(r, d("[2:4,0:9,7:9]"));
    }

    #[test]
    fn section_fixes_axes_and_reports_them() {
        let cur = d("[0:9,0:9,0:9]");
        let access = AccessRegion::Section(vec![None, Some(5), None]);
        let (r, fixed) = access.resolve(&cur).unwrap();
        assert_eq!(r, d("[0:9,5:5,0:9]"));
        assert_eq!(fixed, vec![1]);
    }

    #[test]
    fn bad_accesses_rejected() {
        let cur = d("[0:9,0:9]");
        assert!(AccessRegion::Range(d("[0:1]")).resolve(&cur).is_err());
        assert!(AccessRegion::Partial(vec![None]).resolve(&cur).is_err());
        assert!(AccessRegion::Section(vec![Some(1)]).resolve(&cur).is_err());
        assert!(AccessRegion::Section(vec![Some(1), Some(2)])
            .resolve(&cur)
            .is_err());
    }

    #[test]
    fn log_survives_lock_poisoning() {
        let log = AccessLog::new();
        log.record(&d("[0:4,0:4]"));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = log.entries.lock().unwrap();
            panic!("worker died mid-record");
        }));
        assert!(log.entries.is_poisoned());
        // Logging keeps working after a panicking holder.
        log.record(&d("[0:4,0:4]"));
        assert_eq!(log.total_accesses(), 2);
        assert_eq!(log.distinct_regions(), 1);
    }

    #[test]
    fn log_aggregates_by_region() {
        let log = AccessLog::new();
        log.record(&d("[0:4,0:4]"));
        log.record(&d("[0:4,0:4]"));
        log.record(&d("[5:9,5:9]"));
        assert_eq!(log.distinct_regions(), 2);
        assert_eq!(log.total_accesses(), 3);
        let recs = log.to_records();
        let hot = recs.iter().find(|r| r.region == d("[0:4,0:4]")).unwrap();
        assert_eq!(hot.count, 2);
        log.clear();
        assert_eq!(log.total_accesses(), 0);
    }
}
