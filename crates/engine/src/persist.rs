//! Catalog persistence: saving and reopening a file-backed database.
//!
//! A database directory holds two files: `pages.db` (the page store) and
//! `catalog.json` (object metadata, tile directories and the BLOB
//! directory). The physical storage layout stays transparent to the user
//! (§5): reopening restores every object, scheme and index exactly.

use std::fs;
use std::path::Path;

use tilestore_obs::AccessRecorder;
use tilestore_storage::{BlobDirectory, BlobStore, FilePageStore, PageStore, DEFAULT_PAGE_SIZE};
use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::mdd::MddObject;

/// Serializable catalog of a whole database.
#[derive(Debug)]
pub struct Catalog {
    /// Page size of the page store.
    pub page_size: usize,
    /// BLOB directory of the store.
    pub blobs: BlobDirectory,
    /// All object metadata.
    pub objects: Vec<MddObject>,
}

impl ToJson for Catalog {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("page_size", self.page_size.to_json()),
            ("blobs", self.blobs.to_json()),
            ("objects", self.objects.to_json()),
        ])
    }
}

impl FromJson for Catalog {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(Catalog {
            page_size: usize::from_json(v.field("page_size")?)?,
            blobs: BlobDirectory::from_json(v.field("blobs")?)?,
            objects: Vec::from_json(v.field("objects")?)?,
        })
    }
}

/// Name of the page file inside a database directory.
pub const PAGES_FILE: &str = "pages.db";
/// Name of the catalog file inside a database directory.
pub const CATALOG_FILE: &str = "catalog.json";
/// Name of the persistent query-access log inside a database directory.
pub const ACCESS_LOG_FILE: &str = "access.log";

impl<S: PageStore> Database<S> {
    /// Exports the catalog (objects + BLOB directory) for persistence.
    #[must_use]
    pub fn catalog(&self) -> Catalog {
        Catalog {
            page_size: self.blob_store().page_store().page_size(),
            blobs: self.blob_store().directory(),
            objects: self
                .object_names()
                .iter()
                .map(|n| self.object(n).expect("name from listing").clone())
                .collect(),
        }
    }

    /// Rebuilds a database from a page store and a previously exported
    /// catalog.
    #[must_use]
    pub fn from_catalog(store: S, catalog: Catalog) -> Self {
        let blobs = BlobStore::with_directory(store, catalog.blobs);
        let mut db = Database::from_blob_store(blobs);
        for meta in catalog.objects {
            db.restore_object(meta);
        }
        db
    }
}

impl Database<FilePageStore> {
    /// Creates a new file-backed database in `dir` (created if missing).
    ///
    /// # Errors
    /// Directory/file I/O errors.
    pub fn create_dir<P: AsRef<Path>>(dir: P) -> Result<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(|e| EngineError::Catalog(e.to_string()))?;
        let store = FilePageStore::create(dir.join(PAGES_FILE), DEFAULT_PAGE_SIZE)?;
        let mut db = Database::with_store(store);
        let recorder = AccessRecorder::open(dir.join(ACCESS_LOG_FILE))
            .map_err(|e| EngineError::Catalog(format!("opening access log: {e}")))?;
        db.attach_recorder(recorder);
        Ok(db)
    }

    /// Saves the catalog to the database directory.
    ///
    /// # Errors
    /// Serialization or file I/O errors.
    pub fn save<P: AsRef<Path>>(&self, dir: P) -> Result<()> {
        let json = tilestore_testkit::json::to_string(&self.catalog());
        fs::write(dir.as_ref().join(CATALOG_FILE), json)
            .map_err(|e| EngineError::Catalog(e.to_string()))?;
        Ok(())
    }

    /// Reopens a database saved with [`Database::save`].
    ///
    /// # Errors
    /// Missing/corrupt catalog or page-file I/O errors.
    pub fn open_dir<P: AsRef<Path>>(dir: P) -> Result<Self> {
        let dir = dir.as_ref();
        let json = fs::read_to_string(dir.join(CATALOG_FILE))
            .map_err(|e| EngineError::Catalog(format!("reading catalog: {e}")))?;
        let catalog: Catalog = tilestore_testkit::json::from_str(&json)
            .map_err(|e| EngineError::Catalog(format!("parsing catalog: {e}")))?;
        let store = FilePageStore::open(dir.join(PAGES_FILE), catalog.page_size)?;
        let mut db = Database::from_catalog(store, catalog);
        let recorder = AccessRecorder::open(dir.join(ACCESS_LOG_FILE))
            .map_err(|e| EngineError::Catalog(format!("opening access log: {e}")))?;
        db.attach_recorder(recorder);
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use tilestore_geometry::{Domain, Point};
    use tilestore_tiling::{AlignedTiling, Scheme};

    use super::*;
    use crate::array::Array;
    use crate::celltype::CellType;
    use crate::mdd::MddType;

    #[test]
    fn save_and_reopen_round_trip() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let dom: Domain = "[0:29,0:29]".parse().unwrap();
        let data = Array::from_fn(dom.clone(), |p| (p[0] * 31 + p[1]) as u32).unwrap();
        {
            let mut db = Database::create_dir(dir.path()).unwrap();
            db.create_object(
                "grid",
                MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
                Scheme::Aligned(AlignedTiling::regular(2, 1024)),
            )
            .unwrap();
            db.insert("grid", &data).unwrap();
            db.save(dir.path()).unwrap();
        }
        let db = Database::open_dir(dir.path()).unwrap();
        let obj = db.object("grid").unwrap();
        assert_eq!(obj.current_domain, Some(dom.clone()));
        assert!(obj.tile_count() > 1);
        let (out, stats) = db.range_query("grid", &dom).unwrap();
        assert_eq!(out, data);
        assert!(stats.io.pages_read > 0);
        // Point probe through the reopened index.
        let (one, _) = db
            .range_query("grid", &"[7:7,11:11]".parse().unwrap())
            .unwrap();
        assert_eq!(
            one.get::<u32>(&Point::from_slice(&[7, 11])).unwrap(),
            7 * 31 + 11
        );
    }

    #[test]
    fn file_backed_db_records_accesses_persistently() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let region: Domain = "[0:4,0:4]".parse().unwrap();
        {
            let mut db = Database::create_dir(dir.path()).unwrap();
            db.create_object(
                "m",
                MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
                Scheme::Aligned(AlignedTiling::regular(2, 1024)),
            )
            .unwrap();
            db.insert(
                "m",
                &Array::from_fn("[0:19,0:19]".parse().unwrap(), |p| p[0] as u32).unwrap(),
            )
            .unwrap();
            db.range_query("m", &region).unwrap();
            db.range_query("m", &region).unwrap();
            db.save(dir.path()).unwrap();
        }
        // The log file exists and survives reopening.
        assert!(dir.path().join(ACCESS_LOG_FILE).exists());
        let db = Database::open_dir(dir.path()).unwrap();
        let entries = db.recorder().unwrap().entries_for("m").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].region, "[0:4,0:4]");
        assert_eq!(entries[0].count, 2);
    }

    #[test]
    fn auto_retile_from_log_requires_recorder() {
        let mut db = Database::in_memory().unwrap();
        db.create_object(
            "m",
            MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 1024)),
        )
        .unwrap();
        db.insert(
            "m",
            &Array::from_fn("[0:9,0:9]".parse().unwrap(), |p| p[1] as u32).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            db.auto_retile_from_log("m", 0, 1, 4096),
            Err(EngineError::NoAccessRecorder)
        ));
        // Unknown object is reported first even without a recorder.
        assert!(matches!(
            db.auto_retile_from_log("nope", 0, 1, 4096),
            Err(EngineError::UnknownObject(_))
        ));
    }

    #[test]
    fn auto_retile_from_recorded_log_adapts_tiling() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let mut db = Database::create_dir(dir.path()).unwrap();
        db.create_object(
            "m",
            MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 4096)),
        )
        .unwrap();
        let data = Array::from_fn("[0:99,0:99]".parse().unwrap(), |p| {
            (p[0] * 100 + p[1]) as u32
        })
        .unwrap();
        db.insert("m", &data).unwrap();
        let hot: Domain = "[10:29,10:29]".parse().unwrap();
        for _ in 0..8 {
            db.range_query("m", &hot).unwrap();
        }
        let stats = db.auto_retile_from_log("m", 0, 4, 64 * 1024).unwrap();
        assert!(stats.tiles_after > 0);
        // The hot region is now exactly one tile: no wasted cells.
        let (out, qs) = db.range_query("m", &hot).unwrap();
        assert_eq!(out, data.extract(&hot).unwrap());
        assert_eq!(qs.cells_processed, hot.cells());
        assert_eq!(qs.tiles_read, 1);
    }

    #[test]
    fn open_missing_dir_fails_cleanly() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let missing = dir.path().join("nope");
        assert!(matches!(
            Database::open_dir(&missing),
            Err(EngineError::Catalog(_))
        ));
    }

    #[test]
    fn reopened_database_accepts_new_inserts() {
        let dir = tilestore_testkit::tempdir().unwrap();
        {
            let mut db = Database::create_dir(dir.path()).unwrap();
            db.create_object(
                "g",
                MddType::new(CellType::of::<u8>(), "[0:*,0:*]".parse().unwrap()),
                Scheme::Aligned(AlignedTiling::regular(2, 512)),
            )
            .unwrap();
            db.insert(
                "g",
                &Array::filled("[0:9,0:9]".parse().unwrap(), &[1]).unwrap(),
            )
            .unwrap();
            db.save(dir.path()).unwrap();
        }
        let mut db = Database::open_dir(dir.path()).unwrap();
        db.insert(
            "g",
            &Array::filled("[20:29,0:9]".parse().unwrap(), &[2]).unwrap(),
        )
        .unwrap();
        let (out, _) = db.range_query("g", &"[0:29,0:9]".parse().unwrap()).unwrap();
        assert_eq!(out.get::<u8>(&Point::from_slice(&[5, 5])).unwrap(), 1);
        assert_eq!(out.get::<u8>(&Point::from_slice(&[25, 5])).unwrap(), 2);
        assert_eq!(out.get::<u8>(&Point::from_slice(&[15, 5])).unwrap(), 0);
    }
}
