//! Catalog persistence: saving and reopening a file-backed database.
//!
//! A database directory holds two files: `pages.db` (the page store) and
//! `catalog.json` (object metadata, tile directories and the BLOB
//! directory). The physical storage layout stays transparent to the user
//! (§5): reopening restores every object, scheme and index exactly.
//!
//! # Durability
//!
//! [`Database::save`] is the commit point. It syncs the page store, then
//! publishes the catalog atomically: write `catalog.json.tmp`, fsync it,
//! rename over `catalog.json`, fsync the directory. A crash at any moment
//! leaves either the previous committed catalog or the new one — never a
//! torn mix. Each commit carries a monotonically increasing epoch.
//!
//! [`Database::open_dir`] recovers from interrupted commits: a stale
//! `catalog.json.tmp` is discarded, the page accounting is verified against
//! the catalog, and orphaned pages (allocated after the last commit, so
//! referenced by nothing) are reclaimed onto the free list. [`fsck`] runs
//! the same checks read-only and additionally verifies every BLOB's page
//! checksums.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;

use tilestore_index::BitmapIndex;
use tilestore_obs::AccessRecorder;
use tilestore_storage::{
    BlobDirectory, BlobId, BlobStore, BufferPool, FilePageStore, PageStore, DEFAULT_PAGE_SIZE,
    DEFAULT_SHARDS,
};
use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::mdd::MddObject;
use crate::snapshot::read_tile_payload;
use crate::synopsis::TileSynopsis;

/// Serializable catalog of a whole database.
#[derive(Debug)]
pub struct Catalog {
    /// Page size of the page store.
    pub page_size: usize,
    /// Commit epoch: 0 for a never-saved database, bumped on every save.
    pub epoch: u64,
    /// BLOB directory of the store.
    pub blobs: BlobDirectory,
    /// All object metadata.
    pub objects: Vec<MddObject>,
}

impl ToJson for Catalog {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("page_size", self.page_size.to_json()),
            ("epoch", self.epoch.to_json()),
            ("blobs", self.blobs.to_json()),
            ("objects", self.objects.to_json()),
        ])
    }
}

impl FromJson for Catalog {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(Catalog {
            page_size: usize::from_json(v.field("page_size")?)?,
            // Catalogs written before epochs existed read as epoch 0.
            epoch: match v.field("epoch") {
                Ok(e) => u64::from_json(e)?,
                Err(_) => 0,
            },
            blobs: BlobDirectory::from_json(v.field("blobs")?)?,
            objects: Vec::from_json(v.field("objects")?)?,
        })
    }
}

/// Name of the page file inside a database directory.
pub const PAGES_FILE: &str = "pages.db";
/// Name of the catalog file inside a database directory.
pub const CATALOG_FILE: &str = "catalog.json";
/// Scratch name the catalog is staged under before its atomic rename.
pub const CATALOG_TMP_FILE: &str = "catalog.json.tmp";
/// Name of the persistent query-access log inside a database directory.
pub const ACCESS_LOG_FILE: &str = "access.log";

fn catalog_err(context: &str, e: impl fmt::Display) -> EngineError {
    EngineError::Catalog(format!("{context}: {e}"))
}

/// Fsyncs a directory so a rename inside it is durable (POSIX keeps the
/// directory entry volatile otherwise).
fn fsync_dir(dir: &Path) -> Result<()> {
    let d = fs::File::open(dir).map_err(|e| catalog_err("opening directory for fsync", e))?;
    d.sync_all()
        .map_err(|e| catalog_err("fsyncing directory", e))
}

impl<S: PageStore> Database<S> {
    /// Exports the catalog (objects + BLOB directory) for persistence. The
    /// epoch is the database's current commit epoch; [`Database::save`]
    /// stamps the successor epoch at the commit point.
    ///
    /// # Errors
    /// [`EngineError::Catalog`] if an object listed in the name index has
    /// lost its metadata (internal inconsistency).
    pub fn catalog(&self) -> Result<Catalog> {
        let mut objects = Vec::new();
        for name in self.object_names() {
            let obj = self
                .object(&name)
                .map_err(|_| catalog_err("exporting catalog", format!("object {name} vanished")))?;
            objects.push((*obj).clone());
        }
        // Blobs retired by past commits but kept alive for live snapshots
        // must not become durable: export them as free space instead.
        Ok(Catalog {
            page_size: self.blob_store().page_store().page_size(),
            epoch: self.catalog_epoch(),
            blobs: self
                .blob_store()
                .directory_excluding(&self.pending_retired_blobs()),
            objects,
        })
    }

    /// Rebuilds a database from a page store and a previously exported
    /// catalog.
    #[must_use]
    pub fn from_catalog(store: S, catalog: Catalog) -> Self {
        let blobs = BlobStore::with_directory(store, catalog.blobs);
        let db = Database::from_blob_store(blobs);
        for mut meta in catalog.objects {
            db.hydrate_value_index(&mut meta);
            db.restore_object(meta);
        }
        db.set_catalog_epoch(catalog.epoch);
        // Snapshot epochs continue from the durable sequence rather than
        // restarting at zero on every reopen.
        db.set_snapshot_epoch(catalog.epoch);
        db
    }

    /// Hydrates the synopses and value-bitmap index of a restored object.
    ///
    /// Catalogs written before synopses existed lack them; the payloads are
    /// rescanned once here (lazy rebuild on first open) so every opened
    /// database prunes. The stored bitmap blob is used when it matches the
    /// tile set; otherwise it is rebuilt from the synopses and re-staged
    /// best-effort — the next [`Database::save`] makes it durable. The
    /// common reopen path (synopses present, blob intact) stays read-only.
    fn hydrate_value_index(&self, meta: &mut MddObject) {
        let mut rescanned: Vec<(usize, TileSynopsis)> = Vec::new();
        for (i, tile) in meta.tiles.iter().enumerate() {
            if tile.synopsis.is_none() {
                if let Ok(payload) = read_tile_payload(self.blob_store(), meta, tile) {
                    rescanned.push((i, TileSynopsis::scan(&meta.mdd_type.cell, &payload)));
                }
            }
        }
        let rescan = !rescanned.is_empty();
        for (i, syn) in rescanned {
            meta.tiles[i].synopsis = Some(syn);
        }
        if !rescan {
            if let Some(blob) = meta.value_index_blob {
                let loaded = self
                    .blob_store()
                    .read(blob)
                    .ok()
                    .and_then(|bytes| BitmapIndex::from_bytes(&bytes).ok())
                    .filter(|ix| ix.len() == meta.tiles.len());
                if let Some(ix) = loaded {
                    meta.value_index = Some(ix);
                    return;
                }
            }
        }
        // Missing, unreadable or stale bitmap: rebuild from the synopses.
        // No snapshot can exist this early, so the superseded blob is
        // deleted directly instead of epoch-retired.
        if let Some(stale) = meta.value_index_blob.take() {
            let _ = self.blob_store().delete(stale);
        }
        meta.rebuild_value_index();
        if !meta.tiles.is_empty() {
            if let Some(ix) = &meta.value_index {
                meta.value_index_blob = self.blob_store().create(&ix.to_bytes()).ok();
            }
        }
    }

    /// Durably commits the catalog to the database directory.
    ///
    /// Commit protocol: (1) sync the page store so every page the catalog
    /// references is on disk, (2) write the catalog to
    /// [`CATALOG_TMP_FILE`] and fsync it, (3) rename it over
    /// [`CATALOG_FILE`], (4) fsync the directory. Only after all four steps
    /// does the epoch advance and the quarantined (freed-since-last-commit)
    /// pages return to the free list — a crash anywhere in between leaves
    /// the previous committed state fully intact.
    ///
    /// # Errors
    /// Serialization or file I/O errors; on error nothing is committed.
    pub fn save<P: AsRef<Path>>(&self, dir: P) -> Result<()> {
        let _span = tilestore_obs::tracer().span("catalog_commit");
        let dir = dir.as_ref();
        // Serialize against writers: the exported catalog must be one
        // consistent epoch, not a torn mix across a concurrent commit.
        let _w = self.lock_writer();
        // 1. Page data first: the catalog must never point at volatile pages.
        self.blob_store().page_store().sync()?;
        // 2. Stage the successor-epoch catalog.
        let mut catalog = self.catalog()?;
        catalog.epoch = self.catalog_epoch() + 1;
        let json = tilestore_testkit::json::to_string(&catalog);
        let tmp = dir.join(CATALOG_TMP_FILE);
        {
            let mut f =
                fs::File::create(&tmp).map_err(|e| catalog_err("creating catalog.json.tmp", e))?;
            f.write_all(json.as_bytes())
                .map_err(|e| catalog_err("writing catalog.json.tmp", e))?;
            f.sync_all()
                .map_err(|e| catalog_err("fsyncing catalog.json.tmp", e))?;
        }
        // 3 + 4. The atomic commit point.
        fs::rename(&tmp, dir.join(CATALOG_FILE))
            .map_err(|e| catalog_err("renaming catalog into place", e))?;
        fsync_dir(dir)?;
        // Committed: pages freed before this point can now be reused safely.
        self.set_catalog_epoch(catalog.epoch);
        self.blob_store().release_freed_pages();
        tilestore_obs::hot().catalog_commits.inc();
        Ok(())
    }
}

/// The page store file-backed databases serve from: a sharded write-through
/// [`BufferPool`] over the checksummed [`FilePageStore`]. Cache hits skip
/// both the file read and the per-page CRC-32 frame verification, which is
/// what lifts multi-client serving throughput; the shards keep concurrent
/// readers off one global mutex.
pub type CachedFileStore = BufferPool<FilePageStore>;

/// Default buffer-pool size for file-backed databases, in pages (8 MiB at
/// the default 8 KiB page size).
pub const DEFAULT_CACHE_PAGES: usize = 1024;

impl Database<CachedFileStore> {
    /// Creates a new file-backed database in `dir` (created if missing),
    /// served through a [`CachedFileStore`] with [`DEFAULT_CACHE_PAGES`]
    /// frames across [`DEFAULT_SHARDS`] shards.
    ///
    /// # Errors
    /// Directory/file I/O errors.
    pub fn create_dir<P: AsRef<Path>>(dir: P) -> Result<Self> {
        Database::create_dir_with_cache(dir, DEFAULT_CACHE_PAGES, DEFAULT_SHARDS)
    }

    /// [`Database::create_dir`] with an explicit buffer-pool geometry
    /// (`cache_pages` total frames split across `cache_shards` shards).
    ///
    /// # Errors
    /// Directory/file I/O errors.
    pub fn create_dir_with_cache<P: AsRef<Path>>(
        dir: P,
        cache_pages: usize,
        cache_shards: usize,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(|e| EngineError::Catalog(e.to_string()))?;
        let store = FilePageStore::create(dir.join(PAGES_FILE), DEFAULT_PAGE_SIZE)?;
        let db = Database::with_store(BufferPool::with_shards(store, cache_pages, cache_shards)?);
        let recorder = AccessRecorder::open(dir.join(ACCESS_LOG_FILE))
            .map_err(|e| catalog_err("opening access log", e))?;
        db.set_recorder(recorder);
        Ok(db)
    }

    /// Reopens a database saved with [`Database::save`], recovering from an
    /// interrupted commit if necessary: a stale [`CATALOG_TMP_FILE`] is
    /// discarded, the page accounting is cross-checked against the catalog
    /// (dangling or duplicated page references are rejected as
    /// unrepairable corruption), and orphaned pages — allocated by work
    /// that crashed before its commit — are reclaimed onto the free list.
    ///
    /// # Errors
    /// Missing/corrupt catalog, unrepairable page accounting, or page-file
    /// I/O errors.
    pub fn open_dir<P: AsRef<Path>>(dir: P) -> Result<Self> {
        Database::open_dir_with_cache(dir, DEFAULT_CACHE_PAGES, DEFAULT_SHARDS)
    }

    /// [`Database::open_dir`] with an explicit buffer-pool geometry
    /// (`cache_pages` total frames split across `cache_shards` shards).
    ///
    /// # Errors
    /// As [`Database::open_dir`].
    pub fn open_dir_with_cache<P: AsRef<Path>>(
        dir: P,
        cache_pages: usize,
        cache_shards: usize,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        // A leftover tmp is a commit that never reached its rename; the
        // authoritative catalog is the committed one.
        let tmp = dir.join(CATALOG_TMP_FILE);
        if tmp.exists() {
            fs::remove_file(&tmp).map_err(|e| catalog_err("removing stale catalog.json.tmp", e))?;
        }
        let json = fs::read_to_string(dir.join(CATALOG_FILE))
            .map_err(|e| catalog_err("reading catalog", e))?;
        let catalog: Catalog = tilestore_testkit::json::from_str(&json)
            .map_err(|e| catalog_err("parsing catalog", e))?;
        let store = FilePageStore::open(dir.join(PAGES_FILE), catalog.page_size)?;
        let db = Database::from_catalog(
            BufferPool::with_shards(store, cache_pages, cache_shards)?,
            catalog,
        );
        // Cross-check the page file against the committed directory.
        let check = db.blob_store().check_pages();
        if !check.is_repairable() {
            return Err(EngineError::Catalog(format!(
                "page accounting corrupt: {} dangling, {} duplicated page refs",
                check.dangling.len(),
                check.duplicated.len()
            )));
        }
        if !check.orphaned.is_empty() {
            db.blob_store().reclaim_orphans();
        }
        // Every tile the catalog lists must resolve to a live BLOB.
        for name in db.object_names() {
            for tile in &db.object(&name)?.tiles {
                db.blob_store().blob_len(tile.blob).map_err(|_| {
                    EngineError::Catalog(format!(
                        "object {name} references missing BLOB {}",
                        tile.blob.0
                    ))
                })?;
            }
        }
        let recorder = AccessRecorder::open(dir.join(ACCESS_LOG_FILE))
            .map_err(|e| catalog_err("opening access log", e))?;
        db.set_recorder(recorder);
        Ok(db)
    }
}

/// Read-only consistency report for a database directory ([`fsck`]).
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Commit epoch of the on-disk catalog.
    pub epoch: u64,
    /// Number of objects in the catalog.
    pub objects: u64,
    /// Number of BLOBs in the directory.
    pub blobs: u64,
    /// Pages allocated in the page file.
    pub allocated_pages: u64,
    /// Pages on the free list.
    pub free_pages: u64,
    /// Allocated pages referenced by nothing (reclaimable leak).
    pub orphaned_pages: Vec<u64>,
    /// Page references beyond the allocated range (unrepairable).
    pub dangling_pages: Vec<u64>,
    /// Pages referenced more than once (unrepairable).
    pub duplicated_pages: Vec<u64>,
    /// BLOBs whose pages fail checksum verification (torn/corrupt frames).
    pub unreadable_blobs: Vec<u64>,
    /// `(object, blob)` tile references that resolve to no BLOB.
    pub missing_tile_blobs: Vec<(String, u64)>,
    /// `(object, blob)` value-bitmap-index references that resolve to no
    /// BLOB (dangling index blob).
    pub missing_index_blobs: Vec<(String, u64)>,
    /// Whether a stale `catalog.json.tmp` (interrupted commit) is present.
    pub stale_tmp: bool,
}

impl FsckReport {
    /// No inconsistencies of any kind.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.stale_tmp
            && self.orphaned_pages.is_empty()
            && self.dangling_pages.is_empty()
            && self.duplicated_pages.is_empty()
            && self.unreadable_blobs.is_empty()
            && self.missing_tile_blobs.is_empty()
            && self.missing_index_blobs.is_empty()
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "epoch {}: {} objects, {} blobs, {} pages allocated ({} free)",
            self.epoch, self.objects, self.blobs, self.allocated_pages, self.free_pages
        )?;
        if self.is_clean() {
            return write!(f, "clean");
        }
        if self.stale_tmp {
            writeln!(f, "stale catalog.json.tmp (interrupted commit)")?;
        }
        if !self.orphaned_pages.is_empty() {
            writeln!(f, "orphaned pages (reclaimable): {:?}", self.orphaned_pages)?;
        }
        if !self.dangling_pages.is_empty() {
            writeln!(f, "dangling page refs: {:?}", self.dangling_pages)?;
        }
        if !self.duplicated_pages.is_empty() {
            writeln!(f, "duplicated page refs: {:?}", self.duplicated_pages)?;
        }
        if !self.unreadable_blobs.is_empty() {
            writeln!(f, "unreadable blobs: {:?}", self.unreadable_blobs)?;
        }
        for (obj, blob) in &self.missing_tile_blobs {
            writeln!(f, "object {obj} references missing blob {blob}")?;
        }
        for (obj, blob) in &self.missing_index_blobs {
            writeln!(f, "object {obj} references missing index blob {blob}")?;
        }
        write!(f, "NOT clean")
    }
}

/// Checks a database directory for consistency without modifying it:
/// catalog parses, page accounting balances, every BLOB's pages pass
/// checksum verification, every tile reference resolves.
///
/// # Errors
/// Missing/corrupt catalog or page-file I/O errors (a database too damaged
/// to even inspect).
pub fn fsck<P: AsRef<Path>>(dir: P) -> Result<FsckReport> {
    let dir = dir.as_ref();
    let stale_tmp = dir.join(CATALOG_TMP_FILE).exists();
    let json = fs::read_to_string(dir.join(CATALOG_FILE))
        .map_err(|e| catalog_err("reading catalog", e))?;
    let catalog: Catalog =
        tilestore_testkit::json::from_str(&json).map_err(|e| catalog_err("parsing catalog", e))?;
    let Catalog {
        page_size,
        epoch,
        blobs,
        objects,
    } = catalog;
    let blob_ids: BTreeSet<u64> = blobs.blobs().map(|(id, _, _)| id.0).collect();
    let free_pages = blobs.free_pages().len() as u64;
    let store = FilePageStore::open(dir.join(PAGES_FILE), page_size)?;
    let bs = BlobStore::with_directory(store, blobs);
    let check = bs.check_pages();
    let mut report = FsckReport {
        epoch,
        objects: objects.len() as u64,
        blobs: blob_ids.len() as u64,
        allocated_pages: check.allocated,
        free_pages,
        orphaned_pages: check.orphaned.iter().map(|p| p.0).collect(),
        dangling_pages: check.dangling.iter().map(|p| p.0).collect(),
        duplicated_pages: check.duplicated.iter().map(|p| p.0).collect(),
        stale_tmp,
        ..FsckReport::default()
    };
    // Full checksum sweep: reading a BLOB verifies every frame it spans.
    for &id in &blob_ids {
        if bs.read(BlobId(id)).is_err() {
            report.unreadable_blobs.push(id);
        }
    }
    for obj in &objects {
        for tile in &obj.tiles {
            if !blob_ids.contains(&tile.blob.0) {
                report
                    .missing_tile_blobs
                    .push((obj.name.clone(), tile.blob.0));
            }
        }
        if let Some(blob) = obj.value_index_blob {
            if !blob_ids.contains(&blob.0) {
                report.missing_index_blobs.push((obj.name.clone(), blob.0));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use tilestore_geometry::{Domain, Point};
    use tilestore_tiling::{AlignedTiling, Scheme};

    use super::*;
    use crate::array::Array;
    use crate::celltype::CellType;
    use crate::mdd::MddType;

    #[test]
    fn save_and_reopen_round_trip() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let dom: Domain = "[0:29,0:29]".parse().unwrap();
        let data = Array::from_fn(dom.clone(), |p| (p[0] * 31 + p[1]) as u32).unwrap();
        {
            let db = Database::create_dir(dir.path()).unwrap();
            db.create_object(
                "grid",
                MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
                Scheme::Aligned(AlignedTiling::regular(2, 1024)),
            )
            .unwrap();
            db.insert("grid", &data).unwrap();
            db.save(dir.path()).unwrap();
        }
        let db = Database::open_dir(dir.path()).unwrap();
        let obj = db.object("grid").unwrap();
        assert_eq!(obj.current_domain, Some(dom.clone()));
        assert!(obj.tile_count() > 1);
        let q = db.range_query("grid", &dom).unwrap();
        assert_eq!(q.array, data);
        assert!(q.stats.io.pages_read > 0);
        // Point probe through the reopened index.
        let one = db
            .range_query("grid", &"[7:7,11:11]".parse().unwrap())
            .unwrap();
        assert_eq!(
            one.array.get::<u32>(&Point::from_slice(&[7, 11])).unwrap(),
            7 * 31 + 11
        );
    }

    #[test]
    fn save_commits_atomically_and_bumps_epoch() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let db = Database::create_dir(dir.path()).unwrap();
        assert_eq!(db.catalog_epoch(), 0);
        db.create_object(
            "g",
            MddType::new(CellType::of::<u8>(), "[0:*]".parse().unwrap()),
            Scheme::Aligned(AlignedTiling::regular(1, 512)),
        )
        .unwrap();
        db.insert(
            "g",
            &Array::filled("[0:99]".parse().unwrap(), &[3]).unwrap(),
        )
        .unwrap();
        db.save(dir.path()).unwrap();
        assert_eq!(db.catalog_epoch(), 1);
        // No staging file survives a successful commit.
        assert!(!dir.path().join(CATALOG_TMP_FILE).exists());
        db.save(dir.path()).unwrap();
        assert_eq!(db.catalog_epoch(), 2);
        // Reopening continues the epoch sequence.
        let db = Database::open_dir(dir.path()).unwrap();
        assert_eq!(db.catalog_epoch(), 2);
        db.save(dir.path()).unwrap();
        assert_eq!(db.catalog_epoch(), 3);
    }

    #[test]
    fn stale_tmp_from_interrupted_commit_is_discarded() {
        let dir = tilestore_testkit::tempdir().unwrap();
        {
            let db = Database::create_dir(dir.path()).unwrap();
            db.create_object(
                "g",
                MddType::new(CellType::of::<u8>(), "[0:*]".parse().unwrap()),
                Scheme::Aligned(AlignedTiling::regular(1, 512)),
            )
            .unwrap();
            db.insert(
                "g",
                &Array::filled("[0:49]".parse().unwrap(), &[9]).unwrap(),
            )
            .unwrap();
            db.save(dir.path()).unwrap();
        }
        // Simulate a crash between staging and rename: garbage tmp on disk.
        fs::write(dir.path().join(CATALOG_TMP_FILE), b"{half a cat").unwrap();
        let report = fsck(dir.path()).unwrap();
        assert!(report.stale_tmp);
        assert!(!report.is_clean());
        let db = Database::open_dir(dir.path()).unwrap();
        assert!(!dir.path().join(CATALOG_TMP_FILE).exists());
        let q = db.range_query("g", &"[0:49]".parse().unwrap()).unwrap();
        assert!(q.array.to_cells::<u8>().unwrap().iter().all(|&c| c == 9));
    }

    #[test]
    fn truncated_catalog_fails_cleanly() {
        let dir = tilestore_testkit::tempdir().unwrap();
        {
            let db = Database::create_dir(dir.path()).unwrap();
            db.create_object(
                "g",
                MddType::new(CellType::of::<u8>(), "[0:*]".parse().unwrap()),
                Scheme::Aligned(AlignedTiling::regular(1, 512)),
            )
            .unwrap();
            db.save(dir.path()).unwrap();
        }
        let full = fs::read_to_string(dir.path().join(CATALOG_FILE)).unwrap();
        fs::write(dir.path().join(CATALOG_FILE), &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            Database::open_dir(dir.path()),
            Err(EngineError::Catalog(_))
        ));
    }

    #[test]
    fn fsck_reports_clean_database() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let db = Database::create_dir(dir.path()).unwrap();
        db.create_object(
            "m",
            MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 1024)),
        )
        .unwrap();
        db.insert(
            "m",
            &Array::from_fn("[0:19,0:19]".parse().unwrap(), |p| p[0] as u32).unwrap(),
        )
        .unwrap();
        db.save(dir.path()).unwrap();
        let report = fsck(dir.path()).unwrap();
        assert!(report.is_clean(), "dirty: {report}");
        assert_eq!(report.epoch, 1);
        assert_eq!(report.objects, 1);
        assert!(report.blobs > 1);
        assert!(report.allocated_pages > 0);
        assert!(format!("{report}").contains("clean"));
    }

    #[test]
    fn fsck_flags_orphans_after_uncommitted_work() {
        let dir = tilestore_testkit::tempdir().unwrap();
        {
            let db = Database::create_dir(dir.path()).unwrap();
            db.create_object(
                "m",
                MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
                Scheme::Aligned(AlignedTiling::regular(2, 1024)),
            )
            .unwrap();
            db.insert(
                "m",
                &Array::from_fn("[0:9,0:9]".parse().unwrap(), |p| p[1] as u32).unwrap(),
            )
            .unwrap();
            db.save(dir.path()).unwrap();
            // More inserts after the commit, never saved: their pages are
            // allocated in the file but referenced by no committed catalog.
            db.insert(
                "m",
                &Array::from_fn("[20:29,0:9]".parse().unwrap(), |p| p[1] as u32).unwrap(),
            )
            .unwrap();
        }
        let report = fsck(dir.path()).unwrap();
        assert!(!report.orphaned_pages.is_empty());
        assert!(!report.is_clean());
        // Recovery reclaims them; the next commit makes the repair durable.
        let db = Database::open_dir(dir.path()).unwrap();
        db.save(dir.path()).unwrap();
        assert!(fsck(dir.path()).unwrap().is_clean());
    }

    #[test]
    fn file_backed_db_records_accesses_persistently() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let region: Domain = "[0:4,0:4]".parse().unwrap();
        {
            let db = Database::create_dir(dir.path()).unwrap();
            db.create_object(
                "m",
                MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
                Scheme::Aligned(AlignedTiling::regular(2, 1024)),
            )
            .unwrap();
            db.insert(
                "m",
                &Array::from_fn("[0:19,0:19]".parse().unwrap(), |p| p[0] as u32).unwrap(),
            )
            .unwrap();
            db.range_query("m", &region).unwrap();
            db.range_query("m", &region).unwrap();
            db.save(dir.path()).unwrap();
        }
        // The log file exists and survives reopening.
        assert!(dir.path().join(ACCESS_LOG_FILE).exists());
        let db = Database::open_dir(dir.path()).unwrap();
        let entries = db.recorder().unwrap().entries_for("m").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].region, "[0:4,0:4]");
        assert_eq!(entries[0].count, 2);
    }

    #[test]
    fn auto_retile_from_log_requires_recorder() {
        let db = Database::in_memory().unwrap();
        db.create_object(
            "m",
            MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 1024)),
        )
        .unwrap();
        db.insert(
            "m",
            &Array::from_fn("[0:9,0:9]".parse().unwrap(), |p| p[1] as u32).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            db.auto_retile_from_log("m", 0, 1, 4096),
            Err(EngineError::NoAccessRecorder)
        ));
        // Unknown object is reported first even without a recorder.
        assert!(matches!(
            db.auto_retile_from_log("nope", 0, 1, 4096),
            Err(EngineError::UnknownObject(_))
        ));
    }

    #[test]
    fn auto_retile_from_recorded_log_adapts_tiling() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let db = Database::create_dir(dir.path()).unwrap();
        db.create_object(
            "m",
            MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 4096)),
        )
        .unwrap();
        let data = Array::from_fn("[0:99,0:99]".parse().unwrap(), |p| {
            (p[0] * 100 + p[1]) as u32
        })
        .unwrap();
        db.insert("m", &data).unwrap();
        let hot: Domain = "[10:29,10:29]".parse().unwrap();
        for _ in 0..8 {
            db.range_query("m", &hot).unwrap();
        }
        let stats = db.auto_retile_from_log("m", 0, 4, 64 * 1024).unwrap();
        assert!(stats.tiles_after > 0);
        // The hot region is now exactly one tile: no wasted cells.
        let q = db.range_query("m", &hot).unwrap();
        assert_eq!(q.array, data.extract(&hot).unwrap());
        assert_eq!(q.stats.cells_processed, hot.cells());
        assert_eq!(q.stats.tiles_read, 1);
    }

    #[test]
    fn open_missing_dir_fails_cleanly() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let missing = dir.path().join("nope");
        assert!(matches!(
            Database::open_dir(&missing),
            Err(EngineError::Catalog(_))
        ));
    }

    #[test]
    fn reopened_database_accepts_new_inserts() {
        let dir = tilestore_testkit::tempdir().unwrap();
        {
            let db = Database::create_dir(dir.path()).unwrap();
            db.create_object(
                "g",
                MddType::new(CellType::of::<u8>(), "[0:*,0:*]".parse().unwrap()),
                Scheme::Aligned(AlignedTiling::regular(2, 512)),
            )
            .unwrap();
            db.insert(
                "g",
                &Array::filled("[0:9,0:9]".parse().unwrap(), &[1]).unwrap(),
            )
            .unwrap();
            db.save(dir.path()).unwrap();
        }
        let db = Database::open_dir(dir.path()).unwrap();
        db.insert(
            "g",
            &Array::filled("[20:29,0:9]".parse().unwrap(), &[2]).unwrap(),
        )
        .unwrap();
        let q = db.range_query("g", &"[0:29,0:9]".parse().unwrap()).unwrap();
        assert_eq!(q.array.get::<u8>(&Point::from_slice(&[5, 5])).unwrap(), 1);
        assert_eq!(q.array.get::<u8>(&Point::from_slice(&[25, 5])).unwrap(), 2);
        assert_eq!(q.array.get::<u8>(&Point::from_slice(&[15, 5])).unwrap(), 0);
    }

    #[test]
    fn save_with_live_snapshot_excludes_retired_blobs() {
        let dir = tilestore_testkit::tempdir().unwrap();
        let dom: Domain = "[0:29,0:29]".parse().unwrap();
        let data = Array::from_fn(dom.clone(), |p| (p[0] * 7 + p[1]) as u32).unwrap();
        let db = Database::create_dir(dir.path()).unwrap();
        db.create_object(
            "m",
            MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 1024)),
        )
        .unwrap();
        db.insert("m", &data).unwrap();
        db.save(dir.path()).unwrap();

        // Pin a snapshot, retile underneath it, and commit while the old
        // tiles are still alive for the snapshot.
        let snap = db.begin_read();
        db.retile("m", Scheme::Aligned(AlignedTiling::regular(2, 4096)))
            .unwrap();
        db.save(dir.path()).unwrap();

        // The snapshot still reads the old tiles from memory...
        let q = snap.range_query("m", &dom).unwrap();
        assert_eq!(q.array, data);
        // ...but the durable catalog only references the new ones, with
        // the retired blobs' pages exported as free space: fsck is clean.
        let report = fsck(dir.path()).unwrap();
        assert!(report.is_clean(), "dirty: {report}");
        drop(snap);

        let db = Database::open_dir(dir.path()).unwrap();
        let q = db.range_query("m", &dom).unwrap();
        assert_eq!(q.array, data);
    }
}
