//! Query execution statistics and the paper's time decomposition (§6).

use tilestore_storage::{CostModel, IoSnapshot};
use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

/// Counters collected while executing one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Index nodes visited while locating the intersected tiles.
    pub index_nodes: u64,
    /// Tiles fetched from storage.
    pub tiles_read: u64,
    /// Intersecting tiles skipped because their synopsis/bitmap proved the
    /// query's value predicate false (or a condenser was answered from the
    /// synopsis alone) — their blobs were never read.
    pub tiles_pruned: u64,
    /// I/O performed while fetching tiles.
    pub io: IoSnapshot,
    /// Cells of fetched tiles handled during post-processing — the basis of
    /// `t_cpu` (border tiles are processed whole even when only part of
    /// their cells lands in the result).
    pub cells_processed: u64,
    /// Cells actually copied into the result array.
    pub cells_copied: u64,
    /// Cells of the result filled with the default value (uncovered areas).
    pub cells_defaulted: u64,
    /// Wall-clock execution time of the query in nanoseconds.
    pub elapsed_ns: u64,
}

impl QueryStats {
    /// Converts the counters to the paper's time components under `model`.
    ///
    /// `t_cpu` distinguishes useful work (cells composed into the result or
    /// default-filled) from waste (cells fetched in border tiles but
    /// clipped away) — the latter is what makes regular tiling expensive in
    /// §6.1's post-processing measurements.
    #[must_use]
    pub fn times(&self, model: &CostModel) -> QueryTimes {
        let t_ix = model.t_ix(self.index_nodes);
        let t_o = model.t_o(&self.io);
        let useful = self.cells_copied + self.cells_defaulted;
        // A caller may report more copied than processed cells (e.g. when the
        // result is composed from overlapping reads); clamp instead of
        // underflowing.
        let wasted = self.cells_processed.saturating_sub(self.cells_copied);
        let t_cpu = model.t_cpu(useful, wasted);
        QueryTimes { t_ix, t_o, t_cpu }
    }

    /// Folds another stats record into this one with saturating counter
    /// arithmetic, for combining per-band records of a parallel fetch.
    /// Saturation matters because bands observe a shared I/O stats source:
    /// a counter torn across bands could otherwise wrap on subtraction and
    /// the merged sum overflow.
    pub fn merge(&mut self, other: &QueryStats) {
        self.index_nodes = self.index_nodes.saturating_add(other.index_nodes);
        self.tiles_read = self.tiles_read.saturating_add(other.tiles_read);
        self.tiles_pruned = self.tiles_pruned.saturating_add(other.tiles_pruned);
        self.cells_processed = self.cells_processed.saturating_add(other.cells_processed);
        self.cells_copied = self.cells_copied.saturating_add(other.cells_copied);
        self.cells_defaulted = self.cells_defaulted.saturating_add(other.cells_defaulted);
        self.elapsed_ns = self.elapsed_ns.saturating_add(other.elapsed_ns);
        let (a, b) = (&mut self.io, &other.io);
        a.pages_read = a.pages_read.saturating_add(b.pages_read);
        a.pages_written = a.pages_written.saturating_add(b.pages_written);
        a.blobs_read = a.blobs_read.saturating_add(b.blobs_read);
        a.blobs_written = a.blobs_written.saturating_add(b.blobs_written);
        a.bytes_read = a.bytes_read.saturating_add(b.bytes_read);
        a.bytes_written = a.bytes_written.saturating_add(b.bytes_written);
        a.cache_hits = a.cache_hits.saturating_add(b.cache_hits);
        a.cache_misses = a.cache_misses.saturating_add(b.cache_misses);
        a.runs_coalesced = a.runs_coalesced.saturating_add(b.runs_coalesced);
        a.pages_read_run = a.pages_read_run.saturating_add(b.pages_read_run);
        a.readahead_bytes = a.readahead_bytes.saturating_add(b.readahead_bytes);
    }
}

impl ToJson for QueryStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("index_nodes", self.index_nodes.to_json()),
            ("tiles_read", self.tiles_read.to_json()),
            ("tiles_pruned", self.tiles_pruned.to_json()),
            ("io", self.io.to_json()),
            ("cells_processed", self.cells_processed.to_json()),
            ("cells_copied", self.cells_copied.to_json()),
            ("cells_defaulted", self.cells_defaulted.to_json()),
            ("elapsed_ns", self.elapsed_ns.to_json()),
        ])
    }
}

impl FromJson for QueryStats {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(QueryStats {
            index_nodes: u64::from_json(v.field("index_nodes")?)?,
            tiles_read: u64::from_json(v.field("tiles_read")?)?,
            // Absent in records written before pruning existed.
            tiles_pruned: match v.get("tiles_pruned") {
                Some(t) => u64::from_json(t)?,
                None => 0,
            },
            io: IoSnapshot::from_json(v.field("io")?)?,
            cells_processed: u64::from_json(v.field("cells_processed")?)?,
            cells_copied: u64::from_json(v.field("cells_copied")?)?,
            cells_defaulted: u64::from_json(v.field("cells_defaulted")?)?,
            elapsed_ns: u64::from_json(v.field("elapsed_ns")?)?,
        })
    }
}

/// The paper's per-query time decomposition (model seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryTimes {
    /// Index access time.
    pub t_ix: f64,
    /// Tile retrieval (disk) time — the optimized component.
    pub t_o: f64,
    /// Post-processing (query evaluation) time.
    pub t_cpu: f64,
}

impl QueryTimes {
    /// `t_totalaccess = t_o + t_ix` — total retrieval time from disk.
    #[must_use]
    pub fn total_access(&self) -> f64 {
        self.t_o + self.t_ix
    }

    /// `t_totalcpu = t_o + t_ix + t_cpu` — total query execution time.
    #[must_use]
    pub fn total_cpu(&self) -> f64 {
        self.t_o + self.t_ix + self.t_cpu
    }
}

impl std::fmt::Display for QueryTimes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t_ix={:.4}s t_o={:.4}s t_cpu={:.4}s (total {:.4}s)",
            self.t_ix,
            self.t_o,
            self.t_cpu,
            self.total_cpu()
        )
    }
}

impl ToJson for QueryTimes {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("t_ix", self.t_ix.to_json()),
            ("t_o", self.t_o.to_json()),
            ("t_cpu", self.t_cpu.to_json()),
        ])
    }
}

impl FromJson for QueryTimes {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(QueryTimes {
            t_ix: f64::from_json(v.field("t_ix")?)?,
            t_o: f64::from_json(v.field("t_o")?)?,
            t_cpu: f64::from_json(v.field("t_cpu")?)?,
        })
    }
}

/// Statistics of one insert (load) operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertStats {
    /// Tiles created.
    pub tiles_created: u64,
    /// Payload bytes written.
    pub bytes_written: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Wall-clock insert time in nanoseconds.
    pub elapsed_ns: u64,
}

impl ToJson for InsertStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tiles_created", self.tiles_created.to_json()),
            ("bytes_written", self.bytes_written.to_json()),
            ("pages_written", self.pages_written.to_json()),
            ("elapsed_ns", self.elapsed_ns.to_json()),
        ])
    }
}

impl FromJson for InsertStats {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(InsertStats {
            tiles_created: u64::from_json(v.field("tiles_created")?)?,
            bytes_written: u64::from_json(v.field("bytes_written")?)?,
            pages_written: u64::from_json(v.field("pages_written")?)?,
            elapsed_ns: u64::from_json(v.field("elapsed_ns")?)?,
        })
    }
}

/// Statistics of a re-tiling operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetileStats {
    /// Tiles before re-tiling.
    pub tiles_before: u64,
    /// Tiles after re-tiling.
    pub tiles_after: u64,
    /// Payload bytes rewritten.
    pub bytes_rewritten: u64,
    /// Wall-clock re-tiling time in nanoseconds.
    pub elapsed_ns: u64,
}

impl ToJson for RetileStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tiles_before", self.tiles_before.to_json()),
            ("tiles_after", self.tiles_after.to_json()),
            ("bytes_rewritten", self.bytes_rewritten.to_json()),
            ("elapsed_ns", self.elapsed_ns.to_json()),
        ])
    }
}

impl FromJson for RetileStats {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(RetileStats {
            tiles_before: u64::from_json(v.field("tiles_before")?)?,
            tiles_after: u64::from_json(v.field("tiles_after")?)?,
            bytes_rewritten: u64::from_json(v.field("bytes_rewritten")?)?,
            elapsed_ns: u64::from_json(v.field("elapsed_ns")?)?,
        })
    }
}

/// Statistics of one paced defragmentation step
/// ([`crate::Database::defrag_step`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefragStep {
    /// Tiles rewritten onto contiguous pages in this step.
    pub tiles_moved: u64,
    /// Payload bytes rewritten in this step.
    pub bytes_moved: u64,
    /// Tiles after this step's rewrite window that are not yet known to sit
    /// in curve order; 0 means the object is fully defragmented.
    pub tiles_remaining: u64,
    /// Wall-clock time of the step in nanoseconds.
    pub elapsed_ns: u64,
}

impl ToJson for DefragStep {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tiles_moved", self.tiles_moved.to_json()),
            ("bytes_moved", self.bytes_moved.to_json()),
            ("tiles_remaining", self.tiles_remaining.to_json()),
            ("elapsed_ns", self.elapsed_ns.to_json()),
        ])
    }
}

impl FromJson for DefragStep {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(DefragStep {
            tiles_moved: u64::from_json(v.field("tiles_moved")?)?,
            bytes_moved: u64::from_json(v.field("bytes_moved")?)?,
            tiles_remaining: u64::from_json(v.field("tiles_remaining")?)?,
            elapsed_ns: u64::from_json(v.field("elapsed_ns")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_compose() {
        let stats = QueryStats {
            index_nodes: 10,
            tiles_read: 2,
            tiles_pruned: 0,
            io: IoSnapshot {
                blobs_read: 2,
                pages_read: 8,
                bytes_read: 60_000,
                ..IoSnapshot::default()
            },
            cells_processed: 15_000,
            cells_copied: 13_000,
            cells_defaulted: 0,
            elapsed_ns: 0,
        };
        let m = CostModel::classic_disk();
        let t = stats.times(&m);
        assert!(t.t_o > 0.0 && t.t_ix > 0.0 && t.t_cpu > 0.0);
        assert!((t.total_access() - (t.t_o + t.t_ix)).abs() < 1e-15);
        assert!((t.total_cpu() - (t.t_o + t.t_ix + t.t_cpu)).abs() < 1e-15);
    }

    #[test]
    fn query_times_display() {
        let t = QueryTimes {
            t_ix: 0.001,
            t_o: 0.25,
            t_cpu: 0.05,
        };
        let s = t.to_string();
        assert!(s.contains("t_o=0.2500s"), "{s}");
        assert!(s.contains("total 0.3010s"), "{s}");
    }

    #[test]
    fn defaulted_cells_cost_cpu() {
        let m = CostModel::classic_disk();
        let a = QueryStats {
            cells_defaulted: 1_000_000,
            ..QueryStats::default()
        };
        assert!(a.times(&m).t_cpu > 0.0);
    }

    #[test]
    fn more_copied_than_processed_does_not_underflow() {
        // Regression: `cells_processed - cells_copied` used to panic in
        // debug builds when a caller reported more copied than processed.
        let stats = QueryStats {
            cells_processed: 10,
            cells_copied: 25,
            ..QueryStats::default()
        };
        let t = stats.times(&CostModel::classic_disk());
        assert!(t.t_cpu >= 0.0 && t.t_cpu.is_finite());
    }

    #[test]
    fn query_stats_json_round_trip() {
        let stats = QueryStats {
            index_nodes: 7,
            tiles_read: 3,
            tiles_pruned: 5,
            io: IoSnapshot {
                blobs_read: 3,
                pages_read: 12,
                bytes_read: 90_000,
                ..IoSnapshot::default()
            },
            cells_processed: 500,
            cells_copied: 400,
            cells_defaulted: 10,
            elapsed_ns: 123_456,
        };
        let json = tilestore_testkit::json::to_string(&stats);
        let back: QueryStats = tilestore_testkit::json::from_str(&json).unwrap();
        assert_eq!(back, stats, "{json}");
    }

    #[test]
    fn query_stats_without_pruning_field_still_parse() {
        // A stats record serialized before `tiles_pruned` existed.
        let json = QueryStats::default().to_json();
        let Json::Object(mut fields) = json else {
            panic!("stats serialize as an object")
        };
        fields.retain(|(k, _)| k != "tiles_pruned");
        let back = QueryStats::from_json(&Json::Object(fields)).unwrap();
        assert_eq!(back.tiles_pruned, 0);
    }

    #[test]
    fn merge_adds_every_counter_saturating() {
        let mut a = QueryStats {
            index_nodes: 1,
            tiles_read: 2,
            tiles_pruned: u64::MAX,
            io: IoSnapshot {
                pages_read: 4,
                bytes_read: 100,
                cache_hits: 1,
                ..IoSnapshot::default()
            },
            cells_processed: 10,
            cells_copied: 8,
            cells_defaulted: 1,
            elapsed_ns: 5,
        };
        let b = QueryStats {
            index_nodes: 2,
            tiles_read: 3,
            tiles_pruned: 7,
            io: IoSnapshot {
                pages_read: 1,
                pages_written: 2,
                blobs_read: 3,
                blobs_written: 4,
                bytes_read: 5,
                bytes_written: 6,
                cache_hits: 7,
                cache_misses: 8,
                runs_coalesced: 9,
                pages_read_run: 10,
                readahead_bytes: 11,
            },
            cells_processed: 20,
            cells_copied: 16,
            cells_defaulted: 2,
            elapsed_ns: 9,
        };
        a.merge(&b);
        assert_eq!(a.index_nodes, 3);
        assert_eq!(a.tiles_read, 5);
        assert_eq!(a.tiles_pruned, u64::MAX, "saturates instead of wrapping");
        assert_eq!(a.cells_processed, 30);
        assert_eq!(a.cells_copied, 24);
        assert_eq!(a.cells_defaulted, 3);
        assert_eq!(a.elapsed_ns, 14);
        assert_eq!(a.io.pages_read, 5);
        assert_eq!(a.io.pages_written, 2);
        assert_eq!(a.io.blobs_read, 3);
        assert_eq!(a.io.blobs_written, 4);
        assert_eq!(a.io.bytes_read, 105);
        assert_eq!(a.io.bytes_written, 6);
        assert_eq!(a.io.cache_hits, 8);
        assert_eq!(a.io.cache_misses, 8);
        assert_eq!(a.io.runs_coalesced, 9);
        assert_eq!(a.io.pages_read_run, 10);
        assert_eq!(a.io.readahead_bytes, 11);
    }

    #[test]
    fn query_times_json_round_trip() {
        let t = QueryTimes {
            t_ix: 0.001,
            t_o: 0.25,
            t_cpu: 0.055,
        };
        let json = tilestore_testkit::json::to_string(&t);
        let back: QueryTimes = tilestore_testkit::json::from_str(&json).unwrap();
        assert!((back.t_ix - t.t_ix).abs() < 1e-12);
        assert!((back.t_o - t.t_o).abs() < 1e-12);
        assert!((back.t_cpu - t.t_cpu).abs() < 1e-12);
    }

    #[test]
    fn insert_stats_json_round_trip() {
        let stats = InsertStats {
            tiles_created: 16,
            bytes_written: 1 << 20,
            pages_written: 130,
            elapsed_ns: 42,
        };
        let json = tilestore_testkit::json::to_string(&stats);
        let back: InsertStats = tilestore_testkit::json::from_str(&json).unwrap();
        assert_eq!(back, stats, "{json}");
    }

    #[test]
    fn retile_stats_json_round_trip() {
        let stats = RetileStats {
            tiles_before: 64,
            tiles_after: 9,
            bytes_rewritten: 2 << 20,
            elapsed_ns: 7_000_000,
        };
        let json = tilestore_testkit::json::to_string(&stats);
        let back: RetileStats = tilestore_testkit::json::from_str(&json).unwrap();
        assert_eq!(back, stats, "{json}");
    }
}
