//! Query execution statistics and the paper's time decomposition (§6).

use tilestore_storage::{CostModel, IoSnapshot};
use tilestore_testkit::{Json, ToJson};

/// Counters collected while executing one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Index nodes visited while locating the intersected tiles.
    pub index_nodes: u64,
    /// Tiles fetched from storage.
    pub tiles_read: u64,
    /// I/O performed while fetching tiles.
    pub io: IoSnapshot,
    /// Cells of fetched tiles handled during post-processing — the basis of
    /// `t_cpu` (border tiles are processed whole even when only part of
    /// their cells lands in the result).
    pub cells_processed: u64,
    /// Cells actually copied into the result array.
    pub cells_copied: u64,
    /// Cells of the result filled with the default value (uncovered areas).
    pub cells_defaulted: u64,
}

impl QueryStats {
    /// Converts the counters to the paper's time components under `model`.
    ///
    /// `t_cpu` distinguishes useful work (cells composed into the result or
    /// default-filled) from waste (cells fetched in border tiles but
    /// clipped away) — the latter is what makes regular tiling expensive in
    /// §6.1's post-processing measurements.
    #[must_use]
    pub fn times(&self, model: &CostModel) -> QueryTimes {
        let t_ix = model.t_ix(self.index_nodes);
        let t_o = model.t_o(&self.io);
        let useful = self.cells_copied + self.cells_defaulted;
        let wasted = self.cells_processed - self.cells_copied;
        let t_cpu = model.t_cpu(useful, wasted);
        QueryTimes { t_ix, t_o, t_cpu }
    }
}

impl ToJson for QueryStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("index_nodes", self.index_nodes.to_json()),
            ("tiles_read", self.tiles_read.to_json()),
            ("io", self.io.to_json()),
            ("cells_processed", self.cells_processed.to_json()),
            ("cells_copied", self.cells_copied.to_json()),
            ("cells_defaulted", self.cells_defaulted.to_json()),
        ])
    }
}

/// The paper's per-query time decomposition (model seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryTimes {
    /// Index access time.
    pub t_ix: f64,
    /// Tile retrieval (disk) time — the optimized component.
    pub t_o: f64,
    /// Post-processing (query evaluation) time.
    pub t_cpu: f64,
}

impl QueryTimes {
    /// `t_totalaccess = t_o + t_ix` — total retrieval time from disk.
    #[must_use]
    pub fn total_access(&self) -> f64 {
        self.t_o + self.t_ix
    }

    /// `t_totalcpu = t_o + t_ix + t_cpu` — total query execution time.
    #[must_use]
    pub fn total_cpu(&self) -> f64 {
        self.t_o + self.t_ix + self.t_cpu
    }
}

impl std::fmt::Display for QueryTimes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t_ix={:.4}s t_o={:.4}s t_cpu={:.4}s (total {:.4}s)",
            self.t_ix,
            self.t_o,
            self.t_cpu,
            self.total_cpu()
        )
    }
}

impl ToJson for QueryTimes {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("t_ix", self.t_ix.to_json()),
            ("t_o", self.t_o.to_json()),
            ("t_cpu", self.t_cpu.to_json()),
        ])
    }
}

/// Statistics of one insert (load) operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertStats {
    /// Tiles created.
    pub tiles_created: u64,
    /// Payload bytes written.
    pub bytes_written: u64,
    /// Pages written.
    pub pages_written: u64,
}

impl ToJson for InsertStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tiles_created", self.tiles_created.to_json()),
            ("bytes_written", self.bytes_written.to_json()),
            ("pages_written", self.pages_written.to_json()),
        ])
    }
}

/// Statistics of a re-tiling operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetileStats {
    /// Tiles before re-tiling.
    pub tiles_before: u64,
    /// Tiles after re-tiling.
    pub tiles_after: u64,
    /// Payload bytes rewritten.
    pub bytes_rewritten: u64,
}

impl ToJson for RetileStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tiles_before", self.tiles_before.to_json()),
            ("tiles_after", self.tiles_after.to_json()),
            ("bytes_rewritten", self.bytes_rewritten.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_compose() {
        let stats = QueryStats {
            index_nodes: 10,
            tiles_read: 2,
            io: IoSnapshot {
                blobs_read: 2,
                pages_read: 8,
                bytes_read: 60_000,
                ..IoSnapshot::default()
            },
            cells_processed: 15_000,
            cells_copied: 13_000,
            cells_defaulted: 0,
        };
        let m = CostModel::classic_disk();
        let t = stats.times(&m);
        assert!(t.t_o > 0.0 && t.t_ix > 0.0 && t.t_cpu > 0.0);
        assert!((t.total_access() - (t.t_o + t.t_ix)).abs() < 1e-15);
        assert!((t.total_cpu() - (t.t_o + t.t_ix + t.t_cpu)).abs() < 1e-15);
    }

    #[test]
    fn query_times_display() {
        let t = QueryTimes {
            t_ix: 0.001,
            t_o: 0.25,
            t_cpu: 0.05,
        };
        let s = t.to_string();
        assert!(s.contains("t_o=0.2500s"), "{s}");
        assert!(s.contains("total 0.3010s"), "{s}");
    }

    #[test]
    fn defaulted_cells_cost_cpu() {
        let m = CostModel::classic_disk();
        let a = QueryStats {
            cells_defaulted: 1_000_000,
            ..QueryStats::default()
        };
        assert!(a.times(&m).t_cpu > 0.0);
    }
}
