//! EXPLAIN: the planner's per-tile decisions as an inspectable report.
//!
//! [`Snapshot::explain_range`] and [`Snapshot::explain_aggregate`] walk the
//! same candidate set, in the same order, applying the same rules as the
//! executors in `snapshot.rs` / `aggregate.rs` — but instead of fetching or
//! skipping tiles they record *which* rule fired for each one. The report
//! therefore reconciles exactly with the executor's counters: `fetched`
//! equals `QueryStats::tiles_read` and `pruned` equals
//! `QueryStats::tiles_pruned` for the same statement at the same epoch
//! (a property test in `tests/properties.rs` pins this).

use tilestore_geometry::Domain;
use tilestore_storage::PageStore;

use crate::aggregate::{decode_numeric, kind_accepts_synopsis, AggKind};
use crate::error::{EngineError, Result};
use crate::mdd::{MddObject, TileMeta};
use crate::predicate::{CellPredicate, PruneRule};
use crate::snapshot::Snapshot;
use tilestore_testkit::{Json, ToJson};

/// What the planner decided to do with one candidate tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileDecision {
    /// The tile's blob is fetched and its cells processed.
    Fetched,
    /// The tile's blob is fetched, and its pages are physically adjacent
    /// to the previously fetched tile's, so the batch read path folds it
    /// into the predecessor's positioned read instead of seeking.
    FetchCoalesced,
    /// Skipped: the bitmap index's per-tile mask is disjoint from the
    /// predicate's candidate bins.
    BitmapPrune,
    /// Skipped: the tile synopsis proves no cell satisfies the predicate.
    SynopsisPrune,
    /// Not fetched: the condenser's contribution for the (fully
    /// contained) tile is computed from the synopsis alone.
    SynopsisCondense,
}

impl TileDecision {
    /// Stable short name used in the JSON report.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TileDecision::Fetched => "fetched",
            TileDecision::FetchCoalesced => "fetch-coalesced",
            TileDecision::BitmapPrune => "bitmap-prune",
            TileDecision::SynopsisPrune => "synopsis-prune",
            TileDecision::SynopsisCondense => "synopsis-condense",
        }
    }

    /// Whether this decision counts in `QueryStats::tiles_pruned` (every
    /// decision that avoids fetching the blob does; a coalesced fetch is
    /// still a fetch).
    #[must_use]
    pub fn is_pruned(self) -> bool {
        !matches!(self, TileDecision::Fetched | TileDecision::FetchCoalesced)
    }
}

/// One candidate tile's entry in an EXPLAIN report.
#[derive(Debug, Clone)]
pub struct TilePlan {
    /// Position of the tile in the object's tile list.
    pub tile: u64,
    /// The tile's domain in textual form.
    pub domain: String,
    /// The decision taken.
    pub decision: TileDecision,
    /// The specific rule that fired (or why none could).
    pub rule: String,
}

impl ToJson for TilePlan {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tile", self.tile.to_json()),
            ("domain", Json::Str(self.domain.clone())),
            ("decision", Json::Str(self.decision.as_str().to_string())),
            ("rule", Json::Str(self.rule.clone())),
        ])
    }
}

/// The planner report for one statement: every candidate tile the index
/// returned, with the decision the executor will take for it.
#[derive(Debug, Clone)]
pub struct ExplainPlan {
    /// Object the statement reads.
    pub object: String,
    /// The intersected query region.
    pub region: String,
    /// The value predicate, if any (`"> 500"` form).
    pub predicate: Option<String>,
    /// The condenser kind, for aggregate statements.
    pub condenser: Option<&'static str>,
    /// Epoch of the snapshot the plan was built against.
    pub epoch: u64,
    /// Index nodes visited to find the candidates.
    pub index_nodes: u64,
    /// Per-tile decisions, in executor order.
    pub tiles: Vec<TilePlan>,
}

impl ExplainPlan {
    /// Number of tiles whose blobs will be fetched (= `tiles_read`),
    /// whether by their own positioned read or coalesced into a
    /// neighbour's.
    #[must_use]
    pub fn fetched(&self) -> u64 {
        self.tiles
            .iter()
            .filter(|t| !t.decision.is_pruned())
            .count() as u64
    }

    /// Number of tiles answered without fetching (= `tiles_pruned`).
    #[must_use]
    pub fn pruned(&self) -> u64 {
        self.tiles.len() as u64 - self.fetched()
    }
}

impl ToJson for ExplainPlan {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("object", Json::Str(self.object.clone())),
            ("region", Json::Str(self.region.clone())),
        ];
        if let Some(p) = &self.predicate {
            fields.push(("predicate", Json::Str(p.clone())));
        }
        if let Some(c) = self.condenser {
            fields.push(("condenser", Json::Str(c.to_string())));
        }
        fields.push(("epoch", self.epoch.to_json()));
        fields.push(("index_nodes", self.index_nodes.to_json()));
        fields.push(("candidates", (self.tiles.len() as u64).to_json()));
        fields.push(("fetched", self.fetched().to_json()));
        fields.push(("pruned", self.pruned().to_json()));
        fields.push((
            "tiles",
            Json::Array(self.tiles.iter().map(ToJson::to_json).collect()),
        ));
        Json::obj(fields)
    }
}

/// Upgrades `Fetched` decisions to `FetchCoalesced` where the tile's pages
/// physically follow the previously fetched tile's — mirroring the run
/// grouping of the batch read path, which sorts a plan by first page and
/// folds adjacent contiguous blobs into one positioned read. After a
/// defrag, curve-adjacent tiles report `fetch-coalesced` here.
fn mark_coalesced<S: PageStore>(
    blobs: &tilestore_storage::BlobStore<S>,
    meta: &MddObject,
    tiles: &mut [TilePlan],
) {
    let mut fetched: Vec<(usize, tilestore_storage::BlobPlacement)> = tiles
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.decision.is_pruned())
        .filter_map(|(i, t)| {
            blobs
                .blob_placement(meta.tiles[t.tile as usize].blob)
                .ok()
                .map(|p| (i, p))
        })
        .collect();
    fetched.sort_by_key(|&(_, p)| p.first_page.0);
    for k in 1..fetched.len() {
        let (prev, cur) = (fetched[k - 1].1, fetched[k].1);
        if prev.runs == 1 && prev.first_page.0 + prev.pages == cur.first_page.0 {
            let i = fetched[k].0;
            tiles[i].decision = TileDecision::FetchCoalesced;
            tiles[i].rule = "pages adjacent to previous fetch; folded into its read".to_string();
        }
    }
}

/// Classifies one candidate tile under a predicate, mirroring the pruning
/// test in `execute_range`/`aggregate_where`: bitmap disjointness is
/// attributed first (it is the cheaper check and short-circuits the `||`),
/// then the synopsis rule.
fn classify_pruning(
    meta: &MddObject,
    pos: usize,
    tile: &TileMeta,
    p: &CellPredicate,
    candidates: u64,
) -> Option<(TileDecision, String)> {
    let by_bitmap = p.bins_can_prune()
        && meta
            .value_index
            .as_ref()
            .is_some_and(|ix| ix.tile_mask(pos) & candidates == 0);
    if by_bitmap {
        return Some((
            TileDecision::BitmapPrune,
            "tile bitmap ∩ candidate bins = ∅".to_string(),
        ));
    }
    let rule = tile.synopsis.as_ref().and_then(|s| p.prune_rule(s))?;
    let detail = match rule {
        PruneRule::EmptyTile => "synopsis records zero cells".to_string(),
        PruneRule::Extrema => {
            let syn = tile.synopsis.as_ref().expect("rule implies synopsis");
            format!(
                "extrema [{}, {}] vs `{p}`: {}",
                syn.min().unwrap_or(f64::NAN),
                syn.max().unwrap_or(f64::NAN),
                p.extrema_rule()
            )
        }
        PruneRule::SynopsisBins => "synopsis bins ∩ candidate bins = ∅".to_string(),
    };
    Some((TileDecision::SynopsisPrune, detail))
}

impl<S: PageStore> Snapshot<S> {
    /// Validates object/predicate/region exactly like the executors do and
    /// returns the candidate tile positions.
    fn explain_candidates(
        &self,
        name: &str,
        region: &Domain,
        predicate: Option<&CellPredicate>,
    ) -> Result<(std::sync::Arc<MddObject>, Vec<u64>, u64)> {
        let entry = self.catalog.entry(name)?;
        if predicate.is_some() {
            decode_numeric(&entry.meta.mdd_type.cell, &entry.meta.mdd_type.cell.default)?;
        }
        if !entry.meta.mdd_type.definition.admits(region) {
            return Err(EngineError::OutsideDefinitionDomain {
                domain: region.to_string(),
                definition: entry.meta.mdd_type.definition.to_string(),
            });
        }
        let search = entry.meta.index.search(region);
        Ok((
            std::sync::Arc::clone(&entry.meta),
            search.hits,
            search.nodes_visited,
        ))
    }

    /// Plans a (masked-select) range query without executing it: one entry
    /// per candidate tile with the decision `range_query_where` will take.
    /// EXPLAIN performs no blob I/O and — unlike execution — does not feed
    /// the access log, so planning a statement never skews re-tiling
    /// statistics.
    ///
    /// # Errors
    /// The validation errors of [`Snapshot::range_query_where`].
    pub fn explain_range(
        &self,
        name: &str,
        region: &Domain,
        predicate: Option<&CellPredicate>,
    ) -> Result<ExplainPlan> {
        let (meta, hits, index_nodes) = self.explain_candidates(name, region, predicate)?;
        let candidates = predicate.map(CellPredicate::candidate_bins);
        let mut tiles = Vec::with_capacity(hits.len());
        for &pos in &hits {
            let tile = &meta.tiles[pos as usize];
            let (decision, rule) = match (predicate, candidates) {
                (Some(p), Some(bins)) => classify_pruning(&meta, pos as usize, tile, p, bins)
                    .unwrap_or((
                        TileDecision::Fetched,
                        "synopsis cannot disprove a match".to_string(),
                    )),
                _ => (TileDecision::Fetched, "no predicate".to_string()),
            };
            tiles.push(TilePlan {
                tile: pos,
                domain: tile.domain.to_string(),
                decision,
                rule,
            });
        }
        mark_coalesced(&self.blobs, &meta, &mut tiles);
        Ok(ExplainPlan {
            object: name.to_string(),
            region: region.to_string(),
            predicate: predicate.map(ToString::to_string),
            condenser: None,
            epoch: self.epoch(),
            index_nodes,
            tiles,
        })
    }

    /// Plans a condenser without executing it: one entry per candidate
    /// tile with the decision `aggregate_where` will take, including the
    /// synopsis short-circuit for fully-contained tiles.
    ///
    /// # Errors
    /// The validation errors of [`Snapshot::aggregate_where`].
    pub fn explain_aggregate(
        &self,
        name: &str,
        region: &Domain,
        kind: AggKind,
        predicate: Option<&CellPredicate>,
    ) -> Result<ExplainPlan> {
        let (meta, hits, index_nodes) = self.explain_candidates(name, region, predicate)?;
        let candidates = predicate.map(CellPredicate::candidate_bins);
        let mut tiles = Vec::with_capacity(hits.len());
        for &pos in &hits {
            let tile = &meta.tiles[pos as usize];
            let (decision, rule) = if let (Some(p), Some(bins)) = (predicate, candidates) {
                classify_pruning(&meta, pos as usize, tile, p, bins).unwrap_or((
                    TileDecision::Fetched,
                    "synopsis cannot disprove a match".to_string(),
                ))
            } else if region.contains_domain(&tile.domain) {
                match &tile.synopsis {
                    Some(syn) if kind_accepts_synopsis(kind, syn) => (
                        TileDecision::SynopsisCondense,
                        format!("{} answered from synopsis", kind.as_str()),
                    ),
                    Some(_) => (
                        TileDecision::Fetched,
                        format!("{} must stream cells", kind.as_str()),
                    ),
                    None => (TileDecision::Fetched, "no synopsis".to_string()),
                }
            } else {
                (
                    TileDecision::Fetched,
                    "tile partially overlaps region".to_string(),
                )
            };
            tiles.push(TilePlan {
                tile: pos,
                domain: tile.domain.to_string(),
                decision,
                rule,
            });
        }
        mark_coalesced(&self.blobs, &meta, &mut tiles);
        Ok(ExplainPlan {
            object: name.to_string(),
            region: region.to_string(),
            predicate: predicate.map(ToString::to_string),
            condenser: Some(kind.as_str()),
            epoch: self.epoch(),
            index_nodes,
            tiles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::celltype::CellType;
    use crate::database::Database;
    use crate::mdd::MddType;
    use crate::predicate::PredOp;
    use tilestore_geometry::DefDomain;
    use tilestore_tiling::{AlignedTiling, Scheme};

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    fn setup() -> Database<tilestore_storage::MemPageStore> {
        let db = Database::in_memory().unwrap();
        db.create_object(
            "grid",
            MddType::new(CellType::of::<u32>(), DefDomain::unlimited(2).unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 256)),
        )
        .unwrap();
        // 16x16, value = row * 16 + col: every 8x8 tile has a distinct range.
        db.insert(
            "grid",
            &Array::from_fn(d("[0:15,0:15]"), |p| (p[0] * 16 + p[1]) as u32).unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn explain_range_reconciles_with_execution() {
        let db = setup();
        let snap = db.begin_read();
        let region = d("[0:15,0:15]");
        let p = CellPredicate {
            op: PredOp::Gt,
            literal: 200.0,
        };
        let plan = snap.explain_range("grid", &region, Some(&p)).unwrap();
        let result = snap.range_query_where("grid", &region, Some(&p)).unwrap();
        assert_eq!(plan.fetched(), result.stats.tiles_read, "{plan:?}");
        assert_eq!(plan.pruned(), result.stats.tiles_pruned, "{plan:?}");
        assert_eq!(plan.epoch, result.epoch);
        assert!(plan.pruned() >= 1, "high literal must prune low tiles");
        assert!(plan
            .tiles
            .iter()
            .any(|t| t.decision != TileDecision::Fetched));
    }

    #[test]
    fn explain_aggregate_reports_synopsis_condense() {
        let db = setup();
        let snap = db.begin_read();
        let region = d("[0:15,0:15]");
        let plan = snap
            .explain_aggregate("grid", &region, AggKind::Max, None)
            .unwrap();
        let (_, stats) = snap.aggregate("grid", &region, AggKind::Max).unwrap();
        assert_eq!(plan.fetched(), stats.tiles_read);
        assert_eq!(plan.pruned(), stats.tiles_pruned);
        assert!(plan
            .tiles
            .iter()
            .all(|t| t.decision == TileDecision::SynopsisCondense));
        // Sum cannot short-circuit: every tile streams.
        let plan = snap
            .explain_aggregate("grid", &region, AggKind::Sum, None)
            .unwrap();
        let (_, stats) = snap.aggregate("grid", &region, AggKind::Sum).unwrap();
        assert_eq!(plan.fetched(), stats.tiles_read);
        assert_eq!(plan.pruned(), 0);
    }

    #[test]
    fn explain_does_not_touch_blobs_or_the_access_log() {
        let db = setup();
        let snap = db.begin_read();
        let log_before = snap.access_log("grid").unwrap().total_accesses();
        let io_before = snap.stats();
        let p = CellPredicate {
            op: PredOp::Lt,
            literal: 50.0,
        };
        let _ = snap
            .explain_range("grid", &d("[0:15,0:15]"), Some(&p))
            .unwrap();
        assert_eq!(snap.stats().blobs_read, io_before.blobs_read);
        assert_eq!(
            snap.access_log("grid").unwrap().total_accesses(),
            log_before,
            "EXPLAIN must not skew re-tiling statistics"
        );
    }

    #[test]
    fn plan_json_shape_is_stable() {
        let db = setup();
        let snap = db.begin_read();
        let p = CellPredicate {
            op: PredOp::Eq,
            literal: 3.0,
        };
        let plan = snap
            .explain_range("grid", &d("[0:15,0:15]"), Some(&p))
            .unwrap();
        let json = plan.to_json().to_string_compact();
        for key in [
            "\"object\"",
            "\"region\"",
            "\"predicate\"",
            "\"epoch\"",
            "\"candidates\"",
            "\"fetched\"",
            "\"pruned\"",
            "\"tiles\"",
            "\"decision\"",
            "\"rule\"",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        assert!(tilestore_testkit::Json::parse(&json).is_ok());
    }
}
