//! MDD object metadata: types, tiles and current domains (§3–§5).

use serde::{Deserialize, Serialize};
use tilestore_compress::CompressionPolicy;
use tilestore_geometry::{DefDomain, Domain};
use tilestore_index::RPlusTree;
use tilestore_storage::BlobId;
use tilestore_tiling::Scheme;

use crate::celltype::CellType;

/// The type of an MDD object: base (cell) type plus definition domain (§3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MddType {
    /// The base type of the cells.
    pub cell: CellType,
    /// The definition domain; bounds may be unlimited (`*`).
    pub definition: DefDomain,
}

impl MddType {
    /// Creates an MDD type.
    #[must_use]
    pub fn new(cell: CellType, definition: DefDomain) -> Self {
        MddType { cell, definition }
    }

    /// Dimensionality of instances of this type.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.definition.dim()
    }
}

/// One stored tile: its spatial domain and the BLOB holding its cells.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileMeta {
    /// The tile's spatial domain.
    pub domain: Domain,
    /// The BLOB storing the tile's cells (row-major within the domain).
    pub blob: BlobId,
}

/// A stored MDD object: type, tiling scheme, tiles and index.
///
/// The *current domain* is the minimal interval containing all inserted
/// cells; it grows by closure as tiles are inserted (§4) and is `None` for
/// an object that holds no cells yet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MddObject {
    /// Object name (unique within a database).
    pub name: String,
    /// The MDD type.
    pub mdd_type: MddType,
    /// The tiling scheme applied to inserted data.
    pub scheme: Scheme,
    /// Per-tile compression policy (§8: selective compression of blocks).
    /// Applies to tiles written after it is set; streams are
    /// self-describing, so mixed-codec objects read back correctly.
    #[serde(default)]
    pub compression: CompressionPolicy,
    /// All stored tiles; index payloads are positions in this vector.
    pub tiles: Vec<TileMeta>,
    /// The R+-tree over tile domains.
    pub index: RPlusTree,
    /// Current spatial domain (`None` while empty).
    pub current_domain: Option<Domain>,
}

impl MddObject {
    /// Cell size in bytes.
    #[must_use]
    pub fn cell_size(&self) -> usize {
        self.mdd_type.cell.size
    }

    /// Total cells covered by tiles (partial coverage means this can be
    /// less than the current domain's cell count).
    #[must_use]
    pub fn covered_cells(&self) -> u64 {
        self.tiles.iter().map(|t| t.domain.cells()).sum()
    }

    /// Total payload bytes across tiles.
    #[must_use]
    pub fn stored_bytes(&self) -> u64 {
        self.covered_cells() * self.cell_size() as u64
    }

    /// Number of tiles.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mdd_type_dim_comes_from_definition() {
        let t = MddType::new(
            CellType::of::<u32>(),
            "[0:*,0:99]".parse().unwrap(),
        );
        assert_eq!(t.dim(), 2);
        assert_eq!(t.cell.size, 4);
    }
}
