//! MDD object metadata: types, tiles and current domains (§3–§5).

use tilestore_compress::CompressionPolicy;
use tilestore_geometry::{DefDomain, Domain};
use tilestore_index::{BitmapIndex, RPlusTree};
use tilestore_storage::BlobId;
use tilestore_testkit::{FromJson, Json, JsonError, ToJson};
use tilestore_tiling::Scheme;

use crate::celltype::CellType;
use crate::synopsis::TileSynopsis;

/// The type of an MDD object: base (cell) type plus definition domain (§3).
#[derive(Debug, Clone, PartialEq)]
pub struct MddType {
    /// The base type of the cells.
    pub cell: CellType,
    /// The definition domain; bounds may be unlimited (`*`).
    pub definition: DefDomain,
}

impl MddType {
    /// Creates an MDD type.
    #[must_use]
    pub fn new(cell: CellType, definition: DefDomain) -> Self {
        MddType { cell, definition }
    }

    /// Dimensionality of instances of this type.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.definition.dim()
    }
}

impl ToJson for MddType {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cell", self.cell.to_json()),
            ("definition", self.definition.to_json()),
        ])
    }
}

impl FromJson for MddType {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(MddType {
            cell: CellType::from_json(v.field("cell")?)?,
            definition: DefDomain::from_json(v.field("definition")?)?,
        })
    }
}

/// One stored tile: its spatial domain and the BLOB holding its cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileMeta {
    /// The tile's spatial domain.
    pub domain: Domain,
    /// The BLOB storing the tile's cells (row-major within the domain).
    pub blob: BlobId,
    /// Value statistics of the payload. `None` only for tiles written by
    /// databases predating synopses; those are rebuilt lazily on open.
    pub synopsis: Option<TileSynopsis>,
}

impl ToJson for TileMeta {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("domain", self.domain.to_json()),
            ("blob", self.blob.to_json()),
        ];
        // Written only when present, so old readers are untouched by it
        // and a missing field round-trips as missing.
        if let Some(syn) = &self.synopsis {
            fields.push(("synopsis", syn.to_json()));
        }
        Json::obj(fields)
    }
}

impl FromJson for TileMeta {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TileMeta {
            domain: Domain::from_json(v.field("domain")?)?,
            blob: BlobId::from_json(v.field("blob")?)?,
            synopsis: match v.get("synopsis") {
                Some(s) => Some(TileSynopsis::from_json(s)?),
                None => None,
            },
        })
    }
}

/// A stored MDD object: type, tiling scheme, tiles and index.
///
/// The *current domain* is the minimal interval containing all inserted
/// cells; it grows by closure as tiles are inserted (§4) and is `None` for
/// an object that holds no cells yet.
#[derive(Debug, Clone, PartialEq)]
pub struct MddObject {
    /// Object name (unique within a database).
    pub name: String,
    /// The MDD type.
    pub mdd_type: MddType,
    /// The tiling scheme applied to inserted data.
    pub scheme: Scheme,
    /// Per-tile compression policy (§8: selective compression of blocks).
    /// Applies to tiles written after it is set; streams are
    /// self-describing, so mixed-codec objects read back correctly.
    /// Defaults to no compression when absent from a stored catalog.
    pub compression: CompressionPolicy,
    /// All stored tiles; index payloads are positions in this vector.
    pub tiles: Vec<TileMeta>,
    /// The R+-tree over tile domains.
    pub index: RPlusTree,
    /// Current spatial domain (`None` while empty).
    pub current_domain: Option<Domain>,
    /// BLOB holding the serialized value-bitmap index, when one has been
    /// written. Retired and rewritten whenever the tile set changes.
    pub value_index_blob: Option<BlobId>,
    /// In-memory copy of the value-bitmap index (loaded from
    /// [`MddObject::value_index_blob`] on open, rebuilt on writes). Not
    /// serialized with the catalog — the blob is the persistent form.
    pub value_index: Option<BitmapIndex>,
}

impl ToJson for MddObject {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", self.name.to_json()),
            ("mdd_type", self.mdd_type.to_json()),
            ("scheme", self.scheme.to_json()),
            ("compression", self.compression.to_json()),
            ("tiles", self.tiles.to_json()),
            ("index", self.index.to_json()),
            ("current_domain", self.current_domain.to_json()),
        ];
        if let Some(blob) = self.value_index_blob {
            fields.push(("value_index_blob", blob.to_json()));
        }
        Json::obj(fields)
    }
}

impl FromJson for MddObject {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        // Catalogs written before compression existed omit the field.
        let compression = match v.get("compression") {
            Some(c) => CompressionPolicy::from_json(c)?,
            None => CompressionPolicy::default(),
        };
        // Likewise for the value index (predates nothing it needs: the
        // in-memory copy is loaded from the blob by the open path).
        let value_index_blob = match v.get("value_index_blob") {
            Some(b) => Some(BlobId::from_json(b)?),
            None => None,
        };
        Ok(MddObject {
            name: String::from_json(v.field("name")?)?,
            mdd_type: MddType::from_json(v.field("mdd_type")?)?,
            scheme: Scheme::from_json(v.field("scheme")?)?,
            compression,
            tiles: Vec::from_json(v.field("tiles")?)?,
            index: RPlusTree::from_json(v.field("index")?)?,
            current_domain: Option::from_json(v.field("current_domain")?)?,
            value_index_blob,
            value_index: None,
        })
    }
}

impl MddObject {
    /// Cell size in bytes.
    #[must_use]
    pub fn cell_size(&self) -> usize {
        self.mdd_type.cell.size
    }

    /// Total cells covered by tiles (partial coverage means this can be
    /// less than the current domain's cell count).
    #[must_use]
    pub fn covered_cells(&self) -> u64 {
        self.tiles.iter().map(|t| t.domain.cells()).sum()
    }

    /// Total payload bytes across tiles.
    #[must_use]
    pub fn stored_bytes(&self) -> u64 {
        self.covered_cells() * self.cell_size() as u64
    }

    /// Number of tiles.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Rebuilds the in-memory value-bitmap index from the tiles' synopses.
    /// A tile without a synopsis contributes the all-ones "unknown" mask,
    /// which never prunes.
    pub fn rebuild_value_index(&mut self) {
        let masks = self
            .tiles
            .iter()
            .map(|t| t.synopsis.map_or(!0, |s| s.bins()))
            .collect();
        self.value_index = Some(BitmapIndex::from_masks(masks));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mdd_type_dim_comes_from_definition() {
        let t = MddType::new(CellType::of::<u32>(), "[0:*,0:99]".parse().unwrap());
        assert_eq!(t.dim(), 2);
        assert_eq!(t.cell.size, 4);
    }
}
