//! Cell-value predicates and synopsis/bitmap-based tile pruning.
//!
//! A [`CellPredicate`] is the `where <obj> <op> <literal>` clause of a
//! query: cells failing it read as the type's default value (masked
//! select), so a tile the synopsis *proves* has no matching cell is
//! exactly equivalent to an all-default tile — the planner skips its blob
//! entirely and counts it in `tiles_pruned`. All pruning rules are
//! conservative: "don't know" never prunes, so pruned and unpruned
//! results are byte-identical by construction.

use tilestore_index::{bins_eq, bins_ge, bins_le};

use crate::aggregate::decode_numeric;
use crate::celltype::CellType;
use crate::error::Result;
use crate::synopsis::TileSynopsis;

/// Comparison operators a cell predicate supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredOp {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl std::fmt::Display for PredOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PredOp::Gt => ">",
            PredOp::Ge => ">=",
            PredOp::Lt => "<",
            PredOp::Le => "<=",
            PredOp::Eq => "=",
            PredOp::Ne => "!=",
        })
    }
}

/// Which synopsis rule proved a tile holds no matching cell (the planner's
/// pruning decision, decomposed for EXPLAIN).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneRule {
    /// The synopsis records zero cells — nothing can match.
    EmptyTile,
    /// The predicate's satisfiable range lies entirely outside the tile's
    /// `[min, max]` extrema.
    Extrema,
    /// The predicate's candidate value bins are disjoint from the tile's
    /// synopsis bin mask.
    SynopsisBins,
}

impl PruneRule {
    /// Stable short name used in EXPLAIN reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PruneRule::EmptyTile => "empty-tile",
            PruneRule::Extrema => "extrema",
            PruneRule::SynopsisBins => "synopsis-bins",
        }
    }
}

/// A value predicate `cell <op> literal` over a numeric cell type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellPredicate {
    /// The comparison operator.
    pub op: PredOp,
    /// The literal compared against.
    pub literal: f64,
}

impl std::fmt::Display for CellPredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.op, self.literal)
    }
}

impl CellPredicate {
    /// Whether a cell value satisfies the predicate. IEEE semantics: NaN
    /// cells fail every comparison except `!=`.
    #[must_use]
    pub fn matches(&self, v: f64) -> bool {
        match self.op {
            PredOp::Gt => v > self.literal,
            PredOp::Ge => v >= self.literal,
            PredOp::Lt => v < self.literal,
            PredOp::Le => v <= self.literal,
            PredOp::Eq => v == self.literal,
            PredOp::Ne => v != self.literal,
        }
    }

    /// Mask of value bins that could hold a matching cell. A tile (or
    /// object summary) whose bin mask misses every candidate bin cannot
    /// match. `!=` admits every bin — bins are too coarse to exclude one
    /// value.
    #[must_use]
    pub fn candidate_bins(&self) -> u64 {
        match self.op {
            PredOp::Gt | PredOp::Ge => bins_ge(self.literal),
            PredOp::Lt | PredOp::Le => bins_le(self.literal),
            PredOp::Eq => bins_eq(self.literal),
            PredOp::Ne => !0,
        }
    }

    /// Whether bin disjointness (synopsis bins or the bitmap index) may
    /// prune under this operator. `!=` admits every candidate bin, so
    /// disjointness could only ever fire on a tile with *no* binned cells
    /// — and NaN cells live in no bin yet satisfy `!=`, so firing there
    /// would drop matching cells (the PR 6 all-NaN reproduction).
    #[must_use]
    pub fn bins_can_prune(&self) -> bool {
        self.op != PredOp::Ne
    }

    /// Whether the synopsis *proves* no cell of the tile satisfies the
    /// predicate. Conservative: non-numeric synopses never prune, and NaN
    /// cells (excluded from the extrema) block the only rule they could
    /// break (`!=`, which NaN always satisfies).
    #[must_use]
    pub fn prunes_tile(&self, syn: &TileSynopsis) -> bool {
        self.prune_rule(syn).is_some()
    }

    /// Which pruning rule (if any) proves the tile holds no matching cell.
    /// This is [`CellPredicate::prunes_tile`] decomposed for EXPLAIN: the
    /// rules are checked in the same order the planner applies them, so the
    /// returned rule is the one that actually fires.
    #[must_use]
    pub fn prune_rule(&self, syn: &TileSynopsis) -> Option<PruneRule> {
        let (Some(min), Some(max)) = (syn.min(), syn.max()) else {
            return None;
        };
        if syn.cells() == 0 {
            return Some(PruneRule::EmptyTile);
        }
        let l = self.literal;
        let by_extrema = match self.op {
            PredOp::Gt => max <= l,
            PredOp::Ge => max < l,
            PredOp::Lt => min >= l,
            PredOp::Le => min > l,
            PredOp::Eq => l < min || l > max,
            PredOp::Ne => !syn.has_nan() && min == max && min == l,
        };
        if by_extrema {
            return Some(PruneRule::Extrema);
        }
        if self.bins_can_prune() && self.candidate_bins() & syn.bins() == 0 {
            return Some(PruneRule::SynopsisBins);
        }
        None
    }

    /// The extrema comparison `prune_rule` applies for this operator, as a
    /// static rule string for EXPLAIN output.
    #[must_use]
    pub fn extrema_rule(&self) -> &'static str {
        match self.op {
            PredOp::Gt => "max <= literal",
            PredOp::Ge => "max < literal",
            PredOp::Lt => "min >= literal",
            PredOp::Le => "min > literal",
            PredOp::Eq => "literal outside [min, max]",
            PredOp::Ne => "constant tile == literal, no NaN",
        }
    }

    /// Rewrites every cell of a decoded payload that fails the predicate
    /// to the type's default value (masked select).
    ///
    /// # Errors
    /// Numeric decoding errors for non-numeric cell types (callers
    /// validate the type up front, so this is defensive).
    pub(crate) fn mask_payload(&self, cell: &CellType, payload: &mut [u8]) -> Result<()> {
        let size = cell.size.max(1);
        for chunk in payload.chunks_exact_mut(size) {
            let v = decode_numeric(cell, chunk)?;
            if !self.matches(v) {
                chunk.copy_from_slice(&cell.default);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::celltype::CellType;

    fn syn_i32(values: &[i32]) -> TileSynopsis {
        let mut payload = vec![0u8; values.len() * 4];
        for (i, v) in values.iter().enumerate() {
            payload[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        TileSynopsis::scan(&CellType::of::<i32>(), &payload)
    }

    fn pred(op: PredOp, literal: f64) -> CellPredicate {
        CellPredicate { op, literal }
    }

    #[test]
    fn matches_follows_ieee_comparisons() {
        assert!(pred(PredOp::Gt, 1.0).matches(1.5));
        assert!(!pred(PredOp::Gt, 1.0).matches(1.0));
        assert!(pred(PredOp::Ge, 1.0).matches(1.0));
        assert!(pred(PredOp::Ne, 1.0).matches(f64::NAN));
        assert!(!pred(PredOp::Eq, f64::NAN).matches(f64::NAN));
        for op in [PredOp::Gt, PredOp::Ge, PredOp::Lt, PredOp::Le, PredOp::Eq] {
            assert!(!pred(op, 1.0).matches(f64::NAN), "{op}");
        }
    }

    #[test]
    fn extrema_pruning_is_exact_on_the_boundary() {
        let syn = syn_i32(&[3, 8, 5]); // min 3, max 8
        assert!(pred(PredOp::Gt, 8.0).prunes_tile(&syn));
        assert!(!pred(PredOp::Ge, 8.0).prunes_tile(&syn));
        assert!(pred(PredOp::Ge, 8.5).prunes_tile(&syn));
        assert!(pred(PredOp::Lt, 3.0).prunes_tile(&syn));
        assert!(!pred(PredOp::Le, 3.0).prunes_tile(&syn));
        assert!(pred(PredOp::Le, 2.5).prunes_tile(&syn));
        assert!(pred(PredOp::Eq, 9.0).prunes_tile(&syn));
        assert!(pred(PredOp::Eq, 2.0).prunes_tile(&syn));
        assert!(!pred(PredOp::Eq, 5.0).prunes_tile(&syn));
        assert!(!pred(PredOp::Ne, 5.0).prunes_tile(&syn));
    }

    #[test]
    fn ne_prunes_only_constant_tiles() {
        let constant = syn_i32(&[4, 4, 4]);
        assert!(pred(PredOp::Ne, 4.0).prunes_tile(&constant));
        assert!(!pred(PredOp::Ne, 5.0).prunes_tile(&constant));
        let varied = syn_i32(&[4, 5]);
        assert!(!pred(PredOp::Ne, 4.0).prunes_tile(&varied));
    }

    #[test]
    fn nan_blocks_ne_pruning() {
        let cell = CellType::of::<f64>();
        let mut payload = Vec::new();
        for v in [4.0f64, f64::NAN, 4.0] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let syn = TileSynopsis::scan(&cell, &payload);
        // min == max == 4 but the NaN cell satisfies `!= 4`.
        assert!(!pred(PredOp::Ne, 4.0).prunes_tile(&syn));
        // NaN fails ordered comparisons, so those still prune.
        assert!(pred(PredOp::Gt, 4.0).prunes_tile(&syn));
    }

    #[test]
    fn non_numeric_synopses_never_prune() {
        use crate::celltype::Rgb;
        let cell = CellType::of::<Rgb>();
        let syn = TileSynopsis::scan(&cell, &[1, 2, 3, 0, 0, 0]);
        for op in [
            PredOp::Gt,
            PredOp::Ge,
            PredOp::Lt,
            PredOp::Le,
            PredOp::Eq,
            PredOp::Ne,
        ] {
            assert!(!pred(op, 0.0).prunes_tile(&syn), "{op}");
        }
    }

    #[test]
    fn bitmap_refinement_prunes_within_extrema_gaps() {
        // Values far apart: min -1000, max 1e9 — extrema cannot prune
        // `= 5.0`, but no cell falls in the bin of 5.0.
        let syn = syn_i32(&[-1000, 1_000_000_000]);
        assert!(pred(PredOp::Eq, 5.0).prunes_tile(&syn));
    }

    #[test]
    fn candidate_bins_match_op_shape() {
        let p = pred(PredOp::Ne, 7.0);
        assert_eq!(p.candidate_bins(), !0);
        let ge = pred(PredOp::Ge, 7.0).candidate_bins();
        let lt = pred(PredOp::Lt, 7.0).candidate_bins();
        assert_eq!(ge | lt, !0);
    }
}
