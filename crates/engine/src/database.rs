//! The MDD storage manager: objects, inserts, queries, re-tiling.
//!
//! §5: "an MDD object is composed of a set of multidimensional tiles and an
//! index on tiles. Cells of each tile are stored in a separate BLOB. The
//! MDD object index stores the spatial information of the object tiles."
//!
//! [`Database`] owns a [`BlobStore`] over any [`PageStore`] (file-backed,
//! in-memory, or buffer-pooled) and an immutable, `Arc`-swapped catalog of
//! [`MddObject`]s (see [`crate::snapshot`]). Readers pin the catalog with
//! [`Database::begin_read`] and execute lock-free against that snapshot;
//! writers are serialized on an internal mutex, build the successor catalog
//! copy-on-write, and publish it with one short pointer swap. Inserts run
//! the object's tiling scheme (phase 1) and then materialize, store and
//! index the tiles (phase 2). Queries ask the R+-tree for the intersected
//! tiles, fetch each tile BLOB, and compose the result array, collecting
//! the `t_ix`/`t_o`/`t_cpu` counters of §6 along the way.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use tilestore_compress::{CellContext, CompressionPolicy};
use tilestore_exec::ThreadPool;
use tilestore_geometry::{copy_region, morton_centroid_key, Domain};
use tilestore_index::RPlusTree;
use tilestore_obs::AccessRecorder;
use tilestore_storage::{BlobId, BlobStore, IoStats, MemPageStore, PageStore, DEFAULT_PAGE_SIZE};
use tilestore_tiling::{AccessRecord, Scheme, StatisticTiling, TilingSpec, TilingStrategy};

use crate::access::{AccessLog, AccessRegion};
use crate::array::Array;
use crate::builder::DatabaseBuilder;
use crate::error::{EngineError, Result};
use crate::mdd::{MddObject, MddType, TileMeta};
use crate::snapshot::{
    lock_recover, CatalogState, EpochTracker, ObjectEntry, QueryResult, Snapshot, WriteReceipt,
};
use crate::stats::{DefragStep, InsertStats, RetileStats};
use crate::synopsis::TileSynopsis;

/// A database of tiled MDD objects over a page store `S`.
///
/// Every method takes `&self`: readers go through epoch-stamped snapshots
/// ([`Database::begin_read`]) and never block behind writers; writers are
/// serialized internally and only exclude readers for the nanoseconds of
/// the catalog pointer swap.
///
/// ```
/// use tilestore_engine::{Array, CellType, Database, MddType};
/// use tilestore_geometry::{DefDomain, Domain};
/// use tilestore_tiling::{AlignedTiling, Scheme};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = Database::in_memory()?;
/// db.create_object(
///     "img",
///     MddType::new(CellType::of::<u8>(), DefDomain::unlimited(2)?),
///     Scheme::Aligned(AlignedTiling::regular(2, 4096)),
/// )?;
/// let domain: Domain = "[0:63,0:63]".parse()?;
/// db.insert("img", &Array::from_fn(domain, |p| (p[0] + p[1]) as u8)?)?;
///
/// // Queries execute against an epoch-stamped snapshot; a concurrent
/// // retile can commit mid-query without disturbing it.
/// let snap = db.begin_read();
/// let crop = snap.range_query("img", &"[8:15,8:15]".parse()?)?;
/// assert_eq!(crop.array.domain().cells(), 64);
/// assert!(crop.stats.tiles_read >= 1);
/// assert_eq!(crop.epoch, snap.epoch());
/// # Ok(())
/// # }
/// ```
pub struct Database<S: PageStore> {
    blobs: Arc<BlobStore<S>>,
    /// The current catalog. The mutex is held only for the `Arc` clone on
    /// read and the pointer swap on publish — never across I/O.
    catalog: Mutex<Arc<CatalogState>>,
    tracker: Arc<EpochTracker>,
    /// Serializes writers. Readers never touch it.
    writer: Mutex<()>,
    recorder: Mutex<Option<Arc<AccessRecorder>>>,
    /// Optional thread pool: when attached, tile fetch/decode on the query
    /// path and tile materialization on insert/retile fan out across its
    /// workers ([`Database::set_executor`]).
    executor: Mutex<Option<Arc<ThreadPool>>>,
    /// Compression policy applied to objects created without an explicit
    /// one (configured via [`DatabaseBuilder::compression`]).
    default_compression: CompressionPolicy,
    /// Epoch of the last durable catalog commit (0 before any commit);
    /// bumped by `save`, restored by the persistence layer on reopen.
    commit_epoch: AtomicU64,
}

impl Database<MemPageStore> {
    /// An in-memory database (tests, benchmarks excluding file I/O).
    ///
    /// # Errors
    /// Never in practice; page-size validation only.
    pub fn in_memory() -> Result<Self> {
        Ok(Database::with_store(MemPageStore::new(DEFAULT_PAGE_SIZE)?))
    }
}

impl<S: PageStore> Database<S> {
    /// A builder unifying construction ([`Database::in_memory`] /
    /// [`Database::with_store`] / `open_dir`) with the optional recorder,
    /// executor and default-compression settings.
    #[must_use]
    pub fn builder() -> DatabaseBuilder {
        DatabaseBuilder::new()
    }

    /// A database over an arbitrary page store (e.g. a
    /// [`tilestore_storage::FilePageStore`] or a
    /// [`tilestore_storage::BufferPool`]).
    #[must_use]
    pub fn with_store(store: S) -> Self {
        Database::from_blob_store(BlobStore::new(store))
    }

    /// A database over a pre-built BLOB store (catalog restore path).
    pub(crate) fn from_blob_store(blobs: BlobStore<S>) -> Self {
        Database {
            blobs: Arc::new(blobs),
            catalog: Mutex::new(Arc::new(CatalogState::empty(0))),
            tracker: Arc::new(EpochTracker::default()),
            writer: Mutex::new(()),
            recorder: Mutex::new(None),
            executor: Mutex::new(None),
            default_compression: CompressionPolicy::None,
            commit_epoch: AtomicU64::new(0),
        }
    }

    /// Epoch of the last durable catalog commit, 0 before any commit. Each
    /// successful `save` bumps it by one; reopening restores the persisted
    /// value, so a reopened database continues the sequence monotonically.
    /// Distinct from the snapshot epoch ([`Snapshot::epoch`]), which every
    /// in-memory writer commit advances.
    #[must_use]
    pub fn catalog_epoch(&self) -> u64 {
        self.commit_epoch.load(Ordering::Acquire)
    }

    /// Records a durable commit epoch (persistence layer only).
    pub(crate) fn set_catalog_epoch(&self, epoch: u64) {
        self.commit_epoch.store(epoch, Ordering::Release);
    }

    /// Seeds the snapshot epoch (catalog restore path): a reopened
    /// database continues the epoch sequence from the persisted value
    /// instead of restarting at zero.
    pub(crate) fn set_snapshot_epoch(&self, version: u64) {
        let mut guard = lock_recover(&self.catalog);
        *guard = Arc::new(CatalogState {
            version,
            objects: guard.objects.clone(),
        });
    }

    /// Sets the default compression policy for newly created objects
    /// (builder path).
    pub(crate) fn set_default_compression(&mut self, policy: CompressionPolicy) {
        self.default_compression = policy;
    }

    /// Attaches a persistent access recorder: every executed range query's
    /// intersected region is appended to its log, so re-tiling can later run
    /// from the real observed workload ([`Database::auto_retile_from_log`]).
    /// File-backed databases opened through the persistence layer get one
    /// automatically.
    pub fn set_recorder(&self, recorder: AccessRecorder) {
        *lock_recover(&self.recorder) = Some(Arc::new(recorder));
    }

    /// The attached access recorder, if any.
    #[must_use]
    pub fn recorder(&self) -> Option<Arc<AccessRecorder>> {
        lock_recover(&self.recorder).clone()
    }

    /// Attaches a thread pool. Queries then scatter tile fetch/decode/clip
    /// across the pool's workers (the result array is split into disjoint
    /// bands along axis 0), and insert/retile materialize and compress
    /// tiles in parallel. Without an executor every path stays serial.
    pub fn set_executor(&self, pool: Arc<ThreadPool>) {
        *lock_recover(&self.executor) = Some(pool);
    }

    /// The attached executor, if any.
    #[must_use]
    pub fn executor(&self) -> Option<Arc<ThreadPool>> {
        lock_recover(&self.executor).clone()
    }

    /// Reinstalls a persisted object (catalog restore path).
    pub(crate) fn restore_object(&self, meta: MddObject) {
        let mut guard = lock_recover(&self.catalog);
        let mut objects = guard.objects.clone();
        objects.insert(
            meta.name.clone(),
            ObjectEntry {
                meta: Arc::new(meta),
                log: Arc::new(AccessLog::new()),
            },
        );
        *guard = Arc::new(CatalogState {
            version: guard.version,
            objects,
        });
    }

    /// The shared I/O statistics of the underlying BLOB store.
    #[must_use]
    pub fn io_stats(&self) -> &IoStats {
        self.blobs.stats()
    }

    /// The underlying BLOB store (read-only access).
    #[must_use]
    pub fn blob_store(&self) -> &BlobStore<S> {
        &self.blobs
    }

    /// The current catalog (an `Arc` clone; the lock is held only for the
    /// clone).
    pub(crate) fn current_catalog(&self) -> Arc<CatalogState> {
        Arc::clone(&lock_recover(&self.catalog))
    }

    /// Takes the writer mutex (crate-internal: `save` serializes against
    /// writers with it).
    pub(crate) fn lock_writer(&self) -> MutexGuard<'_, ()> {
        lock_recover(&self.writer)
    }

    /// Ids of blobs retired by past writer commits but still readable by
    /// live snapshots; `save` excludes them from the exported directory.
    pub(crate) fn pending_retired_blobs(&self) -> BTreeSet<u64> {
        self.tracker.pending_blobs()
    }

    /// Number of read snapshots currently alive against this database.
    /// The cluster serving layer uses this as its snapshot-pinning surface:
    /// after a coordinator unpins (or a coordinator connection dies), a
    /// shard's count must return to its baseline — any other outcome is a
    /// leaked pin that would block blob reclamation forever.
    #[must_use]
    pub fn live_snapshots(&self) -> u64 {
        self.tracker.live_snapshots()
    }

    /// Begins a read session: pins the current catalog at its epoch and
    /// returns a [`Snapshot`] that queries it without ever taking a
    /// database-wide lock. Tiles visible to the snapshot stay readable —
    /// even across concurrent re-tiles and drops — until it is dropped.
    #[must_use]
    pub fn begin_read(&self) -> Snapshot<S> {
        let catalog = self.current_catalog();
        self.tracker.acquire(catalog.version);
        tilestore_obs::hot().snapshots_active.add(1);
        Snapshot {
            catalog,
            blobs: Arc::clone(&self.blobs),
            tracker: Arc::clone(&self.tracker),
            executor: self.executor(),
            recorder: self.recorder(),
            request: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Publishes a successor catalog, returning its epoch. The catalog
    /// mutex is held only for the swap itself; the time inside it is
    /// recorded to the `engine.writer_swap_ns` histogram — that interval
    /// is the *only* wait a writer can ever impose on readers.
    pub(crate) fn swap_catalog(&self, objects: BTreeMap<String, ObjectEntry>) -> u64 {
        let started = Instant::now();
        let mut guard = lock_recover(&self.catalog);
        let version = guard.version + 1;
        *guard = Arc::new(CatalogState { version, objects });
        drop(guard);
        tilestore_obs::hot()
            .writer_swap_ns
            .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        version
    }

    /// Hands blobs unreferenced since `epoch` to the tracker and deletes
    /// whatever is already reclaimable (pages go to the PR-3 quarantine,
    /// becoming reusable at the next durable commit).
    pub(crate) fn retire_blobs(&self, epoch: u64, retired: Vec<BlobId>) {
        for id in self.tracker.retire(epoch, retired) {
            let _ = self.blobs.delete(id);
        }
    }

    /// Installs a new version of one object into a successor catalog and
    /// publishes it; `retired` lists the blobs the old version referenced
    /// and the new one does not. Returns the new epoch.
    pub(crate) fn install_object(
        &self,
        current: &CatalogState,
        name: &str,
        meta: MddObject,
        retired: Vec<BlobId>,
    ) -> u64 {
        let mut objects = current.objects.clone();
        let log = objects
            .get(name)
            .map(|e| Arc::clone(&e.log))
            .unwrap_or_else(|| Arc::new(AccessLog::new()));
        objects.insert(
            name.to_string(),
            ObjectEntry {
                meta: Arc::new(meta),
                log,
            },
        );
        let epoch = self.swap_catalog(objects);
        self.retire_blobs(epoch, retired);
        epoch
    }

    /// Rebuilds `meta`'s value-bitmap index from its tile synopses, writes
    /// it as a fresh blob (the persistent form), and returns the previous
    /// bitmap blob for retirement, if one existed. Objects with no tiles
    /// keep no bitmap blob.
    pub(crate) fn refresh_value_index(&self, meta: &mut MddObject) -> Result<Option<BlobId>> {
        let old = meta.value_index_blob.take();
        meta.rebuild_value_index();
        if !meta.tiles.is_empty() {
            let bytes = meta.value_index.as_ref().expect("just rebuilt").to_bytes();
            meta.value_index_blob = Some(self.blobs.create(&bytes)?);
        }
        Ok(old)
    }

    /// Names of all stored objects.
    #[must_use]
    pub fn object_names(&self) -> Vec<String> {
        self.current_catalog().objects.keys().cloned().collect()
    }

    /// Metadata of one object (as of the current catalog).
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`].
    pub fn object(&self, name: &str) -> Result<Arc<MddObject>> {
        self.current_catalog()
            .entry(name)
            .map(|e| Arc::clone(&e.meta))
    }

    /// The access log of one object.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`].
    pub fn access_log(&self, name: &str) -> Result<Arc<AccessLog>> {
        self.current_catalog()
            .entry(name)
            .map(|e| Arc::clone(&e.log))
    }

    /// Sets the per-tile compression policy of an object. Applies to tiles
    /// written afterwards (inserts and re-tiles); already-stored tiles keep
    /// their framing and remain readable — call [`Database::retile`] with
    /// the current scheme to rewrite them under the new policy.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`].
    pub fn set_compression(&self, name: &str, policy: CompressionPolicy) -> Result<()> {
        let _w = self.lock_writer();
        let cat = self.current_catalog();
        let entry = cat.entry(name)?;
        let mut meta = (*entry.meta).clone();
        meta.compression = policy;
        self.install_object(&cat, name, meta, Vec::new());
        Ok(())
    }

    /// Physical bytes the object's tiles occupy in the BLOB store (after
    /// compression); compare with [`MddObject::stored_bytes`] for the
    /// logical size.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`]; storage errors.
    pub fn object_physical_bytes(&self, name: &str) -> Result<u64> {
        let meta = self.object(name)?;
        let mut total = 0u64;
        for tile in &meta.tiles {
            total += self.blobs.blob_len(tile.blob)?;
        }
        Ok(total)
    }

    /// Creates an empty MDD object.
    ///
    /// # Errors
    /// [`EngineError::ObjectExists`] for duplicate names;
    /// [`EngineError::Index`] for inconsistent dimensionality.
    pub fn create_object(&self, name: &str, mdd_type: MddType, scheme: Scheme) -> Result<()> {
        let _w = self.lock_writer();
        let cat = self.current_catalog();
        if cat.objects.contains_key(name) {
            return Err(EngineError::ObjectExists(name.to_string()));
        }
        let index = RPlusTree::new(mdd_type.dim())?;
        let meta = MddObject {
            name: name.to_string(),
            mdd_type,
            scheme,
            compression: self.default_compression.clone(),
            tiles: Vec::new(),
            index,
            current_domain: None,
            value_index_blob: None,
            value_index: None,
        };
        self.install_object(&cat, name, meta, Vec::new());
        Ok(())
    }

    /// Drops an object. Its BLOBs are retired: deleted immediately when no
    /// snapshot is live, otherwise when the last snapshot that can still
    /// read them drops.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`].
    pub fn drop_object(&self, name: &str) -> Result<()> {
        let _w = self.lock_writer();
        let cat = self.current_catalog();
        let entry = cat.entry(name)?;
        let mut retired: Vec<BlobId> = entry.meta.tiles.iter().map(|t| t.blob).collect();
        retired.extend(entry.meta.value_index_blob);
        let mut objects = cat.objects.clone();
        objects.remove(name);
        let epoch = self.swap_catalog(objects);
        self.retire_blobs(epoch, retired);
        Ok(())
    }

    /// Inserts (part of) an array into an object.
    ///
    /// The array's domain is tiled by the object's scheme, each tile's cells
    /// are copied together, stored as a BLOB and indexed (§5.2's two
    /// phases). The current domain grows by closure with the array's domain
    /// (§4). For gradual growth the new data must not overlap cells already
    /// stored — tiles are disjoint by definition.
    ///
    /// # Errors
    /// Type/domain validation errors, tiling errors and storage errors.
    pub fn insert(&self, name: &str, array: &Array) -> Result<WriteReceipt<InsertStats>> {
        let _span = tilestore_obs::tracer().span_with("insert", || {
            format!("object={name} domain={}", array.domain())
        });
        let started = Instant::now();
        let _w = self.lock_writer();
        let cat = self.current_catalog();
        let entry = cat.entry(name)?;
        let meta = &entry.meta;
        let cell_size = meta.cell_size();
        if array.cell_size() != cell_size {
            return Err(EngineError::CellSizeMismatch {
                expected: cell_size,
                got: array.cell_size(),
            });
        }
        if !meta.mdd_type.definition.admits(array.domain()) {
            return Err(EngineError::OutsideDefinitionDomain {
                domain: array.domain().to_string(),
                definition: meta.mdd_type.definition.to_string(),
            });
        }
        if !meta.index.search(array.domain()).hits.is_empty() {
            return Err(EngineError::OverlapsExistingTiles {
                domain: array.domain().to_string(),
            });
        }

        // Phase 1: the tiling specification.
        let spec = meta.scheme.partition(array.domain(), cell_size)?;

        // Phase 2: materialize, store and index the tiles. With an executor
        // attached, extraction + compression + BLOB writes scatter across the
        // pool; the catalog update below is a single swap either way. A
        // mid-scatter failure leaves already-written BLOBs uncommitted —
        // they surface as reclaimable orphans, exactly like a crash between
        // page writes and the catalog commit.
        let io_before = self.blobs.stats().snapshot();
        let mut stats = InsertStats::default();
        let ctx = CellContext {
            cell_size,
            default: &meta.mdd_type.cell.default,
        };
        let pool_handle = self.executor();
        let pool = pool_handle.as_deref().filter(|_| spec.len() > 1);
        let cell_type = &meta.mdd_type.cell;
        let created: Vec<(Domain, BlobId, TileSynopsis)> = if let Some(pool) = pool {
            let blobs: &BlobStore<S> = &self.blobs;
            let compression = &meta.compression;
            let ctx = &ctx;
            pool.scatter(
                spec.tiles().to_vec(),
                move |_, tile_domain| -> Result<(Domain, BlobId, TileSynopsis)> {
                    let tile = array.extract(&tile_domain)?;
                    // The encoder's byte scan doubles as the synopsis base.
                    let (stream, scan) =
                        tilestore_compress::compress_with_scan(compression, tile.bytes(), ctx)
                            .map_err(|e| {
                                EngineError::Catalog(format!("compression failed: {e}"))
                            })?;
                    let synopsis = TileSynopsis::from_scan(cell_type, tile.bytes(), scan);
                    let blob = blobs.create(&stream)?;
                    Ok((tile_domain, blob, synopsis))
                },
            )
            .into_iter()
            .collect::<Result<Vec<_>>>()?
        } else {
            let mut created = Vec::with_capacity(spec.len());
            for tile_domain in spec.tiles() {
                let tile = array.extract(tile_domain)?;
                let (stream, scan) =
                    tilestore_compress::compress_with_scan(&meta.compression, tile.bytes(), &ctx)
                        .map_err(|e| EngineError::Catalog(format!("compression failed: {e}")))?;
                let synopsis = TileSynopsis::from_scan(cell_type, tile.bytes(), scan);
                created.push((tile_domain.clone(), self.blobs.create(&stream)?, synopsis));
            }
            created
        };
        let mut new_meta = (**meta).clone();
        for (tile_domain, blob, synopsis) in created {
            let pos = new_meta.tiles.len() as u64;
            new_meta.tiles.push(TileMeta {
                domain: tile_domain.clone(),
                blob,
                synopsis: Some(synopsis),
            });
            new_meta.index.insert(tile_domain, pos)?;
            stats.tiles_created += 1;
        }
        let retired: Vec<BlobId> = self
            .refresh_value_index(&mut new_meta)?
            .into_iter()
            .collect();
        let io = self.blobs.stats().snapshot().since(&io_before);
        stats.bytes_written = io.bytes_written;
        stats.pages_written = io.pages_written;

        new_meta.current_domain = Some(match new_meta.current_domain.take() {
            Some(cur) => cur.hull(array.domain())?,
            None => array.domain().clone(),
        });
        let epoch = self.install_object(&cat, name, new_meta, retired);
        stats.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Ok(WriteReceipt { stats, epoch })
    }

    /// Executes a range query (§5.1 type (b)) against a fresh snapshot:
    /// returns the sub-array over `region` (uncovered cells holding the
    /// type's default value), the execution counters, and the observed
    /// epoch. Shorthand for `begin_read().range_query(..)`.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`], domain validation errors, storage
    /// errors.
    pub fn range_query(&self, name: &str, region: &Domain) -> Result<QueryResult> {
        self.begin_read().range_query(name, region)
    }

    /// Executes a predicate-masked range query against a fresh snapshot.
    /// Shorthand for `begin_read().range_query_where(..)`.
    ///
    /// # Errors
    /// See [`crate::Snapshot::range_query_where`].
    pub fn range_query_where(
        &self,
        name: &str,
        region: &Domain,
        predicate: Option<&crate::CellPredicate>,
    ) -> Result<QueryResult> {
        self.begin_read().range_query_where(name, region, predicate)
    }

    /// Executes any §5.1 access against a fresh snapshot. Sections (type
    /// (d)) come back with the fixed axes dropped from the result's
    /// dimensionality.
    ///
    /// # Errors
    /// [`EngineError::EmptyObject`] when the object holds no cells (the
    /// access cannot be resolved against a current domain), plus the errors
    /// of [`Database::range_query`].
    pub fn query(&self, name: &str, access: &AccessRegion) -> Result<QueryResult> {
        self.begin_read().query(name, access)
    }

    /// Replaces an object's tiling with a new scheme, rewriting the tiles.
    ///
    /// New tiles are materialized from the old ones; new-tiling tiles that
    /// intersect no stored data remain unmaterialized, preserving partial
    /// coverage (a new tile partially covering old data stores default
    /// values for the uncovered cells it spans). Queries running against a
    /// snapshot taken before the retile keep reading the *old* tiles; the
    /// old BLOBs are reclaimed when the last such snapshot drops.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`], [`EngineError::EmptyObject`],
    /// tiling and storage errors.
    pub fn retile(&self, name: &str, scheme: Scheme) -> Result<WriteReceipt<RetileStats>> {
        let _span = tilestore_obs::tracer().span_with("retile", || format!("object={name}"));
        let started = Instant::now();
        let _w = self.lock_writer();
        let cat = self.current_catalog();
        let meta = Arc::clone(&cat.entry(name)?.meta);
        let current = meta
            .current_domain
            .clone()
            .ok_or_else(|| EngineError::EmptyObject(name.to_string()))?;
        let cell_size = meta.cell_size();
        let spec: TilingSpec = scheme.partition(&current, cell_size)?;

        let mut stats = RetileStats {
            tiles_before: meta.tiles.len() as u64,
            ..RetileStats::default()
        };
        // Materialize the new tiles. With an executor attached, each new
        // tile (index probe, old-tile fetch, recomposition, compression,
        // BLOB write) is an independent task; the catalog swap below stays
        // a single pointer exchange.
        let mut new_tiles: Vec<TileMeta> = Vec::with_capacity(spec.len());
        let default = meta.mdd_type.cell.default.clone();
        let ctx = CellContext {
            cell_size,
            default: &default,
        };
        let pool_handle = self.executor();
        let pool = pool_handle.as_deref().filter(|_| spec.len() > 1);
        type Materialized = (Domain, BlobId, u64, TileSynopsis);
        let materialized: Vec<Option<Materialized>> = if let Some(pool) = pool {
            let blobs: &BlobStore<S> = &self.blobs;
            let meta_ref: &MddObject = &meta;
            let ctx = &ctx;
            let default = &default;
            pool.scatter(
                spec.tiles().to_vec(),
                move |_, tile_domain| -> Result<Option<Materialized>> {
                    let hits = meta_ref.index.search(&tile_domain).hits;
                    if hits.is_empty() {
                        return Ok(None); // stays uncovered
                    }
                    let mut tile = Array::filled(tile_domain.clone(), default)?;
                    let mut scratch = Vec::new();
                    for pos in hits {
                        let old = &meta_ref.tiles[pos as usize];
                        let Some(overlap) = old.domain.intersection(&tile_domain) else {
                            continue;
                        };
                        let n = blobs.read_into(old.blob, &mut scratch)?;
                        let payload = tilestore_compress::decompress_view(&scratch[..n], ctx)
                            .map_err(|e| {
                                EngineError::Catalog(format!("tile decompression failed: {e}"))
                            })?;
                        copy_region(
                            &old.domain,
                            &payload,
                            &tile_domain,
                            tile.bytes_mut(),
                            &overlap,
                            cell_size,
                        )?;
                    }
                    let (stream, scan) = tilestore_compress::compress_with_scan(
                        &meta_ref.compression,
                        tile.bytes(),
                        ctx,
                    )
                    .map_err(|e| EngineError::Catalog(format!("compression failed: {e}")))?;
                    let synopsis =
                        TileSynopsis::from_scan(&meta_ref.mdd_type.cell, tile.bytes(), scan);
                    let blob = blobs.create(&stream)?;
                    Ok(Some((tile_domain, blob, tile.size_bytes(), synopsis)))
                },
            )
            .into_iter()
            .collect::<Result<Vec<_>>>()?
        } else {
            let mut materialized = Vec::with_capacity(spec.len());
            for tile_domain in spec.tiles() {
                let hits = meta.index.search(tile_domain).hits;
                if hits.is_empty() {
                    materialized.push(None); // stays uncovered
                    continue;
                }
                let mut tile = Array::filled(tile_domain.clone(), &default)?;
                for pos in hits {
                    let old = &meta.tiles[pos as usize];
                    let stream = self.blobs.read(old.blob)?;
                    let bytes = tilestore_compress::decompress(&stream, &ctx).map_err(|e| {
                        EngineError::Catalog(format!("tile decompression failed: {e}"))
                    })?;
                    let old_array = Array::from_bytes(old.domain.clone(), cell_size, bytes)?;
                    tile.paste(&old_array)?;
                }
                let (stream, scan) =
                    tilestore_compress::compress_with_scan(&meta.compression, tile.bytes(), &ctx)
                        .map_err(|e| EngineError::Catalog(format!("compression failed: {e}")))?;
                let synopsis = TileSynopsis::from_scan(&meta.mdd_type.cell, tile.bytes(), scan);
                let blob = self.blobs.create(&stream)?;
                materialized.push(Some((
                    tile_domain.clone(),
                    blob,
                    tile.size_bytes(),
                    synopsis,
                )));
            }
            materialized
        };
        for (tile_domain, blob, bytes, synopsis) in materialized.into_iter().flatten() {
            stats.bytes_rewritten += bytes;
            new_tiles.push(TileMeta {
                domain: tile_domain,
                blob,
                synopsis: Some(synopsis),
            });
        }
        // Build the successor object: new tiles, rebuilt index, new scheme.
        // The old tiles are retired, not deleted — live snapshots keep
        // reading them.
        let entries: Vec<(Domain, u64)> = new_tiles
            .iter()
            .enumerate()
            .map(|(i, t)| (t.domain.clone(), i as u64))
            .collect();
        let mut new_meta = (*meta).clone();
        new_meta.index = RPlusTree::bulk_load(
            new_meta.mdd_type.dim(),
            tilestore_index::DEFAULT_FANOUT,
            entries,
        )?;
        stats.tiles_after = new_tiles.len() as u64;
        new_meta.tiles = new_tiles;
        new_meta.scheme = scheme;
        let mut retired: Vec<BlobId> = meta.tiles.iter().map(|t| t.blob).collect();
        retired.extend(self.refresh_value_index(&mut new_meta)?);
        let epoch = self.install_object(&cat, name, new_meta, retired);
        stats.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Ok(WriteReceipt { stats, epoch })
    }

    /// Rewrites an object's tile BLOBs onto physically contiguous pages in
    /// Z-order of their bounding-box centroids, without changing the tiling
    /// or any cell. Tile payloads are copied byte-for-byte (no decompress/
    /// recompress), so every object remains bit-identical; only the
    /// directory's page mapping changes. After a defrag, a range query's
    /// curve-adjacent tiles sit on consecutive pages and the batch read
    /// path coalesces them into single positioned reads.
    ///
    /// One atomic commit: live snapshots keep reading the old placement,
    /// and the displaced blobs are quarantined and reclaimed through the
    /// usual epoch-deferred path. Already-defragmented objects commit
    /// nothing and return the current epoch.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`], [`EngineError::EmptyObject`],
    /// storage errors.
    pub fn defrag(&self, name: &str) -> Result<WriteReceipt<RetileStats>> {
        let _span = tilestore_obs::tracer().span_with("defrag", || format!("object={name}"));
        let started = Instant::now();
        let _w = self.lock_writer();
        let cat = self.current_catalog();
        let meta = Arc::clone(&cat.entry(name)?.meta);
        meta.current_domain
            .as_ref()
            .ok_or_else(|| EngineError::EmptyObject(name.to_string()))?;
        let order = curve_order(&meta.tiles);
        let mut stats = RetileStats {
            tiles_before: meta.tiles.len() as u64,
            tiles_after: meta.tiles.len() as u64,
            ..RetileStats::default()
        };
        if self.contiguous_prefix(&meta.tiles, &order)? == order.len() {
            stats.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            return Ok(WriteReceipt {
                stats,
                epoch: cat.version,
            });
        }
        let mut new_meta = (*meta).clone();
        let mut retired = Vec::with_capacity(order.len());
        let mut scratch = Vec::new();
        for &pos in &order {
            let old = meta.tiles[pos].blob;
            let len = self.blobs.read_into(old, &mut scratch)?;
            new_meta.tiles[pos].blob = self.blobs.create_contiguous(&scratch[..len])?;
            retired.push(old);
            stats.bytes_rewritten += len as u64;
        }
        let epoch = self.install_object(&cat, name, new_meta, retired);
        stats.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Ok(WriteReceipt { stats, epoch })
    }

    /// One budget-paced step of [`Database::defrag`]: rewrites at most
    /// `budget_bytes` worth of tiles (always at least two, so tiny budgets
    /// still converge) and commits, so background compaction never holds
    /// the writer lock or doubles disk usage for longer than one step.
    ///
    /// Steps are resumable without side state: each step finds the longest
    /// curve-order prefix already contiguous at the allocation frontier and
    /// extends it. `tiles_remaining == 0` in the returned stats means the
    /// object is fully defragmented.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`], [`EngineError::EmptyObject`],
    /// storage errors.
    pub fn defrag_step(&self, name: &str, budget_bytes: u64) -> Result<WriteReceipt<DefragStep>> {
        let _span = tilestore_obs::tracer().span_with("defrag_step", || format!("object={name}"));
        let started = Instant::now();
        let _w = self.lock_writer();
        let cat = self.current_catalog();
        let meta = Arc::clone(&cat.entry(name)?.meta);
        meta.current_domain
            .as_ref()
            .ok_or_else(|| EngineError::EmptyObject(name.to_string()))?;
        let order = curve_order(&meta.tiles);
        let n = order.len();
        let chain = self.contiguous_prefix(&meta.tiles, &order)?;
        let mut stats = DefragStep::default();
        if chain == n {
            stats.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            return Ok(WriteReceipt {
                stats,
                epoch: cat.version,
            });
        }
        // Resume after the already-contiguous prefix only when it ends at
        // the allocation frontier — only there can the next contiguous
        // create extend it. Otherwise (first step, or another writer
        // allocated in between) start over from the curve origin.
        let start = if chain > 0 {
            let last = self
                .blobs
                .blob_placement(meta.tiles[order[chain - 1]].blob)?;
            if last.first_page.0 + last.pages == self.blobs.page_store().allocated() {
                chain
            } else {
                0
            }
        } else {
            0
        };
        let mut new_meta = (*meta).clone();
        let mut retired = Vec::new();
        let mut scratch = Vec::new();
        let mut end = start;
        while end < n && (stats.tiles_moved < 2 || stats.bytes_moved < budget_bytes) {
            let pos = order[end];
            let old = meta.tiles[pos].blob;
            let len = self.blobs.read_into(old, &mut scratch)?;
            new_meta.tiles[pos].blob = self.blobs.create_contiguous(&scratch[..len])?;
            retired.push(old);
            stats.tiles_moved += 1;
            stats.bytes_moved += len as u64;
            end += 1;
        }
        stats.tiles_remaining = (n - end) as u64;
        let epoch = self.install_object(&cat, name, new_meta, retired);
        stats.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Ok(WriteReceipt { stats, epoch })
    }

    /// Longest prefix of `order` whose blobs are each physically contiguous
    /// and laid end-to-end in curve order — already-defragmented tiles a
    /// compaction step can skip.
    fn contiguous_prefix(&self, tiles: &[TileMeta], order: &[usize]) -> Result<usize> {
        let mut prev_end: Option<u64> = None;
        for (k, &pos) in order.iter().enumerate() {
            let p = self.blobs.blob_placement(tiles[pos].blob)?;
            if p.runs != 1 || prev_end.is_some_and(|e| e != p.first_page.0) {
                return Ok(k);
            }
            prev_end = Some(p.first_page.0 + p.pages);
        }
        Ok(order.len())
    }

    /// Automatic tiling based on access statistics (§5.2): derives a
    /// [`StatisticTiling`] from the object's access log and re-tiles.
    ///
    /// # Errors
    /// The errors of [`Database::retile`].
    pub fn auto_retile(
        &self,
        name: &str,
        distance_threshold: u64,
        frequency_threshold: u64,
        max_tile_size: u64,
    ) -> Result<WriteReceipt<RetileStats>> {
        let records = self.access_log(name)?.to_records();
        let scheme = Scheme::Statistic(StatisticTiling::new(
            records,
            distance_threshold,
            frequency_threshold,
            max_tile_size,
        ));
        self.retile(name, scheme)
    }

    /// Like [`Database::auto_retile`], but driven by the *persistent* access
    /// log of the attached [`AccessRecorder`] — the observe → re-tile loop
    /// of §5.4 closed over real recorded history (it survives reopening the
    /// database, unlike the in-process log). Malformed log lines are skipped.
    ///
    /// # Errors
    /// [`EngineError::NoAccessRecorder`] when no recorder is attached;
    /// otherwise the errors of [`Database::retile`].
    pub fn auto_retile_from_log(
        &self,
        name: &str,
        distance_threshold: u64,
        frequency_threshold: u64,
        max_tile_size: u64,
    ) -> Result<WriteReceipt<RetileStats>> {
        self.object(name)?; // surface UnknownObject before recorder errors
        let recorder = self.recorder().ok_or(EngineError::NoAccessRecorder)?;
        let records: Vec<AccessRecord> = recorder
            .entries_for(name)
            .map_err(|e| EngineError::Catalog(format!("reading access log: {e}")))?
            .into_iter()
            .filter_map(|e| {
                e.region
                    .parse::<Domain>()
                    .ok()
                    .map(|region| AccessRecord::new(region, e.count))
            })
            .collect();
        let scheme = Scheme::Statistic(StatisticTiling::new(
            records,
            distance_threshold,
            frequency_threshold,
            max_tile_size,
        ));
        self.retile(name, scheme)
    }
}

/// Tile positions sorted by the Morton key of each tile's bounding-box
/// centroid, relative to the hull of all tiles — the physical placement
/// order the defragmenter writes.
fn curve_order(tiles: &[TileMeta]) -> Vec<usize> {
    let Some(first) = tiles.first() else {
        return Vec::new();
    };
    let hull = tiles.iter().skip(1).fold(first.domain.clone(), |acc, t| {
        acc.hull(&t.domain).expect("uniform dimensionality")
    });
    let origin = hull.lowest();
    let mut order: Vec<usize> = (0..tiles.len()).collect();
    order.sort_by_key(|&i| morton_centroid_key(&tiles[i].domain, &origin));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilestore_geometry::Point;
    use tilestore_tiling::AlignedTiling;

    use crate::celltype::CellType;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    fn u32_type(def: &str) -> MddType {
        MddType::new(CellType::of::<u32>(), def.parse().unwrap())
    }

    fn fresh_db_with_object(scheme: Scheme) -> Database<MemPageStore> {
        let db = Database::in_memory().unwrap();
        db.create_object("obj", u32_type("[0:*,0:*]"), scheme)
            .unwrap();
        db
    }

    fn checkerboard(dom: &str) -> Array {
        Array::from_fn(d(dom), |p| (p[0] * 1000 + p[1]) as u32).unwrap()
    }

    #[test]
    fn insert_then_query_round_trips() {
        let db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 4096)));
        let data = checkerboard("[0:99,0:99]");
        let ins = db.insert("obj", &data).unwrap();
        assert!(ins.tiles_created > 1);

        let q = db.range_query("obj", &d("[10:20,30:45]")).unwrap();
        assert_eq!(q.array.domain(), &d("[10:20,30:45]"));
        assert_eq!(
            q.array.get::<u32>(&Point::from_slice(&[15, 40])).unwrap(),
            15040
        );
        assert!(q.stats.tiles_read >= 1);
        assert_eq!(q.stats.cells_copied, 11 * 16);
        assert_eq!(q.stats.cells_defaulted, 0);
        assert!(q.stats.io.pages_read > 0);
        assert!(q.stats.index_nodes >= 1);
        assert_eq!(q.epoch, ins.epoch, "no writer ran in between");
    }

    #[test]
    fn whole_query_reproduces_input() {
        let db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        let data = checkerboard("[0:19,0:19]");
        db.insert("obj", &data).unwrap();
        let q = db.query("obj", &AccessRegion::Whole).unwrap();
        assert_eq!(q.array, data);
    }

    #[test]
    fn uncovered_cells_read_default() {
        let db = Database::in_memory().unwrap();
        let cell = CellType::with_default("u32", 7u32.to_le_bytes().to_vec());
        db.create_object(
            "obj",
            MddType::new(cell, "[0:*,0:*]".parse().unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 4096)),
        )
        .unwrap();
        db.insert("obj", &checkerboard("[0:9,0:9]")).unwrap();
        // Query beyond the covered area: outside cells get the default 7.
        let q = db.range_query("obj", &d("[5:14,0:9]")).unwrap();
        assert_eq!(
            q.array.get::<u32>(&Point::from_slice(&[9, 9])).unwrap(),
            9009
        );
        assert_eq!(q.array.get::<u32>(&Point::from_slice(&[12, 3])).unwrap(), 7);
        assert_eq!(q.stats.cells_defaulted, 50);
    }

    #[test]
    fn gradual_growth_updates_current_domain_by_closure() {
        let db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 4096)));
        db.insert("obj", &checkerboard("[0:9,0:9]")).unwrap();
        assert_eq!(
            db.object("obj").unwrap().current_domain,
            Some(d("[0:9,0:9]"))
        );
        db.insert("obj", &checkerboard("[20:29,0:9]")).unwrap();
        // Closure: minimal interval containing both (§4).
        assert_eq!(
            db.object("obj").unwrap().current_domain,
            Some(d("[0:29,0:9]"))
        );
        // The gap [10:19] stays uncovered and reads as default (0).
        let q = db.range_query("obj", &d("[10:19,0:9]")).unwrap();
        assert!(q.array.to_cells::<u32>().unwrap().iter().all(|&c| c == 0));
    }

    #[test]
    fn overlapping_insert_rejected() {
        let db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 4096)));
        db.insert("obj", &checkerboard("[0:9,0:9]")).unwrap();
        let err = db.insert("obj", &checkerboard("[5:14,5:14]")).unwrap_err();
        assert!(matches!(err, EngineError::OverlapsExistingTiles { .. }));
    }

    #[test]
    fn definition_domain_enforced() {
        let db = Database::in_memory().unwrap();
        db.create_object("bounded", u32_type("[0:9,0:9]"), Scheme::default_for(2))
            .unwrap();
        let err = db
            .insert("bounded", &checkerboard("[0:9,0:15]"))
            .unwrap_err();
        assert!(matches!(err, EngineError::OutsideDefinitionDomain { .. }));
        assert!(db.range_query("bounded", &d("[0:9,0:15]")).is_err());
    }

    #[test]
    fn section_query_drops_fixed_axes() {
        let db = Database::in_memory().unwrap();
        db.create_object("vol", u32_type("[0:*,0:*,0:*]"), Scheme::default_for(3))
            .unwrap();
        let data = Array::from_fn(d("[0:4,0:4,0:4]"), |p| {
            (p[0] * 100 + p[1] * 10 + p[2]) as u32
        })
        .unwrap();
        db.insert("vol", &data).unwrap();
        let q = db
            .query("vol", &AccessRegion::Section(vec![None, Some(3), None]))
            .unwrap();
        assert_eq!(q.array.domain(), &d("[0:4,0:4]"));
        assert_eq!(
            q.array.get::<u32>(&Point::from_slice(&[2, 4])).unwrap(),
            234
        );
    }

    #[test]
    fn queries_are_logged_for_statistic_tiling() {
        let db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        db.insert("obj", &checkerboard("[0:49,0:49]")).unwrap();
        for _ in 0..5 {
            db.range_query("obj", &d("[0:9,0:9]")).unwrap();
        }
        db.range_query("obj", &d("[40:49,40:49]")).unwrap();
        let log = db.access_log("obj").unwrap();
        assert_eq!(log.total_accesses(), 6);
        assert_eq!(log.distinct_regions(), 2);
    }

    #[test]
    fn auto_retile_adapts_to_hot_region() {
        let db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 4096)));
        let data = checkerboard("[0:99,0:99]");
        db.insert("obj", &data).unwrap();
        let hot = d("[10:29,10:29]");
        for _ in 0..10 {
            db.range_query("obj", &hot).unwrap();
        }
        let stats = db.auto_retile("obj", 0, 5, 64 * 1024).unwrap();
        assert!(stats.tiles_after > 0);
        // After adaptation the hot query reads exactly its own bytes.
        let q = db.range_query("obj", &hot).unwrap();
        assert_eq!(q.array, data.extract(&hot).unwrap());
        assert_eq!(q.stats.cells_processed, hot.cells());
        // Full content still correct.
        let all = db.range_query("obj", &d("[0:99,0:99]")).unwrap();
        assert_eq!(all.array, data);
    }

    #[test]
    fn executor_paths_match_serial_results() {
        let data = checkerboard("[0:59,0:59]");
        let serial = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        serial.insert("obj", &data).unwrap();
        let parallel = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        parallel.set_executor(Arc::new(ThreadPool::new(3)));
        parallel.insert("obj", &data).unwrap();

        let region = d("[5:42,7:55]");
        let a = serial.range_query("obj", &region).unwrap();
        let b = parallel.range_query("obj", &region).unwrap();
        assert_eq!(a.array, b.array);
        assert_eq!(a.stats.tiles_read, b.stats.tiles_read);
        assert_eq!(a.stats.cells_processed, b.stats.cells_processed);
        assert_eq!(a.stats.cells_copied, b.stats.cells_copied);
        assert_eq!(a.stats.cells_defaulted, b.stats.cells_defaulted);

        // Re-tiling through the pool preserves content too.
        serial
            .retile("obj", Scheme::Aligned(AlignedTiling::regular(2, 4096)))
            .unwrap();
        parallel
            .retile("obj", Scheme::Aligned(AlignedTiling::regular(2, 4096)))
            .unwrap();
        let a2 = serial.range_query("obj", &region).unwrap();
        let b2 = parallel.range_query("obj", &region).unwrap();
        assert_eq!(a2.array, b2.array);
        let all = parallel.range_query("obj", &d("[0:59,0:59]")).unwrap();
        assert_eq!(all.array, data);
    }

    #[test]
    fn retile_preserves_partial_coverage() {
        let db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 4096)));
        db.insert("obj", &checkerboard("[0:9,0:9]")).unwrap();
        db.insert("obj", &checkerboard("[90:99,90:99]")).unwrap();
        let before = db.object("obj").unwrap().covered_cells();
        db.retile("obj", Scheme::Aligned(AlignedTiling::regular(2, 512)))
            .unwrap();
        let after = db.object("obj").unwrap().covered_cells();
        // The uncovered middle must not have been densified.
        assert!(after < d("[0:99,0:99]").cells(), "object was densified");
        assert!(after >= before);
        let q = db.range_query("obj", &d("[0:9,0:9]")).unwrap();
        assert_eq!(q.array, checkerboard("[0:9,0:9]"));
    }

    #[test]
    fn drop_object_frees_blobs() {
        let db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        db.insert("obj", &checkerboard("[0:19,0:19]")).unwrap();
        assert!(db.blob_store().blob_count() > 0);
        db.drop_object("obj").unwrap();
        assert_eq!(db.blob_store().blob_count(), 0);
        assert!(db.object("obj").is_err());
        assert!(db.drop_object("obj").is_err());
    }

    #[test]
    fn empty_object_behaviour() {
        let db_err = {
            let db = fresh_db_with_object(Scheme::default_for(2));
            let r = db.query("obj", &AccessRegion::Whole);
            assert!(matches!(r, Err(EngineError::EmptyObject(_))));
            db.retile("obj", Scheme::default_for(2))
        };
        assert!(matches!(db_err, Err(EngineError::EmptyObject(_))));
    }

    #[test]
    fn duplicate_and_unknown_objects() {
        let db = fresh_db_with_object(Scheme::default_for(2));
        assert!(matches!(
            db.create_object("obj", u32_type("[0:*,0:*]"), Scheme::default_for(2)),
            Err(EngineError::ObjectExists(_))
        ));
        assert!(matches!(
            db.range_query("nope", &d("[0:1,0:1]")),
            Err(EngineError::UnknownObject(_))
        ));
        assert!(matches!(
            db.insert("nope", &checkerboard("[0:1,0:1]")),
            Err(EngineError::UnknownObject(_))
        ));
    }

    #[test]
    fn cell_size_mismatch_rejected() {
        let db = fresh_db_with_object(Scheme::default_for(2));
        let bytes = Array::from_cells(d("[0:1,0:1]"), &[1u8, 2, 3, 4]).unwrap();
        assert!(matches!(
            db.insert("obj", &bytes),
            Err(EngineError::CellSizeMismatch {
                expected: 4,
                got: 1
            })
        ));
    }

    #[test]
    fn snapshot_isolation_across_a_retile() {
        let db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        let data = checkerboard("[0:31,0:31]");
        let ins = db.insert("obj", &data).unwrap();
        let blobs_before = db.blob_store().blob_count();

        // Pin a snapshot, then retile underneath it.
        let snap = db.begin_read();
        assert_eq!(snap.epoch(), ins.epoch);
        let receipt = db
            .retile("obj", Scheme::Aligned(AlignedTiling::regular(2, 4096)))
            .unwrap();
        assert!(receipt.epoch > ins.epoch);

        // The old tiles stay readable through the snapshot: both content
        // and tile count are the pre-retile ones (one of the blobs is the
        // object's value-bitmap index, not a tile).
        let q = snap.range_query("obj", &d("[0:31,0:31]")).unwrap();
        assert_eq!(q.array, data);
        assert_eq!(q.epoch, ins.epoch);
        assert_eq!(snap.object("obj").unwrap().tile_count(), blobs_before - 1);
        // Old + new tiles coexist while the snapshot lives...
        assert!(db.blob_store().blob_count() > db.object("obj").unwrap().tile_count());

        // ...and a fresh read sees the new epoch and the new tiling.
        let fresh = db.range_query("obj", &d("[0:31,0:31]")).unwrap();
        assert_eq!(fresh.epoch, receipt.epoch);
        assert_eq!(fresh.array, data);

        // Dropping the last old snapshot reclaims the retired blobs; what
        // remains is the new tiles plus the value-bitmap blob.
        drop(snap);
        assert_eq!(
            db.blob_store().blob_count(),
            db.object("obj").unwrap().tile_count() + 1
        );
    }

    /// Inserts row-bands one at a time so consecutive blob ids belong to
    /// spatially scattered tiles — the worst case for physical locality.
    /// Carries an executor so queries exercise the batched band read path.
    fn scattered_db() -> Database<MemPageStore> {
        let db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        db.set_executor(Arc::new(ThreadPool::new(2)));
        // Reverse row order: later rows get earlier pages.
        for row in (0..4).rev() {
            let lo = row * 16;
            let dom = format!("[{}:{},0:63]", lo, lo + 15);
            db.insert("obj", &checkerboard(&dom)).unwrap();
        }
        db
    }

    #[test]
    fn defrag_preserves_contents_and_coalesces_reads() {
        let db = scattered_db();
        let before = db.range_query("obj", &d("[0:63,0:63]")).unwrap();
        let meta_before = db.object("obj").unwrap();
        let receipt = db.defrag("obj").unwrap();
        assert_eq!(receipt.stats.tiles_before, receipt.stats.tiles_after);
        assert!(receipt.stats.bytes_rewritten > 0);
        let after = db.range_query("obj", &d("[0:63,0:63]")).unwrap();
        assert_eq!(after.array, before.array, "defrag must not change a cell");
        // Tiling unchanged: same tile count, same domains, new blobs.
        let meta_after = db.object("obj").unwrap();
        assert_eq!(meta_before.tiles.len(), meta_after.tiles.len());
        for (a, b) in meta_before.tiles.iter().zip(&meta_after.tiles) {
            assert_eq!(a.domain, b.domain);
        }
        // Every blob is now contiguous, and the full-object read coalesces
        // into physical runs.
        for t in &meta_after.tiles {
            assert_eq!(db.blob_store().blob_placement(t.blob).unwrap().runs, 1);
        }
        db.io_stats().reset();
        let _ = db.range_query("obj", &d("[0:63,0:63]")).unwrap();
        let io = db.io_stats().snapshot();
        assert!(
            io.runs_coalesced > 0 && io.runs_coalesced < io.pages_read,
            "expected coalesced runs, got {io:?}"
        );
        // Idempotent: a second defrag finds everything in place and
        // commits nothing.
        let epoch = db.begin_read().epoch();
        let again = db.defrag("obj").unwrap();
        assert_eq!(again.epoch, epoch);
        assert_eq!(again.stats.bytes_rewritten, 0);
    }

    #[test]
    fn defrag_step_converges_under_tiny_budget() {
        let db = scattered_db();
        let before = db.range_query("obj", &d("[0:63,0:63]")).unwrap();
        let mut steps = 0;
        loop {
            // A 1-byte budget still moves at least two tiles per step.
            let receipt = db.defrag_step("obj", 1).unwrap();
            steps += 1;
            assert!(steps < 100, "defrag_step failed to converge");
            if receipt.stats.tiles_remaining == 0 {
                break;
            }
            assert!(receipt.stats.tiles_moved >= 2);
        }
        assert!(steps > 1, "tiny budget should need several steps");
        let after = db.range_query("obj", &d("[0:63,0:63]")).unwrap();
        assert_eq!(after.array, before.array);
        for t in &db.object("obj").unwrap().tiles {
            assert_eq!(db.blob_store().blob_placement(t.blob).unwrap().runs, 1);
        }
        // Converged: the next step is a no-op at the same epoch.
        let epoch = db.begin_read().epoch();
        let done = db.defrag_step("obj", 1).unwrap();
        assert_eq!(done.stats.tiles_moved, 0);
        assert_eq!(done.stats.tiles_remaining, 0);
        assert_eq!(done.epoch, epoch);
    }

    #[test]
    fn defrag_empty_object_reports_empty() {
        let db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        assert!(matches!(db.defrag("obj"), Err(EngineError::EmptyObject(_))));
        assert!(matches!(
            db.defrag_step("obj", 1 << 20),
            Err(EngineError::EmptyObject(_))
        ));
        assert!(db.defrag("nope").is_err());
    }

    #[test]
    fn snapshot_survives_defrag_and_reads_old_placement() {
        let db = scattered_db();
        let snap = db.begin_read();
        let receipt = db.defrag("obj").unwrap();
        let q = snap.range_query("obj", &d("[0:63,0:63]")).unwrap();
        assert_eq!(q.array, checkerboard("[0:63,0:63]"));
        assert!(q.epoch < receipt.epoch, "snapshot pinned the old epoch");
        drop(snap);
        // Old blobs reclaimed: tiles + value-bitmap blob remain.
        assert_eq!(
            db.blob_store().blob_count(),
            db.object("obj").unwrap().tile_count() + 1
        );
    }

    #[test]
    fn snapshot_keeps_dropped_object_readable() {
        let db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        let data = checkerboard("[0:15,0:15]");
        db.insert("obj", &data).unwrap();
        let snap = db.begin_read();
        db.drop_object("obj").unwrap();
        assert!(db.object("obj").is_err(), "current catalog dropped it");
        let q = snap.range_query("obj", &d("[0:15,0:15]")).unwrap();
        assert_eq!(q.array, data, "snapshot still reads the dropped object");
        drop(snap);
        assert_eq!(db.blob_store().blob_count(), 0);
    }

    #[test]
    fn writer_commits_bump_the_epoch_monotonically() {
        let db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        let e0 = db.begin_read().epoch();
        let ins = db.insert("obj", &checkerboard("[0:15,0:15]")).unwrap();
        assert!(ins.epoch > e0);
        let ret = db
            .retile("obj", Scheme::Aligned(AlignedTiling::regular(2, 4096)))
            .unwrap();
        assert!(ret.epoch > ins.epoch);
        assert_eq!(db.begin_read().epoch(), ret.epoch);
        // The durable commit epoch is independent: nothing was saved.
        assert_eq!(db.catalog_epoch(), 0);
    }
}
