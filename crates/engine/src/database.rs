//! The MDD storage manager: objects, inserts, queries, re-tiling.
//!
//! §5: "an MDD object is composed of a set of multidimensional tiles and an
//! index on tiles. Cells of each tile are stored in a separate BLOB. The
//! MDD object index stores the spatial information of the object tiles."
//!
//! [`Database`] owns a [`BlobStore`] over any [`PageStore`] (file-backed,
//! in-memory, or buffer-pooled) and a catalog of [`MddObject`]s. Inserts run
//! the object's tiling scheme (phase 1) and then materialize, store and
//! index the tiles (phase 2). Queries ask the R+-tree for the intersected
//! tiles, fetch each tile BLOB, and compose the result array, collecting
//! the `t_ix`/`t_o`/`t_cpu` counters of §6 along the way.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tilestore_compress::{CellContext, CompressionPolicy};
use tilestore_exec::ThreadPool;
use tilestore_geometry::{copy_region, Domain};
use tilestore_index::RPlusTree;
use tilestore_obs::AccessRecorder;
use tilestore_storage::{BlobId, BlobStore, IoStats, MemPageStore, PageStore, DEFAULT_PAGE_SIZE};
use tilestore_tiling::{AccessRecord, Scheme, StatisticTiling, TilingSpec, TilingStrategy};

use crate::access::{AccessLog, AccessRegion};
use crate::array::Array;
use crate::error::{EngineError, Result};
use crate::mdd::{MddObject, MddType, TileMeta};
use crate::stats::{InsertStats, QueryStats, RetileStats};

/// State of one stored object: persistent metadata plus the runtime log.
struct ObjectState {
    meta: MddObject,
    log: AccessLog,
}

/// A database of tiled MDD objects over a page store `S`.
///
/// ```
/// use tilestore_engine::{Array, CellType, Database, MddType};
/// use tilestore_geometry::{DefDomain, Domain};
/// use tilestore_tiling::{AlignedTiling, Scheme};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut db = Database::in_memory()?;
/// db.create_object(
///     "img",
///     MddType::new(CellType::of::<u8>(), DefDomain::unlimited(2)?),
///     Scheme::Aligned(AlignedTiling::regular(2, 4096)),
/// )?;
/// let domain: Domain = "[0:63,0:63]".parse()?;
/// db.insert("img", &Array::from_fn(domain, |p| (p[0] + p[1]) as u8)?)?;
///
/// let (crop, stats) = db.range_query("img", &"[8:15,8:15]".parse()?)?;
/// assert_eq!(crop.domain().cells(), 64);
/// assert!(stats.tiles_read >= 1);
/// # Ok(())
/// # }
/// ```
pub struct Database<S: PageStore> {
    blobs: BlobStore<S>,
    objects: BTreeMap<String, ObjectState>,
    recorder: Option<AccessRecorder>,
    /// Optional thread pool: when attached, tile fetch/decode on the query
    /// path and tile materialization on insert/retile fan out across its
    /// workers ([`Database::attach_executor`]).
    executor: Option<Arc<ThreadPool>>,
    /// Epoch of the last durable catalog commit (0 before any commit);
    /// bumped by `save`, restored by the persistence layer on reopen.
    commit_epoch: AtomicU64,
}

impl Database<MemPageStore> {
    /// An in-memory database (tests, benchmarks excluding file I/O).
    ///
    /// # Errors
    /// Never in practice; page-size validation only.
    pub fn in_memory() -> Result<Self> {
        Ok(Database::with_store(MemPageStore::new(DEFAULT_PAGE_SIZE)?))
    }
}

impl<S: PageStore> Database<S> {
    /// A database over an arbitrary page store (e.g. a
    /// [`tilestore_storage::FilePageStore`] or a
    /// [`tilestore_storage::BufferPool`]).
    #[must_use]
    pub fn with_store(store: S) -> Self {
        Database {
            blobs: BlobStore::new(store),
            objects: BTreeMap::new(),
            recorder: None,
            executor: None,
            commit_epoch: AtomicU64::new(0),
        }
    }

    /// A database over a pre-built BLOB store (catalog restore path).
    pub(crate) fn from_blob_store(blobs: BlobStore<S>) -> Self {
        Database {
            blobs,
            objects: BTreeMap::new(),
            recorder: None,
            executor: None,
            commit_epoch: AtomicU64::new(0),
        }
    }

    /// Epoch of the last durable catalog commit, 0 before any commit. Each
    /// successful `save` bumps it by one; reopening restores the persisted
    /// value, so a reopened database continues the sequence monotonically.
    #[must_use]
    pub fn catalog_epoch(&self) -> u64 {
        self.commit_epoch.load(Ordering::Acquire)
    }

    /// Records a durable commit epoch (persistence layer only).
    pub(crate) fn set_catalog_epoch(&self, epoch: u64) {
        self.commit_epoch.store(epoch, Ordering::Release);
    }

    /// Attaches a persistent access recorder: every executed range query's
    /// intersected region is appended to its log, so re-tiling can later run
    /// from the real observed workload ([`Database::auto_retile_from_log`]).
    /// File-backed databases opened through the persistence layer get one
    /// automatically.
    pub fn attach_recorder(&mut self, recorder: AccessRecorder) {
        self.recorder = Some(recorder);
    }

    /// The attached access recorder, if any.
    #[must_use]
    pub fn recorder(&self) -> Option<&AccessRecorder> {
        self.recorder.as_ref()
    }

    /// Attaches a thread pool. Queries then scatter tile fetch/decode/clip
    /// across the pool's workers (the result array is split into disjoint
    /// bands along axis 0), and insert/retile materialize and compress
    /// tiles in parallel. Without an executor every path stays serial.
    pub fn attach_executor(&mut self, pool: Arc<ThreadPool>) {
        self.executor = Some(pool);
    }

    /// The attached executor, if any.
    #[must_use]
    pub fn executor(&self) -> Option<&Arc<ThreadPool>> {
        self.executor.as_ref()
    }

    /// Reinstalls a persisted object (catalog restore path).
    pub(crate) fn restore_object(&mut self, meta: MddObject) {
        self.objects.insert(
            meta.name.clone(),
            ObjectState {
                meta,
                log: AccessLog::new(),
            },
        );
    }

    /// The shared I/O statistics of the underlying BLOB store.
    #[must_use]
    pub fn io_stats(&self) -> &IoStats {
        self.blobs.stats()
    }

    /// The underlying BLOB store (read-only access).
    #[must_use]
    pub fn blob_store(&self) -> &BlobStore<S> {
        &self.blobs
    }

    /// Mutable BLOB store access for the modification paths.
    pub(crate) fn blob_store_mut(&mut self) -> &mut BlobStore<S> {
        &mut self.blobs
    }

    /// Mutable object metadata (crate-internal).
    pub(crate) fn object_mut(&mut self, name: &str) -> Result<&mut MddObject> {
        self.objects
            .get_mut(name)
            .map(|s| &mut s.meta)
            .ok_or_else(|| EngineError::UnknownObject(name.to_string()))
    }

    /// Names of all stored objects.
    #[must_use]
    pub fn object_names(&self) -> Vec<String> {
        self.objects.keys().cloned().collect()
    }

    /// Metadata of one object.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`].
    pub fn object(&self, name: &str) -> Result<&MddObject> {
        self.objects
            .get(name)
            .map(|s| &s.meta)
            .ok_or_else(|| EngineError::UnknownObject(name.to_string()))
    }

    /// The access log of one object.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`].
    pub fn access_log(&self, name: &str) -> Result<&AccessLog> {
        self.objects
            .get(name)
            .map(|s| &s.log)
            .ok_or_else(|| EngineError::UnknownObject(name.to_string()))
    }

    /// Sets the per-tile compression policy of an object. Applies to tiles
    /// written afterwards (inserts and re-tiles); already-stored tiles keep
    /// their framing and remain readable — call [`Database::retile`] with
    /// the current scheme to rewrite them under the new policy.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`].
    pub fn set_compression(&mut self, name: &str, policy: CompressionPolicy) -> Result<()> {
        let state = self
            .objects
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownObject(name.to_string()))?;
        state.meta.compression = policy;
        Ok(())
    }

    /// Physical bytes the object's tiles occupy in the BLOB store (after
    /// compression); compare with [`MddObject::stored_bytes`] for the
    /// logical size.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`]; storage errors.
    pub fn object_physical_bytes(&self, name: &str) -> Result<u64> {
        let meta = self.object(name)?;
        let mut total = 0u64;
        for tile in &meta.tiles {
            total += self.blobs.blob_len(tile.blob)?;
        }
        Ok(total)
    }

    /// Creates an empty MDD object.
    ///
    /// # Errors
    /// [`EngineError::ObjectExists`] for duplicate names;
    /// [`EngineError::Index`] for inconsistent dimensionality.
    pub fn create_object(&mut self, name: &str, mdd_type: MddType, scheme: Scheme) -> Result<()> {
        if self.objects.contains_key(name) {
            return Err(EngineError::ObjectExists(name.to_string()));
        }
        let index = RPlusTree::new(mdd_type.dim())?;
        self.objects.insert(
            name.to_string(),
            ObjectState {
                meta: MddObject {
                    name: name.to_string(),
                    mdd_type,
                    scheme,
                    compression: CompressionPolicy::None,
                    tiles: Vec::new(),
                    index,
                    current_domain: None,
                },
                log: AccessLog::new(),
            },
        );
        Ok(())
    }

    /// Drops an object, freeing its BLOBs.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`]; BLOB deletion errors.
    pub fn drop_object(&mut self, name: &str) -> Result<()> {
        let state = self
            .objects
            .remove(name)
            .ok_or_else(|| EngineError::UnknownObject(name.to_string()))?;
        for tile in &state.meta.tiles {
            self.blobs.delete(tile.blob)?;
        }
        Ok(())
    }

    /// Inserts (part of) an array into an object.
    ///
    /// The array's domain is tiled by the object's scheme, each tile's cells
    /// are copied together, stored as a BLOB and indexed (§5.2's two
    /// phases). The current domain grows by closure with the array's domain
    /// (§4). For gradual growth the new data must not overlap cells already
    /// stored — tiles are disjoint by definition.
    ///
    /// # Errors
    /// Type/domain validation errors, tiling errors and storage errors.
    pub fn insert(&mut self, name: &str, array: &Array) -> Result<InsertStats> {
        let _span = tilestore_obs::tracer().span_with("insert", || {
            format!("object={name} domain={}", array.domain())
        });
        let started = Instant::now();
        let state = self
            .objects
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownObject(name.to_string()))?;
        let cell_size = state.meta.cell_size();
        if array.cell_size() != cell_size {
            return Err(EngineError::CellSizeMismatch {
                expected: cell_size,
                got: array.cell_size(),
            });
        }
        if !state.meta.mdd_type.definition.admits(array.domain()) {
            return Err(EngineError::OutsideDefinitionDomain {
                domain: array.domain().to_string(),
                definition: state.meta.mdd_type.definition.to_string(),
            });
        }
        if !state.meta.index.search(array.domain()).hits.is_empty() {
            return Err(EngineError::OverlapsExistingTiles {
                domain: array.domain().to_string(),
            });
        }

        // Phase 1: the tiling specification.
        let spec = state.meta.scheme.partition(array.domain(), cell_size)?;

        // Phase 2: materialize, store and index the tiles. With an executor
        // attached, extraction + compression + BLOB writes scatter across the
        // pool; indexing stays serial (the R+-tree is not concurrent). A
        // mid-scatter failure can leave already-written BLOBs unindexed —
        // they surface as reclaimable orphans, exactly like a crash between
        // page writes and the catalog commit.
        let io_before = self.blobs.stats().snapshot();
        let mut stats = InsertStats::default();
        let ctx = CellContext {
            cell_size,
            default: &state.meta.mdd_type.cell.default,
        };
        let pool = self.executor.as_deref().filter(|_| spec.len() > 1);
        let created: Vec<(Domain, BlobId)> = if let Some(pool) = pool {
            let blobs = &self.blobs;
            let compression = &state.meta.compression;
            let ctx = &ctx;
            pool.scatter(
                spec.tiles().to_vec(),
                move |_, tile_domain| -> Result<(Domain, BlobId)> {
                    let tile = array.extract(&tile_domain)?;
                    let stream = tilestore_compress::compress(compression, tile.bytes(), ctx)
                        .map_err(|e| EngineError::Catalog(format!("compression failed: {e}")))?;
                    let blob = blobs.create(&stream)?;
                    Ok((tile_domain, blob))
                },
            )
            .into_iter()
            .collect::<Result<Vec<_>>>()?
        } else {
            let mut created = Vec::with_capacity(spec.len());
            for tile_domain in spec.tiles() {
                let tile = array.extract(tile_domain)?;
                let stream =
                    tilestore_compress::compress(&state.meta.compression, tile.bytes(), &ctx)
                        .map_err(|e| EngineError::Catalog(format!("compression failed: {e}")))?;
                created.push((tile_domain.clone(), self.blobs.create(&stream)?));
            }
            created
        };
        for (tile_domain, blob) in created {
            let pos = state.meta.tiles.len() as u64;
            state.meta.tiles.push(TileMeta {
                domain: tile_domain.clone(),
                blob,
            });
            state.meta.index.insert(tile_domain, pos)?;
            stats.tiles_created += 1;
        }
        let io = self.blobs.stats().snapshot().since(&io_before);
        stats.bytes_written = io.bytes_written;
        stats.pages_written = io.pages_written;

        state.meta.current_domain = Some(match state.meta.current_domain.take() {
            Some(cur) => cur.hull(array.domain())?,
            None => array.domain().clone(),
        });
        stats.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Ok(stats)
    }

    /// Executes a range query (§5.1 type (b)): returns the sub-array over
    /// `region`, with uncovered cells holding the type's default value, plus
    /// the execution counters.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`], domain validation errors, storage
    /// errors.
    pub fn range_query(&self, name: &str, region: &Domain) -> Result<(Array, QueryStats)> {
        let state = self
            .objects
            .get(name)
            .ok_or_else(|| EngineError::UnknownObject(name.to_string()))?;
        if !state.meta.mdd_type.definition.admits(region) {
            return Err(EngineError::OutsideDefinitionDomain {
                domain: region.to_string(),
                definition: state.meta.mdd_type.definition.to_string(),
            });
        }
        state.log.record(region);
        if let Some(rec) = &self.recorder {
            if rec.record(name, &region.to_string()).is_err() {
                tilestore_obs::metrics()
                    .counter("engine.recorder_errors")
                    .inc();
            }
        }
        self.execute_range(&state.meta, region)
    }

    /// Executes any §5.1 access. Sections (type (d)) come back with the
    /// fixed axes dropped from the result's dimensionality.
    ///
    /// # Errors
    /// [`EngineError::EmptyObject`] when the object holds no cells (the
    /// access cannot be resolved against a current domain), plus the errors
    /// of [`Database::range_query`].
    pub fn query(&self, name: &str, access: &AccessRegion) -> Result<(Array, QueryStats)> {
        let state = self
            .objects
            .get(name)
            .ok_or_else(|| EngineError::UnknownObject(name.to_string()))?;
        let current = state
            .meta
            .current_domain
            .as_ref()
            .ok_or_else(|| EngineError::EmptyObject(name.to_string()))?;
        let (region, fixed_axes) = access.resolve(current)?;
        let (array, stats) = self.range_query(name, &region)?;
        if fixed_axes.is_empty() {
            return Ok((array, stats));
        }
        let section_domain = region.project_out(&fixed_axes)?;
        Ok((array.reshaped(section_domain)?, stats))
    }

    /// Fetches and decompresses one tile's cell payload.
    pub(crate) fn read_tile_payload(&self, meta: &MddObject, tile: &TileMeta) -> Result<Vec<u8>> {
        let stream = self.blobs.read(tile.blob)?;
        let ctx = CellContext {
            cell_size: meta.cell_size(),
            default: &meta.mdd_type.cell.default,
        };
        tilestore_compress::decompress(&stream, &ctx)
            .map_err(|e| EngineError::Catalog(format!("tile decompression failed: {e}")))
    }

    /// Shared query executor: index lookup, tile fetch, composition.
    fn execute_range(&self, meta: &MddObject, region: &Domain) -> Result<(Array, QueryStats)> {
        let _span = tilestore_obs::tracer()
            .span_with("query", || format!("object={} region={region}", meta.name));
        let started = Instant::now();
        let cell_size = meta.cell_size();
        let search = meta.index.search(region);
        let mut result = Array::filled(region.clone(), &meta.mdd_type.cell.default)?;
        let io_before = self.blobs.stats().snapshot();
        let mut stats = QueryStats {
            index_nodes: search.nodes_visited,
            ..QueryStats::default()
        };
        let pool = self
            .executor
            .as_deref()
            .filter(|_| search.hits.len() > 1 && region.extent(0) > 1);
        if let Some(pool) = pool {
            stats.cells_copied =
                self.fetch_tiles_parallel(pool, meta, region, &search.hits, result.bytes_mut())?;
            for &pos in &search.hits {
                stats.tiles_read += 1;
                stats.cells_processed += meta.tiles[pos as usize].domain.cells();
            }
        } else {
            for &pos in &search.hits {
                let tile = &meta.tiles[pos as usize];
                let bytes = self.read_tile_payload(meta, tile)?;
                let tile_array = Array::from_bytes(tile.domain.clone(), cell_size, bytes)?;
                let copied = result.paste(&tile_array)?;
                stats.tiles_read += 1;
                stats.cells_processed += tile.domain.cells();
                stats.cells_copied += copied;
            }
        }
        stats.io = self.blobs.stats().snapshot().since(&io_before);
        stats.cells_defaulted = region.cells() - stats.cells_copied;
        stats.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let hot = tilestore_obs::hot();
        hot.queries.inc();
        hot.query_latency_ns.record(stats.elapsed_ns);
        hot.query_tiles.record(stats.tiles_read);
        Ok((result, stats))
    }

    /// Parallel tile composition: splits the query region (and the result
    /// byte buffer) into disjoint contiguous bands along axis 0 and scatters
    /// one task per band across the pool. Each band fetches the tiles it
    /// intersects into a reused scratch buffer, decodes them zero-copy where
    /// the codec allows, and pastes the clipped region straight into its
    /// slice of the result. Bands partition the region, so every result cell
    /// is written by exactly one task; band boundaries snap to tile-row
    /// starts, so with an aligned tiling no tile is fetched twice (a tile
    /// crossing a cut that could not snap is fetched once per band it
    /// touches).
    ///
    /// Returns the total number of cells copied from tiles.
    fn fetch_tiles_parallel(
        &self,
        pool: &ThreadPool,
        meta: &MddObject,
        region: &Domain,
        hits: &[u64],
        out: &mut [u8],
    ) -> Result<u64> {
        let cell_size = meta.cell_size();
        let rows = usize::try_from(region.extent(0)).map_err(|_| {
            EngineError::Catalog(format!("query region too large for this host: {region}"))
        })?;
        let slab = out.len() / rows; // bytes per axis-0 index
        let bands = (pool.workers() + 1).min(rows);
        let lo0 = region.lo(0);
        let hi0 = lo0 + rows as i64;
        // Snap band boundaries to rows where a tile begins: a cut through
        // the middle of a tile makes both neighbouring bands read it, so
        // the ideal even split is adjusted to the nearest tile-row start.
        // With an aligned tiling this eliminates duplicate reads entirely.
        let mut tile_starts: Vec<i64> = hits
            .iter()
            .map(|&pos| meta.tiles[pos as usize].domain.lo(0))
            .filter(|&s| s > lo0 && s < hi0)
            .collect();
        tile_starts.sort_unstable();
        tile_starts.dedup();
        let mut cuts: Vec<i64> = vec![lo0];
        for b in 1..bands {
            let ideal = lo0 + (rows * b / bands) as i64;
            let snapped = tile_starts
                .iter()
                .copied()
                .min_by_key(|s| (s - ideal).abs())
                .unwrap_or(ideal);
            if snapped > *cuts.last().expect("cuts is non-empty") {
                cuts.push(snapped);
            }
        }
        cuts.push(hi0);
        let mut tasks: Vec<(Domain, &mut [u8])> = Vec::with_capacity(cuts.len() - 1);
        let mut rest = out;
        for w in cuts.windows(2) {
            let len = (w[1] - w[0]) as usize;
            let (head, tail) = rest.split_at_mut(len * slab);
            rest = tail;
            let band_range = tilestore_geometry::AxisRange::new(w[0], w[1] - 1)?;
            tasks.push((region.with_axis(0, band_range)?, head));
        }
        let ctx = CellContext {
            cell_size,
            default: &meta.mdd_type.cell.default,
        };
        let copied = pool.scatter(tasks, |_, (band_dom, band_out)| -> Result<u64> {
            let mut scratch = Vec::new();
            let mut copied = 0u64;
            for &pos in hits {
                let tile = &meta.tiles[pos as usize];
                let Some(overlap) = tile.domain.intersection(&band_dom) else {
                    continue;
                };
                let n = self.blobs.read_into(tile.blob, &mut scratch)?;
                let payload = tilestore_compress::decompress_view(&scratch[..n], &ctx)
                    .map_err(|e| EngineError::Catalog(format!("tile decompression failed: {e}")))?;
                copied += copy_region(
                    &tile.domain,
                    &payload,
                    &band_dom,
                    band_out,
                    &overlap,
                    cell_size,
                )?;
            }
            Ok(copied)
        });
        let mut total = 0u64;
        for band in copied {
            total += band?;
        }
        Ok(total)
    }

    /// Replaces an object's tiling with a new scheme, rewriting the tiles.
    ///
    /// New tiles are materialized from the old ones; new-tiling tiles that
    /// intersect no stored data remain unmaterialized, preserving partial
    /// coverage (a new tile partially covering old data stores default
    /// values for the uncovered cells it spans).
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`], [`EngineError::EmptyObject`],
    /// tiling and storage errors.
    pub fn retile(&mut self, name: &str, scheme: Scheme) -> Result<RetileStats> {
        let _span = tilestore_obs::tracer().span_with("retile", || format!("object={name}"));
        let started = Instant::now();
        let state = self
            .objects
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownObject(name.to_string()))?;
        let current = state
            .meta
            .current_domain
            .clone()
            .ok_or_else(|| EngineError::EmptyObject(name.to_string()))?;
        let cell_size = state.meta.cell_size();
        let spec: TilingSpec = scheme.partition(&current, cell_size)?;

        let mut stats = RetileStats {
            tiles_before: state.meta.tiles.len() as u64,
            ..RetileStats::default()
        };
        // Materialize the new tiles. With an executor attached, each new
        // tile (index probe, old-tile fetch, recomposition, compression,
        // BLOB write) is an independent task; the index/tile-list swap below
        // stays serial.
        let mut new_tiles: Vec<TileMeta> = Vec::with_capacity(spec.len());
        let default = state.meta.mdd_type.cell.default.clone();
        let ctx = CellContext {
            cell_size,
            default: &default,
        };
        let pool = self.executor.as_deref().filter(|_| spec.len() > 1);
        let materialized: Vec<Option<(Domain, BlobId, u64)>> = if let Some(pool) = pool {
            let blobs = &self.blobs;
            let meta_ref = &state.meta;
            let ctx = &ctx;
            let default = &default;
            pool.scatter(
                spec.tiles().to_vec(),
                move |_, tile_domain| -> Result<Option<(Domain, BlobId, u64)>> {
                    let hits = meta_ref.index.search(&tile_domain).hits;
                    if hits.is_empty() {
                        return Ok(None); // stays uncovered
                    }
                    let mut tile = Array::filled(tile_domain.clone(), default)?;
                    let mut scratch = Vec::new();
                    for pos in hits {
                        let old = &meta_ref.tiles[pos as usize];
                        let Some(overlap) = old.domain.intersection(&tile_domain) else {
                            continue;
                        };
                        let n = blobs.read_into(old.blob, &mut scratch)?;
                        let payload = tilestore_compress::decompress_view(&scratch[..n], ctx)
                            .map_err(|e| {
                                EngineError::Catalog(format!("tile decompression failed: {e}"))
                            })?;
                        copy_region(
                            &old.domain,
                            &payload,
                            &tile_domain,
                            tile.bytes_mut(),
                            &overlap,
                            cell_size,
                        )?;
                    }
                    let stream =
                        tilestore_compress::compress(&meta_ref.compression, tile.bytes(), ctx)
                            .map_err(|e| {
                                EngineError::Catalog(format!("compression failed: {e}"))
                            })?;
                    let blob = blobs.create(&stream)?;
                    Ok(Some((tile_domain, blob, tile.size_bytes())))
                },
            )
            .into_iter()
            .collect::<Result<Vec<_>>>()?
        } else {
            let mut materialized = Vec::with_capacity(spec.len());
            for tile_domain in spec.tiles() {
                let hits = state.meta.index.search(tile_domain).hits;
                if hits.is_empty() {
                    materialized.push(None); // stays uncovered
                    continue;
                }
                let mut tile = Array::filled(tile_domain.clone(), &default)?;
                for pos in hits {
                    let old = &state.meta.tiles[pos as usize];
                    let stream = self.blobs.read(old.blob)?;
                    let bytes = tilestore_compress::decompress(&stream, &ctx).map_err(|e| {
                        EngineError::Catalog(format!("tile decompression failed: {e}"))
                    })?;
                    let old_array = Array::from_bytes(old.domain.clone(), cell_size, bytes)?;
                    tile.paste(&old_array)?;
                }
                let stream =
                    tilestore_compress::compress(&state.meta.compression, tile.bytes(), &ctx)
                        .map_err(|e| EngineError::Catalog(format!("compression failed: {e}")))?;
                let blob = self.blobs.create(&stream)?;
                materialized.push(Some((tile_domain.clone(), blob, tile.size_bytes())));
            }
            materialized
        };
        for (tile_domain, blob, bytes) in materialized.into_iter().flatten() {
            stats.bytes_rewritten += bytes;
            new_tiles.push(TileMeta {
                domain: tile_domain,
                blob,
            });
        }
        // Swap in the new tiles and rebuild the index.
        for old in &state.meta.tiles {
            self.blobs.delete(old.blob)?;
        }
        let entries: Vec<(Domain, u64)> = new_tiles
            .iter()
            .enumerate()
            .map(|(i, t)| (t.domain.clone(), i as u64))
            .collect();
        state.meta.index = RPlusTree::bulk_load(
            state.meta.mdd_type.dim(),
            tilestore_index::DEFAULT_FANOUT,
            entries,
        )?;
        state.meta.tiles = new_tiles;
        state.meta.scheme = scheme;
        stats.tiles_after = state.meta.tiles.len() as u64;
        stats.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Ok(stats)
    }

    /// Automatic tiling based on access statistics (§5.2): derives a
    /// [`StatisticTiling`] from the object's access log and re-tiles.
    ///
    /// # Errors
    /// The errors of [`Database::retile`].
    pub fn auto_retile(
        &mut self,
        name: &str,
        distance_threshold: u64,
        frequency_threshold: u64,
        max_tile_size: u64,
    ) -> Result<RetileStats> {
        let records = self.access_log(name)?.to_records();
        let scheme = Scheme::Statistic(StatisticTiling::new(
            records,
            distance_threshold,
            frequency_threshold,
            max_tile_size,
        ));
        self.retile(name, scheme)
    }

    /// Like [`Database::auto_retile`], but driven by the *persistent* access
    /// log of the attached [`AccessRecorder`] — the observe → re-tile loop
    /// of §5.4 closed over real recorded history (it survives reopening the
    /// database, unlike the in-process log). Malformed log lines are skipped.
    ///
    /// # Errors
    /// [`EngineError::NoAccessRecorder`] when no recorder is attached;
    /// otherwise the errors of [`Database::retile`].
    pub fn auto_retile_from_log(
        &mut self,
        name: &str,
        distance_threshold: u64,
        frequency_threshold: u64,
        max_tile_size: u64,
    ) -> Result<RetileStats> {
        self.object(name)?; // surface UnknownObject before recorder errors
        let recorder = self
            .recorder
            .as_ref()
            .ok_or(EngineError::NoAccessRecorder)?;
        let records: Vec<AccessRecord> = recorder
            .entries_for(name)
            .map_err(|e| EngineError::Catalog(format!("reading access log: {e}")))?
            .into_iter()
            .filter_map(|e| {
                e.region
                    .parse::<Domain>()
                    .ok()
                    .map(|region| AccessRecord::new(region, e.count))
            })
            .collect();
        let scheme = Scheme::Statistic(StatisticTiling::new(
            records,
            distance_threshold,
            frequency_threshold,
            max_tile_size,
        ));
        self.retile(name, scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilestore_geometry::Point;
    use tilestore_tiling::AlignedTiling;

    use crate::celltype::CellType;

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    fn u32_type(def: &str) -> MddType {
        MddType::new(CellType::of::<u32>(), def.parse().unwrap())
    }

    fn fresh_db_with_object(scheme: Scheme) -> Database<MemPageStore> {
        let mut db = Database::in_memory().unwrap();
        db.create_object("obj", u32_type("[0:*,0:*]"), scheme)
            .unwrap();
        db
    }

    fn checkerboard(dom: &str) -> Array {
        Array::from_fn(d(dom), |p| (p[0] * 1000 + p[1]) as u32).unwrap()
    }

    #[test]
    fn insert_then_query_round_trips() {
        let mut db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 4096)));
        let data = checkerboard("[0:99,0:99]");
        let ins = db.insert("obj", &data).unwrap();
        assert!(ins.tiles_created > 1);

        let (out, stats) = db.range_query("obj", &d("[10:20,30:45]")).unwrap();
        assert_eq!(out.domain(), &d("[10:20,30:45]"));
        assert_eq!(
            out.get::<u32>(&Point::from_slice(&[15, 40])).unwrap(),
            15040
        );
        assert!(stats.tiles_read >= 1);
        assert_eq!(stats.cells_copied, 11 * 16);
        assert_eq!(stats.cells_defaulted, 0);
        assert!(stats.io.pages_read > 0);
        assert!(stats.index_nodes >= 1);
    }

    #[test]
    fn whole_query_reproduces_input() {
        let mut db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        let data = checkerboard("[0:19,0:19]");
        db.insert("obj", &data).unwrap();
        let (out, _) = db.query("obj", &AccessRegion::Whole).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn uncovered_cells_read_default() {
        let mut db = Database::in_memory().unwrap();
        let cell = CellType::with_default("u32", 7u32.to_le_bytes().to_vec());
        db.create_object(
            "obj",
            MddType::new(cell, "[0:*,0:*]".parse().unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 4096)),
        )
        .unwrap();
        db.insert("obj", &checkerboard("[0:9,0:9]")).unwrap();
        // Query beyond the covered area: outside cells get the default 7.
        let (out, stats) = db.range_query("obj", &d("[5:14,0:9]")).unwrap();
        assert_eq!(out.get::<u32>(&Point::from_slice(&[9, 9])).unwrap(), 9009);
        assert_eq!(out.get::<u32>(&Point::from_slice(&[12, 3])).unwrap(), 7);
        assert_eq!(stats.cells_defaulted, 50);
    }

    #[test]
    fn gradual_growth_updates_current_domain_by_closure() {
        let mut db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 4096)));
        db.insert("obj", &checkerboard("[0:9,0:9]")).unwrap();
        assert_eq!(
            db.object("obj").unwrap().current_domain,
            Some(d("[0:9,0:9]"))
        );
        db.insert("obj", &checkerboard("[20:29,0:9]")).unwrap();
        // Closure: minimal interval containing both (§4).
        assert_eq!(
            db.object("obj").unwrap().current_domain,
            Some(d("[0:29,0:9]"))
        );
        // The gap [10:19] stays uncovered and reads as default (0).
        let (out, _) = db.range_query("obj", &d("[10:19,0:9]")).unwrap();
        assert!(out.to_cells::<u32>().unwrap().iter().all(|&c| c == 0));
    }

    #[test]
    fn overlapping_insert_rejected() {
        let mut db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 4096)));
        db.insert("obj", &checkerboard("[0:9,0:9]")).unwrap();
        let err = db.insert("obj", &checkerboard("[5:14,5:14]")).unwrap_err();
        assert!(matches!(err, EngineError::OverlapsExistingTiles { .. }));
    }

    #[test]
    fn definition_domain_enforced() {
        let mut db = Database::in_memory().unwrap();
        db.create_object("bounded", u32_type("[0:9,0:9]"), Scheme::default_for(2))
            .unwrap();
        let err = db
            .insert("bounded", &checkerboard("[0:9,0:15]"))
            .unwrap_err();
        assert!(matches!(err, EngineError::OutsideDefinitionDomain { .. }));
        assert!(db.range_query("bounded", &d("[0:9,0:15]")).is_err());
    }

    #[test]
    fn section_query_drops_fixed_axes() {
        let mut db = Database::in_memory().unwrap();
        db.create_object("vol", u32_type("[0:*,0:*,0:*]"), Scheme::default_for(3))
            .unwrap();
        let data = Array::from_fn(d("[0:4,0:4,0:4]"), |p| {
            (p[0] * 100 + p[1] * 10 + p[2]) as u32
        })
        .unwrap();
        db.insert("vol", &data).unwrap();
        let (out, _) = db
            .query("vol", &AccessRegion::Section(vec![None, Some(3), None]))
            .unwrap();
        assert_eq!(out.domain(), &d("[0:4,0:4]"));
        assert_eq!(out.get::<u32>(&Point::from_slice(&[2, 4])).unwrap(), 234);
    }

    #[test]
    fn queries_are_logged_for_statistic_tiling() {
        let mut db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        db.insert("obj", &checkerboard("[0:49,0:49]")).unwrap();
        for _ in 0..5 {
            db.range_query("obj", &d("[0:9,0:9]")).unwrap();
        }
        db.range_query("obj", &d("[40:49,40:49]")).unwrap();
        let log = db.access_log("obj").unwrap();
        assert_eq!(log.total_accesses(), 6);
        assert_eq!(log.distinct_regions(), 2);
    }

    #[test]
    fn auto_retile_adapts_to_hot_region() {
        let mut db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 4096)));
        let data = checkerboard("[0:99,0:99]");
        db.insert("obj", &data).unwrap();
        let hot = d("[10:29,10:29]");
        for _ in 0..10 {
            db.range_query("obj", &hot).unwrap();
        }
        let stats = db.auto_retile("obj", 0, 5, 64 * 1024).unwrap();
        assert!(stats.tiles_after > 0);
        // After adaptation the hot query reads exactly its own bytes.
        let (out, qs) = db.range_query("obj", &hot).unwrap();
        assert_eq!(out, data.extract(&hot).unwrap());
        assert_eq!(qs.cells_processed, hot.cells());
        // Full content still correct.
        let (all, _) = db.range_query("obj", &d("[0:99,0:99]")).unwrap();
        assert_eq!(all, data);
    }

    #[test]
    fn executor_paths_match_serial_results() {
        let data = checkerboard("[0:59,0:59]");
        let mut serial = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        serial.insert("obj", &data).unwrap();
        let mut parallel = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        parallel.attach_executor(Arc::new(ThreadPool::new(3)));
        parallel.insert("obj", &data).unwrap();

        let region = d("[5:42,7:55]");
        let (a, sa) = serial.range_query("obj", &region).unwrap();
        let (b, sb) = parallel.range_query("obj", &region).unwrap();
        assert_eq!(a, b);
        assert_eq!(sa.tiles_read, sb.tiles_read);
        assert_eq!(sa.cells_processed, sb.cells_processed);
        assert_eq!(sa.cells_copied, sb.cells_copied);
        assert_eq!(sa.cells_defaulted, sb.cells_defaulted);

        // Re-tiling through the pool preserves content too.
        serial
            .retile("obj", Scheme::Aligned(AlignedTiling::regular(2, 4096)))
            .unwrap();
        parallel
            .retile("obj", Scheme::Aligned(AlignedTiling::regular(2, 4096)))
            .unwrap();
        let (a2, _) = serial.range_query("obj", &region).unwrap();
        let (b2, _) = parallel.range_query("obj", &region).unwrap();
        assert_eq!(a2, b2);
        let (all, _) = parallel.range_query("obj", &d("[0:59,0:59]")).unwrap();
        assert_eq!(all, data);
    }

    #[test]
    fn retile_preserves_partial_coverage() {
        let mut db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 4096)));
        db.insert("obj", &checkerboard("[0:9,0:9]")).unwrap();
        db.insert("obj", &checkerboard("[90:99,90:99]")).unwrap();
        let before = db.object("obj").unwrap().covered_cells();
        db.retile("obj", Scheme::Aligned(AlignedTiling::regular(2, 512)))
            .unwrap();
        let after = db.object("obj").unwrap().covered_cells();
        // The uncovered middle must not have been densified.
        assert!(after < d("[0:99,0:99]").cells(), "object was densified");
        assert!(after >= before);
        let (out, _) = db.range_query("obj", &d("[0:9,0:9]")).unwrap();
        assert_eq!(out, checkerboard("[0:9,0:9]"));
    }

    #[test]
    fn drop_object_frees_blobs() {
        let mut db = fresh_db_with_object(Scheme::Aligned(AlignedTiling::regular(2, 1024)));
        db.insert("obj", &checkerboard("[0:19,0:19]")).unwrap();
        assert!(db.blob_store().blob_count() > 0);
        db.drop_object("obj").unwrap();
        assert_eq!(db.blob_store().blob_count(), 0);
        assert!(db.object("obj").is_err());
        assert!(db.drop_object("obj").is_err());
    }

    #[test]
    fn empty_object_behaviour() {
        let db_err = {
            let mut db = fresh_db_with_object(Scheme::default_for(2));
            let r = db.query("obj", &AccessRegion::Whole);
            assert!(matches!(r, Err(EngineError::EmptyObject(_))));
            db.retile("obj", Scheme::default_for(2))
        };
        assert!(matches!(db_err, Err(EngineError::EmptyObject(_))));
    }

    #[test]
    fn duplicate_and_unknown_objects() {
        let mut db = fresh_db_with_object(Scheme::default_for(2));
        assert!(matches!(
            db.create_object("obj", u32_type("[0:*,0:*]"), Scheme::default_for(2)),
            Err(EngineError::ObjectExists(_))
        ));
        assert!(matches!(
            db.range_query("nope", &d("[0:1,0:1]")),
            Err(EngineError::UnknownObject(_))
        ));
        assert!(matches!(
            db.insert("nope", &checkerboard("[0:1,0:1]")),
            Err(EngineError::UnknownObject(_))
        ));
    }

    #[test]
    fn cell_size_mismatch_rejected() {
        let mut db = fresh_db_with_object(Scheme::default_for(2));
        let bytes = Array::from_cells(d("[0:1,0:1]"), &[1u8, 2, 3, 4]).unwrap();
        assert!(matches!(
            db.insert("obj", &bytes),
            Err(EngineError::CellSizeMismatch {
                expected: 4,
                got: 1
            })
        ));
    }
}
