//! The MDD storage manager of *Furtado & Baumann (ICDE 1999)*.
//!
//! An MDD object is a set of multidimensional tiles plus an R+-tree index
//! over their domains; tile cells live in BLOBs of a page-based store (§5).
//! This crate ties the workspace's substrates together:
//!
//! * [`Database`] — catalog of [`MddObject`]s over any page store; insert
//!   runs the object's tiling [`Scheme`](tilestore_tiling::Scheme)
//!   (phase 1) and materializes/stores/indexes the tiles (phase 2);
//! * [`Snapshot`] — epoch-stamped read sessions ([`Database::begin_read`]):
//!   queries execute against an immutable catalog snapshot and never block
//!   behind writers; [`QueryResult`] / [`WriteReceipt`] carry the epoch;
//! * [`DatabaseBuilder`] — unified construction with optional recorder,
//!   executor and compression default;
//! * [`Array`] / [`CellValue`] / [`CellType`] — dense array values with
//!   typed cell access;
//! * [`AccessRegion`] — the §5.1 access model: whole object, range query,
//!   partial range query, section;
//! * [`QueryStats`] / [`QueryTimes`] — the §6 time decomposition
//!   (`t_ix`, `t_o`, `t_cpu` and the totals);
//! * [`AccessLog`] + [`Database::auto_retile`] — automatic tiling from
//!   access statistics;
//! * catalog persistence for file-backed databases ([`Catalog`]).

#![warn(missing_docs)]
#![warn(clippy::all)]

mod access;
mod aggregate;
mod array;
mod builder;
mod celltype;
mod database;
mod error;
mod explain;
mod induce;
mod mdd;
mod modify;
mod persist;
mod predicate;
mod shared;
mod snapshot;
mod stats;
mod synopsis;

pub use access::{AccessLog, AccessRegion};
pub use aggregate::{aggregate_array, AggKind, AggValue};
pub use array::Array;
pub use builder::DatabaseBuilder;
pub use celltype::{CellType, CellValue, Rgb};
pub use database::Database;
pub use error::{EngineError, Result};
pub use explain::{ExplainPlan, TileDecision, TilePlan};
pub use induce::{induce_map, induce_scalar, BinOp};
pub use mdd::{MddObject, MddType, TileMeta};
pub use modify::{DeleteStats, UpdateStats};
pub use persist::{
    fsck, CachedFileStore, Catalog, FsckReport, ACCESS_LOG_FILE, CATALOG_FILE, CATALOG_TMP_FILE,
    DEFAULT_CACHE_PAGES, PAGES_FILE,
};
pub use predicate::{CellPredicate, PredOp, PruneRule};
pub use shared::SharedDatabase;
pub use snapshot::{QueryResult, Snapshot, WriteReceipt};
pub use stats::{DefragStep, InsertStats, QueryStats, QueryTimes, RetileStats};
pub use synopsis::TileSynopsis;

/// Compile-time thread-safety assertions. The serving layer shares one
/// `Database<CachedFileStore>` across connection threads and scatters query
/// work onto executor workers; if a future change drops `Send`/`Sync` on
/// these types (say, by adding an `Rc` or a raw pointer field), the build
/// breaks here instead of the server crate failing with an opaque trait
/// bound error — or worse, compiling against a quietly serialized fallback.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database<tilestore_storage::FilePageStore>>();
    assert_send_sync::<Database<tilestore_storage::MemPageStore>>();
    assert_send_sync::<Database<CachedFileStore>>();
    assert_send_sync::<SharedDatabase<tilestore_storage::FilePageStore>>();
    assert_send_sync::<SharedDatabase<CachedFileStore>>();
    assert_send_sync::<Snapshot<tilestore_storage::FilePageStore>>();
    assert_send_sync::<Snapshot<CachedFileStore>>();
    assert_send_sync::<EngineError>();
};
