//! Epoch-based snapshot reads.
//!
//! The catalog — object map, tile lists, tile indexes — is an immutable
//! [`CatalogState`] behind an `Arc`. Readers call `Database::begin_read`
//! and get a [`Snapshot`]: an `Arc` clone of the catalog plus handles to
//! the shared BLOB store. From that point a query never takes any
//! database-wide lock: the snapshot's tile metadata cannot change, and
//! the pages of its tiles cannot be reclaimed while it lives.
//!
//! Writers build a *new* catalog copy-on-write and publish it with a
//! single pointer swap (see `Database::swap_catalog`), stamping it with
//! the next epoch. Blobs the new catalog no longer references are not
//! deleted immediately: they are *retired* into the [`EpochTracker`],
//! which holds them until the last snapshot whose epoch still sees them
//! drops. Deletion then feeds the PR-3 page quarantine, so the pages only
//! become reusable after the next durable commit — the crash-consistency
//! story is unchanged, snapshots just defer the hand-off.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use tilestore_compress::CellContext;
use tilestore_exec::ThreadPool;
use tilestore_geometry::{copy_region, Domain};
use tilestore_obs::AccessRecorder;
use tilestore_storage::{BlobId, BlobStore, IoSnapshot, PageStore};

use crate::access::{AccessLog, AccessRegion};
use crate::array::Array;
use crate::error::{EngineError, Result};
use crate::mdd::{MddObject, TileMeta};
use crate::predicate::CellPredicate;
use crate::stats::QueryStats;

/// Locks a mutex, recovering from poisoning. A panicking writer must not
/// take the whole engine down, but silent recovery hid real bugs: every
/// recovery now bumps the `engine.lock_poisoned` counter so operators see
/// that a lock holder died mid-section.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        tilestore_obs::hot().lock_poisoned.inc();
        poisoned.into_inner()
    })
}

/// One object in a catalog snapshot: immutable metadata plus the shared
/// access log. The log `Arc` is carried from catalog to catalog across
/// writer swaps (it is internally synchronized), so accesses recorded
/// through an old snapshot still feed statistic tiling.
#[derive(Clone)]
pub(crate) struct ObjectEntry {
    pub(crate) meta: Arc<MddObject>,
    pub(crate) log: Arc<AccessLog>,
}

/// An immutable, versioned catalog: the unit readers pin and writers swap.
pub(crate) struct CatalogState {
    /// Snapshot epoch: bumped by every writer swap. Independent of the
    /// *durable* commit epoch (`Database::catalog_epoch`), which only
    /// `save` advances; a reopened database seeds this from the persisted
    /// value so epochs keep growing monotonically across restarts.
    pub(crate) version: u64,
    pub(crate) objects: BTreeMap<String, ObjectEntry>,
}

impl CatalogState {
    pub(crate) fn empty(version: u64) -> Self {
        CatalogState {
            version,
            objects: BTreeMap::new(),
        }
    }

    pub(crate) fn entry(&self, name: &str) -> Result<&ObjectEntry> {
        self.objects
            .get(name)
            .ok_or_else(|| EngineError::UnknownObject(name.to_string()))
    }
}

/// Refcounts of live snapshots per epoch plus the blobs retired by each
/// writer swap, with the rule that makes deferred reclamation safe: a
/// blob retired by the swap that produced epoch `N` is readable by
/// snapshots with epoch `< N`, so it may be deleted once no live snapshot
/// has an epoch `< N` — equivalently once `min(live epochs) >= N`, or no
/// snapshot is live at all.
#[derive(Default)]
pub(crate) struct EpochTracker {
    inner: Mutex<TrackerInner>,
}

#[derive(Default)]
struct TrackerInner {
    /// epoch -> number of live snapshots pinned at it.
    live: BTreeMap<u64, u64>,
    /// swap epoch -> blobs the swap stopped referencing.
    retired: BTreeMap<u64, Vec<BlobId>>,
}

impl TrackerInner {
    /// Removes and returns every retired set that no live snapshot can
    /// still read.
    fn drain_reclaimable(&mut self) -> Vec<BlobId> {
        let min_live = self.live.keys().next().copied();
        let keys: Vec<u64> = match min_live {
            None => self.retired.keys().copied().collect(),
            Some(m) => self.retired.range(..=m).map(|(&k, _)| k).collect(),
        };
        let mut out = Vec::new();
        for k in keys {
            if let Some(blobs) = self.retired.remove(&k) {
                out.extend(blobs);
            }
        }
        out
    }
}

impl EpochTracker {
    /// Registers a new snapshot at `epoch`.
    pub(crate) fn acquire(&self, epoch: u64) {
        let mut inner = lock_recover(&self.inner);
        *inner.live.entry(epoch).or_insert(0) += 1;
    }

    /// Releases one snapshot at `epoch`, returning the blobs that became
    /// reclaimable (the caller deletes them from the BLOB store).
    pub(crate) fn release(&self, epoch: u64) -> Vec<BlobId> {
        let mut inner = lock_recover(&self.inner);
        if let Some(count) = inner.live.get_mut(&epoch) {
            *count -= 1;
            if *count == 0 {
                inner.live.remove(&epoch);
            }
        }
        inner.drain_reclaimable()
    }

    /// Records blobs unreferenced by the swap that produced `epoch`,
    /// returning any that are immediately reclaimable (no live snapshot
    /// predates the swap — the common case with no concurrent readers).
    pub(crate) fn retire(&self, epoch: u64, blobs: Vec<BlobId>) -> Vec<BlobId> {
        let mut inner = lock_recover(&self.inner);
        if !blobs.is_empty() {
            inner.retired.entry(epoch).or_default().extend(blobs);
        }
        inner.drain_reclaimable()
    }

    /// Ids of every retired-but-undeleted blob. `save` excludes these from
    /// the exported directory: the catalog being written no longer
    /// references them, so a reopen must see their pages as free even
    /// though live snapshots keep them readable in memory.
    pub(crate) fn pending_blobs(&self) -> BTreeSet<u64> {
        let inner = lock_recover(&self.inner);
        inner.retired.values().flatten().map(|b| b.0).collect()
    }

    /// Number of live snapshots. This is the cluster coordinator's pinning
    /// surface: fault-injection tests assert a shard's count returns to
    /// baseline after a partial failure (no leaked pinned snapshots).
    pub(crate) fn live_snapshots(&self) -> u64 {
        lock_recover(&self.inner).live.values().sum()
    }
}

/// A query result: the materialized sub-array, the §6 execution counters,
/// and the catalog epoch the query observed.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The result array (uncovered cells hold the type's default).
    pub array: Array,
    /// Execution counters (`t_ix`/`t_o`/`t_cpu` decomposition inputs).
    pub stats: QueryStats,
    /// Epoch of the catalog snapshot the query executed against.
    pub epoch: u64,
}

/// A write acknowledgement: the operation's statistics plus the catalog
/// epoch the write produced. Derefs to the statistics, so existing
/// `receipt.tiles_created`-style field access keeps working.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteReceipt<T> {
    /// The operation's statistics.
    pub stats: T,
    /// Epoch of the catalog the write published.
    pub epoch: u64,
}

impl<T> std::ops::Deref for WriteReceipt<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.stats
    }
}

/// A consistent read view of the database at one catalog epoch.
///
/// Obtained from `Database::begin_read` (or `SharedDatabase::snapshot`).
/// Queries through a snapshot never block on writers and writers never
/// block on them: the catalog is immutable, the BLOB store is internally
/// synchronized, and the tiles this snapshot references are protected
/// from reclamation until it drops. Holding a snapshot across a writer
/// commit keeps the *pre-commit* contents readable — drop it promptly on
/// hot paths so retired tiles can be reclaimed.
pub struct Snapshot<S: PageStore> {
    pub(crate) catalog: Arc<CatalogState>,
    pub(crate) blobs: Arc<BlobStore<S>>,
    pub(crate) tracker: Arc<EpochTracker>,
    pub(crate) executor: Option<Arc<ThreadPool>>,
    pub(crate) recorder: Option<Arc<AccessRecorder>>,
    /// Request id queries through this snapshot are attributed to (0 =
    /// none). Atomic so the serving layer can stamp a shared snapshot.
    pub(crate) request: AtomicU64,
}

impl<S: PageStore> Drop for Snapshot<S> {
    fn drop(&mut self) {
        for id in self.tracker.release(self.catalog.version) {
            // The blob may legitimately be gone if the store was torn down
            // around us; reclamation is best-effort by design.
            let _ = self.blobs.delete(id);
        }
        tilestore_obs::hot().snapshots_active.add(-1);
    }
}

impl<S: PageStore> Snapshot<S> {
    /// The catalog epoch this snapshot observes.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.catalog.version
    }

    /// Tags every query executed through this snapshot with `request_id`:
    /// all spans and events it produces — including those recorded on
    /// executor worker threads — carry the id, so one request's span tree
    /// can be exported from the shared trace ring.
    pub fn set_request_id(&self, request_id: u64) {
        self.request.store(request_id, Ordering::Relaxed);
    }

    /// The request id set by [`Snapshot::set_request_id`] (0 = none).
    #[must_use]
    pub fn request_id(&self) -> u64 {
        self.request.load(Ordering::Relaxed)
    }

    /// Enters the tracer's request scope when this snapshot carries a
    /// request id, so engine spans below the caller get tagged. With no id
    /// set the ambient scope (e.g. one the server already entered) is left
    /// untouched.
    pub(crate) fn request_scope(&self) -> Option<tilestore_obs::RequestScope> {
        let rid = self.request_id();
        (rid != 0).then(|| tilestore_obs::request_scope(rid))
    }

    /// Names of all objects in this snapshot.
    #[must_use]
    pub fn object_names(&self) -> Vec<String> {
        self.catalog.objects.keys().cloned().collect()
    }

    /// Metadata of one object as of this snapshot.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`].
    pub fn object(&self, name: &str) -> Result<Arc<MddObject>> {
        self.catalog.entry(name).map(|e| Arc::clone(&e.meta))
    }

    /// The (shared, live) access log of one object.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`].
    pub fn access_log(&self, name: &str) -> Result<Arc<AccessLog>> {
        self.catalog.entry(name).map(|e| Arc::clone(&e.log))
    }

    /// A point-in-time snapshot of the shared store's I/O counters. The
    /// counters are store-wide (concurrent writers advance them too);
    /// per-query deltas are in [`QueryResult::stats`].
    #[must_use]
    pub fn stats(&self) -> IoSnapshot {
        self.blobs.stats().snapshot()
    }

    /// Records an executed access for statistic tiling: the in-process
    /// log always, the persistent recorder when attached.
    fn record_access(&self, name: &str, entry: &ObjectEntry, region: &Domain) {
        entry.log.record(region);
        if let Some(rec) = &self.recorder {
            if rec.record(name, &region.to_string()).is_err() {
                tilestore_obs::metrics()
                    .counter("engine.recorder_errors")
                    .inc();
            }
        }
    }

    /// Executes a range query (§5.1 type (b)) against this snapshot.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`], domain validation errors, storage
    /// errors.
    pub fn range_query(&self, name: &str, region: &Domain) -> Result<QueryResult> {
        self.range_query_where(name, region, None)
    }

    /// Executes a range query with an optional cell-value predicate:
    /// cells failing `cell <op> literal` read as the type's default value
    /// (masked select). Tiles the synopsis or value-bitmap index *proves*
    /// cannot hold a matching cell are never fetched — their blobs stay
    /// untouched and they count in [`QueryStats::tiles_pruned`]; pruning
    /// is conservative, so the result is byte-identical to masking a full
    /// scan.
    ///
    /// # Errors
    /// The errors of [`Snapshot::range_query`]; additionally a predicate
    /// over a non-numeric cell type is rejected up front.
    pub fn range_query_where(
        &self,
        name: &str,
        region: &Domain,
        predicate: Option<&CellPredicate>,
    ) -> Result<QueryResult> {
        let entry = self.catalog.entry(name)?;
        if predicate.is_some() {
            // A predicate compares numerically; reject Rgb-style cells here
            // rather than failing mid-scan.
            crate::aggregate::decode_numeric(
                &entry.meta.mdd_type.cell,
                &entry.meta.mdd_type.cell.default,
            )?;
        }
        if !entry.meta.mdd_type.definition.admits(region) {
            return Err(EngineError::OutsideDefinitionDomain {
                domain: region.to_string(),
                definition: entry.meta.mdd_type.definition.to_string(),
            });
        }
        let _req = self.request_scope();
        self.record_access(name, entry, region);
        let (array, stats) = execute_range(
            &self.blobs,
            self.executor.as_deref(),
            &entry.meta,
            region,
            predicate,
        )?;
        Ok(QueryResult {
            array,
            stats,
            epoch: self.catalog.version,
        })
    }

    /// Executes any §5.1 access against this snapshot. Sections (type (d))
    /// come back with the fixed axes dropped from the result's
    /// dimensionality.
    ///
    /// # Errors
    /// [`EngineError::EmptyObject`] when the object holds no cells, plus
    /// the errors of [`Snapshot::range_query`].
    pub fn query(&self, name: &str, access: &AccessRegion) -> Result<QueryResult> {
        self.query_where(name, access, None)
    }

    /// Executes any §5.1 access with an optional cell-value predicate (see
    /// [`Snapshot::range_query_where`] for the masked-select semantics).
    ///
    /// # Errors
    /// The errors of [`Snapshot::query`]; a predicate over a non-numeric
    /// cell type is rejected up front.
    pub fn query_where(
        &self,
        name: &str,
        access: &AccessRegion,
        predicate: Option<&CellPredicate>,
    ) -> Result<QueryResult> {
        let entry = self.catalog.entry(name)?;
        let current = entry
            .meta
            .current_domain
            .as_ref()
            .ok_or_else(|| EngineError::EmptyObject(name.to_string()))?;
        let (region, fixed_axes) = access.resolve(current)?;
        let result = self.range_query_where(name, &region, predicate)?;
        if fixed_axes.is_empty() {
            return Ok(result);
        }
        let section_domain = region.project_out(&fixed_axes)?;
        Ok(QueryResult {
            array: result.array.reshaped(section_domain)?,
            stats: result.stats,
            epoch: result.epoch,
        })
    }
}

/// Upper bound on the bytes one band stages per batched tile read. Large
/// enough that a defragmented range query coalesces many tiles into each
/// positioned read, small enough that band scratch buffers stay bounded.
const READAHEAD_BATCH_BYTES: usize = 4 << 20;

/// Fetches and decompresses one tile's cell payload.
pub(crate) fn read_tile_payload<S: PageStore>(
    blobs: &BlobStore<S>,
    meta: &MddObject,
    tile: &TileMeta,
) -> Result<Vec<u8>> {
    let stream = blobs.read(tile.blob)?;
    let ctx = CellContext {
        cell_size: meta.cell_size(),
        default: &meta.mdd_type.cell.default,
    };
    tilestore_compress::decompress(&stream, &ctx)
        .map_err(|e| EngineError::Catalog(format!("tile decompression failed: {e}")))
}

/// The shared query executor: index lookup, tile fetch, composition.
/// Operates on immutable metadata plus the internally-synchronized BLOB
/// store, so it needs no database lock — this is what lets a query run
/// fully concurrent with writers.
pub(crate) fn execute_range<S: PageStore>(
    blobs: &BlobStore<S>,
    executor: Option<&ThreadPool>,
    meta: &MddObject,
    region: &Domain,
    predicate: Option<&CellPredicate>,
) -> Result<(Array, QueryStats)> {
    let _span = tilestore_obs::tracer()
        .span_with("query", || format!("object={} region={region}", meta.name));
    let started = Instant::now();
    let cell_size = meta.cell_size();
    let search = meta.index.search(region);
    let mut result = Array::filled(region.clone(), &meta.mdd_type.cell.default)?;
    let io_before = blobs.stats().snapshot();
    let mut stats = QueryStats {
        index_nodes: search.nodes_visited,
        ..QueryStats::default()
    };
    // Value-predicate pruning: drop every hit the bitmap index or its
    // synopsis proves cannot hold a matching cell. A pruned tile is
    // equivalent to an all-default tile, and the result is pre-filled with
    // the default, so skipping it changes nothing.
    let mut hits = search.hits;
    if let Some(p) = predicate {
        let candidates = p.candidate_bins();
        let before = hits.len();
        hits.retain(|&pos| {
            let tile = &meta.tiles[pos as usize];
            let by_bitmap = p.bins_can_prune()
                && meta
                    .value_index
                    .as_ref()
                    .is_some_and(|ix| ix.tile_mask(pos as usize) & candidates == 0);
            let by_synopsis = tile.synopsis.as_ref().is_some_and(|s| p.prunes_tile(s));
            !(by_bitmap || by_synopsis)
        });
        stats.tiles_pruned = (before - hits.len()) as u64;
    }
    let pool = executor.filter(|_| hits.len() > 1 && region.extent(0) > 1);
    if let Some(pool) = pool {
        let band_stats = fetch_tiles_parallel(
            blobs,
            pool,
            meta,
            region,
            &hits,
            predicate,
            result.bytes_mut(),
        )?;
        stats.merge(&band_stats);
        for &pos in &hits {
            stats.tiles_read += 1;
            stats.cells_processed += meta.tiles[pos as usize].domain.cells();
        }
    } else {
        for &pos in &hits {
            let tile = &meta.tiles[pos as usize];
            let mut bytes = read_tile_payload(blobs, meta, tile)?;
            if let Some(p) = predicate {
                p.mask_payload(&meta.mdd_type.cell, &mut bytes)?;
            }
            let tile_array = Array::from_bytes(tile.domain.clone(), cell_size, bytes)?;
            let copied = result.paste(&tile_array)?;
            stats.tiles_read += 1;
            stats.cells_processed += tile.domain.cells();
            stats.cells_copied += copied;
        }
    }
    stats.io = blobs.stats().snapshot().since(&io_before);
    stats.cells_defaulted = region.cells() - stats.cells_copied;
    stats.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let hot = tilestore_obs::hot();
    hot.queries.inc();
    hot.query_latency_ns.record(stats.elapsed_ns);
    hot.query_tiles.record(stats.tiles_read);
    hot.tiles_pruned.add(stats.tiles_pruned);
    Ok((result, stats))
}

/// Parallel tile composition: splits the query region (and the result
/// byte buffer) into disjoint contiguous bands along axis 0 and scatters
/// one task per band across the pool. Each band fetches the tiles it
/// intersects into a reused scratch buffer, decodes them zero-copy where
/// the codec allows, and pastes the clipped region straight into its
/// slice of the result. Bands partition the region, so every result cell
/// is written by exactly one task; band boundaries snap to tile-row
/// starts, so with an aligned tiling no tile is fetched twice (a tile
/// crossing a cut that could not snap is fetched once per band it
/// touches).
///
/// Each band sorts its tile plan by physical position (the blob's first
/// page) and fetches it in batches through `BlobStore::read_batch`, which
/// concatenates the page lists into one `read_pages` call: tiles the
/// defragmenter laid on consecutive pages coalesce into single positioned
/// reads — even across blob boundaries — and against a sharded buffer
/// pool each batch is one lock acquisition per shard touched (hits served
/// under it, misses read straight into the band's scratch buffer), so
/// band workers hold different shard locks instead of convoying on a
/// global pool mutex three times per page. Batches are capped at
/// [`READAHEAD_BATCH_BYTES`] so a band never stages more than a bounded
/// scratch buffer regardless of query size.
///
/// Returns the per-band statistics merged (saturating) into one
/// [`QueryStats`]; only the per-cell counters are populated — the caller
/// owns tile counts, I/O deltas and timing.
fn fetch_tiles_parallel<S: PageStore>(
    blobs: &BlobStore<S>,
    pool: &ThreadPool,
    meta: &MddObject,
    region: &Domain,
    hits: &[u64],
    predicate: Option<&CellPredicate>,
    out: &mut [u8],
) -> Result<QueryStats> {
    let cell_size = meta.cell_size();
    let rows = usize::try_from(region.extent(0)).map_err(|_| {
        EngineError::Catalog(format!("query region too large for this host: {region}"))
    })?;
    let slab = out.len() / rows; // bytes per axis-0 index
    let bands = (pool.workers() + 1).min(rows);
    let lo0 = region.lo(0);
    let hi0 = lo0 + rows as i64;
    // Snap band boundaries to rows where a tile begins: a cut through
    // the middle of a tile makes both neighbouring bands read it, so
    // the ideal even split is adjusted to the nearest tile-row start.
    // With an aligned tiling this eliminates duplicate reads entirely.
    let mut tile_starts: Vec<i64> = hits
        .iter()
        .map(|&pos| meta.tiles[pos as usize].domain.lo(0))
        .filter(|&s| s > lo0 && s < hi0)
        .collect();
    tile_starts.sort_unstable();
    tile_starts.dedup();
    let mut cuts: Vec<i64> = vec![lo0];
    for b in 1..bands {
        let ideal = lo0 + (rows * b / bands) as i64;
        let snapped = tile_starts
            .iter()
            .copied()
            .min_by_key(|s| (s - ideal).abs())
            .unwrap_or(ideal);
        if snapped > *cuts.last().expect("cuts is non-empty") {
            cuts.push(snapped);
        }
    }
    cuts.push(hi0);
    let mut tasks: Vec<(Domain, &mut [u8])> = Vec::with_capacity(cuts.len() - 1);
    let mut rest = out;
    for w in cuts.windows(2) {
        let len = (w[1] - w[0]) as usize;
        let (head, tail) = rest.split_at_mut(len * slab);
        rest = tail;
        let band_range = tilestore_geometry::AxisRange::new(w[0], w[1] - 1)?;
        tasks.push((region.with_axis(0, band_range)?, head));
    }
    let ctx = CellContext {
        cell_size,
        default: &meta.mdd_type.cell.default,
    };
    // Workers run on their own threads: re-enter the caller's request
    // scope so per-band spans stay attributed to the request.
    let rid = tilestore_obs::current_request_id();
    let page_size = blobs.page_store().page_size();
    let batch_pages = (READAHEAD_BATCH_BYTES / page_size).max(1) as u64;
    let bands = pool.scatter(tasks, |_, (band_dom, band_out)| -> Result<QueryStats> {
        let _req = tilestore_obs::request_scope(rid);
        let mut scratch = Vec::new();
        let mut masked = Vec::new();
        let mut band = QueryStats::default();
        // Physical plan: the band's intersecting tiles ordered by their
        // blob's first page, so adjacent placements land next to each
        // other in the batch and coalesce.
        let mut plan = Vec::new();
        for &pos in hits {
            let tile = &meta.tiles[pos as usize];
            let Some(overlap) = tile.domain.intersection(&band_dom) else {
                continue;
            };
            let placement = blobs.blob_placement(tile.blob)?;
            plan.push((tile, overlap, placement));
        }
        plan.sort_by_key(|&(_, _, p)| p.first_page.0);
        let mut i = 0;
        while i < plan.len() {
            // Greedy batch under the readahead cap (always ≥ 1 tile).
            let mut j = i;
            let mut pages = 0u64;
            while j < plan.len() && (j == i || pages + plan[j].2.pages <= batch_pages) {
                pages += plan[j].2.pages;
                j += 1;
            }
            let ids: Vec<tilestore_storage::BlobId> =
                plan[i..j].iter().map(|(t, _, _)| t.blob).collect();
            let ranges = blobs.read_batch(&ids, &mut scratch)?;
            for ((tile, overlap, _), &(off, len)) in plan[i..j].iter().zip(&ranges) {
                let payload = tilestore_compress::decompress_view(&scratch[off..off + len], &ctx)
                    .map_err(|e| {
                    EngineError::Catalog(format!("tile decompression failed: {e}"))
                })?;
                let src: &[u8] = match predicate {
                    // Masked select: failing cells become the default
                    // before the band copy. The view may alias the shared
                    // scratch, so the rewrite goes through an owned buffer.
                    Some(p) => {
                        masked.clear();
                        masked.extend_from_slice(&payload);
                        p.mask_payload(&meta.mdd_type.cell, &mut masked)?;
                        &masked
                    }
                    None => &payload,
                };
                band.cells_copied +=
                    copy_region(&tile.domain, src, &band_dom, band_out, overlap, cell_size)?;
            }
            i = j;
        }
        Ok(band)
    });
    let mut merged = QueryStats::default();
    for band in bands {
        merged.merge(&band?);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ids: &[u64]) -> Vec<BlobId> {
        ids.iter().map(|&i| BlobId(i)).collect()
    }

    #[test]
    fn retire_with_no_live_snapshots_is_immediate() {
        let t = EpochTracker::default();
        assert_eq!(t.retire(1, b(&[10, 11])), b(&[10, 11]));
        assert!(t.pending_blobs().is_empty());
    }

    #[test]
    fn retire_defers_until_the_predating_snapshot_drops() {
        let t = EpochTracker::default();
        t.acquire(0); // a snapshot at epoch 0
                      // A swap to epoch 1 retires blobs the epoch-0 snapshot still reads.
        assert_eq!(t.retire(1, b(&[7])), Vec::new());
        assert_eq!(
            t.pending_blobs(),
            [7u64].into_iter().collect::<BTreeSet<u64>>()
        );
        // A snapshot at the *new* epoch does not keep them alive.
        t.acquire(1);
        assert_eq!(t.release(1), Vec::new());
        // The old snapshot dropping releases the retired set.
        assert_eq!(t.release(0), b(&[7]));
        assert!(t.pending_blobs().is_empty());
    }

    #[test]
    fn refcounts_nest_per_epoch() {
        let t = EpochTracker::default();
        t.acquire(3);
        t.acquire(3);
        assert_eq!(t.retire(4, b(&[1])), Vec::new());
        assert_eq!(t.release(3), Vec::new(), "one of two refs still live");
        assert_eq!(t.release(3), b(&[1]));
        assert_eq!(t.live_snapshots(), 0);
    }

    #[test]
    fn interleaved_retirements_release_in_epoch_order() {
        let t = EpochTracker::default();
        t.acquire(0);
        assert_eq!(t.retire(1, b(&[1])), Vec::new());
        t.acquire(1);
        assert_eq!(t.retire(2, b(&[2])), Vec::new());
        // Dropping the epoch-0 snapshot frees only the epoch-1 set: the
        // epoch-1 snapshot still reads blobs retired by the swap to 2.
        assert_eq!(t.release(0), b(&[1]));
        assert_eq!(t.pending_blobs().len(), 1);
        assert_eq!(t.release(1), b(&[2]));
    }

    #[test]
    fn write_receipt_derefs_to_stats() {
        use crate::stats::InsertStats;
        let receipt = WriteReceipt {
            stats: InsertStats {
                tiles_created: 4,
                ..InsertStats::default()
            },
            epoch: 9,
        };
        assert_eq!(receipt.tiles_created, 4, "Deref exposes stats fields");
        assert_eq!(receipt.epoch, 9);
        assert_eq!(receipt.stats.tiles_created, 4);
    }

    #[test]
    fn lock_recover_counts_poisoning() {
        use std::sync::{Arc, Mutex};
        let m = Arc::new(Mutex::new(0u32));
        let poisoner = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = poisoner.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(m.is_poisoned());
        let before = tilestore_obs::hot().lock_poisoned.get();
        *lock_recover(&m) += 1;
        assert_eq!(*lock_recover(&m), 1, "recovered guard stays usable");
        assert!(
            tilestore_obs::hot().lock_poisoned.get() >= before + 2,
            "every poisoned acquisition bumps engine.lock_poisoned"
        );
    }
}
