//! Induced operations: cell-wise arithmetic and comparison on arrays.
//!
//! RasDaMan's query language applies scalar operations "induced" over every
//! cell of an MDD. The engine provides the typed kernels; the query layer
//! composes them with trims and condensers (e.g. `count_cells(img > 100)`).
//!
//! Arithmetic keeps the operand's cell type (values are computed in `f64`
//! and clamped back into the type's range); comparisons produce a `u8`
//! boolean array (1 = true) whose default is 0.

use crate::array::Array;
use crate::celltype::CellType;
use crate::error::{EngineError, Result};

/// The induced binary operations (array ⊕ scalar).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (division by zero yields the type's clamped infinity)
    Div,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl BinOp {
    /// Whether the operation produces a boolean array.
    #[must_use]
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Gt | BinOp::Ge | BinOp::Lt | BinOp::Le | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Decodes one cell to `f64` (numeric cell types only).
pub(crate) fn decode_cell(cell: &CellType, bytes: &[u8]) -> Result<f64> {
    crate::aggregate::decode_numeric(cell, bytes)
}

/// Encodes an `f64` back into the cell type, clamping to the type's range.
fn encode_cell(cell: &CellType, value: f64, out: &mut [u8]) -> Result<()> {
    macro_rules! clamp_int {
        ($t:ty) => {{
            let v = value.clamp(<$t>::MIN as f64, <$t>::MAX as f64) as $t;
            out.copy_from_slice(&v.to_le_bytes());
        }};
    }
    match cell.name.as_str() {
        "u8" => clamp_int!(u8),
        "i8" => clamp_int!(i8),
        "u16" => clamp_int!(u16),
        "i16" => clamp_int!(i16),
        "u32" => clamp_int!(u32),
        "i32" => clamp_int!(i32),
        "u64" => clamp_int!(u64),
        "i64" => clamp_int!(i64),
        "f32" => out.copy_from_slice(&(value as f32).to_le_bytes()),
        "f64" => out.copy_from_slice(&value.to_le_bytes()),
        other => {
            return Err(EngineError::BadAccessRegion(format!(
                "cell type {other:?} does not support induced arithmetic"
            )))
        }
    }
    Ok(())
}

/// Applies `array ⊕ scalar` cell-wise. Returns the result array and its
/// cell type (the operand's type for arithmetic, boolean `u8` for
/// comparisons).
///
/// # Errors
/// [`EngineError::BadAccessRegion`] for non-numeric cell types;
/// [`EngineError::CellSizeMismatch`] when `cell` does not match the array.
pub fn induce_scalar(
    cell: &CellType,
    array: &Array,
    op: BinOp,
    scalar: f64,
) -> Result<(Array, CellType)> {
    if cell.size != array.cell_size() {
        return Err(EngineError::CellSizeMismatch {
            expected: cell.size,
            got: array.cell_size(),
        });
    }
    let cells = array.domain().cells() as usize;
    if op.is_comparison() {
        let mut data = vec![0u8; cells];
        for (i, chunk) in array.bytes().chunks_exact(cell.size).enumerate() {
            let v = decode_cell(cell, chunk)?;
            let truth = match op {
                BinOp::Gt => v > scalar,
                BinOp::Ge => v >= scalar,
                BinOp::Lt => v < scalar,
                BinOp::Le => v <= scalar,
                BinOp::Eq => v == scalar,
                BinOp::Ne => v != scalar,
                _ => unreachable!("comparison ops only"),
            };
            data[i] = u8::from(truth);
        }
        let out = Array::from_bytes(array.domain().clone(), 1, data)?;
        Ok((out, CellType::of::<u8>()))
    } else {
        let mut data = vec![0u8; cells * cell.size];
        for (chunk_in, chunk_out) in array
            .bytes()
            .chunks_exact(cell.size)
            .zip(data.chunks_exact_mut(cell.size))
        {
            let v = decode_cell(cell, chunk_in)?;
            let r = match op {
                BinOp::Add => v + scalar,
                BinOp::Sub => v - scalar,
                BinOp::Mul => v * scalar,
                BinOp::Div => v / scalar,
                _ => unreachable!("arithmetic ops only"),
            };
            encode_cell(cell, r, chunk_out)?;
        }
        let out = Array::from_bytes(array.domain().clone(), cell.size, data)?;
        Ok((out, cell.clone()))
    }
}

/// Applies a unary function cell-wise over numeric arrays (used by tests
/// and available to embedding applications).
///
/// # Errors
/// Same as [`induce_scalar`].
pub fn induce_map<F: FnMut(f64) -> f64>(cell: &CellType, array: &Array, mut f: F) -> Result<Array> {
    if cell.size != array.cell_size() {
        return Err(EngineError::CellSizeMismatch {
            expected: cell.size,
            got: array.cell_size(),
        });
    }
    let mut data = vec![0u8; array.bytes().len()];
    for (chunk_in, chunk_out) in array
        .bytes()
        .chunks_exact(cell.size)
        .zip(data.chunks_exact_mut(cell.size))
    {
        let v = decode_cell(cell, chunk_in)?;
        encode_cell(cell, f(v), chunk_out)?;
    }
    Array::from_bytes(array.domain().clone(), cell.size, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilestore_geometry::{Domain, Point};

    fn d(s: &str) -> Domain {
        s.parse().unwrap()
    }

    #[test]
    fn arithmetic_keeps_type_and_clamps() {
        let cell = CellType::of::<u8>();
        let a = Array::from_cells(d("[0:3]"), &[10u8, 100, 200, 250]).unwrap();
        let (plus, t) = induce_scalar(&cell, &a, BinOp::Add, 50.0).unwrap();
        assert_eq!(t.name, "u8");
        assert_eq!(plus.to_cells::<u8>().unwrap(), vec![60, 150, 250, 255]); // clamped
        let (minus, _) = induce_scalar(&cell, &a, BinOp::Sub, 50.0).unwrap();
        assert_eq!(minus.to_cells::<u8>().unwrap(), vec![0, 50, 150, 200]);
        let (double, _) = induce_scalar(&cell, &a, BinOp::Mul, 2.0).unwrap();
        assert_eq!(double.to_cells::<u8>().unwrap(), vec![20, 200, 255, 255]);
        let (half, _) = induce_scalar(&cell, &a, BinOp::Div, 2.0).unwrap();
        assert_eq!(half.to_cells::<u8>().unwrap(), vec![5, 50, 100, 125]);
    }

    #[test]
    fn comparisons_produce_boolean_arrays() {
        let cell = CellType::of::<i32>();
        let a = Array::from_cells(d("[0:4]"), &[-5i32, 0, 5, 10, 15]).unwrap();
        let (gt, t) = induce_scalar(&cell, &a, BinOp::Gt, 5.0).unwrap();
        assert_eq!(t.size, 1);
        assert_eq!(gt.to_cells::<u8>().unwrap(), vec![0, 0, 0, 1, 1]);
        let (eq, _) = induce_scalar(&cell, &a, BinOp::Eq, 0.0).unwrap();
        assert_eq!(eq.to_cells::<u8>().unwrap(), vec![0, 1, 0, 0, 0]);
        let (ne, _) = induce_scalar(&cell, &a, BinOp::Ne, 0.0).unwrap();
        assert_eq!(ne.to_cells::<u8>().unwrap(), vec![1, 0, 1, 1, 1]);
        let (le, _) = induce_scalar(&cell, &a, BinOp::Le, 0.0).unwrap();
        assert_eq!(le.to_cells::<u8>().unwrap(), vec![1, 1, 0, 0, 0]);
    }

    #[test]
    fn float_arithmetic_is_exact() {
        let cell = CellType::of::<f64>();
        let a = Array::from_cells(d("[0:2]"), &[1.5f64, -2.25, 0.0]).unwrap();
        let (r, _) = induce_scalar(&cell, &a, BinOp::Mul, 4.0).unwrap();
        assert_eq!(r.to_cells::<f64>().unwrap(), vec![6.0, -9.0, 0.0]);
    }

    #[test]
    fn rgb_rejected() {
        let cell = CellType::of::<crate::celltype::Rgb>();
        let a = Array::filled(d("[0:1]"), &[1, 2, 3]).unwrap();
        assert!(induce_scalar(&cell, &a, BinOp::Add, 1.0).is_err());
        assert!(induce_scalar(&cell, &a, BinOp::Gt, 1.0).is_err());
    }

    #[test]
    fn induce_map_applies_function() {
        let cell = CellType::of::<u16>();
        let a = Array::from_cells(d("[0:2]"), &[1u16, 2, 3]).unwrap();
        let sq = induce_map(&cell, &a, |v| v * v).unwrap();
        assert_eq!(sq.to_cells::<u16>().unwrap(), vec![1, 4, 9]);
    }

    #[test]
    fn preserves_domain() {
        let cell = CellType::of::<u32>();
        let a = Array::from_fn(d("[3:5,7:9]"), |p| (p[0] + p[1]) as u32).unwrap();
        let (r, _) = induce_scalar(&cell, &a, BinOp::Add, 1.0).unwrap();
        assert_eq!(r.domain(), &d("[3:5,7:9]"));
        assert_eq!(
            r.get::<u32>(&Point::from_slice(&[4, 8])).unwrap(),
            4 + 8 + 1
        );
    }
}
