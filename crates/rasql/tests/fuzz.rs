//! Robustness properties: the parser/executor must never panic, and
//! well-formed queries must round-trip through their textual form.

use tilestore_engine::{Array, CellType, Database, MddType};
use tilestore_geometry::{DefDomain, Domain};
use tilestore_rasql::{execute, parse};
use tilestore_testkit::prop::{check, Source};
use tilestore_testkit::prop_assert_eq;
use tilestore_tiling::{AlignedTiling, Scheme};

fn tiny_db() -> Database<tilestore_storage::MemPageStore> {
    let db = Database::in_memory().unwrap();
    db.create_object(
        "m",
        MddType::new(CellType::of::<u8>(), DefDomain::unlimited(2).unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 1024)),
    )
    .unwrap();
    let dom: Domain = "[0:15,0:15]".parse().unwrap();
    db.insert("m", &Array::from_fn(dom, |p| (p[0] + p[1]) as u8).unwrap())
        .unwrap();
    db
}

/// Arbitrary printable-ish characters, biased toward ASCII with a sprinkle
/// of multi-byte code points (the old `\PC{0,60}` regex strategy).
fn char_soup(s: &mut Source) -> String {
    let n = s.usize_in(0, 60);
    (0..n)
        .map(|_| match s.weighted(&[8, 2, 1]) {
            0 => char::from(s.u8() & 0x7F).to_string(),
            1 => {
                // Latin-1 supplement and friends.
                char::from_u32(0xA0 + u32::from(s.u8()))
                    .unwrap_or('¤')
                    .to_string()
            }
            _ => {
                // Arbitrary scalar values, skipping surrogates.
                let v = s.u64_in(0, 0x10_FFFF) as u32;
                char::from_u32(v).unwrap_or('\u{FFFD}').to_string()
            }
        })
        .collect()
}

/// Arbitrary input must never panic the parser.
#[test]
fn parser_never_panics() {
    check("parser_never_panics", 256, char_soup, |input| {
        let _ = parse(input);
        Ok(())
    });
}

/// Arbitrary token soup built from the language's alphabet must never
/// panic the parser or the executor.
#[test]
fn token_soup_never_panics() {
    check(
        "token_soup_never_panics",
        256,
        |s| {
            s.vec_of(0, 11, |s| match s.usize_in(0, 11) {
                0 => "SELECT".to_string(),
                1 => "FROM".to_string(),
                2 => "m".to_string(),
                3 => "sum_cells".to_string(),
                4 => "[".to_string(),
                5 => "]".to_string(),
                6 => "(".to_string(),
                7 => ")".to_string(),
                8 => ":".to_string(),
                9 => ",".to_string(),
                10 => "*".to_string(),
                _ => s.i64_in(-20, 19).to_string(),
            })
        },
        |pieces| {
            let query = pieces.join(" ");
            let db = tiny_db();
            let _ = execute(&db.begin_read(), &query);
            Ok(())
        },
    );
}

/// Well-formed trims execute and produce the requested domain.
#[test]
fn generated_trims_execute() {
    check(
        "generated_trims_execute",
        128,
        |s| {
            (
                s.i64_in(0, 7),
                s.i64_in(0, 7),
                s.i64_in(0, 7),
                s.i64_in(0, 7),
            )
        },
        |(a_lo, a_ext, b_lo, b_ext)| {
            let db = tiny_db();
            let snap = db.begin_read();
            let q = format!(
                "SELECT m[{}:{},{}:{}] FROM m",
                a_lo,
                a_lo + a_ext,
                b_lo,
                b_lo + b_ext
            );
            let (value, _) = execute(&snap, &q).unwrap();
            let arr = value.as_array().unwrap();
            prop_assert_eq!(arr.domain().lo(0), *a_lo);
            prop_assert_eq!(arr.domain().hi(1), b_lo + b_ext);
            Ok(())
        },
    );
}
