//! Robustness properties: the parser/executor must never panic, and
//! well-formed queries must round-trip through their textual form.

use proptest::prelude::*;
use tilestore_engine::{Array, CellType, Database, MddType};
use tilestore_geometry::{DefDomain, Domain};
use tilestore_rasql::{execute, parse};
use tilestore_tiling::{AlignedTiling, Scheme};

fn tiny_db() -> Database<tilestore_storage::MemPageStore> {
    let mut db = Database::in_memory().unwrap();
    db.create_object(
        "m",
        MddType::new(CellType::of::<u8>(), DefDomain::unlimited(2).unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 1024)),
    )
    .unwrap();
    let dom: Domain = "[0:15,0:15]".parse().unwrap();
    db.insert("m", &Array::from_fn(dom, |p| (p[0] + p[1]) as u8).unwrap())
        .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary input must never panic the parser.
    #[test]
    fn parser_never_panics(input in "\\PC{0,60}") {
        let _ = parse(&input);
    }

    /// Arbitrary token soup built from the language's alphabet must never
    /// panic the parser or the executor.
    #[test]
    fn token_soup_never_panics(
        pieces in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()),
                Just("FROM".to_string()),
                Just("m".to_string()),
                Just("sum_cells".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(":".to_string()),
                Just(",".to_string()),
                Just("*".to_string()),
                (-20i64..20).prop_map(|v| v.to_string()),
            ],
            0..12,
        ),
    ) {
        let query = pieces.join(" ");
        let db = tiny_db();
        let _ = execute(&db, &query);
    }

    /// Well-formed trims execute and produce the requested domain.
    #[test]
    fn generated_trims_execute(
        a_lo in 0i64..8, a_ext in 0i64..8,
        b_lo in 0i64..8, b_ext in 0i64..8,
    ) {
        let db = tiny_db();
        let q = format!(
            "SELECT m[{}:{},{}:{}] FROM m",
            a_lo, a_lo + a_ext, b_lo, b_lo + b_ext
        );
        let (value, _) = execute(&db, &q).unwrap();
        let arr = value.as_array().unwrap();
        prop_assert_eq!(arr.domain().lo(0), a_lo);
        prop_assert_eq!(arr.domain().hi(1), b_lo + b_ext);
    }
}
