//! Error type for the query language.

use std::fmt;

use tilestore_engine::EngineError;

/// Errors raised while parsing or executing a query.
#[derive(Debug)]
pub enum QueryError {
    /// Lexical error with position.
    Lex {
        /// Byte offset in the input.
        at: usize,
        /// Description.
        message: String,
    },
    /// Syntax error with position.
    Parse {
        /// Byte offset in the input.
        at: usize,
        /// Description.
        message: String,
    },
    /// A semantic error (unknown function, collection mismatch, bad
    /// subscript arity).
    Semantic(String),
    /// The underlying engine failed.
    Engine(EngineError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { at, message } => write!(f, "lex error at byte {at}: {message}"),
            QueryError::Parse { at, message } => {
                write!(f, "parse error at byte {at}: {message}")
            }
            QueryError::Semantic(s) => write!(f, "semantic error: {s}"),
            QueryError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for QueryError {
    fn from(e: EngineError) -> Self {
        QueryError::Engine(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, QueryError>;
