//! A small RasQL-style query language over tilestore databases.
//!
//! The paper's evaluation drives the storage manager through RasQL, the
//! RasDaMan query language; this crate provides the equivalent declarative
//! surface for the subset the storage layer sees — rectangular trims,
//! sections and condensers:
//!
//! ```text
//! SELECT img[0:99, 0:99]                 FROM img   -- range query  (§5.1 b)
//! SELECT cube[*:*, 27:41, 27:34]         FROM cube  -- partial range (§5.1 c)
//! SELECT video[42, *, *]                 FROM video -- section      (§5.1 d)
//! SELECT avg_cells(cube[0:30, *, 27:34]) FROM cube  -- sub-aggregation
//! ```
//!
//! Induced operations apply scalars cell-wise — `img + 10`, `cube > 100`
//! (comparisons yield boolean `u8` arrays) — and compose with condensers:
//! `count_cells(cube > 100)`.
//!
//! Condensers: `sum_cells`, `avg_cells`, `min_cells`, `max_cells` (numeric
//! cell types), `count_cells`, `some_cells`, `all_cells` (any cell type;
//! "non-default" plays the role RasQL's booleans do). Sections use RasQL
//! semantics: a single coordinate fixes the axis and drops it from the
//! result's dimensionality. `*` bounds resolve against the object's current
//! domain. Queries execute against an engine read snapshot
//! ([`Database::begin_read`](tilestore_engine::Database::begin_read)), so a
//! session of statements observes one consistent catalog epoch; aggregations
//! stream tiles via
//! [`Snapshot::aggregate`](tilestore_engine::Snapshot::aggregate), never
//! materializing the queried region.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod ast;
mod error;
mod exec;
mod parser;
mod token;

pub use ast::{AxisSelect, Condenser, Expr, InducedOp, Predicate, Query, Statement};
pub use error::{QueryError, Result};
pub use exec::{
    execute, execute_query, execute_statement, explain_query, AnalyzeInfo, ExplainReport,
    StatementResult, Value,
};
pub use parser::{parse, parse_statement};
pub use token::{tokenize, Token, TokenKind};
