//! Query execution against an engine read [`Snapshot`].

use tilestore_engine::{
    aggregate_array, induce_scalar, AggKind, AggValue, Array, BinOp, CellPredicate, CellType,
    ExplainPlan, PredOp, QueryStats, Snapshot,
};
use tilestore_geometry::{AxisRange, Domain};
use tilestore_storage::PageStore;
use tilestore_testkit::{Json, ToJson};

use crate::ast::{AxisSelect, Condenser, Expr, InducedOp, Predicate, Query, Statement};
use crate::error::{QueryError, Result};
use crate::parser::{parse, parse_statement};

/// The result value of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An array result (range / section query).
    Array(Array),
    /// A numeric scalar (sum/avg/min/max).
    Number(f64),
    /// A count (count_cells).
    Count(u64),
    /// A boolean (some_cells / all_cells).
    Bool(bool),
}

impl Value {
    /// The array, if this is [`Value::Array`].
    #[must_use]
    pub fn as_array(&self) -> Option<&Array> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The number, if this is [`Value::Number`].
    #[must_use]
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(v) => Some(*v),
            _ => None,
        }
    }
}

/// Measured execution attached to an `EXPLAIN ANALYZE` report.
#[derive(Debug, Clone)]
pub struct AnalyzeInfo {
    /// The executor's counters for the analyzed run.
    pub stats: QueryStats,
    /// Wall-clock time of the whole statement (parse excluded) in
    /// nanoseconds — a superset of `stats.elapsed_ns`, which only covers
    /// the engine-side fetch.
    pub elapsed_ns: u64,
}

impl ToJson for AnalyzeInfo {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("stats", self.stats.to_json()),
            ("elapsed_ns", self.elapsed_ns.to_json()),
            ("cache_hits", self.stats.io.cache_hits.to_json()),
            ("cache_misses", self.stats.io.cache_misses.to_json()),
        ])
    }
}

/// The result of an `EXPLAIN [ANALYZE]` statement: the planner's per-tile
/// report, plus measured execution when `ANALYZE` was requested.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// The planner's per-tile decisions.
    pub plan: ExplainPlan,
    /// Measured execution; `None` for plain `EXPLAIN`.
    pub analyze: Option<AnalyzeInfo>,
}

impl ToJson for ExplainReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![("plan", self.plan.to_json())];
        if let Some(a) = &self.analyze {
            fields.push(("analyze", a.to_json()));
        }
        Json::obj(fields)
    }
}

/// The result of executing a top-level [`Statement`].
#[derive(Debug, Clone)]
pub enum StatementResult {
    /// A plain query's value and counters.
    Value(Value, QueryStats),
    /// An `EXPLAIN [ANALYZE]` report.
    Explain(ExplainReport),
}

/// Resolved form of an access: the concrete region plus the axes a section
/// fixes.
struct ResolvedAccess {
    collection: String,
    region: Domain,
    fixed_axes: Vec<usize>,
}

/// Parses and executes a query against a read snapshot.
///
/// The caller owns the snapshot (see
/// [`Database::begin_read`](tilestore_engine::Database::begin_read)), so one
/// session can run several statements against a single consistent epoch and
/// stamp results with [`Snapshot::epoch`].
///
/// ```
/// use tilestore_engine::{Array, CellType, Database, MddType};
/// use tilestore_geometry::DefDomain;
/// use tilestore_tiling::Scheme;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = Database::in_memory()?;
/// db.create_object(
///     "m",
///     MddType::new(CellType::of::<u32>(), DefDomain::unlimited(2)?),
///     Scheme::default_for(2),
/// )?;
/// db.insert("m", &Array::from_fn("[0:9,0:9]".parse()?, |p| p[0] as u32)?)?;
///
/// let snap = db.begin_read();
/// let (value, _) = tilestore_rasql::execute(&snap, "SELECT sum_cells(m) FROM m")?;
/// assert_eq!(value.as_number(), Some(450.0));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// Parse errors, semantic errors (collection mismatch, arity) and engine
/// errors.
pub fn execute<S: PageStore>(snap: &Snapshot<S>, input: &str) -> Result<(Value, QueryStats)> {
    let query = parse(input)?;
    execute_query(snap, &query)
}

/// Executes a pre-parsed query.
///
/// # Errors
/// Semantic and engine errors.
pub fn execute_query<S: PageStore>(
    snap: &Snapshot<S>,
    query: &Query,
) -> Result<(Value, QueryStats)> {
    let predicate = query
        .predicate
        .as_ref()
        .map(|p| resolve_predicate(p, &query.from))
        .transpose()?;
    match &query.expr {
        Expr::Condense { op, arg } => {
            let kind = condenser_kind(*op);
            if let Expr::Access { .. } = arg.as_ref() {
                // Plain access: aggregate tile-streaming, no materialization.
                let access = resolve_access(snap, arg, &query.from)?;
                let (value, stats) = snap.aggregate_where(
                    &access.collection,
                    &access.region,
                    kind,
                    predicate.as_ref(),
                )?;
                return Ok((agg_to_value(value), stats));
            }
            // Induced argument: materialize, then aggregate in memory.
            let (array, cell, stats) = eval_array(snap, arg, &query.from, predicate.as_ref())?;
            let value = aggregate_array(&cell, &array, kind)?;
            Ok((agg_to_value(value), stats))
        }
        other => {
            let (array, _, stats) = eval_array(snap, other, &query.from, predicate.as_ref())?;
            Ok((Value::Array(array), stats))
        }
    }
}

/// Parses and executes a top-level statement: a plain query, or
/// `EXPLAIN [ANALYZE] <query>`.
///
/// EXPLAIN is restricted to statements the tile planner sees whole: a plain
/// access (`SELECT obj[..]`) or a condenser over one
/// (`SELECT sum_cells(obj[..])`), optionally with a `WHERE` predicate.
/// Induced expressions post-process a fetched array and have no per-tile
/// plan, so explaining them is a semantic error.
///
/// # Errors
/// Parse errors, semantic errors and engine errors.
pub fn execute_statement<S: PageStore>(snap: &Snapshot<S>, input: &str) -> Result<StatementResult> {
    match parse_statement(input)? {
        Statement::Query(query) => {
            let (value, stats) = execute_query(snap, &query)?;
            Ok(StatementResult::Value(value, stats))
        }
        Statement::Explain { query, analyze } => {
            let plan = explain_query(snap, &query)?;
            let analyze = if analyze {
                let started = std::time::Instant::now();
                let (_, stats) = execute_query(snap, &query)?;
                Some(AnalyzeInfo {
                    stats,
                    elapsed_ns: started.elapsed().as_nanos() as u64,
                })
            } else {
                None
            };
            Ok(StatementResult::Explain(ExplainReport { plan, analyze }))
        }
    }
}

/// Builds the planner report for a pre-parsed query without executing it.
///
/// # Errors
/// Semantic errors (including unsupported EXPLAIN shapes) and engine errors.
pub fn explain_query<S: PageStore>(snap: &Snapshot<S>, query: &Query) -> Result<ExplainPlan> {
    let predicate = query
        .predicate
        .as_ref()
        .map(|p| resolve_predicate(p, &query.from))
        .transpose()?;
    match &query.expr {
        Expr::Access { .. } => {
            let access = resolve_access(snap, &query.expr, &query.from)?;
            Ok(snap.explain_range(&access.collection, &access.region, predicate.as_ref())?)
        }
        Expr::Condense { op, arg } if matches!(arg.as_ref(), Expr::Access { .. }) => {
            let access = resolve_access(snap, arg, &query.from)?;
            Ok(snap.explain_aggregate(
                &access.collection,
                &access.region,
                condenser_kind(*op),
                predicate.as_ref(),
            )?)
        }
        _ => Err(QueryError::Semantic(
            "EXPLAIN supports a plain access or a condenser over one; induced \
             expressions are post-processing and have no tile plan"
                .to_string(),
        )),
    }
}

/// Checks a parsed `WHERE` clause against the `FROM` collection and lowers
/// it to the engine's [`CellPredicate`].
fn resolve_predicate(p: &Predicate, from: &str) -> Result<CellPredicate> {
    if p.collection != from {
        return Err(QueryError::Semantic(format!(
            "WHERE references {:?} but FROM names {from:?}",
            p.collection
        )));
    }
    let op = match p.op {
        InducedOp::Gt => PredOp::Gt,
        InducedOp::Ge => PredOp::Ge,
        InducedOp::Lt => PredOp::Lt,
        InducedOp::Le => PredOp::Le,
        InducedOp::Eq => PredOp::Eq,
        InducedOp::Ne => PredOp::Ne,
        other => {
            return Err(QueryError::Semantic(format!(
                "WHERE requires a comparison operator, found {other:?}"
            )))
        }
    };
    Ok(CellPredicate {
        op,
        literal: p.literal,
    })
}

fn condenser_kind(op: Condenser) -> AggKind {
    match op {
        Condenser::Sum => AggKind::Sum,
        Condenser::Avg => AggKind::Avg,
        Condenser::Min => AggKind::Min,
        Condenser::Max => AggKind::Max,
        Condenser::Count => AggKind::CountNonDefault,
        Condenser::Some => AggKind::SomeNonDefault,
        Condenser::All => AggKind::AllNonDefault,
    }
}

fn agg_to_value(value: AggValue) -> Value {
    match value {
        AggValue::Number(v) => Value::Number(v),
        AggValue::Count(v) => Value::Count(v),
        AggValue::Bool(v) => Value::Bool(v),
    }
}

fn induced_binop(op: InducedOp) -> BinOp {
    match op {
        InducedOp::Add => BinOp::Add,
        InducedOp::Sub => BinOp::Sub,
        InducedOp::Mul => BinOp::Mul,
        InducedOp::Div => BinOp::Div,
        InducedOp::Gt => BinOp::Gt,
        InducedOp::Ge => BinOp::Ge,
        InducedOp::Lt => BinOp::Lt,
        InducedOp::Le => BinOp::Le,
        InducedOp::Eq => BinOp::Eq,
        InducedOp::Ne => BinOp::Ne,
    }
}

/// Evaluates an array-valued expression, returning the array, its cell
/// type, and the accumulated execution counters.
fn eval_array<S: PageStore>(
    snap: &Snapshot<S>,
    expr: &Expr,
    from: &str,
    predicate: Option<&CellPredicate>,
) -> Result<(Array, CellType, QueryStats)> {
    match expr {
        Expr::Access { .. } => {
            let access = resolve_access(snap, expr, from)?;
            let cell = snap.object(&access.collection)?.mdd_type.cell.clone();
            let q = snap.range_query_where(&access.collection, &access.region, predicate)?;
            let (array, stats) = (q.array, q.stats);
            if access.fixed_axes.is_empty() {
                return Ok((array, cell, stats));
            }
            let section_domain = access
                .region
                .project_out(&access.fixed_axes)
                .map_err(tilestore_engine::EngineError::from)?;
            let reshaped = array.reshaped(section_domain).map_err(QueryError::Engine)?;
            Ok((reshaped, cell, stats))
        }
        Expr::Induce { lhs, op, rhs } => {
            let (array, cell, stats) = eval_array(snap, lhs, from, predicate)?;
            let (result, result_cell) = induce_scalar(&cell, &array, induced_binop(*op), *rhs)?;
            Ok((result, result_cell, stats))
        }
        Expr::Condense { .. } => Err(QueryError::Semantic(
            "condensers produce scalars and cannot be used as array operands".to_string(),
        )),
    }
}

fn resolve_access<S: PageStore>(
    snap: &Snapshot<S>,
    expr: &Expr,
    from: &str,
) -> Result<ResolvedAccess> {
    let Expr::Access {
        collection,
        subscript,
    } = expr
    else {
        return Err(QueryError::Semantic(
            "condensers take an array access as argument, not another condenser".to_string(),
        ));
    };
    if collection != from {
        return Err(QueryError::Semantic(format!(
            "expression references {collection:?} but FROM names {from:?}"
        )));
    }
    let meta = snap.object(collection)?;
    let current = meta.current_domain.clone().ok_or_else(|| {
        QueryError::Engine(tilestore_engine::EngineError::EmptyObject(
            collection.clone(),
        ))
    })?;
    let Some(axes) = subscript else {
        return Ok(ResolvedAccess {
            collection: collection.clone(),
            region: current,
            fixed_axes: Vec::new(),
        });
    };
    if axes.len() != current.dim() {
        return Err(QueryError::Semantic(format!(
            "subscript has {} axes, object {collection:?} has {}",
            axes.len(),
            current.dim()
        )));
    }
    let mut region = current.clone();
    let mut fixed_axes = Vec::new();
    for (axis, sel) in axes.iter().enumerate() {
        match sel {
            AxisSelect::All => {}
            AxisSelect::Point(c) => {
                let r = AxisRange::new(*c, *c).expect("degenerate range");
                region = region
                    .with_axis(axis, r)
                    .map_err(tilestore_engine::EngineError::from)?;
                fixed_axes.push(axis);
            }
            AxisSelect::Range { lo, hi } => {
                let lo = lo.unwrap_or_else(|| current.lo(axis));
                let hi = hi.unwrap_or_else(|| current.hi(axis));
                let r = AxisRange::new(lo, hi)
                    .map_err(|e| QueryError::Semantic(format!("axis {axis}: empty range: {e}")))?;
                region = region
                    .with_axis(axis, r)
                    .map_err(tilestore_engine::EngineError::from)?;
            }
        }
    }
    if fixed_axes.len() == axes.len() {
        return Err(QueryError::Semantic(
            "section fixes every axis; at least one axis must remain".to_string(),
        ));
    }
    Ok(ResolvedAccess {
        collection: collection.clone(),
        region,
        fixed_axes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilestore_engine::{CellType, MddType};
    use tilestore_geometry::{DefDomain, Point};
    use tilestore_tiling::{AlignedTiling, Scheme};

    use tilestore_engine::Database;

    fn setup() -> Database<tilestore_storage::MemPageStore> {
        let db = Database::in_memory().unwrap();
        db.create_object(
            "cube",
            MddType::new(CellType::of::<u32>(), DefDomain::unlimited(3).unwrap()),
            Scheme::Aligned(AlignedTiling::regular(3, 2048)),
        )
        .unwrap();
        let dom: Domain = "[0:9,0:9,0:9]".parse().unwrap();
        db.insert(
            "cube",
            &Array::from_fn(dom, |p| (p[0] * 100 + p[1] * 10 + p[2]) as u32).unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn whole_object_select() {
        let db = setup();
        let db = db.begin_read();
        let (v, _) = execute(&db, "SELECT cube FROM cube").unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.domain().to_string(), "[0:9,0:9,0:9]");
    }

    #[test]
    fn trim_select() {
        let db = setup();
        let db = db.begin_read();
        let (v, stats) = execute(&db, "SELECT cube[2:4, 0:9, 5:7] FROM cube").unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.domain().to_string(), "[2:4,0:9,5:7]");
        assert_eq!(arr.get::<u32>(&Point::from_slice(&[3, 4, 6])).unwrap(), 346);
        assert!(stats.tiles_read >= 1);
    }

    #[test]
    fn star_bounds_resolve_to_current_domain() {
        let db = setup();
        let db = db.begin_read();
        let (v, _) = execute(&db, "SELECT cube[*:*, 3:3, 2:*] FROM cube").unwrap();
        assert_eq!(v.as_array().unwrap().domain().to_string(), "[0:9,3:3,2:9]");
    }

    #[test]
    fn section_drops_axes() {
        let db = setup();
        let db = db.begin_read();
        let (v, _) = execute(&db, "SELECT cube[5, *, 2:3] FROM cube").unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.domain().to_string(), "[0:9,2:3]");
        assert_eq!(arr.get::<u32>(&Point::from_slice(&[4, 2])).unwrap(), 542);
    }

    #[test]
    fn condensers() {
        let db = setup();
        let db = db.begin_read();
        let (v, _) = execute(&db, "SELECT sum_cells(cube[0:0,0:0,0:9]) FROM cube").unwrap();
        assert_eq!(v.as_number().unwrap(), 45.0);
        let (v, _) = execute(&db, "SELECT avg_cells(cube[0:0,0:0,0:9]) FROM cube").unwrap();
        assert_eq!(v.as_number().unwrap(), 4.5);
        let (v, _) = execute(&db, "SELECT max_cells(cube) FROM cube").unwrap();
        assert_eq!(v.as_number().unwrap(), 999.0);
        let (v, _) = execute(&db, "SELECT min_cells(cube) FROM cube").unwrap();
        assert_eq!(v.as_number().unwrap(), 0.0);
        let (v, _) = execute(&db, "SELECT count_cells(cube[0:0,0:0,*]) FROM cube").unwrap();
        assert_eq!(v, Value::Count(9)); // cell (0,0,0) == 0 == default
        let (v, _) = execute(&db, "SELECT some_cells(cube) FROM cube").unwrap();
        assert_eq!(v, Value::Bool(true));
        let (v, _) = execute(&db, "SELECT all_cells(cube) FROM cube").unwrap();
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn induced_arithmetic_and_comparison() {
        let db = setup();
        let db = db.begin_read();
        // cube cell at (x,y,z) = 100x + 10y + z.
        let (v, _) = execute(&db, "SELECT cube[0:0,0:0,0:3] + 1000 FROM cube").unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.to_cells::<u32>().unwrap(), vec![1000, 1001, 1002, 1003]);

        let (v, _) = execute(&db, "SELECT cube[0:0,0:0,*] > 4 FROM cube").unwrap();
        let mask = v.as_array().unwrap();
        assert_eq!(mask.cell_size(), 1, "comparisons yield boolean arrays");
        assert_eq!(
            mask.to_cells::<u8>().unwrap(),
            vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1]
        );

        // Condenser over an induced mask: how many cells exceed 500?
        let (v, _) = execute(&db, "SELECT count_cells(cube > 500) FROM cube").unwrap();
        assert_eq!(v, Value::Count(499)); // values 501..=999 occur once each

        // Chained arithmetic, left-associative: (x * 2) - 10.
        let (v, _) = execute(&db, "SELECT cube[0:0,1:1,0:2] * 2 - 10 FROM cube").unwrap();
        assert_eq!(
            v.as_array().unwrap().to_cells::<u32>().unwrap(),
            vec![10, 12, 14]
        );

        // Induced over a section keeps the reduced dimensionality.
        let (v, _) = execute(&db, "SELECT cube[5, *, *] + 0.0 FROM cube").unwrap();
        assert_eq!(v.as_array().unwrap().domain().dim(), 2);

        // sum over comparison mask = count of true cells.
        let (v, _) = execute(&db, "SELECT sum_cells(cube[0:0,0:0,*] >= 5) FROM cube").unwrap();
        assert_eq!(v.as_number().unwrap(), 5.0);
    }

    #[test]
    fn where_clause_masks_selected_cells() {
        let db = setup();
        let snap = db.begin_read();
        // Cell (0,0,z) holds z; failing cells read as the default (0).
        let (v, _) = execute(&snap, "SELECT cube[0:0,0:0,*] FROM cube WHERE cube > 4").unwrap();
        assert_eq!(
            v.as_array().unwrap().to_cells::<u32>().unwrap(),
            vec![0, 0, 0, 0, 0, 5, 6, 7, 8, 9]
        );
        // Induced ops apply after masking.
        let (v, _) = execute(
            &snap,
            "SELECT cube[0:0,0:0,0:3] + 1000 FROM cube WHERE cube >= 2",
        )
        .unwrap();
        assert_eq!(
            v.as_array().unwrap().to_cells::<u32>().unwrap(),
            vec![1000, 1000, 1002, 1003]
        );
    }

    #[test]
    fn where_clause_filters_aggregates() {
        let db = setup();
        let snap = db.begin_read();
        let (v, _) = execute(&snap, "SELECT count_cells(cube) FROM cube WHERE cube > 500").unwrap();
        assert_eq!(v, Value::Count(499)); // values 501..=999 occur once each
        let (v, _) = execute(&snap, "SELECT sum_cells(cube) FROM cube WHERE cube >= 998").unwrap();
        assert_eq!(v.as_number().unwrap(), 998.0 + 999.0);
        // Masked-out cells read as the default, so the global max is the
        // largest surviving value.
        let (v, _) = execute(&snap, "SELECT max_cells(cube) FROM cube WHERE cube < 100").unwrap();
        assert_eq!(v.as_number().unwrap(), 99.0);
        let (v, _) = execute(&snap, "SELECT some_cells(cube) FROM cube WHERE cube > 2000").unwrap();
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn where_clause_prunes_tiles() {
        let db = setup();
        let snap = db.begin_read();
        // Only the top band of values survives; tiles whose synopsis proves
        // max < 901 are never fetched.
        let (v, stats) =
            execute(&snap, "SELECT count_cells(cube) FROM cube WHERE cube > 900").unwrap();
        assert_eq!(v, Value::Count(99)); // values 901..=999
        assert!(stats.tiles_pruned > 0, "stats: {stats:?}");
        let (v, stats) = execute(&snap, "SELECT cube FROM cube WHERE cube > 900").unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.get::<u32>(&Point::from_slice(&[9, 5, 5])).unwrap(), 955);
        assert_eq!(arr.get::<u32>(&Point::from_slice(&[1, 5, 5])).unwrap(), 0);
        assert!(stats.tiles_pruned > 0, "stats: {stats:?}");
    }

    #[test]
    fn where_clause_semantic_errors() {
        let db = setup();
        let snap = db.begin_read();
        // WHERE must reference the FROM collection.
        assert!(execute(&snap, "SELECT cube FROM cube WHERE other > 1").is_err());
        assert!(execute(&snap, "SELECT sum_cells(cube) FROM cube WHERE other > 1").is_err());
    }

    #[test]
    fn explain_reports_reconcile_with_execution() {
        let db = setup();
        let snap = db.begin_read();
        let stmt = "SELECT cube FROM cube WHERE cube > 900";
        let StatementResult::Explain(report) =
            execute_statement(&snap, &format!("EXPLAIN {stmt}")).unwrap()
        else {
            panic!("expected explain result");
        };
        assert!(report.analyze.is_none());
        assert!(report.plan.pruned() > 0, "{:?}", report.plan);
        let (_, stats) = execute(&snap, stmt).unwrap();
        assert_eq!(report.plan.fetched(), stats.tiles_read);
        assert_eq!(report.plan.pruned(), stats.tiles_pruned);

        // ANALYZE attaches the measured counters of the same statement.
        let StatementResult::Explain(report) =
            execute_statement(&snap, &format!("EXPLAIN ANALYZE {stmt}")).unwrap()
        else {
            panic!("expected explain result");
        };
        let analyze = report.analyze.expect("analyze info");
        assert_eq!(analyze.stats.tiles_read, report.plan.fetched());
        assert_eq!(analyze.stats.tiles_pruned, report.plan.pruned());

        // Condensers explain through the aggregate planner.
        let StatementResult::Explain(report) =
            execute_statement(&snap, "EXPLAIN SELECT max_cells(cube) FROM cube").unwrap()
        else {
            panic!("expected explain result");
        };
        assert_eq!(report.plan.condenser, Some("max"));
        let (_, stats) = execute(&snap, "SELECT max_cells(cube) FROM cube").unwrap();
        assert_eq!(report.plan.fetched(), stats.tiles_read);
        assert_eq!(report.plan.pruned(), stats.tiles_pruned);

        // A plain statement routes through the value path.
        let StatementResult::Value(v, _) = execute_statement(&snap, stmt).unwrap() else {
            panic!("expected value result");
        };
        assert!(v.as_array().is_some());
    }

    #[test]
    fn explain_report_serializes_to_json() {
        let db = setup();
        let snap = db.begin_read();
        let StatementResult::Explain(report) = execute_statement(
            &snap,
            "EXPLAIN ANALYZE SELECT count_cells(cube) FROM cube WHERE cube > 900",
        )
        .unwrap() else {
            panic!("expected explain result");
        };
        let json = report.to_json().to_string_compact();
        for key in ["\"plan\"", "\"analyze\"", "\"stats\"", "\"cache_hits\""] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        assert!(tilestore_testkit::Json::parse(&json).is_ok());
    }

    #[test]
    fn explain_rejects_unplannable_shapes() {
        let db = setup();
        let snap = db.begin_read();
        for bad in [
            // Induced expressions have no tile plan.
            "EXPLAIN SELECT cube + 1 FROM cube",
            "EXPLAIN SELECT count_cells(cube > 100) FROM cube",
            // Validation errors still surface through EXPLAIN.
            "EXPLAIN SELECT nope FROM nope",
            "EXPLAIN SELECT cube FROM cube WHERE other > 1",
        ] {
            assert!(execute_statement(&snap, bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn semantic_errors() {
        let db = setup();
        let db = db.begin_read();
        for bad in [
            "SELECT other FROM cube",
            "SELECT cube[0:1] FROM cube",
            "SELECT cube[1,2,3] FROM cube",
            "SELECT sum_cells(sum_cells(cube)) FROM cube",
            "SELECT cube[5:1,*,*] FROM cube",
            "SELECT cube + sum_cells(cube) FROM cube",
            "SELECT sum_cells(cube) + 1 FROM cube",
        ] {
            assert!(execute(&db, bad).is_err(), "{bad:?} should fail");
        }
        assert!(execute(&db, "SELECT nope FROM nope").is_err());
    }
}
