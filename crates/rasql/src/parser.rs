//! Recursive-descent parser for the query language.
//!
//! ```text
//! statement := EXPLAIN ANALYZE? query | query
//! query     := SELECT expr FROM ident (WHERE ident cmpop scalar)?
//! expr      := operand (binop scalar)*   -- induced ops, left-associative
//! operand   := ident '(' expr ')'        -- condensers (sum_cells, …)
//!            | ident subscript?
//! binop     := '+' | '-' | '*' | '/' | cmpop
//! cmpop     := '>' | '>=' | '<' | '<=' | '=' | '!='
//! scalar    := ['-'] (INT | FLOAT)
//! subscript := '[' axis (',' axis)* ']'
//! axis      := bound ':' bound | signed_int | '*'
//! bound     := signed_int | '*'
//! ```

use crate::ast::{AxisSelect, Condenser, Expr, InducedOp, Predicate, Query, Statement};
use crate::error::{QueryError, Result};
use crate::token::{tokenize, Token, TokenKind};

/// Parses a query string.
///
/// # Errors
/// [`QueryError::Lex`] / [`QueryError::Parse`] / [`QueryError::Semantic`].
pub fn parse(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let query = p.query()?;
    p.expect_end()?;
    Ok(query)
}

/// Parses a top-level statement: a query, or `EXPLAIN [ANALYZE] <query>`.
///
/// # Errors
/// [`QueryError::Lex`] / [`QueryError::Parse`] / [`QueryError::Semantic`].
pub fn parse_statement(input: &str) -> Result<Statement> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let statement = p.statement()?;
    p.expect_end()?;
    Ok(statement)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn at(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.input_len, |t| t.at)
    }

    fn advance(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t.map(|t| t.kind)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(QueryError::Parse {
            at: self.at(),
            message: message.into(),
        })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.err("trailing input after query")
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.advance() {
            Some(TokenKind::Ident(name)) => Ok(name),
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected {what}, found {other:?}"))
            }
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.peek() == Some(&TokenKind::Explain) {
            self.pos += 1;
            let analyze = if self.peek() == Some(&TokenKind::Analyze) {
                self.pos += 1;
                true
            } else {
                false
            };
            return Ok(Statement::Explain {
                query: self.query()?,
                analyze,
            });
        }
        Ok(Statement::Query(self.query()?))
    }

    fn query(&mut self) -> Result<Query> {
        self.expect(&TokenKind::Select, "SELECT")?;
        let expr = self.expr()?;
        self.expect(&TokenKind::From, "FROM")?;
        let from = self.ident("collection name")?;
        let predicate = if self.peek() == Some(&TokenKind::Where) {
            self.pos += 1;
            Some(self.predicate()?)
        } else {
            None
        };
        Ok(Query {
            expr,
            from,
            predicate,
        })
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let collection = self.ident("collection name after WHERE")?;
        let op = match self.peek().and_then(induced_op) {
            Some(
                op @ (InducedOp::Gt
                | InducedOp::Ge
                | InducedOp::Lt
                | InducedOp::Le
                | InducedOp::Eq
                | InducedOp::Ne),
            ) => {
                self.pos += 1;
                op
            }
            _ => {
                return self.err(format!(
                    "expected a comparison (>, >=, <, <=, =, !=) after WHERE, found {:?}",
                    self.peek()
                ))
            }
        };
        let literal = self.scalar()?;
        Ok(Predicate {
            collection,
            op,
            literal,
        })
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.operand()?;
        // Induced operations chain left-associatively.
        while let Some(op) = self.peek().and_then(induced_op) {
            self.pos += 1;
            let rhs = self.scalar()?;
            lhs = Expr::Induce {
                lhs: Box::new(lhs),
                op,
                rhs,
            };
        }
        Ok(lhs)
    }

    fn scalar(&mut self) -> Result<f64> {
        let negative = if self.peek() == Some(&TokenKind::Minus) {
            self.pos += 1;
            true
        } else {
            false
        };
        let value = match self.advance() {
            Some(TokenKind::Int(v)) => v as f64,
            Some(TokenKind::Float(v)) => v,
            other => {
                self.pos = self.pos.saturating_sub(1);
                return self.err(format!("expected a scalar, found {other:?}"));
            }
        };
        Ok(if negative { -value } else { value })
    }

    fn operand(&mut self) -> Result<Expr> {
        let name = self.ident("collection or function name")?;
        if self.peek() == Some(&TokenKind::LParen) {
            let Some(op) = Condenser::from_name(&name) else {
                return Err(QueryError::Semantic(format!(
                    "unknown function {name:?} (expected sum_cells, avg_cells, min_cells, \
                     max_cells, count_cells, some_cells or all_cells)"
                )));
            };
            self.expect(&TokenKind::LParen, "'('")?;
            let arg = self.expr()?;
            self.expect(&TokenKind::RParen, "')'")?;
            return Ok(Expr::Condense {
                op,
                arg: Box::new(arg),
            });
        }
        let subscript = if self.peek() == Some(&TokenKind::LBracket) {
            Some(self.subscript()?)
        } else {
            None
        };
        Ok(Expr::Access {
            collection: name,
            subscript,
        })
    }

    fn subscript(&mut self) -> Result<Vec<AxisSelect>> {
        self.expect(&TokenKind::LBracket, "'['")?;
        let mut axes = vec![self.axis()?];
        while self.peek() == Some(&TokenKind::Comma) {
            self.pos += 1;
            axes.push(self.axis()?);
        }
        self.expect(&TokenKind::RBracket, "']'")?;
        Ok(axes)
    }

    fn axis(&mut self) -> Result<AxisSelect> {
        let lo = self.bound()?;
        if self.peek() == Some(&TokenKind::Colon) {
            self.pos += 1;
            let hi = self.bound()?;
            return Ok(AxisSelect::Range { lo, hi });
        }
        match lo {
            Some(c) => Ok(AxisSelect::Point(c)),
            None => Ok(AxisSelect::All),
        }
    }

    fn bound(&mut self) -> Result<Option<i64>> {
        let negative = if self.peek() == Some(&TokenKind::Minus) {
            self.pos += 1;
            true
        } else {
            false
        };
        match self.advance() {
            Some(TokenKind::Int(v)) => Ok(Some(if negative { -v } else { v })),
            Some(TokenKind::Star) if !negative => Ok(None),
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected integer or '*', found {other:?}"))
            }
        }
    }
}

/// Maps a token to an induced operator, when it is one.
fn induced_op(kind: &TokenKind) -> Option<InducedOp> {
    match kind {
        TokenKind::Plus => Some(InducedOp::Add),
        TokenKind::Minus => Some(InducedOp::Sub),
        TokenKind::Star => Some(InducedOp::Mul),
        TokenKind::Slash => Some(InducedOp::Div),
        TokenKind::Gt => Some(InducedOp::Gt),
        TokenKind::Ge => Some(InducedOp::Ge),
        TokenKind::Lt => Some(InducedOp::Lt),
        TokenKind::Le => Some(InducedOp::Le),
        TokenKind::Eq => Some(InducedOp::Eq),
        TokenKind::Ne => Some(InducedOp::Ne),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_object_query() {
        let q = parse("SELECT img FROM img").unwrap();
        assert_eq!(q.from, "img");
        assert_eq!(
            q.expr,
            Expr::Access {
                collection: "img".into(),
                subscript: None
            }
        );
    }

    #[test]
    fn trim_query_with_stars_and_sections() {
        let q = parse("select cube[0:99, * , 7, 2:*] from cube").unwrap();
        let Expr::Access {
            subscript: Some(axes),
            ..
        } = q.expr
        else {
            panic!("expected access");
        };
        assert_eq!(
            axes,
            vec![
                AxisSelect::Range {
                    lo: Some(0),
                    hi: Some(99)
                },
                AxisSelect::All,
                AxisSelect::Point(7),
                AxisSelect::Range {
                    lo: Some(2),
                    hi: None
                },
            ]
        );
    }

    #[test]
    fn condenser_query() {
        let q = parse("SELECT avg_cells(cube[0:9,0:9]) FROM cube").unwrap();
        let Expr::Condense { op, arg } = q.expr else {
            panic!("expected condense");
        };
        assert_eq!(op, Condenser::Avg);
        assert!(matches!(*arg, Expr::Access { .. }));
    }

    #[test]
    fn negative_bounds() {
        let q = parse("SELECT m[-10:-1] FROM m").unwrap();
        let Expr::Access {
            subscript: Some(axes),
            ..
        } = q.expr
        else {
            panic!("expected access");
        };
        assert_eq!(
            axes,
            vec![AxisSelect::Range {
                lo: Some(-10),
                hi: Some(-1)
            }]
        );
    }

    #[test]
    fn induced_expressions() {
        let q = parse("SELECT img + 10 FROM img").unwrap();
        let Expr::Induce { op, rhs, .. } = q.expr else {
            panic!("expected induce");
        };
        assert_eq!(op, InducedOp::Add);
        assert_eq!(rhs, 10.0);

        let q = parse("SELECT img[0:9,0:9] > 2.5 FROM img").unwrap();
        let Expr::Induce { op, rhs, lhs } = q.expr else {
            panic!("expected induce");
        };
        assert_eq!(op, InducedOp::Gt);
        assert_eq!(rhs, 2.5);
        assert!(matches!(*lhs, Expr::Access { .. }));

        // Chains are left-associative; negative scalars parse.
        let q = parse("SELECT img * 2 - -3 FROM img").unwrap();
        let Expr::Induce { op, rhs, lhs } = q.expr else {
            panic!("expected induce");
        };
        assert_eq!(op, InducedOp::Sub);
        assert_eq!(rhs, -3.0);
        assert!(matches!(
            *lhs,
            Expr::Induce {
                op: InducedOp::Mul,
                ..
            }
        ));

        // Condenser over an induced expression.
        let q = parse("SELECT count_cells(img > 100) FROM img").unwrap();
        let Expr::Condense { arg, .. } = q.expr else {
            panic!("expected condense");
        };
        assert!(matches!(*arg, Expr::Induce { .. }));
    }

    #[test]
    fn where_clause_parses_comparisons() {
        let q = parse("SELECT img FROM img WHERE img > 100").unwrap();
        assert_eq!(
            q.predicate,
            Some(Predicate {
                collection: "img".into(),
                op: InducedOp::Gt,
                literal: 100.0
            })
        );
        // Negative and fractional literals; every comparison op.
        let q = parse("SELECT img FROM img where img <= -2.5").unwrap();
        let p = q.predicate.unwrap();
        assert_eq!(p.op, InducedOp::Le);
        assert_eq!(p.literal, -2.5);
        for (text, op) in [
            (">", InducedOp::Gt),
            (">=", InducedOp::Ge),
            ("<", InducedOp::Lt),
            ("<=", InducedOp::Le),
            ("=", InducedOp::Eq),
            ("!=", InducedOp::Ne),
        ] {
            let q = parse(&format!("SELECT img FROM img WHERE img {text} 7")).unwrap();
            assert_eq!(q.predicate.unwrap().op, op, "{text}");
        }
        // A query without WHERE carries no predicate.
        assert_eq!(parse("SELECT img FROM img").unwrap().predicate, None);
        // Condensers compose with WHERE.
        let q = parse("SELECT sum_cells(img[0:9,0:9]) FROM img WHERE img > 3").unwrap();
        assert!(matches!(q.expr, Expr::Condense { .. }));
        assert!(q.predicate.is_some());
    }

    #[test]
    fn explain_statements_parse() {
        let s = parse_statement("EXPLAIN SELECT img FROM img").unwrap();
        let Statement::Explain { query, analyze } = s else {
            panic!("expected explain");
        };
        assert!(!analyze);
        assert_eq!(query.from, "img");

        let s = parse_statement("explain analyze SELECT img FROM img WHERE img > 1").unwrap();
        let Statement::Explain { query, analyze } = s else {
            panic!("expected explain");
        };
        assert!(analyze);
        assert!(query.predicate.is_some());

        // A plain query parses as Statement::Query.
        let s = parse_statement("SELECT img FROM img").unwrap();
        assert!(matches!(s, Statement::Query(_)));

        // ANALYZE only follows EXPLAIN; EXPLAIN needs a query after it.
        assert!(parse_statement("ANALYZE SELECT img FROM img").is_err());
        assert!(parse_statement("EXPLAIN").is_err());
        assert!(parse_statement("EXPLAIN EXPLAIN SELECT img FROM img").is_err());
        // `parse` (query entry point) rejects EXPLAIN statements.
        assert!(parse("EXPLAIN SELECT img FROM img").is_err());
    }

    #[test]
    fn syntax_errors_are_located() {
        for bad in [
            "img FROM img",
            "SELECT FROM img",
            "SELECT img FROM",
            "SELECT img[ FROM img",
            "SELECT img[1:2 FROM img",
            "SELECT img[] FROM img",
            "SELECT frob(img) FROM img",
            "SELECT img FROM img extra",
            "SELECT img + FROM img",
            "SELECT img > > 1 FROM img",
            "SELECT img FROM img WHERE",
            "SELECT img FROM img WHERE img",
            "SELECT img FROM img WHERE img + 1",
            "SELECT img FROM img WHERE img > ",
            "SELECT img FROM img WHERE > 1",
            "SELECT img FROM img WHERE img > 1 extra",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        // The cluster coordinator rewrites parsed statements and re-serializes
        // them over the wire, so Display output must parse back to an equal
        // AST — including negative bounds, stars, sections, induced chains,
        // fractional/negative scalars, predicates and EXPLAIN variants.
        for text in [
            "SELECT img FROM img",
            "SELECT cube[0:99, *, 7, 2:*] FROM cube",
            "SELECT m[-10:-1] FROM m",
            "SELECT m[*:5, -3:*] FROM m",
            "SELECT img + 10 FROM img",
            "SELECT img[0:9, 0:9] > 2.5 FROM img",
            "SELECT img * 2 - -3 FROM img",
            "SELECT count_cells(img > 100) FROM img",
            "SELECT avg_cells(cube[0:9, 0:9]) FROM cube",
            "SELECT sum_cells(img) FROM img WHERE img > 3",
            "SELECT img FROM img WHERE img <= -2.5",
            "SELECT min_cells(cube[2, *, 0:4]) FROM cube WHERE cube != 0.5",
            "EXPLAIN SELECT img FROM img WHERE img > 1",
            "EXPLAIN ANALYZE SELECT max_cells(cube[0:3, 1:2, *]) FROM cube",
        ] {
            let stmt = parse_statement(text).unwrap();
            let printed = stmt.to_string();
            let reparsed = parse_statement(&printed)
                .unwrap_or_else(|e| panic!("{printed:?} failed to re-parse: {e}"));
            assert_eq!(stmt, reparsed, "round-trip changed {text:?} → {printed:?}");
        }
    }
}
