//! Tokenizer for the query language.

use crate::error::{QueryError, Result};

/// A lexical token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset of the token start in the query text.
    pub at: usize,
    /// The token kind.
    pub kind: TokenKind,
}

/// Token kinds of the query language.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `SELECT` keyword (case-insensitive).
    Select,
    /// `FROM` keyword (case-insensitive).
    From,
    /// `WHERE` keyword (case-insensitive).
    Where,
    /// `EXPLAIN` keyword (case-insensitive).
    Explain,
    /// `ANALYZE` keyword (case-insensitive).
    Analyze,
    /// An identifier (collection or function name).
    Ident(String),
    /// An integer literal (possibly negative).
    Int(i64),
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `*` (whole axis in subscripts; multiplication in expressions)
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// A floating-point literal.
    Float(f64),
}

/// Tokenizes a query string.
///
/// # Errors
/// [`QueryError::Lex`] on unexpected characters or malformed numbers.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '[' => {
                tokens.push(Token {
                    at: i,
                    kind: TokenKind::LBracket,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Token {
                    at: i,
                    kind: TokenKind::RBracket,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    at: i,
                    kind: TokenKind::LParen,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    at: i,
                    kind: TokenKind::RParen,
                });
                i += 1;
            }
            ':' => {
                tokens.push(Token {
                    at: i,
                    kind: TokenKind::Colon,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    at: i,
                    kind: TokenKind::Comma,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    at: i,
                    kind: TokenKind::Star,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    at: i,
                    kind: TokenKind::Plus,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    at: i,
                    kind: TokenKind::Minus,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    at: i,
                    kind: TokenKind::Slash,
                });
                i += 1;
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        at: i,
                        kind: TokenKind::Ge,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        at: i,
                        kind: TokenKind::Gt,
                    });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        at: i,
                        kind: TokenKind::Le,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        at: i,
                        kind: TokenKind::Lt,
                    });
                    i += 1;
                }
            }
            '=' => {
                tokens.push(Token {
                    at: i,
                    kind: TokenKind::Eq,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        at: i,
                        kind: TokenKind::Ne,
                    });
                    i += 2;
                } else {
                    return Err(QueryError::Lex {
                        at: i,
                        message: "expected '=' after '!'".to_string(),
                    });
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // Fractional part makes it a float literal.
                if bytes.get(i) == Some(&b'.') && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &input[start..i];
                    let value: f64 = text.parse().map_err(|e| QueryError::Lex {
                        at: start,
                        message: format!("bad number {text:?}: {e}"),
                    })?;
                    tokens.push(Token {
                        at: start,
                        kind: TokenKind::Float(value),
                    });
                } else {
                    let text = &input[start..i];
                    let value: i64 = text.parse().map_err(|e| QueryError::Lex {
                        at: start,
                        message: format!("bad integer {text:?}: {e}"),
                    })?;
                    tokens.push(Token {
                        at: start,
                        kind: TokenKind::Int(value),
                    });
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &input[start..i];
                let kind = match word.to_ascii_lowercase().as_str() {
                    "select" => TokenKind::Select,
                    "from" => TokenKind::From,
                    "where" => TokenKind::Where,
                    "explain" => TokenKind::Explain,
                    "analyze" => TokenKind::Analyze,
                    _ => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token { at: start, kind });
            }
            other => {
                return Err(QueryError::Lex {
                    at: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("SELECT img FROM img"),
            vec![
                TokenKind::Select,
                TokenKind::Ident("img".into()),
                TokenKind::From,
                TokenKind::Ident("img".into()),
            ]
        );
        assert_eq!(kinds("select")[0], TokenKind::Select);
        assert_eq!(kinds("FrOm")[0], TokenKind::From);
        assert_eq!(kinds("WHERE")[0], TokenKind::Where);
        assert_eq!(kinds("wHeRe")[0], TokenKind::Where);
        // A word merely containing the keyword stays an identifier.
        assert_eq!(kinds("wherever")[0], TokenKind::Ident("wherever".into()));
        assert_eq!(kinds("EXPLAIN")[0], TokenKind::Explain);
        assert_eq!(kinds("explain")[0], TokenKind::Explain);
        assert_eq!(kinds("AnAlYzE")[0], TokenKind::Analyze);
        assert_eq!(kinds("analyzer")[0], TokenKind::Ident("analyzer".into()));
    }

    #[test]
    fn subscripts_and_numbers() {
        assert_eq!(
            kinds("img[0:99,-5: * ]"),
            vec![
                TokenKind::Ident("img".into()),
                TokenKind::LBracket,
                TokenKind::Int(0),
                TokenKind::Colon,
                TokenKind::Int(99),
                TokenKind::Comma,
                TokenKind::Minus,
                TokenKind::Int(5),
                TokenKind::Colon,
                TokenKind::Star,
                TokenKind::RBracket,
            ]
        );
    }

    #[test]
    fn operators_and_floats() {
        assert_eq!(
            kinds("img + 1 >= 2.5 != 3"),
            vec![
                TokenKind::Ident("img".into()),
                TokenKind::Plus,
                TokenKind::Int(1),
                TokenKind::Ge,
                TokenKind::Float(2.5),
                TokenKind::Ne,
                TokenKind::Int(3),
            ]
        );
        assert!(tokenize("a ! b").is_err());
        assert_eq!(kinds("a<b")[1], TokenKind::Lt);
        assert_eq!(kinds("a<=b")[1], TokenKind::Le);
    }

    #[test]
    fn offsets_are_recorded() {
        let tokens = tokenize("  select x").unwrap();
        assert_eq!(tokens[0].at, 2);
        assert_eq!(tokens[1].at, 9);
    }

    #[test]
    fn bad_characters_error() {
        assert!(tokenize("select #").is_err());
        assert!(tokenize("img[0;1]").is_err());
    }

    #[test]
    fn float_requires_digits_after_dot() {
        // "1." is lexed as Int(1) followed by an error on '.'.
        assert!(tokenize("1.").is_err());
        assert_eq!(kinds("1.5")[0], TokenKind::Float(1.5));
    }
}
