//! Abstract syntax of the query language.

/// One axis of a trim/section subscript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxisSelect {
    /// `lo:hi` — a trim along this axis (either side may be `*`).
    Range {
        /// Lower bound; `None` for `*`.
        lo: Option<i64>,
        /// Upper bound; `None` for `*`.
        hi: Option<i64>,
    },
    /// A single coordinate — a *section*: the axis is fixed and dropped
    /// from the result's dimensionality (RasQL semantics, §5.1 type (d)).
    Point(i64),
    /// A bare `*` — the whole axis.
    All,
}

/// The condenser (aggregation) functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condenser {
    /// `sum_cells`
    Sum,
    /// `avg_cells`
    Avg,
    /// `min_cells`
    Min,
    /// `max_cells`
    Max,
    /// `count_cells` — cells different from the default value.
    Count,
    /// `some_cells`
    Some,
    /// `all_cells`
    All,
}

impl Condenser {
    /// The surface-syntax function name (inverse of [`Condenser::from_name`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Condenser::Sum => "sum_cells",
            Condenser::Avg => "avg_cells",
            Condenser::Min => "min_cells",
            Condenser::Max => "max_cells",
            Condenser::Count => "count_cells",
            Condenser::Some => "some_cells",
            Condenser::All => "all_cells",
        }
    }

    /// Parses a function name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "sum_cells" => Some(Condenser::Sum),
            "avg_cells" => Some(Condenser::Avg),
            "min_cells" => Some(Condenser::Min),
            "max_cells" => Some(Condenser::Max),
            "count_cells" => Some(Condenser::Count),
            "some_cells" => Some(Condenser::Some),
            "all_cells" => Some(Condenser::All),
            _ => None,
        }
    }
}

/// Induced binary operators (array ⊕ scalar), mirroring
/// [`tilestore_engine::BinOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InducedOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

/// A query expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A collection reference with an optional subscript.
    Access {
        /// Collection (MDD object) name.
        collection: String,
        /// Per-axis selection; `None` = whole object.
        subscript: Option<Vec<AxisSelect>>,
    },
    /// A condenser applied to a sub-expression.
    Condense {
        /// The aggregation.
        op: Condenser,
        /// The argument (must be an array-valued access).
        arg: Box<Expr>,
    },
    /// An induced operation: `lhs ⊕ scalar` applied to every cell.
    Induce {
        /// The array-valued operand.
        lhs: Box<Expr>,
        /// The operator.
        op: InducedOp,
        /// The scalar right-hand side.
        rhs: f64,
    },
}

/// The `WHERE collection <op> literal` clause: a cell-value predicate.
/// Cells failing the comparison read as the type's default value (masked
/// select), and the planner prunes tiles the synopsis/bitmap index proves
/// cannot match.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// The collection whose cells are compared (must match `FROM`).
    pub collection: String,
    /// The comparison; the parser only admits `>`, `>=`, `<`, `<=`, `=`,
    /// `!=` here.
    pub op: InducedOp,
    /// The scalar literal compared against.
    pub literal: f64,
}

/// A full query: `SELECT expr FROM collection [WHERE collection op literal]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The selected expression.
    pub expr: Expr,
    /// The collection named in `FROM`.
    pub from: String,
    /// The optional cell-value predicate.
    pub predicate: Option<Predicate>,
}

/// A top-level statement: a query to run, or a request for the planner's
/// report on one (`EXPLAIN <query>` / `EXPLAIN ANALYZE <query>`).
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A plain query.
    Query(Query),
    /// `EXPLAIN [ANALYZE] <query>` — report per-tile planner decisions;
    /// with `analyze`, also execute and attach the actual counters.
    Explain {
        /// The statement being explained.
        query: Query,
        /// Whether to execute the query and attach measured statistics.
        analyze: bool,
    },
}

// ---------------------------------------------------------------------------
// Surface-syntax rendering. The cluster coordinator rewrites a parsed query
// (clipping the subscript to a shard's owned sub-domain) and ships the result
// back through the wire protocol as text, so every AST node must print in a
// form [`crate::parse_statement`] accepts and that round-trips to an equal
// AST. Scalars rely on Rust's shortest-round-trip `f64` formatting.

impl std::fmt::Display for AxisSelect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn bound(f: &mut std::fmt::Formatter<'_>, b: Option<i64>) -> std::fmt::Result {
            match b {
                Some(v) => write!(f, "{v}"),
                None => write!(f, "*"),
            }
        }
        match self {
            AxisSelect::Range { lo, hi } => {
                bound(f, *lo)?;
                write!(f, ":")?;
                bound(f, *hi)
            }
            AxisSelect::Point(c) => write!(f, "{c}"),
            AxisSelect::All => write!(f, "*"),
        }
    }
}

impl std::fmt::Display for Condenser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl InducedOp {
    /// The surface-syntax operator symbol.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            InducedOp::Add => "+",
            InducedOp::Sub => "-",
            InducedOp::Mul => "*",
            InducedOp::Div => "/",
            InducedOp::Gt => ">",
            InducedOp::Ge => ">=",
            InducedOp::Lt => "<",
            InducedOp::Le => "<=",
            InducedOp::Eq => "=",
            InducedOp::Ne => "!=",
        }
    }
}

impl std::fmt::Display for InducedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Formats a scalar literal so the tokenizer reads it back as one token:
/// negative values print with a leading `-` the parser folds into the
/// literal, and non-finite values (unreachable from parsed queries) fall
/// back to `0` rather than printing unparseable text.
fn fmt_scalar(f: &mut std::fmt::Formatter<'_>, v: f64) -> std::fmt::Result {
    if v.is_finite() {
        write!(f, "{v}")
    } else {
        write!(f, "0")
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Access {
                collection,
                subscript,
            } => {
                write!(f, "{collection}")?;
                if let Some(axes) = subscript {
                    write!(f, "[")?;
                    for (i, a) in axes.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
            Expr::Condense { op, arg } => write!(f, "{op}({arg})"),
            Expr::Induce { lhs, op, rhs } => {
                write!(f, "{lhs} {op} ")?;
                fmt_scalar(f, *rhs)
            }
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} ", self.collection, self.op)?;
        fmt_scalar(f, self.literal)
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SELECT {} FROM {}", self.expr, self.from)?;
        if let Some(p) = &self.predicate {
            write!(f, " WHERE {p}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Statement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Statement::Query(q) => write!(f, "{q}"),
            Statement::Explain { query, analyze } => {
                if *analyze {
                    write!(f, "EXPLAIN ANALYZE {query}")
                } else {
                    write!(f, "EXPLAIN {query}")
                }
            }
        }
    }
}
