//! Codec throughput and the cost of selective (best-of) compression.

use tilestore_compress::{compress, decompress, CellContext, Codec, CompressionPolicy};
use tilestore_testkit::bench::Group;

/// Representative tile payloads (64 KB of u32 cells).
fn payloads() -> Vec<(&'static str, Vec<u8>)> {
    let cells = 16 * 1024;
    let smooth: Vec<u8> = (0..cells as u32)
        .flat_map(|v| (v / 7).to_le_bytes())
        .collect();
    let sparse: Vec<u8> = (0..cells as u32)
        .flat_map(|v| if v % 97 == 0 { v.to_le_bytes() } else { [0; 4] })
        .collect();
    let noisy: Vec<u8> = (0..cells as u32)
        .flat_map(|v| v.wrapping_mul(2654435761).to_le_bytes())
        .collect();
    vec![("smooth", smooth), ("sparse", sparse), ("noisy", noisy)]
}

fn main() {
    let default = 0u32.to_le_bytes();
    let ctx = CellContext {
        cell_size: 4,
        default: &default,
    };
    let mut group = Group::new("compress");
    for (shape, data) in payloads() {
        group.throughput_bytes(data.len() as u64);
        for (name, policy) in [
            ("packbits", CompressionPolicy::Fixed(Codec::PackBits)),
            ("delta", CompressionPolicy::Fixed(Codec::DeltaPackBits)),
            ("chunk_offset", CompressionPolicy::Fixed(Codec::ChunkOffset)),
            ("selective", CompressionPolicy::selective_default()),
        ] {
            group.bench(&format!("{name}/{shape}"), || {
                compress(&policy, &data, &ctx).unwrap()
            });
        }
    }

    let mut group = Group::new("decompress");
    for (shape, data) in payloads() {
        group.throughput_bytes(data.len() as u64);
        let stream = compress(&CompressionPolicy::selective_default(), &data, &ctx).unwrap();
        group.bench(&format!("selective/{shape}"), || {
            decompress(&stream, &ctx).unwrap()
        });
    }
}
