//! Cost of the tiling algorithms themselves (§6.1 observes that "the time
//! taken by the tiling algorithms to calculate tiling" is negligible
//! against load time — this bench quantifies it).

use tilestore_bench::workloads::sales::SalesCube;
use tilestore_geometry::Domain;
use tilestore_testkit::bench::Group;
use tilestore_tiling::{
    AccessRecord, AlignedTiling, AreasOfInterestTiling, DirectionalTiling, StatisticTiling,
    TilingStrategy,
};

fn main() {
    let cube = SalesCube::table1();
    let domain = cube.domain.clone();
    let mut group = Group::new("tiling_partition");

    let aligned = AlignedTiling::regular(3, 32 * 1024);
    group.bench("aligned_regular_32K", || {
        aligned.partition(&domain, 4).unwrap()
    });

    let directional = DirectionalTiling::new(cube.partitions_3p(), 64 * 1024);
    group.bench("directional_3P_64K", || {
        directional.partition(&domain, 4).unwrap()
    });

    let anim_domain: Domain = "[0:120,0:159,0:119]".parse().unwrap();
    let areas: Vec<Domain> = vec![
        "[0:120,80:120,25:60]".parse().unwrap(),
        "[0:120,70:159,25:105]".parse().unwrap(),
    ];
    let aoi = AreasOfInterestTiling::new(areas, 256 * 1024);
    group.bench("areas_of_interest_256K", || {
        aoi.partition(&anim_domain, 3).unwrap()
    });

    for n_accesses in [10usize, 100, 400] {
        let log: Vec<AccessRecord> = (0..n_accesses)
            .map(|i| {
                let x = (i as i64 * 13) % 100;
                let y = (i as i64 * 29) % 120;
                AccessRecord::new(
                    Domain::from_bounds(&[(0, 120), (x, x + 20), (y.min(99), y.min(99) + 20)])
                        .unwrap(),
                    1 + (i as u64 % 5),
                )
            })
            .collect();
        let strat = StatisticTiling::new(log, 10, 2, 256 * 1024);
        group.bench(&format!("statistic_clustering/{n_accesses}"), || {
            strat.clusters().unwrap()
        });
    }
}
