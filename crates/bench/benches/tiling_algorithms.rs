//! Cost of the tiling algorithms themselves (§6.1 observes that "the time
//! taken by the tiling algorithms to calculate tiling" is negligible
//! against load time — this bench quantifies it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tilestore_bench::workloads::sales::SalesCube;
use tilestore_geometry::Domain;
use tilestore_tiling::{
    AlignedTiling, AreasOfInterestTiling, DirectionalTiling, StatisticTiling, AccessRecord,
    TilingStrategy,
};

fn bench_partition_algorithms(c: &mut Criterion) {
    let cube = SalesCube::table1();
    let domain = cube.domain.clone();
    let mut group = c.benchmark_group("tiling_partition");

    group.bench_function("aligned_regular_32K", |b| {
        let strat = AlignedTiling::regular(3, 32 * 1024);
        b.iter(|| strat.partition(&domain, 4).unwrap());
    });

    group.bench_function("directional_3P_64K", |b| {
        let strat = DirectionalTiling::new(cube.partitions_3p(), 64 * 1024);
        b.iter(|| strat.partition(&domain, 4).unwrap());
    });

    let anim_domain: Domain = "[0:120,0:159,0:119]".parse().unwrap();
    let areas = vec![
        "[0:120,80:120,25:60]".parse().unwrap(),
        "[0:120,70:159,25:105]".parse().unwrap(),
    ];
    group.bench_function("areas_of_interest_256K", |b| {
        let strat = AreasOfInterestTiling::new(areas.clone(), 256 * 1024);
        b.iter(|| strat.partition(&anim_domain, 3).unwrap());
    });

    for n_accesses in [10usize, 100, 400] {
        let log: Vec<AccessRecord> = (0..n_accesses)
            .map(|i| {
                let x = (i as i64 * 13) % 100;
                let y = (i as i64 * 29) % 120;
                AccessRecord::new(
                    Domain::from_bounds(&[(0, 120), (x, x + 20), (y.min(99), y.min(99) + 20)])
                        .unwrap(),
                    1 + (i as u64 % 5),
                )
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("statistic_clustering", n_accesses),
            &log,
            |b, log| {
                let strat = StatisticTiling::new(log.clone(), 10, 2, 256 * 1024);
                b.iter(|| strat.clusters().unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partition_algorithms);
criterion_main!(benches);
