//! R+-tree vs linear tile directory (DESIGN.md ablation 1): search cost as
//! the tile count grows — the `t_ix` component the paper's §6.1 extended
//! cubes make visible.

use tilestore_geometry::Domain;
use tilestore_index::{LinearIndex, RPlusTree};
use tilestore_testkit::bench::Group;

/// A 3-D grid of `n^3` tiles of 10x10x10 cells.
fn grid_entries(n: i64) -> Vec<(Domain, u64)> {
    let mut v = Vec::with_capacity((n * n * n) as usize);
    let mut id = 0u64;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                v.push((
                    Domain::from_bounds(&[
                        (i * 10, i * 10 + 9),
                        (j * 10, j * 10 + 9),
                        (k * 10, k * 10 + 9),
                    ])
                    .unwrap(),
                    id,
                ));
                id += 1;
            }
        }
    }
    v
}

fn bench_search() {
    let mut group = Group::new("index_search");
    for n in [8i64, 16, 24] {
        let entries = grid_entries(n);
        let tree = RPlusTree::bulk_load(3, 32, entries.clone()).unwrap();
        let mut lin = LinearIndex::new(3);
        for (d, p) in entries {
            lin.insert(d, p).unwrap();
        }
        // A small query touching ~8 tiles in the middle.
        let mid = n * 5;
        let query =
            Domain::from_bounds(&[(mid - 5, mid + 5), (mid - 5, mid + 5), (mid - 5, mid + 5)])
                .unwrap();
        let tiles = n * n * n;
        group.bench_with_input(&format!("rplus_tree/{tiles}"), &query, |q| tree.search(q));
        group.bench_with_input(&format!("linear_scan/{tiles}"), &query, |q| lin.search(q));
    }
}

fn bench_build() {
    let mut group = Group::new("index_build");
    group.sample_size(20);
    let entries = grid_entries(16);
    group.bench("bulk_load_4096", || {
        RPlusTree::bulk_load(3, 32, entries.clone()).unwrap()
    });
    group.bench("incremental_4096", || {
        let mut t = RPlusTree::with_fanout(3, 32).unwrap();
        for (d, p) in entries.clone() {
            t.insert(d, p).unwrap();
        }
        t
    });
}

fn main() {
    bench_search();
    bench_build();
}
