//! Storage-substrate benchmarks: BLOB read/write throughput and the
//! buffer-pool sweep (DESIGN.md ablation 4 — how caching flattens the
//! tiling-scheme differences the paper measures cold).

use tilestore_storage::{BlobStore, BufferPool, MemPageStore, PageStore};
use tilestore_testkit::bench::Group;

fn bench_blob_io() {
    let mut group = Group::new("blob_io");
    for size_kb in [32usize, 256] {
        let bytes = size_kb * 1024;
        let payload = vec![0xA5u8; bytes];
        group.throughput_bytes(bytes as u64);
        {
            let store = BlobStore::new(MemPageStore::new(8192).unwrap());
            group.bench(&format!("create/{size_kb}KB"), || {
                store.create(&payload).unwrap()
            });
        }
        {
            let store = BlobStore::new(MemPageStore::new(8192).unwrap());
            let id = store.create(&payload).unwrap();
            group.bench(&format!("read/{size_kb}KB"), || store.read(id).unwrap());
        }
    }
}

fn bench_buffer_pool_sweep() {
    let mut group = Group::new("buffer_pool");
    // 512 pages of data, re-read in a scan; pool sizes below/at/above the
    // working set.
    let total_pages = 512u64;
    for capacity in [64usize, 256, 1024] {
        let store = BufferPool::new(MemPageStore::new(8192).unwrap(), capacity).unwrap();
        let pages = store.allocate(total_pages).unwrap();
        let payload = vec![1u8; 8192];
        for &p in &pages {
            store.write_page(p, &payload).unwrap();
        }
        let mut buf = vec![0u8; 8192];
        group.bench(&format!("scan_512_pages/{capacity}"), || {
            for &p in &pages {
                store.read_page(p, &mut buf).unwrap();
            }
        });
    }
}

fn main() {
    bench_blob_io();
    bench_buffer_pool_sweep();
}
