//! Storage-substrate benchmarks: BLOB read/write throughput and the
//! buffer-pool sweep (DESIGN.md ablation 4 — how caching flattens the
//! tiling-scheme differences the paper measures cold).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tilestore_storage::{BlobStore, BufferPool, MemPageStore, PageStore};

fn bench_blob_io(c: &mut Criterion) {
    let mut group = c.benchmark_group("blob_io");
    for size_kb in [32usize, 256] {
        let bytes = size_kb * 1024;
        let payload = vec![0xA5u8; bytes];
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(
            BenchmarkId::new("create", format!("{size_kb}KB")),
            &payload,
            |b, payload| {
                let store = BlobStore::new(MemPageStore::new(8192).unwrap());
                b.iter(|| store.create(payload).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("read", format!("{size_kb}KB")),
            &payload,
            |b, payload| {
                let store = BlobStore::new(MemPageStore::new(8192).unwrap());
                let id = store.create(payload).unwrap();
                b.iter(|| store.read(id).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_buffer_pool_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool");
    // 512 pages of data, re-read in a scan; pool sizes below/at/above the
    // working set.
    let total_pages = 512u64;
    for capacity in [64usize, 256, 1024] {
        let store = BufferPool::new(MemPageStore::new(8192).unwrap(), capacity).unwrap();
        let pages = store.allocate(total_pages).unwrap();
        let payload = vec![1u8; 8192];
        for &p in &pages {
            store.write_page(p, &payload).unwrap();
        }
        let mut buf = vec![0u8; 8192];
        group.bench_with_input(
            BenchmarkId::new("scan_512_pages", capacity),
            &pages,
            |b, pages| {
                b.iter(|| {
                    for &p in pages {
                        store.read_page(p, &mut buf).unwrap();
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_blob_io, bench_buffer_pool_sweep);
criterion_main!(benches);
