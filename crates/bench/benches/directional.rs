//! Wall-clock companion to Table 4 / Figure 7: the Table 3 query set over
//! the sales cube under regular vs directional tiling.
//!
//! The `repro` binary produces the deterministic cost-model version; this
//! bench measures real end-to-end query latency through the in-memory
//! storage stack (index lookup, BLOB fetch, run-copy composition).

use tilestore_bench::schemes::NamedScheme;
use tilestore_bench::workloads::sales::SalesCube;
use tilestore_engine::{Database, MddType};
use tilestore_geometry::{DefDomain, Domain};
use tilestore_testkit::bench::Group;
use tilestore_tiling::Scheme;

/// A one-year cube keeps bench time moderate while preserving the category
/// structure.
fn small_cube() -> (SalesCube, Vec<(String, Domain)>) {
    let full = SalesCube::table1();
    let domain: Domain = "[1:365,1:60,1:100]".parse().unwrap();
    let cube = SalesCube {
        domain: domain.clone(),
        partitions: full
            .partitions
            .iter()
            .map(|p| {
                let hi = domain.hi(p.axis);
                let mut points: Vec<i64> = p.points.iter().copied().filter(|&x| x < hi).collect();
                points.push(hi);
                tilestore_tiling::AxisPartition::new(p.axis, points)
            })
            .collect(),
    };
    let queries = cube
        .queries()
        .into_iter()
        .filter(|q| q.region.hi(0) <= 365)
        .map(|q| (q.label.to_string(), q.region))
        .collect();
    (cube, queries)
}

fn load(cube: &SalesCube, scheme: Scheme) -> Database<tilestore_storage::MemPageStore> {
    let db = Database::in_memory().unwrap();
    db.create_object(
        "cube",
        MddType::new(SalesCube::cell_type(), DefDomain::unlimited(3).unwrap()),
        scheme,
    )
    .unwrap();
    db.insert("cube", &cube.generate(42)).unwrap();
    db
}

fn bench_queries() {
    let (cube, queries) = small_cube();
    let schemes = vec![
        NamedScheme::regular(3, 32),
        NamedScheme::directional(64, cube.partitions_3p()),
    ];
    let mut group = Group::new("sales_range_query");
    group.sample_size(20);
    for named in &schemes {
        let db = load(&cube, named.scheme.clone());
        for (label, region) in &queries {
            group.throughput_bytes(region.size_bytes(4).unwrap());
            group.bench(&format!("{}/{label}", named.name), || {
                db.range_query("cube", region).unwrap()
            });
        }
    }
}

fn bench_load() {
    let (cube, _) = small_cube();
    let data = cube.generate(42);
    let mut group = Group::new("sales_load");
    group.sample_size(10);
    group.throughput_bytes(data.size_bytes());
    for named in [
        NamedScheme::regular(3, 32),
        NamedScheme::directional(64, cube.partitions_3p()),
    ] {
        group.bench(&named.name, || {
            let db = Database::in_memory().unwrap();
            db.create_object(
                "cube",
                MddType::new(SalesCube::cell_type(), DefDomain::unlimited(3).unwrap()),
                named.scheme.clone(),
            )
            .unwrap();
            db.insert("cube", &data).unwrap()
        });
    }
}

fn main() {
    bench_queries();
    bench_load();
}
