//! Wall-clock companion to Table 6 / Figure 8: the animation query set
//! under regular vs areas-of-interest tiling.

use tilestore_bench::schemes::NamedScheme;
use tilestore_bench::workloads::animation::Animation;
use tilestore_engine::{Database, MddType};
use tilestore_geometry::DefDomain;
use tilestore_testkit::bench::Group;
use tilestore_tiling::Scheme;

fn load(anim: &Animation, scheme: Scheme) -> Database<tilestore_storage::MemPageStore> {
    let db = Database::in_memory().unwrap();
    db.create_object(
        "clip",
        MddType::new(Animation::cell_type(), DefDomain::unlimited(3).unwrap()),
        scheme,
    )
    .unwrap();
    db.insert("clip", &anim.generate()).unwrap();
    db
}

fn main() {
    let anim = Animation::table5();
    let queries = anim.queries();
    let schemes = vec![
        NamedScheme::regular(3, 64),
        NamedScheme::areas_of_interest(256, anim.areas.clone()),
    ];
    let mut group = Group::new("animation_query");
    group.sample_size(20);
    for named in &schemes {
        let db = load(&anim, named.scheme.clone());
        for q in &queries {
            group.throughput_bytes(q.region.size_bytes(3).unwrap());
            group.bench(&format!("{}/{}", named.name, q.label), || {
                db.range_query("clip", &q.region).unwrap()
            });
        }
    }
}
