//! Experiment harness: loads a workload under each tiling scheme and
//! replays a query set cold, producing the paper's measurements.

use tilestore_compress::CompressionPolicy;
use tilestore_engine::{Array, CellType, Database, InsertStats, MddType, QueryStats, QueryTimes};
use tilestore_geometry::{DefDomain, Domain};
use tilestore_storage::CostModel;
use tilestore_testkit::{Json, ToJson};
use tilestore_tiling::TilingStrategy;

use crate::schemes::NamedScheme;

/// A labelled query of an experiment's query set.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Short label (`a` … `j`).
    pub label: String,
    /// The query region.
    pub region: Domain,
}

impl ToJson for QuerySpec {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.to_json()),
            ("region", Json::Str(self.region.to_string())),
        ])
    }
}

/// Measurement of one query under one scheme.
#[derive(Debug, Clone)]
pub struct QueryMeasurement {
    /// Query label.
    pub label: String,
    /// Raw execution counters.
    pub stats: QueryStats,
    /// Model-time decomposition.
    pub times: QueryTimes,
}

impl ToJson for QueryMeasurement {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.to_json()),
            ("stats", self.stats.to_json()),
            ("times", self.times.to_json()),
        ])
    }
}

impl QueryMeasurement {
    /// `t_totalaccess` in model seconds.
    #[must_use]
    pub fn total_access(&self) -> f64 {
        self.times.total_access()
    }

    /// `t_totalcpu` in model seconds.
    #[must_use]
    pub fn total_cpu(&self) -> f64 {
        self.times.total_cpu()
    }
}

/// All measurements of one scheme over the query set.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// Scheme name (`Reg32K`, `Dir64K3P`, …).
    pub scheme: String,
    /// Number of tiles the scheme produced for the workload.
    pub tiles: usize,
    /// Size of the largest tile in bytes.
    pub max_tile_bytes: u64,
    /// Physical bytes in the BLOB store after compression.
    pub physical_bytes: u64,
    /// Load statistics.
    pub load: InsertStats,
    /// One measurement per query, in query-set order.
    pub queries: Vec<QueryMeasurement>,
}

impl ToJson for SchemeResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("scheme", self.scheme.to_json()),
            ("tiles", self.tiles.to_json()),
            ("max_tile_bytes", self.max_tile_bytes.to_json()),
            ("physical_bytes", self.physical_bytes.to_json()),
            ("load", self.load.to_json()),
            ("queries", self.queries.to_json()),
        ])
    }
}

impl SchemeResult {
    /// Mean `t_totalaccess` over the query set.
    #[must_use]
    pub fn mean_total_access(&self) -> f64 {
        mean(self.queries.iter().map(QueryMeasurement::total_access))
    }

    /// Mean `t_totalcpu` over the query set.
    #[must_use]
    pub fn mean_total_cpu(&self) -> f64 {
        mean(self.queries.iter().map(QueryMeasurement::total_cpu))
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for v in it {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / f64::from(n)
    }
}

/// An experiment: one workload array, a scheme set, a query set.
pub struct Experiment<'a> {
    /// The workload data.
    pub data: &'a Array,
    /// Cell type of the object.
    pub cell_type: CellType,
    /// The query set.
    pub queries: Vec<QuerySpec>,
    /// The cost model converting counters to model seconds.
    pub model: CostModel,
    /// Per-tile compression policy applied at load time.
    pub compression: CompressionPolicy,
}

impl Experiment<'_> {
    /// Runs the experiment for one scheme: loads a fresh in-memory database
    /// and replays every query (the store is uncached, so every query is a
    /// cold read, like the paper's `t_o` measurements).
    ///
    /// # Errors
    /// Engine errors (tiling, storage, query execution).
    pub fn run_scheme(&self, named: &NamedScheme) -> tilestore_engine::Result<SchemeResult> {
        let db = Database::in_memory()?;
        let dim = self.data.domain().dim();
        db.create_object(
            "workload",
            MddType::new(self.cell_type.clone(), DefDomain::unlimited(dim)?),
            named.scheme.clone(),
        )?;
        db.set_compression("workload", self.compression.clone())?;
        let load = db.insert("workload", self.data)?.stats;
        let physical_bytes = db.object_physical_bytes("workload")?;
        let meta = db.object("workload")?;
        let tiles = meta.tile_count();
        let max_tile_bytes = meta
            .tiles
            .iter()
            .map(|t| t.domain.cells() * self.cell_type.size as u64)
            .max()
            .unwrap_or(0);
        let mut queries = Vec::with_capacity(self.queries.len());
        for q in &self.queries {
            let q_result = db.range_query("workload", &q.region)?;
            let stats = q_result.stats;
            queries.push(QueryMeasurement {
                label: q.label.clone(),
                times: stats.times(&self.model),
                stats,
            });
        }
        Ok(SchemeResult {
            scheme: named.name.clone(),
            tiles,
            max_tile_bytes,
            physical_bytes,
            load,
            queries,
        })
    }

    /// Runs the experiment for every scheme.
    ///
    /// # Errors
    /// Engine errors from any scheme run.
    pub fn run(&self, schemes: &[NamedScheme]) -> tilestore_engine::Result<Vec<SchemeResult>> {
        schemes.iter().map(|s| self.run_scheme(s)).collect()
    }

    /// Validates a scheme against the workload without storing data: the
    /// tiling must cover the domain within the size cap. Used by the scheme
    /// inventory (Table 2) without paying the load cost.
    ///
    /// # Errors
    /// Tiling errors.
    pub fn tile_counts(&self, named: &NamedScheme) -> tilestore_tiling::Result<(usize, u64)> {
        let spec = named
            .scheme
            .partition(self.data.domain(), self.cell_type.size)?;
        let max = spec.max_tile_bytes(self.cell_type.size);
        Ok((spec.len(), max))
    }
}

/// Per-query speedup of `fast` over `slow` (the paper's Tables 4 and 6).
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Query label.
    pub label: String,
    /// Speedup in `t_o`.
    pub t_o: f64,
    /// Speedup in `t_totalaccess`.
    pub total_access: f64,
    /// Speedup in `t_totalcpu`.
    pub total_cpu: f64,
}

impl ToJson for SpeedupRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.to_json()),
            ("t_o", self.t_o.to_json()),
            ("total_access", self.total_access.to_json()),
            ("total_cpu", self.total_cpu.to_json()),
        ])
    }
}

/// Computes per-query speedups of `fast` over `slow` (values > 1 mean
/// `fast` wins).
#[must_use]
pub fn speedups(fast: &SchemeResult, slow: &SchemeResult) -> Vec<SpeedupRow> {
    fast.queries
        .iter()
        .zip(&slow.queries)
        .map(|(f, s)| {
            debug_assert_eq!(f.label, s.label);
            SpeedupRow {
                label: f.label.clone(),
                t_o: ratio(s.times.t_o, f.times.t_o),
                total_access: ratio(s.total_access(), f.total_access()),
                total_cpu: ratio(s.total_cpu(), f.total_cpu()),
            }
        })
        .collect()
}

fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        f64::INFINITY
    } else {
        num / den
    }
}

/// Picks the scheme with the lowest mean `t_totalcpu` among those whose
/// name starts with `prefix` (the paper's "best of regular" / "best of
/// directional" selection).
#[must_use]
pub fn best_by_prefix<'a>(results: &'a [SchemeResult], prefix: &str) -> Option<&'a SchemeResult> {
    results
        .iter()
        .filter(|r| r.scheme.starts_with(prefix))
        .min_by(|a, b| {
            a.mean_total_cpu()
                .partial_cmp(&b.mean_total_cpu())
                .expect("times are finite")
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::NamedScheme;
    use tilestore_engine::CellType;

    fn tiny_experiment(data: &Array) -> Experiment<'_> {
        Experiment {
            data,
            cell_type: CellType::of::<u32>(),
            queries: vec![
                QuerySpec {
                    label: "q1".into(),
                    region: "[0:9,0:9]".parse().unwrap(),
                },
                QuerySpec {
                    label: "q2".into(),
                    region: "[0:39,0:39]".parse().unwrap(),
                },
            ],
            model: CostModel::classic_disk(),
            compression: CompressionPolicy::None,
        }
    }

    #[test]
    fn harness_runs_and_orders_queries() {
        let data =
            Array::from_fn("[0:39,0:39]".parse().unwrap(), |p| (p[0] + p[1]) as u32).unwrap();
        let exp = tiny_experiment(&data);
        let res = exp
            .run(&[NamedScheme::regular(2, 1), NamedScheme::regular(2, 4)])
            .unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].scheme, "Reg1K");
        assert_eq!(res[0].queries.len(), 2);
        assert_eq!(res[0].queries[0].label, "q1");
        // Small query costs less than the full scan.
        assert!(res[0].queries[0].total_access() < res[0].queries[1].total_access());
        // Fewer, larger tiles: Reg4K has fewer tiles than Reg1K.
        assert!(res[1].tiles < res[0].tiles);
    }

    #[test]
    fn speedups_are_ratios_of_slow_over_fast() {
        let data =
            Array::from_fn("[0:39,0:39]".parse().unwrap(), |p| (p[0] * p[1]) as u32).unwrap();
        let exp = tiny_experiment(&data);
        let res = exp
            .run(&[NamedScheme::regular(2, 1), NamedScheme::regular(2, 4)])
            .unwrap();
        let rows = speedups(&res[1], &res[0]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.t_o.is_finite() && r.t_o > 0.0);
        }
    }

    #[test]
    fn best_by_prefix_selects_lowest_mean() {
        let data = Array::from_fn("[0:39,0:39]".parse().unwrap(), |_| 1u32).unwrap();
        let exp = tiny_experiment(&data);
        let res = exp
            .run(&[
                NamedScheme::regular(2, 1),
                NamedScheme::regular(2, 2),
                NamedScheme::regular(2, 4),
            ])
            .unwrap();
        let best = best_by_prefix(&res, "Reg").unwrap();
        let best_mean = best.mean_total_cpu();
        for r in &res {
            assert!(best_mean <= r.mean_total_cpu() + 1e-12);
        }
        assert!(best_by_prefix(&res, "Dir").is_none());
    }

    #[test]
    fn tile_counts_matches_run() {
        let data = Array::from_fn("[0:39,0:39]".parse().unwrap(), |_| 0u32).unwrap();
        let exp = tiny_experiment(&data);
        let named = NamedScheme::regular(2, 1);
        let (n, max) = exp.tile_counts(&named).unwrap();
        let run = exp.run_scheme(&named).unwrap();
        assert_eq!(n, run.tiles);
        assert_eq!(max, run.max_tile_bytes);
    }
}
