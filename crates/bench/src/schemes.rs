//! The named tiling schemes of Tables 2 and 5.

use tilestore_geometry::Domain;
use tilestore_tiling::{
    AlignedTiling, AreasOfInterestTiling, AxisPartition, DirectionalTiling, Scheme,
};

/// A tiling scheme under test, with its paper name (`Reg32K`, `Dir64K3P`,
/// `AI256K`, …).
#[derive(Debug, Clone)]
pub struct NamedScheme {
    /// The paper's scheme name.
    pub name: String,
    /// The scheme itself.
    pub scheme: Scheme,
}

impl NamedScheme {
    /// A regular tiling scheme `Reg<kb>K` of dimensionality `dim`.
    #[must_use]
    pub fn regular(dim: usize, kb: u64) -> Self {
        NamedScheme {
            name: format!("Reg{kb}K"),
            scheme: Scheme::Aligned(AlignedTiling::regular(dim, kb * 1024)),
        }
    }

    /// A directional tiling scheme `Dir<kb>K<n>P` over the given partitions.
    #[must_use]
    pub fn directional(kb: u64, partitions: Vec<AxisPartition>) -> Self {
        let n = partitions.len();
        NamedScheme {
            name: format!("Dir{kb}K{n}P"),
            scheme: Scheme::Directional(DirectionalTiling::new(partitions, kb * 1024)),
        }
    }

    /// An areas-of-interest scheme `AI<kb>K` over the given areas.
    #[must_use]
    pub fn areas_of_interest(kb: u64, areas: Vec<Domain>) -> Self {
        NamedScheme {
            name: format!("AI{kb}K"),
            scheme: Scheme::AreasOfInterest(AreasOfInterestTiling::new(areas, kb * 1024)),
        }
    }
}

/// The Table 2 scheme set for the sales cube: `Reg{32,64,128,256}K`,
/// `Dir{32,64}K{2P,3P}`, `Dir{128,256}K2P`.
///
/// §6.1: "Directional tiling with tiles bigger than 64K and partitions in
/// the 3 dimensions was not performed, since the result would be the same
/// as that for Dir64K3P" — the 3-D category blocks already fit in 64 KB.
#[must_use]
pub fn table2_schemes(
    partitions_2p: &[AxisPartition],
    partitions_3p: &[AxisPartition],
) -> Vec<NamedScheme> {
    let mut schemes = Vec::new();
    for kb in [32, 64, 128, 256] {
        schemes.push(NamedScheme::regular(3, kb));
    }
    for kb in [32, 64] {
        schemes.push(NamedScheme::directional(kb, partitions_2p.to_vec()));
        schemes.push(NamedScheme::directional(kb, partitions_3p.to_vec()));
    }
    for kb in [128, 256] {
        schemes.push(NamedScheme::directional(kb, partitions_2p.to_vec()));
    }
    schemes
}

/// The Table 5 scheme set for the animation: `Reg{32..256}K` and
/// `AI{32..256}K`.
#[must_use]
pub fn table5_schemes(areas: &[Domain]) -> Vec<NamedScheme> {
    let mut schemes = Vec::new();
    for kb in [32, 64, 128, 256] {
        schemes.push(NamedScheme::regular(3, kb));
    }
    for kb in [32, 64, 128, 256] {
        schemes.push(NamedScheme::areas_of_interest(kb, areas.to_vec()));
    }
    schemes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::sales::SalesCube;

    #[test]
    fn table2_has_ten_schemes_with_paper_names() {
        let cube = SalesCube::table1();
        let schemes = table2_schemes(&cube.partitions_2p(), &cube.partitions_3p());
        let names: Vec<&str> = schemes.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Reg32K",
                "Reg64K",
                "Reg128K",
                "Reg256K",
                "Dir32K2P",
                "Dir32K3P",
                "Dir64K2P",
                "Dir64K3P",
                "Dir128K2P",
                "Dir256K2P",
            ]
        );
    }

    #[test]
    fn dir3p_category_blocks_are_near_64k() {
        // §6.1 omits Dir128K3P/Dir256K3P "since the result would be the
        // same as that for Dir64K3P": the 3-D category blocks sit at or
        // just above 64 KB (the largest — a 31-day month × the 26-product
        // class × the 26-store district — is ~82 KB), so larger caps leave
        // the category structure untouched.
        let cube = SalesCube::table1();
        let dir = DirectionalTiling::without_subtiling(cube.partitions_3p());
        let blocks = dir.category_blocks(&cube.domain).unwrap();
        let max_bytes = blocks
            .iter()
            .map(|b| b.size_bytes(4).unwrap())
            .max()
            .unwrap();
        assert!(max_bytes <= 128 * 1024, "largest 3P block: {max_bytes} B");
        // Most blocks do fit in 64 KB.
        let fitting = blocks
            .iter()
            .filter(|b| b.size_bytes(4).unwrap() <= 64 * 1024)
            .count();
        assert!(
            fitting * 10 >= blocks.len() * 9,
            "{fitting}/{}",
            blocks.len()
        );
    }

    #[test]
    fn table5_has_eight_schemes() {
        let areas: Vec<Domain> = vec![
            "[0:120,80:120,25:60]".parse().unwrap(),
            "[0:120,70:159,25:105]".parse().unwrap(),
        ];
        let schemes = table5_schemes(&areas);
        assert_eq!(schemes.len(), 8);
        assert_eq!(schemes[0].name, "Reg32K");
        assert_eq!(schemes[7].name, "AI256K");
    }
}
