//! The §6.2 areas-of-interest benchmark: a 3-D RGB animation sequence.
//!
//! Table 5: spatial domain `[0:120, 0:159, 0:119]`, 3-byte RGB cells
//! (6.8 MB). The areas of interest follow the head and whole body of the
//! main character across all 121 frames; queries c and d are "unexpected".
//!
//! The paper used a real short animation; we synthesize an equivalent: a
//! character whose body occupies area 2 and whose head occupies area 1,
//! drifting slightly per frame, on a textured background. Only the region
//! geometry and byte volumes matter for the measured quantities.

use tilestore_engine::{Array, CellType, Rgb};
use tilestore_geometry::Domain;

/// Axis index of the frame (time) dimension.
pub const AXIS_FRAME: usize = 0;

/// One query of the Table 5 set.
#[derive(Debug, Clone)]
pub struct AnimationQuery {
    /// Query label `a` … `d`.
    pub label: &'static str,
    /// The query region.
    pub region: Domain,
    /// Whether the query belongs to the declared access pattern (a, b) or
    /// is "unexpected" (c, d).
    pub expected: bool,
    /// Table 5's description.
    pub description: &'static str,
}

/// The animation benchmark workload.
#[derive(Debug, Clone)]
pub struct Animation {
    /// The object's spatial domain.
    pub domain: Domain,
    /// The two areas of interest (head; whole body including head).
    pub areas: Vec<Domain>,
}

impl Animation {
    /// The Table 5 object.
    #[must_use]
    pub fn table5() -> Self {
        Animation {
            domain: "[0:120,0:159,0:119]".parse().expect("static domain"),
            areas: vec![
                "[0:120,80:120,25:60]".parse().expect("static area"),
                "[0:120,70:159,25:105]".parse().expect("static area"),
            ],
        }
    }

    /// The cell type: RGB pixels with black as default.
    #[must_use]
    pub fn cell_type() -> CellType {
        CellType::of::<Rgb>()
    }

    /// Synthesizes the frames.
    #[must_use]
    pub fn generate(&self) -> Array {
        let head = self.areas[0].clone();
        let body = self.areas[1].clone();
        Array::from_fn(self.domain.clone(), |p| {
            let (t, y, x) = (p[0], p[1], p[2]);
            if head.contains_point(p) {
                // Head: skin tone shifting with a per-frame flicker.
                Rgb::new(
                    220u8.wrapping_sub((t % 7) as u8),
                    170,
                    (140 + (x + y) % 40) as u8,
                )
            } else if body.contains_point(p) {
                // Body: clothing texture.
                Rgb::new(40, (80 + (y * 3 + t) % 60) as u8, (160 + x % 30) as u8)
            } else {
                // Background: dim gradient.
                let g = ((x + y + t) % 64) as u8;
                Rgb::new(g / 2, g / 2, g)
            }
        })
        .expect("static domain fits memory")
    }

    /// The Table 5 query set.
    #[must_use]
    pub fn queries(&self) -> Vec<AnimationQuery> {
        vec![
            AnimationQuery {
                label: "a",
                region: self.areas[0].clone(),
                expected: true,
                description: "to the area of interest 1, 523 KB",
            },
            AnimationQuery {
                label: "b",
                region: self.areas[1].clone(),
                expected: true,
                description: "to the area of interest 2, 2.6 MB",
            },
            AnimationQuery {
                label: "c",
                region: "[0:60,0:159,0:119]".parse().expect("static region"),
                expected: false,
                description: "to the first 61 frames, 3.6 MB",
            },
            AnimationQuery {
                label: "d",
                region: self.domain.clone(),
                expected: false,
                description: "to the whole array, 6.8 MB",
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_spec_matches_paper() {
        let anim = Animation::table5();
        let mb = anim.domain.size_bytes(3).unwrap() as f64 / (1024.0 * 1024.0);
        assert!((6.5..7.1).contains(&mb), "array is {mb:.2} MiB");
        assert_eq!(anim.areas.len(), 2);
        // The areas overlap (head is inside the body region's footprint).
        assert!(anim.areas[0].intersects(&anim.areas[1]));
        for a in &anim.areas {
            assert!(anim.domain.contains_domain(a));
            assert_eq!(a.extent(AXIS_FRAME), 121, "areas span all frames");
        }
    }

    #[test]
    fn query_sizes_match_table5() {
        let anim = Animation::table5();
        let qs = anim.queries();
        let kb = |i: usize| qs[i].region.size_bytes(3).unwrap() as f64 / 1024.0;
        assert!((kb(0) - 523.0).abs() < 12.0, "a: {} KB", kb(0));
        assert!(
            (kb(1) / 1024.0 - 2.6).abs() < 0.3,
            "b: {} MB",
            kb(1) / 1024.0
        );
        assert!(
            (kb(2) / 1024.0 - 3.5).abs() < 0.3,
            "c: {} MB",
            kb(2) / 1024.0
        );
        assert!(
            (kb(3) / 1024.0 - 6.8).abs() < 0.3,
            "d: {} MB",
            kb(3) / 1024.0
        );
        assert!(qs[0].expected && qs[1].expected);
        assert!(!qs[2].expected && !qs[3].expected);
    }

    #[test]
    fn generated_frames_distinguish_regions() {
        // Use a shrunken clone to keep the test fast.
        let anim = Animation {
            domain: "[0:5,0:159,0:119]".parse().unwrap(),
            areas: vec![
                "[0:5,80:120,25:60]".parse().unwrap(),
                "[0:5,70:159,25:105]".parse().unwrap(),
            ],
        };
        let frames = anim.generate();
        let head: Rgb = frames
            .get(&tilestore_geometry::Point::from_slice(&[0, 100, 40]))
            .unwrap();
        let bg: Rgb = frames
            .get(&tilestore_geometry::Point::from_slice(&[0, 10, 10]))
            .unwrap();
        assert!(head.r > 200, "head pixels are skin-toned");
        assert!(bg.r < 64, "background is dim");
    }
}
