//! Synthetic workloads reproducing the paper's two benchmarks.

pub mod animation;
pub mod sales;
pub mod sparse;
