//! Sparse-cube workload — the paper's §8 future work: "In the future we
//! will test performance on sparse data with those options [selective
//! compression, partial coverage] activated. Performance gains over
//! regular tiling are expected to be even higher, since arbitrary tiling
//! adapts better to sparse data distributions."
//!
//! The cube reuses the Table 1 category structure but populates only a few
//! dense category clusters (real OLAP cubes concentrate sales in a few
//! product/store combinations); everything else is the default value.

use tilestore_engine::Array;
use tilestore_geometry::Domain;
use tilestore_testkit::Rng;

use super::sales::SalesCube;

/// A sparse variant of the sales cube.
#[derive(Debug, Clone)]
pub struct SparseCube {
    /// The dense cube structure (domain + category partitions).
    pub cube: SalesCube,
    /// The dense clusters (category-aligned sub-cubes holding actual data).
    pub clusters: Vec<Domain>,
    /// Probability that a cell *inside* a cluster is non-zero.
    pub in_cluster_density: f64,
}

impl SparseCube {
    /// A one-year sparse cube with three hot category clusters and ~1%
    /// overall density.
    #[must_use]
    pub fn one_year() -> Self {
        let full = SalesCube::table1();
        let domain: Domain = "[1:365,1:60,1:100]".parse().expect("static domain");
        let cube = SalesCube {
            domain: domain.clone(),
            partitions: full
                .partitions
                .iter()
                .map(|p| {
                    let hi = domain.hi(p.axis);
                    let mut points: Vec<i64> =
                        p.points.iter().copied().filter(|&x| x < hi).collect();
                    points.push(hi);
                    tilestore_tiling::AxisPartition::new(p.axis, points)
                })
                .collect(),
        };
        // Clusters aligned to category blocks: two months x one class x one
        // district each.
        let clusters = vec![
            "[32:90,1:26,1:26]".parse().expect("static"),
            "[121:181,27:41,41:58]".parse().expect("static"),
            "[244:304,42:60,73:88]".parse().expect("static"),
        ];
        SparseCube {
            cube,
            clusters,
            in_cluster_density: 0.35,
        }
    }

    /// Generates the sparse data.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Array {
        let mut rng = Rng::seed_from_u64(seed);
        Array::from_fn(self.cube.domain.clone(), |p| {
            if self.clusters.iter().any(|c| c.contains_point(p)) {
                if rng.gen_bool(self.in_cluster_density) {
                    rng.gen_range(1u32..500)
                } else {
                    0
                }
            } else {
                0
            }
        })
        .expect("domain fits memory")
    }

    /// The query set: one aggregation-style query per cluster plus one
    /// background probe.
    #[must_use]
    pub fn queries(&self) -> Vec<(String, Domain)> {
        let mut queries: Vec<(String, Domain)> = self
            .clusters
            .iter()
            .enumerate()
            .map(|(i, c)| (format!("cluster{}", i + 1), c.clone()))
            .collect();
        queries.push((
            "background".to_string(),
            "[182:243,1:26,89:100]".parse().expect("static"),
        ));
        queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_about_one_percent() {
        let sc = SparseCube::one_year();
        let cluster_cells: u64 = sc.clusters.iter().map(Domain::cells).sum();
        let expected = cluster_cells as f64 * sc.in_cluster_density;
        let total = sc.cube.domain.cells() as f64;
        let density = expected / total;
        assert!(
            (0.005..0.08).contains(&density),
            "density {density:.4} out of the sparse regime"
        );
    }

    #[test]
    fn clusters_are_inside_the_domain_and_disjoint() {
        let sc = SparseCube::one_year();
        for (i, a) in sc.clusters.iter().enumerate() {
            assert!(sc.cube.domain.contains_domain(a));
            for b in &sc.clusters[i + 1..] {
                assert!(!a.intersects(b));
            }
        }
    }

    #[test]
    fn generate_is_deterministic_and_sparse() {
        let sc = SparseCube {
            cube: SalesCube {
                domain: "[1:40,1:20,1:20]".parse().unwrap(),
                partitions: vec![],
            },
            clusters: vec!["[1:10,1:10,1:10]".parse().unwrap()],
            in_cluster_density: 0.5,
        };
        let a = sc.generate(3);
        let b = sc.generate(3);
        assert_eq!(a, b);
        let nonzero = a
            .to_cells::<u32>()
            .unwrap()
            .iter()
            .filter(|&&c| c != 0)
            .count();
        assert!(nonzero > 0);
        assert!(nonzero < 1000, "at most the cluster can be populated");
    }
}
