//! The §6.1 directional-tiling benchmark: 3-D sales data cubes.
//!
//! Table 1 specifies the small cube — 730 days × 60 products × 100 stores
//! of 4-byte cells (16.7 MB) — with category partitions: 24 months, 3
//! product classes, 8 country districts. Table 3 lists the query set a–j.
//! §6.1's closing paragraphs describe the extended cubes: one more year,
//! 240 more products, 200 more shops (375 MB), partitions repeated.

use tilestore_engine::{Array, CellType};
use tilestore_geometry::Domain;
use tilestore_testkit::Rng;
use tilestore_tiling::AxisPartition;

/// Axis index of the time dimension (days).
pub const AXIS_TIME: usize = 0;
/// Axis index of the product dimension.
pub const AXIS_PRODUCT: usize = 1;
/// Axis index of the store dimension.
pub const AXIS_STORE: usize = 2;

/// One query of the Table 3 set.
#[derive(Debug, Clone)]
pub struct SalesQuery {
    /// Query label `a` … `j`.
    pub label: &'static str,
    /// The query region.
    pub region: Domain,
    /// The paper's "Selected (Months, Product classes, Country Districts)"
    /// column.
    pub selected: &'static str,
    /// Whether 2P tiling is expected to execute this query efficiently
    /// (queries b, e, f, h, i impose no restriction on product classes).
    pub favors_2p: bool,
}

/// The sales-cube benchmark workload.
#[derive(Debug, Clone)]
pub struct SalesCube {
    /// The cube's spatial domain.
    pub domain: Domain,
    /// Dimension partitions: months, product classes, country districts.
    pub partitions: Vec<AxisPartition>,
}

/// Month lengths of a non-leap year.
const MONTH_LENGTHS: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn month_points(lo: i64, hi: i64) -> Vec<i64> {
    let mut points = vec![lo];
    let mut day = lo;
    'years: loop {
        for len in MONTH_LENGTHS {
            day += len;
            if day >= hi {
                break 'years;
            }
            points.push(day);
        }
    }
    points.push(hi);
    points
}

/// Repeats a base partition pattern across a longer axis, as §6.1 does for
/// the extended cubes ("with the partition described before repeated").
fn repeat_pattern(base: &[i64], lo: i64, hi: i64) -> Vec<i64> {
    let base_lo = base[0];
    let period = base[base.len() - 1] - base_lo + 1;
    let mut points = Vec::new();
    let mut offset = lo - base_lo;
    'outer: loop {
        for &p in &base[..base.len() - 1] {
            let shifted = p + offset;
            if shifted >= hi {
                break 'outer;
            }
            points.push(shifted);
        }
        offset += period;
        if offset + base_lo >= hi {
            break;
        }
    }
    points.push(hi);
    points
}

impl SalesCube {
    /// The Table 1 cube: `[1:730, 1:60, 1:100]`, 16.7 MB at 4 bytes/cell.
    #[must_use]
    pub fn table1() -> Self {
        let domain: Domain = "[1:730,1:60,1:100]".parse().expect("static domain");
        let partitions = vec![
            AxisPartition::new(AXIS_TIME, month_points(1, 730)),
            AxisPartition::new(AXIS_PRODUCT, vec![1, 27, 42, 60]),
            AxisPartition::new(AXIS_STORE, vec![1, 27, 35, 41, 59, 73, 89, 97, 100]),
        ];
        SalesCube { domain, partitions }
    }

    /// The §6.1 extended cube: one more year, 240 more products, 200 more
    /// shops → `[1:1095, 1:300, 1:300]` (375 MB), partitions repeated.
    #[must_use]
    pub fn extended_full() -> Self {
        Self::extended_with(1095, 300, 300)
    }

    /// A size-reduced extended cube preserving the same shape (for
    /// time-bounded runs); see `repro -- extended --full` for the 375 MB
    /// version.
    #[must_use]
    pub fn extended_reduced() -> Self {
        Self::extended_with(1095, 120, 200)
    }

    fn extended_with(days: i64, products: i64, stores: i64) -> Self {
        let domain =
            Domain::from_bounds(&[(1, days), (1, products), (1, stores)]).expect("static domain");
        let partitions = vec![
            AxisPartition::new(AXIS_TIME, month_points(1, days)),
            AxisPartition::new(AXIS_PRODUCT, repeat_pattern(&[1, 27, 42, 60], 1, products)),
            AxisPartition::new(
                AXIS_STORE,
                repeat_pattern(&[1, 27, 35, 41, 59, 73, 89, 97, 100], 1, stores),
            ),
        ];
        SalesCube { domain, partitions }
    }

    /// The cube's cell type: 4-byte unsigned sales counts.
    #[must_use]
    pub fn cell_type() -> CellType {
        CellType::of::<u32>()
    }

    /// Partitions along two dimensions only — months and country districts
    /// (the paper's "2P" schemes).
    #[must_use]
    pub fn partitions_2p(&self) -> Vec<AxisPartition> {
        self.partitions
            .iter()
            .filter(|p| p.axis != AXIS_PRODUCT)
            .cloned()
            .collect()
    }

    /// Partitions along all three dimensions (the "3P" schemes).
    #[must_use]
    pub fn partitions_3p(&self) -> Vec<AxisPartition> {
        self.partitions.clone()
    }

    /// Generates the cube's data: pseudo-random sales counts, deterministic
    /// for a given seed.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Array {
        let mut rng = Rng::seed_from_u64(seed);
        let cells = self.domain.cells() as usize;
        let mut data = vec![0u8; cells * 4];
        for chunk in data.chunks_exact_mut(4) {
            let sales = rng.gen_range(0u32..500);
            chunk.copy_from_slice(&sales.to_le_bytes());
        }
        Array::from_bytes(self.domain.clone(), 4, data).expect("length matches by construction")
    }

    /// The Table 3 query set (regions exactly as printed in the paper).
    #[must_use]
    pub fn queries(&self) -> Vec<SalesQuery> {
        let full = |axis: usize| -> (i64, i64) {
            let r = self.domain.axis(axis);
            (r.lo(), r.hi())
        };
        let (t_lo, t_hi) = full(AXIS_TIME);
        let (p_lo, p_hi) = full(AXIS_PRODUCT);
        let (s_lo, s_hi) = full(AXIS_STORE);
        let dom = |t: (i64, i64), p: (i64, i64), s: (i64, i64)| {
            Domain::from_bounds(&[t, p, s]).expect("query bounds valid")
        };
        vec![
            SalesQuery {
                label: "a",
                region: dom((32, 59), (28, 42), (28, 35)),
                selected: "1,1,1",
                favors_2p: false,
            },
            SalesQuery {
                label: "b",
                region: dom((32, 59), (p_lo, p_hi), (28, 35)),
                selected: "1,all,1",
                favors_2p: true,
            },
            SalesQuery {
                label: "c",
                region: dom((32, 59), (28, 42), (s_lo, s_hi)),
                selected: "1,1,all",
                favors_2p: false,
            },
            SalesQuery {
                label: "d",
                region: dom((t_lo, t_hi), (28, 42), (28, 35)),
                selected: "all,1,1",
                favors_2p: false,
            },
            SalesQuery {
                label: "e",
                region: dom((32, 59), (p_lo, p_hi), (s_lo, s_hi)),
                selected: "1,all,all",
                favors_2p: true,
            },
            SalesQuery {
                label: "f",
                region: dom((t_lo, t_hi), (p_lo, p_hi), (28, 35)),
                selected: "all,all,1",
                favors_2p: true,
            },
            SalesQuery {
                label: "g",
                region: dom((t_lo, t_hi), (28, 42), (s_lo, s_hi)),
                selected: "all,1,all",
                favors_2p: false,
            },
            SalesQuery {
                label: "h",
                region: dom((182, 365), (p_lo, p_hi), (s_lo, s_hi)),
                selected: "6,all,all",
                favors_2p: true,
            },
            SalesQuery {
                label: "i",
                region: dom((32, 396), (p_lo, p_hi), (s_lo, s_hi)),
                selected: "12,all,all",
                favors_2p: true,
            },
            SalesQuery {
                label: "j",
                region: dom((28, 34), (p_lo, p_hi), (s_lo, s_hi)),
                selected: "1 week,all,all",
                favors_2p: false,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_spec() {
        let cube = SalesCube::table1();
        assert_eq!(cube.domain.cells(), 730 * 60 * 100);
        // 16.7 MB at 4 bytes per cell.
        let mb = cube.domain.size_bytes(4).unwrap() as f64 / (1024.0 * 1024.0);
        assert!((16.0..17.5).contains(&mb), "cube is {mb:.1} MiB");
        // 24 months, 3 product classes, 8 country districts.
        let months = &cube.partitions[0];
        assert_eq!(months.blocks(&cube.domain).unwrap().len(), 24);
        assert_eq!(cube.partitions[1].blocks(&cube.domain).unwrap().len(), 3);
        assert_eq!(cube.partitions[2].blocks(&cube.domain).unwrap().len(), 8);
    }

    #[test]
    fn query_sizes_match_table3() {
        let cube = SalesCube::table1();
        let queries = cube.queries();
        assert_eq!(queries.len(), 10);
        let kb = |label: &str| {
            let q = queries.iter().find(|q| q.label == label).unwrap();
            q.region.size_bytes(4).unwrap() as f64 / 1024.0
        };
        // Table 3 sizes (KB): a=13, b=52.5, c=164, d=342, e=656, f=1400,
        // g=4300, h=4300, i=8500, j=164. Allow small rounding slack.
        assert!((kb("a") - 13.0).abs() < 1.0, "a: {}", kb("a"));
        assert!((kb("b") - 52.5).abs() < 3.0, "b: {}", kb("b"));
        assert!((kb("c") - 164.0).abs() < 5.0, "c: {}", kb("c"));
        assert!((kb("d") - 342.0).abs() < 10.0, "d: {}", kb("d"));
        assert!((kb("e") - 656.0).abs() < 10.0, "e: {}", kb("e"));
        assert!((kb("f") - 1400.0).abs() < 40.0, "f: {}", kb("f"));
        assert!((kb("g") - 4300.0).abs() < 100.0, "g: {}", kb("g"));
        assert!((kb("h") - 4300.0).abs() < 100.0, "h: {}", kb("h"));
        assert!((kb("i") - 8500.0).abs() < 100.0, "i: {}", kb("i"));
        assert!((kb("j") - 164.0).abs() < 5.0, "j: {}", kb("j"));
    }

    #[test]
    fn query_j_straddles_a_month_boundary() {
        // §6.1: "the week starts in one month and ends in another".
        let cube = SalesCube::table1();
        let j = &cube.queries()[9];
        let months = &cube.partitions[0].points;
        let crossed = months[1..months.len() - 1]
            .iter()
            .any(|&cut| j.region.lo(AXIS_TIME) < cut && cut <= j.region.hi(AXIS_TIME));
        assert!(crossed, "query j {} must straddle a month cut", j.region);
    }

    #[test]
    fn extended_full_matches_paper_spec() {
        let cube = SalesCube::extended_full();
        let mb = cube.domain.size_bytes(4).unwrap() as f64 / (1024.0 * 1024.0);
        assert!((370.0..380.0).contains(&mb), "extended cube is {mb:.0} MiB");
        assert_eq!(cube.partitions[0].blocks(&cube.domain).unwrap().len(), 36);
        // Repeated product pattern: 3 classes per 60 products, 300 products.
        let classes = cube.partitions[1].blocks(&cube.domain).unwrap().len();
        assert!(classes >= 15, "got {classes} product classes");
    }

    #[test]
    fn generate_is_deterministic() {
        let cube = SalesCube::table1();
        let small = SalesCube {
            domain: "[1:10,1:10,1:10]".parse().unwrap(),
            partitions: cube.partitions.clone(),
        };
        assert_eq!(small.generate(7), small.generate(7));
        assert_ne!(small.generate(7), small.generate(8));
    }

    #[test]
    fn partition_subsets() {
        let cube = SalesCube::table1();
        assert_eq!(cube.partitions_2p().len(), 2);
        assert_eq!(cube.partitions_3p().len(), 3);
        assert!(cube.partitions_2p().iter().all(|p| p.axis != AXIS_PRODUCT));
    }
}
