//! Plain-text table rendering for the experiment reports.

/// A simple left-padded text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds with millisecond resolution.
#[must_use]
pub fn secs(t: f64) -> String {
    format!("{t:.3}s")
}

/// Formats a speedup factor like the paper's tables (one decimal).
#[must_use]
pub fn speedup(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.1}")
    }
}

/// Formats a byte count human-readably.
#[must_use]
pub fn bytes(n: u64) -> String {
    if n >= 1024 * 1024 {
        format!("{:.1}MB", n as f64 / (1024.0 * 1024.0))
    } else if n >= 1024 {
        format!("{:.1}KB", n as f64 / 1024.0)
    } else {
        format!("{n}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(&["q", "t_o"]);
        t.row(vec!["a".into(), "1.23".into()]);
        t.row(vec!["long-label".into(), "0.1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('q') && lines[0].contains("t_o"));
        assert!(lines[3].starts_with("long-label"));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1.2345), "1.234s");
        assert_eq!(speedup(2.666), "2.7");
        assert_eq!(speedup(f64::INFINITY), "inf");
        assert_eq!(bytes(500), "500B");
        assert_eq!(bytes(52 * 1024 + 512), "52.5KB");
        assert_eq!(bytes(17 * 1024 * 1024), "17.0MB");
    }
}
