//! Reader-latency-under-writer benchmark emitting a machine-readable report.
//!
//! ```text
//! cargo run -p tilestore-bench --release --bin snapshot_bench -- BENCH_PR5.json
//! ```
//!
//! Measures what the snapshot-read redesign bought: the latency a reader
//! sees while a writer continuously re-tiles the same object. Two modes run
//! the identical workload over identical data:
//!
//! * **rwlock baseline** — the database behind a `std::sync::RwLock`, the
//!   pre-redesign architecture: every query takes the read half, every
//!   retile takes the write half, so a reader arriving mid-retile waits for
//!   the whole rewrite;
//! * **snapshot** — the database used directly: readers acquire an epoch
//!   snapshot ([`Database::begin_read`]) and never hold a lock across tile
//!   I/O, while the writer's exclusive section is only the catalog pointer
//!   swap.
//!
//! Samples are paired per mode (one reader thread, one writer thread, same
//! query region and retile cycle), and each mode reports p50/p95 across
//! the same number of reader iterations.
//!
//! `TILESTORE_BENCH_SAMPLES` scales the reader iteration count
//! (`samples × 20`, default 300).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::{Duration, Instant};

use tilestore_engine::Database;
use tilestore_engine::{Array, CellType, MddType};
use tilestore_geometry::Domain;
use tilestore_storage::MemPageStore;
use tilestore_testkit::bench::Report;
use tilestore_testkit::{Json, ToJson};
use tilestore_tiling::{AlignedTiling, Scheme};

/// Side length of the square benchmark array (u32 cells → 1 MiB total).
const SIDE: i64 = 512;

fn ns(d: Duration) -> Json {
    Json::UInt(d.as_nanos() as u64)
}

fn report_json(r: &Report) -> Json {
    Json::obj(vec![
        ("n", r.n.to_json()),
        ("min_ns", ns(r.min)),
        ("median_ns", ns(r.median)),
        ("p95_ns", ns(r.p95)),
        ("max_ns", ns(r.max)),
    ])
}

fn reader_samples() -> usize {
    std::env::var("TILESTORE_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map_or(300, |n| n.max(1) * 20)
}

fn build_db() -> Database<MemPageStore> {
    let db = Database::in_memory().expect("in-memory db");
    db.create_object(
        "grid",
        MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 8192)),
    )
    .unwrap();
    let dom: Domain = format!("[0:{},0:{}]", SIDE - 1, SIDE - 1).parse().unwrap();
    db.insert(
        "grid",
        &Array::from_fn(dom, |p| (p[0] * SIDE + p[1]) as u32).unwrap(),
    )
    .unwrap();
    db
}

/// The writer's endless reorganization: alternate between two tile sizes so
/// every cycle rewrites every tile of the object.
fn retile_cycle(db: &Database<MemPageStore>, flip: bool) {
    let kb = if flip { 4096 } else { 8192 };
    db.retile("grid", Scheme::Aligned(AlignedTiling::regular(2, kb)))
        .unwrap();
}

struct ModeResult {
    report: Report,
    retiles: u64,
}

/// One reader sampling a small range query `samples` times while one writer
/// re-tiles in a loop. `query` is the per-iteration read under measurement.
fn run_mode<Q, W>(samples: usize, query: Q, retile: W) -> ModeResult
where
    Q: Fn(&Domain),
    W: Fn(bool) + Sync,
{
    let region: Domain = "[64:127,64:127]".parse().unwrap();
    let stop = AtomicBool::new(false);
    let retiles = AtomicU64::new(0);
    let mut laps = Vec::with_capacity(samples);
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut flip = false;
            while !stop.load(Ordering::SeqCst) {
                retile(flip);
                retiles.fetch_add(1, Ordering::SeqCst);
                flip = !flip;
            }
        });
        // Warm-up outside the measured window, and wait for the writer to
        // complete a full cycle so measurement definitely overlaps retiles.
        for _ in 0..8 {
            query(&region);
        }
        while retiles.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_micros(50));
        }
        // Pace the reader so the sampled window spans many retile cycles;
        // an unpaced loop would finish before the writer rewrites once and
        // never observe contention.
        for _ in 0..samples {
            let t0 = Instant::now();
            query(&region);
            laps.push(t0.elapsed());
            std::thread::sleep(Duration::from_micros(200));
        }
        stop.store(true, Ordering::SeqCst);
    });
    ModeResult {
        report: Report::from_samples(laps),
        retiles: retiles.load(Ordering::SeqCst),
    }
}

fn main() {
    let out_path = std::env::args().nth(1);
    let samples = reader_samples();

    // --- Baseline: the whole database behind one RwLock. ---
    let baseline = {
        let db = RwLock::new(build_db());
        run_mode(
            samples,
            |region| {
                let guard = db.read().unwrap();
                std::hint::black_box(guard.range_query("grid", region).unwrap());
            },
            |flip| retile_cycle(&db.write().unwrap(), flip),
        )
    };

    // --- Snapshot reads: same workload, no reader-side lock. ---
    let snapshot = {
        let db = build_db();
        run_mode(
            samples,
            |region| {
                let snap = db.begin_read();
                std::hint::black_box(snap.range_query("grid", region).unwrap());
            },
            |flip| retile_cycle(&db, flip),
        )
    };

    let p50_ratio =
        baseline.report.median.as_secs_f64() / snapshot.report.median.as_secs_f64().max(1e-12);
    let p95_ratio =
        baseline.report.p95.as_secs_f64() / snapshot.report.p95.as_secs_f64().max(1e-12);
    println!(
        "reader latency under a concurrent retile ({samples} samples/mode):\n\
         \x20 rwlock baseline: median {:?}, p95 {:?} ({} retiles completed)\n\
         \x20 snapshot reads:  median {:?}, p95 {:?} ({} retiles completed)\n\
         \x20 improvement: {p50_ratio:.2}x at p50, {p95_ratio:.2}x at p95",
        baseline.report.median,
        baseline.report.p95,
        baseline.retiles,
        snapshot.report.median,
        snapshot.report.p95,
        snapshot.retiles,
    );

    let json = Json::obj(vec![
        ("benchmark", Json::Str("snapshot_reads".to_string())),
        ("samples_per_mode", samples.to_json()),
        (
            "reader_under_writer",
            Json::obj(vec![
                (
                    "rwlock_baseline",
                    Json::obj(vec![
                        ("latency", report_json(&baseline.report)),
                        ("retiles_completed", baseline.retiles.to_json()),
                    ]),
                ),
                (
                    "snapshot",
                    Json::obj(vec![
                        ("latency", report_json(&snapshot.report)),
                        ("retiles_completed", snapshot.retiles.to_json()),
                    ]),
                ),
                ("p50_improvement", Json::Float(p50_ratio)),
                ("p95_improvement", Json::Float(p95_ratio)),
            ]),
        ),
        ("metrics", tilestore_obs::metrics().snapshot().to_json()),
    ]);
    if let Some(path) = out_path {
        std::fs::write(&path, json.to_string_pretty()).expect("write report");
        println!("report written to {path}");
    } else {
        println!("{}", json.to_string_pretty());
    }
}
