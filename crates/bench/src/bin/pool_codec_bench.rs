//! PR-8 benchmark: sharded buffer pool + word-wide codec kernels.
//!
//! ```text
//! cargo run -p tilestore-bench --release --bin pool_codec_bench -- BENCH_PR8.json
//! ```
//!
//! Two experiments, each reported as a paired before/after:
//!
//! 1. **Concurrent-client throughput** — the same file-backed database
//!    served over TCP at 1 / 4 / 16 clients, once over a bare
//!    `FilePageStore` (the pre-PR-8 serving path: every page read is a file
//!    read plus a CRC-32 frame verification) and once over the sharded
//!    `CachedFileStore` buffer pool (`Database::open_dir`), where a warm
//!    working set is served from shard-local frames.
//! 2. **Codec throughput** — PackBits encode/decode and delta
//!    forward/inverse in MB/s, scalar reference vs the word-wide kernels,
//!    on the constant-run and ramp workloads the tile codecs exist for.
//!    The kernels are byte-identical (property-pinned); only speed differs.

use std::time::{Duration, Instant};

use tilestore_compress::{delta, packbits};
use tilestore_engine::{
    Array, Catalog, CellType, Database, MddType, SharedDatabase, CATALOG_FILE, PAGES_FILE,
};
use tilestore_geometry::Domain;
use tilestore_server::{serve, Client, RemoteValue, ServerConfig};
use tilestore_storage::FilePageStore;
use tilestore_testkit::bench::Report;
use tilestore_testkit::{tempdir, Json, ToJson};
use tilestore_tiling::{AlignedTiling, Scheme};

/// Side length of the square benchmark array (u32 cells → 1 MiB total).
const SIDE: i64 = 512;

/// Queries per client connection in the throughput experiment.
const QUERIES_PER_CLIENT: usize = 20;

/// Payload size for the codec experiment.
const CODEC_BYTES: usize = 1 << 22; // 4 MiB

/// Timed repetitions per codec measurement (median reported).
const CODEC_SAMPLES: usize = 9;

fn ns(d: Duration) -> Json {
    Json::UInt(d.as_nanos() as u64)
}

fn report_json(r: &Report) -> Json {
    Json::obj(vec![
        ("n", r.n.to_json()),
        ("min_ns", ns(r.min)),
        ("median_ns", ns(r.median)),
        ("p95_ns", ns(r.p95)),
        ("max_ns", ns(r.max)),
    ])
}

/// Medians a timed closure and converts to MB/s over `bytes`.
fn mbps(bytes: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm
    let mut samples = Vec::with_capacity(CODEC_SAMPLES);
    for _ in 0..CODEC_SAMPLES {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    bytes as f64 / 1e6 / median.as_secs_f64().max(1e-12)
}

/// Runs the 1/4/16-client throughput ladder against an already-serving
/// address, returning `(levels-json, rps-per-level)`.
fn throughput_ladder(addr: std::net::SocketAddr) -> (Vec<(String, Json)>, Vec<f64>) {
    let mut levels: Vec<(String, Json)> = Vec::new();
    let mut rps_all = Vec::new();
    for &clients in &[1usize, 4, 16] {
        let wall_start = Instant::now();
        let samples: Vec<Duration> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|t| {
                    s.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        let mut local = Vec::with_capacity(QUERIES_PER_CLIENT);
                        for i in 0..QUERIES_PER_CLIENT {
                            let lo0 = ((t * 31 + i * 13) as i64) % (SIDE - 128);
                            let lo1 = ((t * 17 + i * 7) as i64) % (SIDE - 128);
                            let q = format!(
                                "SELECT grid[{lo0}:{},{lo1}:{}] FROM grid",
                                lo0 + 127,
                                lo1 + 127
                            );
                            let t0 = Instant::now();
                            let got = client.query(&q).expect("query");
                            local.push(t0.elapsed());
                            assert!(matches!(got, RemoteValue::Array { .. }));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let wall = wall_start.elapsed();
        let total = samples.len();
        let report = Report::from_samples(samples);
        let rps = total as f64 / wall.as_secs_f64().max(1e-9);
        println!(
            "  {clients:>2} clients: {total} queries in {:.3}s ({rps:.1} req/s, median {:?})",
            wall.as_secs_f64(),
            report.median
        );
        rps_all.push(rps);
        levels.push((
            format!("clients_{clients}"),
            Json::obj(vec![
                ("clients", (clients as u64).to_json()),
                ("requests", (total as u64).to_json()),
                ("wall_ns", ns(wall)),
                ("requests_per_sec", Json::Float(rps)),
                ("latency", report_json(&report)),
            ]),
        ));
    }
    (levels, rps_all)
}

fn main() {
    let out_path = std::env::args().nth(1);
    let dir = tempdir().expect("tempdir");
    {
        let db = Database::create_dir(dir.path()).expect("create db");
        db.create_object(
            "grid",
            MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 8192)),
        )
        .unwrap();
        let dom: Domain = format!("[0:{},0:{}]", SIDE - 1, SIDE - 1).parse().unwrap();
        db.insert(
            "grid",
            &Array::from_fn(dom.clone(), |p| (p[0] * SIDE + p[1]) as u32).unwrap(),
        )
        .unwrap();
        db.save(dir.path()).expect("save");
    }
    let config = ServerConfig {
        workers: 3,
        max_inflight: 64,
        default_deadline_ms: 60_000,
        ..ServerConfig::default()
    };

    // --- Experiment 1a: throughput over the bare FilePageStore (before). ---
    println!("serving over bare FilePageStore (uncached):");
    let (before_levels, before_rps) = {
        let json = std::fs::read_to_string(dir.path().join(CATALOG_FILE)).expect("read catalog");
        let catalog: Catalog = tilestore_testkit::json::from_str(&json).expect("parse catalog");
        let store =
            FilePageStore::open(dir.path().join(PAGES_FILE), catalog.page_size).expect("open");
        let db = Database::from_catalog(store, catalog);
        let handle = serve(
            SharedDatabase::new(db),
            Some(dir.path().to_path_buf()),
            "127.0.0.1:0",
            config.clone(),
        )
        .expect("serve uncached");
        let addr = handle.addr();
        let out = throughput_ladder(addr);
        let mut shutter = Client::connect(addr).expect("connect");
        shutter.shutdown_server().expect("shutdown");
        handle.join();
        out
    };

    // --- Experiment 1b: throughput over the sharded buffer pool (after). ---
    println!("serving over the sharded CachedFileStore:");
    let (after_levels, after_rps) = {
        let db = Database::open_dir(dir.path()).expect("reopen cached");
        let shards = db.blob_store().page_store().shard_count();
        println!("  pool: {shards} shards");
        let handle = serve(
            SharedDatabase::new(db),
            Some(dir.path().to_path_buf()),
            "127.0.0.1:0",
            config,
        )
        .expect("serve cached");
        let addr = handle.addr();
        let out = throughput_ladder(addr);
        let mut shutter = Client::connect(addr).expect("connect");
        shutter.shutdown_server().expect("shutdown");
        handle.join();
        out
    };
    let speedup_16 = after_rps[2] / before_rps[2].max(1e-9);
    println!(
        "16-client throughput: {:.1} -> {:.1} req/s ({speedup_16:.2}x)",
        before_rps[2], after_rps[2]
    );
    // When the PR-4 serving baseline is on disk (bench.sh runs from the repo
    // root), record the cross-PR speedup the acceptance gate reads.
    let pr4_16 = std::fs::read_to_string("BENCH_PR4.json")
        .ok()
        .and_then(|t| Json::parse(&t).ok())
        .and_then(|j| {
            j.get("concurrency")?
                .get("clients_16")?
                .get("requests_per_sec")?
                .as_f64()
        });
    if let Some(pr4) = pr4_16 {
        println!(
            "vs BENCH_PR4 16-client baseline {pr4:.1} req/s: {:.2}x",
            after_rps[2] / pr4
        );
    }

    // --- Experiment 2: codec MB/s, scalar vs word-wide. ---
    // Constant run: the flat-background case PackBits targets.
    let constant = vec![7u8; CODEC_BYTES];
    // Ramp: strictly rising bytes — an all-literal stream for PackBits, and
    // (as a u16 ramp) the smooth-gradient case the delta shuffle targets.
    let ramp: Vec<u8> = (0..CODEC_BYTES).map(|i| (i % 251) as u8).collect();
    let ramp_u16: Vec<u8> = (0..CODEC_BYTES / 2)
        .flat_map(|v| (v as u16).to_le_bytes())
        .collect();

    let mut codec_json: Vec<(String, Json)> = Vec::new();
    let mut pack_pairs: Vec<(&str, f64, f64)> = Vec::new();
    for (name, data) in [("constant_run", &constant), ("ramp", &ramp)] {
        let encoded = packbits::encode(data);
        let enc_scalar = mbps(data.len(), || {
            std::hint::black_box(packbits::scalar::encode(std::hint::black_box(data)));
        });
        let enc_fast = mbps(data.len(), || {
            std::hint::black_box(packbits::encode(std::hint::black_box(data)));
        });
        let dec_scalar = mbps(data.len(), || {
            std::hint::black_box(
                packbits::scalar::decode(std::hint::black_box(&encoded), data.len()).unwrap(),
            );
        });
        let dec_fast = mbps(data.len(), || {
            std::hint::black_box(
                packbits::decode(std::hint::black_box(&encoded), data.len()).unwrap(),
            );
        });
        // Round-trip MB/s: bytes over the summed encode+decode time.
        let rt_scalar = 1.0 / (1.0 / enc_scalar + 1.0 / dec_scalar);
        let rt_fast = 1.0 / (1.0 / enc_fast + 1.0 / dec_fast);
        println!(
            "packbits {name}: encode {enc_scalar:.0} -> {enc_fast:.0} MB/s, \
             decode {dec_scalar:.0} -> {dec_fast:.0} MB/s, \
             round-trip {rt_scalar:.0} -> {rt_fast:.0} MB/s ({:.2}x)",
            rt_fast / rt_scalar
        );
        pack_pairs.push((name, rt_scalar, rt_fast));
        codec_json.push((
            format!("packbits_{name}"),
            Json::obj(vec![
                ("bytes", (data.len() as u64).to_json()),
                ("encode_scalar_mbps", Json::Float(enc_scalar)),
                ("encode_word_wide_mbps", Json::Float(enc_fast)),
                ("decode_scalar_mbps", Json::Float(dec_scalar)),
                ("decode_word_wide_mbps", Json::Float(dec_fast)),
                ("round_trip_scalar_mbps", Json::Float(rt_scalar)),
                ("round_trip_word_wide_mbps", Json::Float(rt_fast)),
                ("round_trip_speedup", Json::Float(rt_fast / rt_scalar)),
            ]),
        ));
    }
    for (name, data, cell_size) in [
        ("ramp_u16", &ramp_u16, 2usize),
        ("ramp_u64", &ramp_u16, 8usize),
    ] {
        let deltas = delta::forward(data, cell_size).unwrap();
        let fwd_scalar = mbps(data.len(), || {
            std::hint::black_box(
                delta::scalar::forward(std::hint::black_box(data), cell_size).unwrap(),
            );
        });
        let fwd_fast = mbps(data.len(), || {
            std::hint::black_box(delta::forward(std::hint::black_box(data), cell_size).unwrap());
        });
        let inv_scalar = mbps(data.len(), || {
            std::hint::black_box(
                delta::scalar::inverse(std::hint::black_box(&deltas), cell_size).unwrap(),
            );
        });
        let inv_fast = mbps(data.len(), || {
            std::hint::black_box(delta::inverse(std::hint::black_box(&deltas), cell_size).unwrap());
        });
        println!(
            "delta {name} (cell {cell_size}): forward {fwd_scalar:.0} -> {fwd_fast:.0} MB/s, \
             inverse {inv_scalar:.0} -> {inv_fast:.0} MB/s"
        );
        codec_json.push((
            format!("delta_{name}"),
            Json::obj(vec![
                ("bytes", (data.len() as u64).to_json()),
                ("cell_size", (cell_size as u64).to_json()),
                ("forward_scalar_mbps", Json::Float(fwd_scalar)),
                ("forward_blocked_mbps", Json::Float(fwd_fast)),
                ("inverse_scalar_mbps", Json::Float(inv_scalar)),
                ("inverse_blocked_mbps", Json::Float(inv_fast)),
                (
                    "forward_speedup",
                    Json::Float(fwd_fast / fwd_scalar.max(1e-9)),
                ),
                (
                    "inverse_speedup",
                    Json::Float(inv_fast / inv_scalar.max(1e-9)),
                ),
            ]),
        ));
    }

    let report = Json::obj(vec![
        ("bench", Json::Str("pool_codec_bench".to_string())),
        (
            "array",
            Json::Str(format!("{SIDE}x{SIDE} u32, regular 8 KiB tiles")),
        ),
        (
            "concurrency",
            Json::obj(vec![
                ("before_uncached_file_store", Json::Object(before_levels)),
                ("after_sharded_pool", Json::Object(after_levels)),
                ("speedup_16_clients", Json::Float(speedup_16)),
                (
                    "pr4_baseline_16_clients_rps",
                    pr4_16.map_or(Json::Null, Json::Float),
                ),
                (
                    "speedup_16_clients_vs_pr4",
                    pr4_16.map_or(Json::Null, |pr4| Json::Float(after_rps[2] / pr4)),
                ),
            ]),
        ),
        ("codecs", Json::Object(codec_json)),
        ("metrics", tilestore_obs::metrics().snapshot().to_json()),
    ]);

    // Guardrails mirroring the PR acceptance: the word-wide kernels must be
    // at least 2x on both PackBits workloads.
    for (name, rt_scalar, rt_fast) in &pack_pairs {
        assert!(
            rt_fast >= &(2.0 * rt_scalar),
            "packbits {name}: round-trip {rt_fast:.0} MB/s < 2x scalar {rt_scalar:.0} MB/s"
        );
    }

    let text = report.to_string_pretty();
    match out_path {
        Some(path) => {
            std::fs::write(&path, format!("{text}\n")).expect("write report");
            println!("wrote {path}");
        }
        None => println!("{text}"),
    }
}
