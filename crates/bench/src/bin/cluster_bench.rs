//! PR-9 benchmark: sharded scatter-gather serving.
//!
//! ```text
//! cargo run -p tilestore-bench --release --bin cluster_bench -- BENCH_PR9.json
//! ```
//!
//! The same 512×512 u32 array as BENCH_PR8, partitioned row-wise over
//! 1 / 2 / 4 file-backed engine shards behind one `serve_cluster` endpoint,
//! is hammered by 16 concurrent wire clients with a serving-style read mix:
//! small seam-straddling range reads (16×16 cells) interleaved with scalar
//! aggregates (`sum_cells` over a 32×32 window). A plain single-engine
//! `serve` runs the identical workload first as the in-report control.
//!
//! The report records requests/sec per shard count plus the ratio against
//! the BENCH_PR8 single-engine 16-client figure (2396 req/s, 128×128-cell
//! reads). The PR-8 workload moves 64 KiB per response; this one moves
//! ~1 KiB — the mix a coordinator actually sees when many users each pull
//! small windows — so the cross-report ratio compares serving paths, not
//! payload sizes. The like-for-like number is `engine_single` below.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tilestore_cluster::{serve_cluster, ClusterConfig, Coordinator, ShardBackend, ShardMap};
use tilestore_engine::{Array, CellType, Database, MddType, SharedDatabase};
use tilestore_exec::ThreadPool;
use tilestore_geometry::{DefDomain, Domain};
use tilestore_server::{serve, Client, RemoteValue, ServerConfig};
use tilestore_testkit::bench::Report;
use tilestore_testkit::{tempdir, Json, ToJson};
use tilestore_tiling::{AlignedTiling, Scheme};

/// Side length of the square benchmark array (u32 cells → 1 MiB total).
const SIDE: i64 = 512;

/// Concurrent wire clients, matching the BENCH_PR8 top rung.
const CLIENTS: usize = 16;

/// Queries per client connection.
const QUERIES_PER_CLIENT: usize = 25;

/// 16-client single-engine requests/sec recorded in BENCH_PR8 (sharded
/// buffer pool, 128×128-cell reads).
const PR8_BASELINE_RPS: f64 = 2396.39;

fn ns(d: Duration) -> Json {
    Json::UInt(d.as_nanos() as u64)
}

fn report_json(r: &Report) -> Json {
    Json::obj(vec![
        ("n", r.n.to_json()),
        ("min_ns", ns(r.min)),
        ("median_ns", ns(r.median)),
        ("p95_ns", ns(r.p95)),
        ("max_ns", ns(r.max)),
    ])
}

fn grid() -> Array {
    let dom: Domain = format!("[0:{},0:{}]", SIDE - 1, SIDE - 1).parse().unwrap();
    Array::from_fn(dom, |p| (p[0] * SIDE + p[1]) as u32).unwrap()
}

fn mdd_type() -> MddType {
    MddType::new(CellType::of::<u32>(), DefDomain::unlimited(2).unwrap())
}

fn scheme() -> Scheme {
    Scheme::Aligned(AlignedTiling::regular(2, 8192))
}

/// The i-th query for client `t`: mostly 16×16 range reads whose row
/// window is chosen to straddle the 2- and 4-shard seams (rows 128, 256,
/// 384), every fourth an aggregate over a 32×32 window.
fn statement(t: usize, i: usize) -> String {
    let seam = [128i64, 256, 384][(t + i) % 3];
    let lo0 = (seam - 8 + ((t * 7 + i * 3) as i64 % 17) - 8).clamp(0, SIDE - 33);
    let lo1 = ((t * 31 + i * 13) as i64 * 11) % (SIDE - 33);
    if i % 4 == 3 {
        format!(
            "SELECT sum_cells(grid[{lo0}:{},{lo1}:{}]) FROM grid",
            lo0 + 31,
            lo1 + 31
        )
    } else {
        format!(
            "SELECT grid[{lo0}:{},{lo1}:{}] FROM grid",
            lo0 + 15,
            lo1 + 15
        )
    }
}

/// Runs the 16-client workload against an already-serving address.
fn hammer(addr: std::net::SocketAddr) -> Json {
    let wall_start = Instant::now();
    let samples: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut local = Vec::with_capacity(QUERIES_PER_CLIENT);
                    for i in 0..QUERIES_PER_CLIENT {
                        let q = statement(t, i);
                        let t0 = Instant::now();
                        let got = client.query(&q).expect("query");
                        local.push(t0.elapsed());
                        assert!(matches!(
                            got,
                            RemoteValue::Array { .. } | RemoteValue::Number(_)
                        ));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall = wall_start.elapsed();
    let total = samples.len();
    let report = Report::from_samples(samples);
    let rps = total as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "  {CLIENTS} clients: {total} queries in {:.3}s ({rps:.1} req/s, median {:?})",
        wall.as_secs_f64(),
        report.median
    );
    Json::obj(vec![
        ("clients", (CLIENTS as u64).to_json()),
        ("requests", (total as u64).to_json()),
        ("wall_ns", ns(wall)),
        ("requests_per_sec", Json::Float(rps)),
        (
            "speedup_vs_pr8_baseline",
            Json::Float(rps / PR8_BASELINE_RPS),
        ),
        ("latency", report_json(&report)),
    ])
}

/// One cluster run: `shards` file-backed engines behind `serve_cluster`.
fn cluster_run(shards: usize) -> Json {
    let dir = tempdir().expect("tempdir");
    let map = ShardMap::even(0, shards, 0, SIDE as u64 / shards as u64).expect("map");
    let backends = (0..shards)
        .map(|k| {
            let shard_dir = dir.path().join(format!("shard-{k}"));
            let db = Database::create_dir(&shard_dir).expect("create shard");
            ShardBackend::Local(SharedDatabase::new(db))
        })
        .collect();
    let coord = Coordinator::new(map, backends, Arc::new(ThreadPool::new(2))).expect("coord");
    coord.create_object("grid", mdd_type(), scheme()).unwrap();
    coord.insert("grid", &grid()).unwrap();
    coord.save_local(dir.path()).unwrap();

    println!("cluster, {shards} shard(s):");
    let handle = serve_cluster(
        Arc::new(coord),
        Some(dir.path().to_path_buf()),
        "127.0.0.1:0",
        ClusterConfig::default(),
    )
    .expect("serve cluster");
    let out = hammer(handle.addr());
    handle.shutdown();
    out
}

/// Control: one plain engine behind the ordinary `serve`, same workload.
fn single_engine_run() -> Json {
    let dir = tempdir().expect("tempdir");
    {
        let db = Database::create_dir(dir.path()).expect("create db");
        db.create_object("grid", mdd_type(), scheme()).unwrap();
        db.insert("grid", &grid()).unwrap();
        db.save(dir.path()).expect("save");
    }
    let db = Database::open_dir(dir.path()).expect("reopen");
    println!("single engine (plain serve):");
    let handle = serve(
        SharedDatabase::new(db),
        Some(dir.path().to_path_buf()),
        "127.0.0.1:0",
        ServerConfig {
            workers: 3,
            max_inflight: 64,
            default_deadline_ms: 60_000,
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();
    let out = hammer(addr);
    let mut shutter = Client::connect(addr).expect("connect");
    shutter.shutdown_server().expect("shutdown");
    handle.join();
    out
}

fn main() {
    let out_path = std::env::args().nth(1);

    let engine_single = single_engine_run();
    let mut cluster_levels: Vec<(String, Json)> = Vec::new();
    for shards in [1usize, 2, 4] {
        cluster_levels.push((format!("shards_{shards}"), cluster_run(shards)));
    }

    let report = Json::obj(vec![
        ("bench", Json::Str("cluster_bench".into())),
        (
            "array",
            Json::Str("512x512 u32, regular 8 KiB tiles, row-sharded".into()),
        ),
        (
            "workload",
            Json::Str(
                "16 clients x 25 queries: 16x16-cell seam-straddling range \
                 reads, every 4th a sum_cells over a 32x32 window"
                    .into(),
            ),
        ),
        ("pr8_baseline_rps", Json::Float(PR8_BASELINE_RPS)),
        (
            "pr8_baseline_note",
            Json::Str(
                "BENCH_PR8 clients_16 figure (128x128-cell reads); \
                 engine_single below is the same-workload control"
                    .into(),
            ),
        ),
        ("engine_single", engine_single),
        ("cluster", Json::Object(cluster_levels)),
    ]);

    let rendered = report.to_string_pretty();
    match out_path {
        Some(path) => {
            std::fs::write(&path, format!("{rendered}\n")).expect("write report");
            println!("report written to {path}");
        }
        None => println!("{rendered}"),
    }
}
