//! Serving-layer benchmark emitting a machine-readable report.
//!
//! ```text
//! cargo run -p tilestore-bench --release --bin server_bench -- BENCH_PR4.json
//! ```
//!
//! Two experiments over one file-backed database:
//!
//! 1. **Serial vs parallel tile fetch** — the same large range query with
//!    and without an executor attached to the engine. The parallel path
//!    splits the region into bands and streams tiles through per-task
//!    scratch buffers straight into the result slab, so it must win even
//!    on one core. Samples are *paired*: each iteration times one serial
//!    and one parallel query back to back (two handles on the same
//!    database files), so CPU-frequency drift between measurement blocks
//!    cannot masquerade as a speedup or a slowdown.
//! 2. **Concurrent-client throughput** — the database served over TCP, with
//!    1 / 4 / 16 clients issuing range queries; per-request latency
//!    (median/p95 across all clients) and aggregate requests/second.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tilestore_engine::{Array, CellType, Database, MddType, SharedDatabase};
use tilestore_exec::ThreadPool;
use tilestore_geometry::Domain;
use tilestore_server::{serve, Client, RemoteValue, ServerConfig};
use tilestore_testkit::bench::Report;
use tilestore_testkit::{tempdir, Json, ToJson};
use tilestore_tiling::{AlignedTiling, Scheme};

/// Side length of the square benchmark array (u32 cells → 1 MiB total).
const SIDE: i64 = 512;

/// Queries per client connection in the throughput experiment.
const QUERIES_PER_CLIENT: usize = 20;

fn ns(d: Duration) -> Json {
    Json::UInt(d.as_nanos() as u64)
}

fn report_json(r: &Report) -> Json {
    Json::obj(vec![
        ("n", r.n.to_json()),
        ("min_ns", ns(r.min)),
        ("median_ns", ns(r.median)),
        ("p95_ns", ns(r.p95)),
        ("max_ns", ns(r.max)),
    ])
}

/// Paired samples per configuration in the serial-vs-parallel experiment.
const PAIRED_SAMPLES: usize = 41;

fn main() {
    let out_path = std::env::args().nth(1);
    let dir = tempdir().expect("tempdir");
    {
        let db = Database::create_dir(dir.path()).expect("create db");
        db.create_object(
            "grid",
            MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
            Scheme::Aligned(AlignedTiling::regular(2, 8192)),
        )
        .unwrap();
        let dom: Domain = format!("[0:{},0:{}]", SIDE - 1, SIDE - 1).parse().unwrap();
        db.insert(
            "grid",
            &Array::from_fn(dom.clone(), |p| (p[0] * SIDE + p[1]) as u32).unwrap(),
        )
        .unwrap();
        db.save(dir.path()).expect("save");
    }

    // --- Experiment 1: serial vs parallel large-range query (paired). ---
    let region: Domain = format!("[0:{},0:{}]", SIDE - 1, SIDE - 1).parse().unwrap();
    let (serial, parallel, speedup) = {
        let db_serial = Database::open_dir(dir.path()).expect("open serial handle");
        let db_parallel = Database::open_dir(dir.path()).expect("open parallel handle");
        db_parallel.set_executor(Arc::new(ThreadPool::new(3)));
        for _ in 0..5 {
            db_serial.range_query("grid", &region).unwrap();
            db_parallel.range_query("grid", &region).unwrap();
        }
        let mut serial_ns = Vec::with_capacity(PAIRED_SAMPLES);
        let mut parallel_ns = Vec::with_capacity(PAIRED_SAMPLES);
        let mut ratios = Vec::with_capacity(PAIRED_SAMPLES);
        for _ in 0..PAIRED_SAMPLES {
            let t0 = Instant::now();
            std::hint::black_box(db_serial.range_query("grid", &region).unwrap());
            let s = t0.elapsed();
            let t0 = Instant::now();
            std::hint::black_box(db_parallel.range_query("grid", &region).unwrap());
            let p = t0.elapsed();
            serial_ns.push(s);
            parallel_ns.push(p);
            ratios.push(s.as_secs_f64() / p.as_secs_f64().max(1e-12));
        }
        ratios.sort_by(f64::total_cmp);
        (
            Report::from_samples(serial_ns),
            Report::from_samples(parallel_ns),
            ratios[ratios.len() / 2],
        )
    };
    println!(
        "parallel speedup over serial (paired median): {speedup:.2}x \
         (serial median {:?}, parallel median {:?})",
        serial.median, parallel.median
    );

    // --- Experiment 2: concurrent clients over TCP. ---
    let db = Database::open_dir(dir.path()).expect("reopen for serving");
    let handle = serve(
        SharedDatabase::new(db),
        Some(dir.path().to_path_buf()),
        "127.0.0.1:0",
        ServerConfig {
            workers: 3,
            max_inflight: 64,
            default_deadline_ms: 60_000,
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();

    let mut concurrency_levels: Vec<(String, Json)> = Vec::new();
    for &clients in &[1usize, 4, 16] {
        let wall_start = Instant::now();
        let samples: Vec<Duration> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|t| {
                    s.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        let mut local = Vec::with_capacity(QUERIES_PER_CLIENT);
                        for i in 0..QUERIES_PER_CLIENT {
                            let lo0 = ((t * 31 + i * 13) as i64) % (SIDE - 128);
                            let lo1 = ((t * 17 + i * 7) as i64) % (SIDE - 128);
                            let q = format!(
                                "SELECT grid[{lo0}:{},{lo1}:{}] FROM grid",
                                lo0 + 127,
                                lo1 + 127
                            );
                            let t0 = Instant::now();
                            let got = client.query(&q).expect("query");
                            local.push(t0.elapsed());
                            assert!(matches!(got, RemoteValue::Array { .. }));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let wall = wall_start.elapsed();
        let total = samples.len();
        let report = Report::from_samples(samples);
        let rps = total as f64 / wall.as_secs_f64().max(1e-9);
        println!(
            "{clients:>2} clients: {total} queries in {:.3}s ({rps:.1} req/s, median {:?})",
            wall.as_secs_f64(),
            report.median
        );
        concurrency_levels.push((
            format!("clients_{clients}"),
            Json::obj(vec![
                ("clients", (clients as u64).to_json()),
                ("requests", (total as u64).to_json()),
                ("wall_ns", ns(wall)),
                ("requests_per_sec", Json::Float(rps)),
                ("latency", report_json(&report)),
            ]),
        ));
    }
    let mut shutter = Client::connect(addr).expect("connect");
    shutter.shutdown_server().expect("shutdown");
    handle.join();

    let report = Json::obj(vec![
        ("bench", Json::Str("server_bench".to_string())),
        (
            "array",
            Json::Str(format!("{SIDE}x{SIDE} u32, regular 8 KiB tiles")),
        ),
        (
            "large_range_query",
            Json::obj(vec![
                (
                    "method",
                    Json::Str("paired interleaved samples".to_string()),
                ),
                ("serial", report_json(&serial)),
                ("parallel", report_json(&parallel)),
                ("parallel_speedup_median", Json::Float(speedup)),
            ]),
        ),
        ("concurrency", Json::Object(concurrency_levels)),
        ("metrics", tilestore_obs::metrics().snapshot().to_json()),
    ]);

    let text = report.to_string_pretty();
    match out_path {
        Some(path) => {
            std::fs::write(&path, format!("{text}\n")).expect("write report");
            println!("wrote {path}");
        }
        None => println!("{text}"),
    }
}
