//! Fixed-seed micro-benchmark harness emitting a machine-readable report.
//!
//! ```text
//! cargo run -p tilestore-bench --release --bin microbench -- BENCH_PR2.json
//! ```
//!
//! Runs a small deterministic workload set (insert, clustered query, full
//! scan, statistic re-partitioning) through the testkit bench runner and
//! writes one JSON document with wall-clock median/p95 per workload plus a
//! snapshot of the observability metrics accumulated while benching.
//! `TILESTORE_BENCH_SAMPLES` bounds the per-workload sample count.

use std::time::Duration;

use tilestore_engine::{Array, CellType, Database, MddType};
use tilestore_geometry::Domain;
use tilestore_storage::MemPageStore;
use tilestore_testkit::bench::{Group, Report};
use tilestore_testkit::{Json, Rng, ToJson};
use tilestore_tiling::{AccessRecord, AlignedTiling, Scheme, StatisticTiling, TilingStrategy};

/// Fixed seed so every run benches the identical workload.
const SEED: u64 = 0x1CDE_1999;

/// Side length of the square benchmark array.
const SIDE: i64 = 128;

fn ns(d: Duration) -> Json {
    Json::UInt(d.as_nanos() as u64)
}

fn report_json(r: &Report) -> Json {
    Json::obj(vec![
        ("n", r.n.to_json()),
        ("min_ns", ns(r.min)),
        ("median_ns", ns(r.median)),
        ("p95_ns", ns(r.p95)),
        ("max_ns", ns(r.max)),
    ])
}

fn workload_data() -> Array {
    let dom: Domain = format!("[0:{},0:{}]", SIDE - 1, SIDE - 1).parse().unwrap();
    Array::from_fn(dom, |p| (p[0] * SIDE + p[1]) as u32).unwrap()
}

fn fresh_db(data: &Array) -> Database<MemPageStore> {
    let db = Database::in_memory().unwrap();
    db.create_object(
        "bench",
        MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 4096)),
    )
    .unwrap();
    db.insert("bench", data).unwrap();
    db
}

/// Deterministic clustered query set: small regions drawn around a hot spot.
fn clustered_queries(n: usize) -> Vec<Domain> {
    let mut rng = Rng::seed_from_u64(SEED);
    (0..n)
        .map(|_| {
            let x = 16 + (rng.next_u64() % 8) as i64;
            let y = 16 + (rng.next_u64() % 8) as i64;
            format!("[{x}:{},{y}:{}]", x + 23, y + 23).parse().unwrap()
        })
        .collect()
}

fn main() {
    let out_path = std::env::args().nth(1);
    let data = workload_data();
    let queries = clustered_queries(16);

    let mut group = Group::new("microbench");
    group.sample_size(15);

    let mut workloads: Vec<(&str, Report)> = Vec::new();

    // 1. Insert: tile + store the full array into a fresh database.
    let r = group.bench("insert_128x128_u32_regular4k", || fresh_db(&data));
    workloads.push(("insert_128x128_u32_regular4k", r));

    // 2. Clustered range queries against a warm database.
    let db = fresh_db(&data);
    let r = group.bench("query_clustered_24x24", || {
        for q in &queries {
            db.range_query("bench", q).unwrap();
        }
    });
    workloads.push(("query_clustered_24x24", r));

    // 3. Full scan of the object.
    let full: Domain = format!("[0:{},0:{}]", SIDE - 1, SIDE - 1).parse().unwrap();
    let r = group.bench("query_full_scan", || {
        db.range_query("bench", &full).unwrap()
    });
    workloads.push(("query_full_scan", r));

    // 4. Statistic partitioning from a recorded-access shaped log (§5.2).
    let records: Vec<AccessRecord> = queries
        .iter()
        .map(|q| AccessRecord::new(q.clone(), 4))
        .collect();
    let r = group.bench("statistic_partition", || {
        let tiling = StatisticTiling::new(records.clone(), 4, 2, 64 * 1024);
        tiling.partition(&full, 4).unwrap()
    });
    workloads.push(("statistic_partition", r));

    let report = Json::obj(vec![
        ("bench", Json::Str("microbench".to_string())),
        ("seed", SEED.to_json()),
        (
            "workloads",
            Json::Object(
                workloads
                    .iter()
                    .map(|(name, r)| ((*name).to_string(), report_json(r)))
                    .collect(),
            ),
        ),
        ("metrics", tilestore_obs::metrics().snapshot().to_json()),
    ]);

    let text = report.to_string_pretty();
    match out_path {
        Some(path) => {
            std::fs::write(&path, format!("{text}\n")).expect("write report");
            println!("wrote {path}");
        }
        None => println!("{text}"),
    }
}
