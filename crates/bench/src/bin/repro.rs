//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! ```text
//! cargo run -p tilestore-bench --release --bin repro -- all
//! cargo run -p tilestore-bench --release --bin repro -- table4
//! cargo run -p tilestore-bench --release --bin repro -- extended --full
//! ```
//!
//! Subcommands: `table1 table2 table3 table4 fig7 extended table5 table6
//! fig8 sparse ablate-merge all`. Add `--json` for machine-readable output of the
//! measurement-backed artifacts.

use std::collections::BTreeMap;

use tilestore_bench::harness::{best_by_prefix, speedups, Experiment, QuerySpec, SchemeResult};
use tilestore_bench::report::{bytes, secs, speedup, TextTable};
use tilestore_bench::schemes::{table2_schemes, table5_schemes, NamedScheme};
use tilestore_bench::workloads::animation::Animation;
use tilestore_bench::workloads::sales::SalesCube;
use tilestore_bench::workloads::sparse::SparseCube;
use tilestore_compress::CompressionPolicy;
use tilestore_engine::Array;
use tilestore_storage::CostModel;
use tilestore_tiling::{AreasOfInterestTiling, Scheme};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let full = args.iter().any(|a| a == "--full");
    let command = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or("all", String::as_str);

    let run = |name: &str| command == name || command == "all";
    if run("table1") {
        table1();
    }
    if run("table2") {
        table2();
    }
    if run("table3") {
        table3();
    }
    if run("table4") || run("fig7") {
        table4_and_fig7(command, json);
    }
    if run("extended") {
        extended(full, json);
    }
    if run("table5") {
        table5();
    }
    if run("table6") || run("fig8") {
        table6_and_fig8(command, json);
    }
    if run("sparse") {
        sparse(json);
    }
    if run("ablate-merge") {
        ablate_merge();
    }
    if ![
        "table1",
        "table2",
        "table3",
        "table4",
        "fig7",
        "extended",
        "table5",
        "table6",
        "fig8",
        "sparse",
        "ablate-merge",
        "all",
    ]
    .contains(&command)
    {
        eprintln!(
            "unknown command {command:?}; expected one of table1 table2 table3 table4 \
             fig7 extended table5 table6 fig8 ablate-merge all (flags: --json --full)"
        );
        std::process::exit(2);
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Table 1: benchmark data cube specification.
fn table1() {
    banner("Table 1 — Benchmark data cube specification");
    let cube = SalesCube::table1();
    let mut t = TextTable::new(&["Dim", "Cells", "Categories", "Partition points"]);
    let cats = ["Months", "Product classes", "Country districts"];
    let names = ["Days", "Products", "Stores"];
    for (i, p) in cube.partitions.iter().enumerate() {
        let blocks = p.blocks(&cube.domain).expect("static partitions are valid");
        let pts = if p.points.len() > 6 {
            format!(
                "[{},{},...,{}] ({} points)",
                p.points[0],
                p.points[1],
                p.points.last().expect("non-empty"),
                p.points.len()
            )
        } else {
            format!("{:?}", p.points)
        };
        t.row(vec![
            format!("{}", i + 1),
            format!("{} ({})", names[i], cube.domain.extent(i)),
            format!("{} ({})", cats[i], blocks.len()),
            pts,
        ]);
    }
    print!("{}", t.render());
    println!(
        "Cube: {} = {} cells x 4 B = {}",
        cube.domain,
        cube.domain.cells(),
        bytes(cube.domain.size_bytes(4).expect("fits u64"))
    );
}

/// Table 2: tiling schemes and the tile counts they produce.
fn table2() {
    banner("Table 2 — Tiling schemes (tile inventory over the 16.7MB cube)");
    let cube = SalesCube::table1();
    let data = placeholder_array(&cube);
    let exp = sales_experiment(&data, &cube);
    let schemes = table2_schemes(&cube.partitions_2p(), &cube.partitions_3p());
    let mut t = TextTable::new(&["Scheme", "MaxTileSize", "Tiles", "Largest tile"]);
    for s in &schemes {
        let (n, max) = exp.tile_counts(s).expect("schemes are valid for the cube");
        let cap = match &s.scheme {
            Scheme::Aligned(a) => a.max_tile_size,
            Scheme::Directional(d) => d.max_tile_size,
            _ => 0,
        };
        t.row(vec![s.name.clone(), bytes(cap), n.to_string(), bytes(max)]);
    }
    print!("{}", t.render());
}

/// Table 3: the query set.
fn table3() {
    banner("Table 3 — Queries for the directional tiling test");
    let cube = SalesCube::table1();
    let mut t = TextTable::new(&["Query", "Region", "Size", "Selected (M,P,D)"]);
    for q in cube.queries() {
        t.row(vec![
            q.label.to_string(),
            q.region.to_string(),
            bytes(q.region.size_bytes(4).expect("fits u64")),
            q.selected.to_string(),
        ]);
    }
    print!("{}", t.render());
}

fn placeholder_array(cube: &SalesCube) -> Array {
    cube.generate(42)
}

fn sales_experiment<'a>(data: &'a Array, cube: &SalesCube) -> Experiment<'a> {
    Experiment {
        data,
        cell_type: SalesCube::cell_type(),
        queries: cube
            .queries()
            .into_iter()
            .map(|q| QuerySpec {
                label: q.label.to_string(),
                region: q.region,
            })
            .collect(),
        model: CostModel::classic_disk(),
        compression: CompressionPolicy::None,
    }
}

fn print_speedup_table(title: &str, fast: &SchemeResult, slow: &SchemeResult) {
    banner(title);
    let rows = speedups(fast, slow);
    let mut t = TextTable::new(&["", "a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]);
    for (metric, pick) in [("t_o", 0usize), ("t_totalaccess", 1), ("t_totalcpu", 2)] {
        let mut cells = vec![metric.to_string()];
        for r in &rows {
            let v = match pick {
                0 => r.t_o,
                1 => r.total_access,
                _ => r.total_cpu,
            };
            cells.push(speedup(v));
        }
        // Pad short query sets (Table 6 has only a–d).
        while cells.len() < 11 {
            cells.push(String::new());
        }
        t.row(cells);
    }
    print!("{}", t.render());
    println!(
        "Average speedup of {} over {}: {:.1} (t_totalaccess), {:.1} (t_totalcpu)",
        fast.scheme,
        slow.scheme,
        slow.mean_total_access() / fast.mean_total_access(),
        slow.mean_total_cpu() / fast.mean_total_cpu(),
    );
}

fn print_times_series(title: &str, results: &[&SchemeResult], labels: &[&str]) {
    banner(title);
    let mut t = TextTable::new(&["Scheme", "Query", "t_ix", "t_o", "t_cpu", "t_totalcpu"]);
    for r in results {
        for q in &r.queries {
            if labels.contains(&q.label.as_str()) {
                t.row(vec![
                    r.scheme.clone(),
                    q.label.clone(),
                    secs(q.times.t_ix),
                    secs(q.times.t_o),
                    secs(q.times.t_cpu),
                    secs(q.total_cpu()),
                ]);
            }
        }
    }
    print!("{}", t.render());
}

/// Table 4 + Figure 7: the directional tiling experiment.
fn table4_and_fig7(command: &str, json: bool) {
    let cube = SalesCube::table1();
    let data = placeholder_array(&cube);
    let exp = sales_experiment(&data, &cube);
    let schemes = table2_schemes(&cube.partitions_2p(), &cube.partitions_3p());
    eprintln!(
        "[running {} schemes x 10 queries on the 16.7MB cube ...]",
        schemes.len()
    );
    let results = exp.run(&schemes).expect("experiment must run");

    let by_name: BTreeMap<&str, &SchemeResult> =
        results.iter().map(|r| (r.scheme.as_str(), r)).collect();
    let best_reg = best_by_prefix(&results, "Reg").expect("regular schemes present");
    let best_dir = best_by_prefix(&results, "Dir").expect("directional schemes present");
    println!(
        "\nBest regular scheme (mean t_totalcpu): {}; best directional: {}",
        best_reg.scheme, best_dir.scheme
    );

    let dir64k3p = by_name["Dir64K3P"];
    let reg32k = by_name["Reg32K"];
    if command == "table4" || command == "all" {
        print_speedup_table(
            "Table 4 — Speedup of Dir64K3P over Reg32K",
            dir64k3p,
            reg32k,
        );
    }
    if command == "fig7" || command == "all" {
        print_times_series(
            "Figure 7 — Times for queries e, f, g (Dir64K3P vs Reg32K)",
            &[dir64k3p, reg32k],
            &["e", "f", "g"],
        );
    }
    if json {
        println!("{}", tilestore_testkit::json::to_string_pretty(&results));
    }
}

/// The §6.1 extended-cube experiment (Dir64K3P vs Reg32K only).
fn extended(full: bool, json: bool) {
    let cube = if full {
        SalesCube::extended_full()
    } else {
        SalesCube::extended_reduced()
    };
    banner(&format!(
        "Extended cubes (§6.1) — {} ({})",
        cube.domain,
        bytes(cube.domain.size_bytes(4).expect("fits u64"))
    ));
    if !full {
        println!("(size-reduced; pass --full for the 375MB version)");
    }
    eprintln!(
        "[generating {} cube ...]",
        bytes(cube.domain.size_bytes(4).unwrap())
    );
    let data = cube.generate(42);
    let exp = sales_experiment(&data, &cube);
    let schemes = vec![
        NamedScheme::directional(64, cube.partitions_3p()),
        NamedScheme::regular(3, 32),
    ];
    eprintln!("[loading 2 schemes and replaying 10 queries ...]");
    let results = exp.run(&schemes).expect("experiment must run");
    print_speedup_table(
        "Speedup of Dir64K3P over Reg32K (extended cube)",
        &results[0],
        &results[1],
    );
    if json {
        println!("{}", tilestore_testkit::json::to_string_pretty(&results));
    }
}

/// Table 5: the areas-of-interest test specification.
fn table5() {
    banner("Table 5 — Test for areas of interest");
    let anim = Animation::table5();
    println!("Cell size:      3 bytes (RGB)");
    println!("Spatial domain: {}", anim.domain);
    println!(
        "Array size:     {}",
        bytes(anim.domain.size_bytes(3).expect("fits u64"))
    );
    for (i, a) in anim.areas.iter().enumerate() {
        println!(
            "Area of interest {}: {a} ({})",
            i + 1,
            bytes(a.size_bytes(3).unwrap())
        );
    }
    println!("Tiling schemes: Reg{{32,64,128,256}}K, AI{{32,64,128,256}}K");
    let mut t = TextTable::new(&["Query", "Region", "Size", "Kind"]);
    for q in anim.queries() {
        t.row(vec![
            q.label.to_string(),
            q.region.to_string(),
            bytes(q.region.size_bytes(3).expect("fits u64")),
            if q.expected {
                "access pattern"
            } else {
                "\"unexpected\""
            }
            .to_string(),
        ]);
    }
    print!("{}", t.render());
}

/// Table 6 + Figure 8: the areas-of-interest experiment.
fn table6_and_fig8(command: &str, json: bool) {
    let anim = Animation::table5();
    let data = anim.generate();
    let exp = Experiment {
        data: &data,
        cell_type: Animation::cell_type(),
        queries: anim
            .queries()
            .into_iter()
            .map(|q| QuerySpec {
                label: q.label.to_string(),
                region: q.region,
            })
            .collect(),
        model: CostModel::classic_disk(),
        compression: CompressionPolicy::None,
    };
    let schemes = table5_schemes(&anim.areas);
    eprintln!(
        "[running {} schemes x 4 queries on the 6.8MB animation ...]",
        schemes.len()
    );
    let results = exp.run(&schemes).expect("experiment must run");
    let by_name: BTreeMap<&str, &SchemeResult> =
        results.iter().map(|r| (r.scheme.as_str(), r)).collect();
    let best_reg = best_by_prefix(&results, "Reg").expect("regular schemes present");
    let best_ai = best_by_prefix(&results, "AI").expect("AI schemes present");
    println!(
        "\nBest regular scheme (mean t_totalcpu): {}; best areas-of-interest: {}",
        best_reg.scheme, best_ai.scheme
    );

    let ai256 = by_name["AI256K"];
    let reg64 = by_name["Reg64K"];
    if command == "table6" || command == "all" {
        banner("Table 6 — Speedup of AI256K over Reg64K");
        let rows = speedups(ai256, reg64);
        let mut t = TextTable::new(&["", "a", "b", "c", "d"]);
        for (metric, pick) in [("t_o", 0usize), ("t_totalaccess", 1), ("t_totalcpu", 2)] {
            let mut cells = vec![metric.to_string()];
            for r in &rows {
                let v = match pick {
                    0 => r.t_o,
                    1 => r.total_access,
                    _ => r.total_cpu,
                };
                cells.push(speedup(v));
            }
            t.row(cells);
        }
        print!("{}", t.render());
    }
    if command == "fig8" || command == "all" {
        print_times_series(
            "Figure 8 — Times for queries a-d (Reg64K vs AI256K)",
            &[reg64, ai256],
            &["a", "b", "c", "d"],
        );
    }
    if json {
        println!("{}", tilestore_testkit::json::to_string_pretty(&results));
    }
}

/// The §8 future-work experiment: sparse data with selective compression
/// and category-aligned (directional) vs regular tiling.
fn sparse(json: bool) {
    banner("Sparse data (§8 future work) — selective compression + partial coverage");
    let sc = SparseCube::one_year();
    eprintln!("[generating sparse cube {} ...]", sc.cube.domain);
    let data = sc.generate(42);
    let queries: Vec<QuerySpec> = sc
        .queries()
        .into_iter()
        .map(|(label, region)| QuerySpec { label, region })
        .collect();
    let schemes = vec![
        NamedScheme::regular(3, 32),
        NamedScheme::directional(64, sc.cube.partitions_3p()),
    ];
    let mut all = Vec::new();
    let mut t = TextTable::new(&[
        "Scheme",
        "Compression",
        "Tiles",
        "Physical size",
        "cluster1 t_o",
        "background t_o",
    ]);
    for (policy_name, policy) in [
        ("none", CompressionPolicy::None),
        ("selective", CompressionPolicy::selective_default()),
    ] {
        let exp = Experiment {
            data: &data,
            cell_type: SalesCube::cell_type(),
            queries: queries.clone(),
            model: CostModel::classic_disk(),
            compression: policy,
        };
        for named in &schemes {
            let r = exp.run_scheme(named).expect("sparse experiment runs");
            t.row(vec![
                r.scheme.clone(),
                policy_name.to_string(),
                r.tiles.to_string(),
                bytes(r.physical_bytes),
                secs(r.queries[0].times.t_o),
                secs(r.queries[3].times.t_o),
            ]);
            all.push(r);
        }
    }
    print!("{}", t.render());
    // Speedup summary: directional+selective vs regular+none (the paper's
    // expectation: gains even higher than on dense data).
    let dir_sel = &all[3];
    let reg_none = &all[0];
    let rows = speedups(dir_sel, reg_none);
    println!("\nSpeedup of Dir64K3P+selective over Reg32K+uncompressed:");
    for r in &rows {
        println!(
            "  {:>11}: t_o {:>5}  t_totalcpu {:>5}",
            r.label,
            speedup(r.t_o),
            speedup(r.total_cpu)
        );
    }
    if json {
        println!("{}", tilestore_testkit::json::to_string_pretty(&all));
    }
}

/// Ablation: the IntersectCode merge step of the Fig. 6 algorithm.
fn ablate_merge() {
    banner("Ablation — AOI tiling with and without the merge step (Fig. 6 line 4)");
    let anim = Animation::table5();
    let data = anim.generate();
    let queries: Vec<QuerySpec> = anim
        .queries()
        .into_iter()
        .map(|q| QuerySpec {
            label: q.label.to_string(),
            region: q.region,
        })
        .collect();
    let exp = Experiment {
        data: &data,
        cell_type: Animation::cell_type(),
        queries,
        model: CostModel::classic_disk(),
        compression: CompressionPolicy::None,
    };
    let mut t = TextTable::new(&[
        "MaxTileSize",
        "Variant",
        "Tiles",
        "q=a seeks",
        "q=a t_o",
        "q=b seeks",
        "q=b t_o",
    ]);
    for kb in [64u64, 256, 1024, 4096] {
        for (label, skip_merge) in [("with merge", false), ("without merge", true)] {
            let mut strat = AreasOfInterestTiling::new(anim.areas.clone(), kb * 1024);
            strat.skip_merge = skip_merge;
            let named = NamedScheme {
                name: format!("AI{kb}K-{label}"),
                scheme: Scheme::AreasOfInterest(strat),
            };
            let r = exp.run_scheme(&named).expect("scheme runs");
            t.row(vec![
                format!("{kb}K"),
                label.to_string(),
                r.tiles.to_string(),
                r.queries[0].stats.io.blobs_read.to_string(),
                secs(r.queries[0].times.t_o),
                r.queries[1].stats.io.blobs_read.to_string(),
                secs(r.queries[1].times.t_o),
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "(The merge step matters once MaxTileSize allows same-code neighbours to\n\
         coalesce: fewer tiles means fewer seeks per area-of-interest access.)"
    );
}
