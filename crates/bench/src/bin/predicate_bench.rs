//! Value-predicate pruning benchmark emitting a machine-readable report.
//!
//! ```text
//! cargo run -p tilestore-bench --release --bin predicate_bench -- BENCH_PR6.json
//! ```
//!
//! A 256×256 u32 array holds low-valued background cells plus two small
//! clusters of hot (≥ 10⁶) cells, so a sparse `>= HOT` predicate touches
//! only the handful of tiles overlapping the clusters. The report pairs a
//! full-scan baseline (no predicate) with the pruned masked read over the
//! same region and records both raw counters (`tiles_read`, I/O) and the
//! §6 modelled retrieval time `t_o`, together with the reduction ratios —
//! the pruning win the synopsis/bitmap index exists for. Wall-clock
//! medians for the baseline, the pruned read, and pruned aggregates ride
//! along. `TILESTORE_BENCH_SAMPLES` bounds the per-workload sample count.

use std::time::Duration;

use tilestore_engine::{
    AggKind, Array, CellPredicate, CellType, Database, MddType, PredOp, QueryStats,
};
use tilestore_geometry::Domain;
use tilestore_storage::{CostModel, MemPageStore};
use tilestore_testkit::bench::{Group, Report};
use tilestore_testkit::{Json, Rng, ToJson};
use tilestore_tiling::{AlignedTiling, Scheme};

/// Fixed seed so every run benches the identical workload.
const SEED: u64 = 0x1CDE_1999;

/// Side length of the square benchmark array.
const SIDE: i64 = 256;

/// Hot cells sit at or above this value; background stays below 1000.
const HOT: u32 = 1_000_000;

fn ns(d: Duration) -> Json {
    Json::UInt(d.as_nanos() as u64)
}

fn report_json(r: &Report) -> Json {
    Json::obj(vec![
        ("n", r.n.to_json()),
        ("min_ns", ns(r.min)),
        ("median_ns", ns(r.median)),
        ("p95_ns", ns(r.p95)),
        ("max_ns", ns(r.max)),
    ])
}

fn hot_regions() -> Vec<Domain> {
    vec![
        "[40:47,40:47]".parse().unwrap(),
        "[200:207,96:103]".parse().unwrap(),
    ]
}

/// Background cells stay under 1000; the two hot clusters carry `HOT`-range
/// values, so `>= HOT` is a sparse predicate with strong spatial locality.
fn workload_data() -> Array {
    let dom: Domain = format!("[0:{},0:{}]", SIDE - 1, SIDE - 1).parse().unwrap();
    let hot = hot_regions();
    Array::from_fn(dom, |p| {
        if hot.iter().any(|h| h.contains_point(p)) {
            HOT + (p[0] + p[1]) as u32
        } else {
            ((p[0] * 7 + p[1] * 13) % 997) as u32
        }
    })
    .unwrap()
}

fn fresh_db(data: &Array) -> Database<MemPageStore> {
    let db = Database::in_memory().unwrap();
    db.create_object(
        "bench",
        MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 4096)),
    )
    .unwrap();
    db.insert("bench", data).unwrap();
    db
}

/// Deterministic clustered query set: small regions drawn around the first
/// hot cluster, so pruned aggregates mix hot and cold tiles.
fn clustered_queries(n: usize) -> Vec<Domain> {
    let mut rng = Rng::seed_from_u64(SEED);
    (0..n)
        .map(|_| {
            let x = 24 + (rng.next_u64() % 16) as i64;
            let y = 24 + (rng.next_u64() % 16) as i64;
            format!("[{x}:{},{y}:{}]", x + 39, y + 39).parse().unwrap()
        })
        .collect()
}

fn stats_json(s: &QueryStats, model: &CostModel) -> Json {
    Json::obj(vec![
        ("tiles_read", s.tiles_read.to_json()),
        ("tiles_pruned", s.tiles_pruned.to_json()),
        ("blobs_read", s.io.blobs_read.to_json()),
        ("pages_read", s.io.pages_read.to_json()),
        ("bytes_read", s.io.bytes_read.to_json()),
        ("t_o_model_s", s.times(model).t_o.to_json()),
    ])
}

fn main() {
    let out_path = std::env::args().nth(1);
    let data = workload_data();
    let full: Domain = format!("[0:{},0:{}]", SIDE - 1, SIDE - 1).parse().unwrap();
    let pred = CellPredicate {
        op: PredOp::Ge,
        literal: f64::from(HOT),
    };
    let model = CostModel::classic_disk();

    // --- Counter comparison on cold databases (one store each, so cache
    // warm-up from one run cannot flatter the other).
    let baseline_stats = fresh_db(&data).range_query("bench", &full).unwrap().stats;
    let pruned_db = fresh_db(&data);
    let pruned_q = pruned_db
        .range_query_where("bench", &full, Some(&pred))
        .unwrap();
    let pruned_stats = pruned_q.stats;
    // Sanity: the pruned masked read equals masking the source in memory.
    let masked = Array::from_fn(full.clone(), |p| {
        let v: u32 = data.get(p).unwrap();
        if f64::from(v) >= f64::from(HOT) {
            v
        } else {
            0
        }
    })
    .unwrap();
    assert_eq!(pruned_q.array, masked, "pruned read must stay exact");

    let tiles_ratio = baseline_stats.tiles_read as f64 / pruned_stats.tiles_read.max(1) as f64;
    let t_o_base = baseline_stats.times(&model).t_o;
    let t_o_pruned = pruned_stats.times(&model).t_o;
    let t_o_ratio = t_o_base / t_o_pruned.max(f64::MIN_POSITIVE);
    assert!(
        tiles_ratio >= 2.0 && t_o_ratio >= 2.0,
        "sparse-predicate pruning win regressed below 2x: \
         tiles {tiles_ratio:.2}x, t_o {t_o_ratio:.2}x"
    );

    // --- Wall-clock workloads.
    let mut group = Group::new("predicate_bench");
    group.sample_size(15);
    let mut workloads: Vec<(&str, Report)> = Vec::new();

    let db = fresh_db(&data);
    let r = group.bench("full_scan_baseline", || {
        db.range_query("bench", &full).unwrap()
    });
    workloads.push(("full_scan_baseline", r));

    let r = group.bench("sparse_predicate_read", || {
        db.range_query_where("bench", &full, Some(&pred)).unwrap()
    });
    workloads.push(("sparse_predicate_read", r));

    let snap = db.begin_read();
    let r = group.bench("sparse_predicate_count", || {
        snap.aggregate_where("bench", &full, AggKind::CountNonDefault, Some(&pred))
            .unwrap()
    });
    workloads.push(("sparse_predicate_count", r));

    let queries = clustered_queries(16);
    let r = group.bench("clustered_predicate_max", || {
        for q in &queries {
            snap.aggregate_where("bench", q, AggKind::Max, Some(&pred))
                .unwrap();
        }
    });
    workloads.push(("clustered_predicate_max", r));

    let report = Json::obj(vec![
        ("bench", Json::Str("predicate_bench".to_string())),
        ("seed", SEED.to_json()),
        (
            "pruning",
            Json::obj(vec![
                ("baseline", stats_json(&baseline_stats, &model)),
                ("pruned", stats_json(&pruned_stats, &model)),
                ("tiles_read_ratio", tiles_ratio.to_json()),
                ("t_o_ratio", t_o_ratio.to_json()),
            ]),
        ),
        (
            "workloads",
            Json::Object(
                workloads
                    .iter()
                    .map(|(name, r)| ((*name).to_string(), report_json(r)))
                    .collect(),
            ),
        ),
        ("metrics", tilestore_obs::metrics().snapshot().to_json()),
    ]);

    let text = report.to_string_pretty();
    match out_path {
        Some(path) => {
            std::fs::write(&path, format!("{text}\n")).expect("write report");
            println!("wrote {path}");
        }
        None => println!("{text}"),
    }
}
