//! Observability overhead benchmark emitting a machine-readable report.
//!
//! ```text
//! cargo run -p tilestore-bench --release --bin obs_overhead -- BENCH_PR7.json
//! ```
//!
//! Two questions the PR's tracing/EXPLAIN surfaces raise:
//!
//! 1. What does instrumentation cost when it is *on*? The same query
//!    workload runs with the tracer disabled (the default: one relaxed
//!    atomic load per span site) and enabled inside a request scope (the
//!    server's configuration when a client asks for `trace: true`), and
//!    the report pairs the two distributions with their median ratio.
//! 2. What does `EXPLAIN ANALYZE` cost over just executing the statement?
//!    ANALYZE plans first and then executes, so its overhead is one extra
//!    planner walk over the candidate tiles.
//!
//! `TILESTORE_BENCH_SAMPLES` bounds the per-workload sample count.

use std::time::Duration;

use tilestore_engine::{Array, CellType, Database, MddType};
use tilestore_geometry::Domain;
use tilestore_storage::MemPageStore;
use tilestore_testkit::bench::{Group, Report};
use tilestore_testkit::{Json, ToJson};
use tilestore_tiling::{AlignedTiling, Scheme};

/// Side length of the square benchmark array.
const SIDE: i64 = 128;

/// The workload: a masked aggregate that touches synopses, the bitmap
/// index and a handful of fetched tiles — every span site on the read path.
const STMT: &str = "SELECT count_cells(bench) FROM bench WHERE bench > 9000";

fn ns(d: Duration) -> Json {
    Json::UInt(d.as_nanos() as u64)
}

fn report_json(r: &Report) -> Json {
    Json::obj(vec![
        ("n", r.n.to_json()),
        ("min_ns", ns(r.min)),
        ("median_ns", ns(r.median)),
        ("p95_ns", ns(r.p95)),
        ("max_ns", ns(r.max)),
    ])
}

fn ratio(on: &Report, off: &Report) -> f64 {
    on.median.as_nanos() as f64 / (off.median.as_nanos() as f64).max(1.0)
}

fn bench_db() -> Database<MemPageStore> {
    let db = Database::in_memory().unwrap();
    db.create_object(
        "bench",
        MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 2048)),
    )
    .unwrap();
    let dom: Domain = format!("[0:{},0:{}]", SIDE - 1, SIDE - 1).parse().unwrap();
    db.insert(
        "bench",
        &Array::from_fn(dom, |p| ((p[0] * 71 + p[1] * 31) % 9973) as u32).unwrap(),
    )
    .unwrap();
    db
}

fn main() {
    let out_path = std::env::args().nth(1);
    let db = bench_db();
    let snap = db.begin_read();
    let tracer = tilestore_obs::tracer();

    let mut group = Group::new("obs_overhead");
    group.sample_size(25);

    // --- Tracing off: the default server state.
    tracer.disable();
    let off = group.bench("query_tracing_off", || {
        tilestore_rasql::execute(&snap, STMT).unwrap()
    });

    // --- Tracing on, inside a request scope: what a `trace: true` request
    // pays. Draining per sample mirrors the server, which extracts each
    // request's events from the ring before responding.
    tracer.enable(4096);
    let on = group.bench("query_tracing_on", || {
        let _scope = tilestore_obs::request_scope(42);
        let out = tilestore_rasql::execute(&snap, STMT).unwrap();
        let _ = tracer.take_request_jsonl(42);
        out
    });
    tracer.disable();
    let _ = tracer.drain_jsonl();

    // --- EXPLAIN ANALYZE vs plain execution of the same statement.
    let plain = group.bench("execute_plain", || {
        tilestore_rasql::execute(&snap, STMT).unwrap()
    });
    let analyze_stmt = format!("EXPLAIN ANALYZE {STMT}");
    let analyzed = group.bench("explain_analyze", || {
        tilestore_rasql::execute_statement(&snap, &analyze_stmt).unwrap()
    });
    let explain_stmt = format!("EXPLAIN {STMT}");
    let plan_only = group.bench("explain_plan_only", || {
        tilestore_rasql::execute_statement(&snap, &explain_stmt).unwrap()
    });

    let report = Json::obj(vec![
        ("bench", Json::Str("obs_overhead".to_string())),
        ("statement", Json::Str(STMT.to_string())),
        (
            "tracing",
            Json::obj(vec![
                ("off", report_json(&off)),
                ("on", report_json(&on)),
                ("median_overhead_ratio", ratio(&on, &off).to_json()),
            ]),
        ),
        (
            "explain",
            Json::obj(vec![
                ("execute_plain", report_json(&plain)),
                ("explain_analyze", report_json(&analyzed)),
                ("explain_plan_only", report_json(&plan_only)),
                ("analyze_overhead_ratio", ratio(&analyzed, &plain).to_json()),
            ]),
        ),
        ("metrics", tilestore_obs::metrics().snapshot().to_json()),
    ]);

    let text = report.to_string_pretty();
    match out_path {
        Some(path) => {
            std::fs::write(&path, format!("{text}\n")).expect("write report");
            println!("wrote {path}");
        }
        None => println!("{text}"),
    }
}
