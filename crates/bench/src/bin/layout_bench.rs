//! Physical-layout benchmark: scattered insertion vs `defrag`, emitting a
//! machine-readable report.
//!
//! ```text
//! cargo run -p tilestore-bench --release --bin layout_bench -- BENCH_PR10.json
//! ```
//!
//! A 512×512 u32 array is inserted one 32×32 tile at a time in a shuffled
//! order, so consecutive blob ids — and therefore consecutive disk pages —
//! belong to spatially scattered tiles. A quadrant range query then touches
//! 64 tiles strewn across the whole page file. After `defrag` rewrites the
//! blobs in centroid Z-order, the same quadrant's tiles sit on consecutive
//! pages and the batched read path folds them into a handful of positioned
//! reads. The report pairs the two cold reads and records the raw run
//! counters plus the §6 modelled retrieval time under the seek-dominated
//! cost model (`t_o_coalesced`), where the layout win lives. Wall-clock
//! medians for both layouts ride along (a deliberately undersized buffer
//! pool keeps repeat queries hitting the disk path).
//! `TILESTORE_BENCH_SAMPLES` bounds the per-workload sample count.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use tilestore_engine::{Array, CellType, Database, DatabaseBuilder, MddType, QueryStats};
use tilestore_exec::ThreadPool;
use tilestore_geometry::Domain;
use tilestore_storage::{CostModel, IoSnapshot};
use tilestore_testkit::bench::{Group, Report};
use tilestore_testkit::{Json, Rng, ToJson};
use tilestore_tiling::{AlignedTiling, Scheme};

/// Fixed seed so every run benches the identical shuffled insertion order.
const SEED: u64 = 0x1CDE_1999;

/// Side length of the square benchmark array, in cells.
const SIDE: i64 = 512;

/// Side length of one tile, in cells (32×32 u32 = one 4 KiB page).
const TILE: i64 = 32;

/// Frames in the reopened buffer pool — smaller than the quadrant's working
/// set, so wall-clock samples keep exercising the positioned-read path.
const CACHE_PAGES: usize = 32;

fn ns(d: Duration) -> Json {
    Json::UInt(d.as_nanos() as u64)
}

fn report_json(r: &Report) -> Json {
    Json::obj(vec![
        ("n", r.n.to_json()),
        ("min_ns", ns(r.min)),
        ("median_ns", ns(r.median)),
        ("p95_ns", ns(r.p95)),
        ("max_ns", ns(r.max)),
    ])
}

/// The tile grid in shuffled order: every 32×32 tile domain exactly once.
fn shuffled_tiles() -> Vec<Domain> {
    let per_axis = SIDE / TILE;
    let mut tiles: Vec<Domain> = (0..per_axis * per_axis)
        .map(|i| {
            let (r, c) = (i / per_axis * TILE, i % per_axis * TILE);
            format!("[{r}:{},{c}:{}]", r + TILE - 1, c + TILE - 1)
                .parse()
                .unwrap()
        })
        .collect();
    let mut rng = Rng::seed_from_u64(SEED);
    for i in (1..tiles.len()).rev() {
        tiles.swap(i, (rng.next_u64() % (i as u64 + 1)) as usize);
    }
    tiles
}

fn cell_fill(dom: Domain) -> Array {
    Array::from_fn(dom, |p| ((p[0] * 7 + p[1] * 13) % 100_003) as u32).unwrap()
}

/// Builds the scattered database on disk and saves it.
fn build(dir: &Path) {
    let db = DatabaseBuilder::new().create_dir(dir).unwrap();
    db.create_object(
        "bench",
        MddType::new(CellType::of::<u32>(), "[0:*,0:*]".parse().unwrap()),
        Scheme::Aligned(AlignedTiling::regular(2, 4096)),
    )
    .unwrap();
    for dom in shuffled_tiles() {
        db.insert("bench", &cell_fill(dom)).unwrap();
    }
    db.save(dir).unwrap();
}

/// Reopens the directory with a cold, undersized pool and an executor so
/// queries take the batched parallel band path.
fn reopen(dir: &Path) -> Database<tilestore_engine::CachedFileStore> {
    DatabaseBuilder::new()
        .executor(Arc::new(ThreadPool::new(2)))
        .cache_pages(CACHE_PAGES)
        .open_dir(dir)
        .unwrap()
}

/// Positioned reads the §6 coalesced model charges a seek for.
fn positioned(io: &IoSnapshot) -> u64 {
    io.pages_read - io.pages_read_run + io.runs_coalesced
}

fn stats_json(s: &QueryStats, model: &CostModel) -> Json {
    Json::obj(vec![
        ("tiles_read", s.tiles_read.to_json()),
        ("pages_read", s.io.pages_read.to_json()),
        ("pages_read_run", s.io.pages_read_run.to_json()),
        ("runs_coalesced", s.io.runs_coalesced.to_json()),
        ("readahead_bytes", s.io.readahead_bytes.to_json()),
        ("positioned_reads", positioned(&s.io).to_json()),
        (
            "t_o_coalesced_model_s",
            model.t_o_coalesced(&s.io).to_json(),
        ),
    ])
}

fn main() {
    let out_path = std::env::args().nth(1);
    let tmp = tilestore_testkit::tempdir().expect("tempdir");
    let dir = tmp.path().join("layout");
    build(&dir);

    let quadrant: Domain = format!("[0:{q},0:{q}]", q = SIDE / 2 - 1).parse().unwrap();
    let model = CostModel::seek_dominated();

    // --- Cold quadrant read over the scattered layout.
    let frag_db = reopen(&dir);
    let frag = frag_db.range_query("bench", &quadrant).unwrap();

    // --- Defragment (full rewrite, one atomic commit), reopen cold, reread.
    let receipt = frag_db.defrag("bench").unwrap();
    assert!(receipt.stats.bytes_rewritten > 0, "defrag must rewrite");
    frag_db.save(&dir).unwrap();
    drop(frag_db);
    let defrag_db = reopen(&dir);
    let defragged = defrag_db.range_query("bench", &quadrant).unwrap();
    assert_eq!(frag.array, defragged.array, "defrag must not change a cell");

    let t_o_frag = model.t_o_coalesced(&frag.stats.io);
    let t_o_defrag = model.t_o_coalesced(&defragged.stats.io);
    let ratio = t_o_frag / t_o_defrag.max(f64::MIN_POSITIVE);
    assert!(
        defragged.stats.io.runs_coalesced > 0,
        "defragged read must coalesce runs: {:?}",
        defragged.stats.io
    );
    assert!(
        positioned(&defragged.stats.io) < positioned(&frag.stats.io),
        "defrag must cut positioned reads: {} -> {}",
        positioned(&frag.stats.io),
        positioned(&defragged.stats.io)
    );
    assert!(
        ratio >= 1.5,
        "modelled layout win regressed below 1.5x: {ratio:.2}x \
         (fragmented {t_o_frag:.4}s, defragged {t_o_defrag:.4}s)"
    );

    // --- Wall-clock: the same quadrant against each layout. The pool is
    // smaller than the working set, so samples keep paying real reads.
    let mut group = Group::new("layout_bench");
    group.sample_size(15);
    let mut workloads: Vec<(&str, Report)> = Vec::new();

    let frag_dir = tmp.path().join("layout_frag");
    build(&frag_dir);
    let frag_db = reopen(&frag_dir);
    let r = group.bench("quadrant_scattered", || {
        frag_db.range_query("bench", &quadrant).unwrap()
    });
    workloads.push(("quadrant_scattered", r));

    let r = group.bench("quadrant_defragged", || {
        defrag_db.range_query("bench", &quadrant).unwrap()
    });
    workloads.push(("quadrant_defragged", r));

    let report = Json::obj(vec![
        ("bench", Json::Str("layout_bench".to_string())),
        ("seed", SEED.to_json()),
        (
            "layout",
            Json::obj(vec![
                ("fragmented", stats_json(&frag.stats, &model)),
                ("defragged", stats_json(&defragged.stats, &model)),
                ("bytes_rewritten", receipt.stats.bytes_rewritten.to_json()),
                ("t_o_coalesced_ratio", ratio.to_json()),
            ]),
        ),
        (
            "workloads",
            Json::Object(
                workloads
                    .iter()
                    .map(|(name, r)| ((*name).to_string(), report_json(r)))
                    .collect(),
            ),
        ),
        ("metrics", tilestore_obs::metrics().snapshot().to_json()),
    ]);

    let text = report.to_string_pretty();
    match out_path {
        Some(path) => {
            std::fs::write(&path, format!("{text}\n")).expect("write report");
            println!("wrote {path}");
        }
        None => println!("{text}"),
    }
}
