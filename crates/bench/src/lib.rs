//! Workload generators and the experiment harness reproducing the ICDE'99
//! evaluation (§6 of the paper).
//!
//! * [`workloads::sales`] — the Table 1/3 sales data cubes (directional
//!   tiling benchmark, §6.1);
//! * [`workloads::animation`] — the Table 5 animation object
//!   (areas-of-interest benchmark, §6.2);
//! * [`schemes`] — the named tiling schemes of Tables 2 and 5;
//! * [`harness`] — cold-replay of a query set per scheme, producing the
//!   paper's `t_o` / `t_ix` / `t_cpu` decomposition and speedup tables;
//! * [`report`] — plain-text table rendering.
//!
//! The `repro` binary regenerates every table and figure:
//! `cargo run -p tilestore-bench --release --bin repro -- all`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod harness;
pub mod report;
pub mod schemes;
pub mod workloads;
