//! Property tests: every codec and policy must round-trip arbitrary
//! payloads exactly, and selective compression must never expand beyond
//! the framing overhead.

use tilestore_compress::{compress, decompress, CellContext, Codec, CompressionPolicy};
use tilestore_testkit::prop::{check, Source};
use tilestore_testkit::{prop_assert, prop_assert_eq};

fn payload(s: &mut Source, cell_size: usize) -> Vec<u8> {
    let cells_seed = s.vec_of(0, 63, Source::u8);
    // Expand to whole cells.
    let mut out = Vec::with_capacity(cells_seed.len() * cell_size);
    for b in cells_seed {
        for lane in 0..cell_size {
            out.push(b.wrapping_add(lane as u8));
        }
    }
    out
}

/// Structured payloads that exercise the codecs' sweet spots.
fn structured(s: &mut Source, cell_size: usize) -> Vec<u8> {
    match s.weighted(&[1, 1, 1, 1]) {
        0 => {
            // constant
            let b = s.u8();
            let n = s.usize_in(1, 199);
            vec![b; n * cell_size]
        }
        1 => {
            // ramp
            let n = s.usize_in(1, 199);
            (0..n * cell_size).map(|i| (i / cell_size) as u8).collect()
        }
        2 => {
            // sparse
            let n = s.usize_in(1, 199);
            let hits = s.vec_of(0, 7, |s| s.usize_in(0, 199));
            let mut v = vec![0u8; n * cell_size];
            for h in hits {
                let i = (h % n) * cell_size;
                v[i] = 0xEE;
            }
            v
        }
        _ => payload(s, cell_size),
    }
}

#[test]
fn every_codec_round_trips() {
    check(
        "every_codec_round_trips",
        256,
        |s| (s.usize_in(1, 5), s.vec_of(0, 511, Source::u8)),
        |(cell_size, data)| {
            // Trim to whole cells.
            let len = data.len() / cell_size * cell_size;
            let data = &data[..len];
            let default = vec![0u8; *cell_size];
            let ctx = CellContext {
                cell_size: *cell_size,
                default: &default,
            };
            for codec in [
                Codec::None,
                Codec::PackBits,
                Codec::DeltaPackBits,
                Codec::ChunkOffset,
            ] {
                let s = compress(&CompressionPolicy::Fixed(codec), data, &ctx).unwrap();
                prop_assert_eq!(decompress(&s, &ctx).unwrap(), data, "{:?}", codec);
            }
            Ok(())
        },
    );
}

#[test]
fn selective_round_trips_and_is_minimal() {
    check(
        "selective_round_trips_and_is_minimal",
        256,
        |s| {
            let cell_size = s.usize_in(1, 4);
            let data = structured(s, cell_size);
            (cell_size, data)
        },
        |(cell_size, data)| {
            let len = data.len() / cell_size * cell_size;
            let data = &data[..len];
            let default = vec![0u8; *cell_size];
            let ctx = CellContext {
                cell_size: *cell_size,
                default: &default,
            };
            let s = compress(&CompressionPolicy::selective_default(), data, &ctx).unwrap();
            prop_assert_eq!(decompress(&s, &ctx).unwrap(), data);
            // Never bigger than the raw framing.
            let raw = compress(&CompressionPolicy::None, data, &ctx).unwrap();
            prop_assert!(s.len() <= raw.len());
            Ok(())
        },
    );
}

#[test]
fn decompress_rejects_mutations() {
    check(
        "decompress_rejects_mutations",
        256,
        |s| (s.vec_of(4, 127, Source::u8), s.usize_in(0, 63)),
        |(data, flip)| {
            let default = [0u8];
            let ctx = CellContext {
                cell_size: 1,
                default: &default,
            };
            let mut s = compress(&CompressionPolicy::selective_default(), data, &ctx).unwrap();
            let i = flip % s.len();
            s[i] ^= 0xFF;
            // Mutation must either error or produce *something* — never panic.
            let _ = decompress(&s, &ctx);
            Ok(())
        },
    );
}

/// The word-wide PackBits encoder must emit byte-identical streams to the
/// scalar reference, and both decoders must agree, on payloads spanning
/// constant runs, ramps, sparse spikes and noise.
#[test]
fn word_wide_packbits_matches_scalar() {
    use tilestore_compress::packbits;
    check(
        "word_wide_packbits_matches_scalar",
        256,
        |s| {
            let cell_size = s.usize_in(1, 4);
            structured(s, cell_size)
        },
        |data| {
            let fast = packbits::encode(data);
            let slow = packbits::scalar::encode(data);
            prop_assert_eq!(&fast, &slow, "encoded streams diverge");
            let decoded = packbits::decode(&fast, data.len()).unwrap();
            prop_assert_eq!(decoded.as_slice(), data.as_slice());
            let decoded = packbits::scalar::decode(&fast, data.len()).unwrap();
            prop_assert_eq!(decoded.as_slice(), data.as_slice());
            Ok(())
        },
    );
}

/// The blocked delta kernels must match the scalar reference byte for byte
/// in both directions, across cell sizes straddling the 8-lane kernel.
#[test]
fn blocked_delta_matches_scalar() {
    use tilestore_compress::delta;
    check(
        "blocked_delta_matches_scalar",
        256,
        |s| {
            let cell_size = s.usize_in(1, 17);
            (cell_size, structured(s, cell_size))
        },
        |(cell_size, data)| {
            let len = data.len() / cell_size * cell_size;
            let data = &data[..len];
            let fast = delta::forward(data, *cell_size).unwrap();
            let slow = delta::scalar::forward(data, *cell_size).unwrap();
            prop_assert_eq!(&fast, &slow, "forward diverges");
            let back = delta::inverse(&fast, *cell_size).unwrap();
            prop_assert_eq!(back.as_slice(), data);
            let back = delta::scalar::inverse(&fast, *cell_size).unwrap();
            prop_assert_eq!(back.as_slice(), data);
            Ok(())
        },
    );
}

/// Policies (and codec lists inside them) survive a JSON round trip.
#[test]
fn policy_json_round_trip() {
    check(
        "policy_json_round_trip",
        64,
        |s| match s.weighted(&[1, 2, 2]) {
            0 => CompressionPolicy::None,
            1 => {
                let all = [
                    Codec::None,
                    Codec::PackBits,
                    Codec::DeltaPackBits,
                    Codec::ChunkOffset,
                ];
                CompressionPolicy::Fixed(all[s.usize_in(0, 3)])
            }
            _ => {
                let all = [
                    Codec::None,
                    Codec::PackBits,
                    Codec::DeltaPackBits,
                    Codec::ChunkOffset,
                ];
                CompressionPolicy::Selective(s.vec_of(0, 4, |s| all[s.usize_in(0, 3)]))
            }
        },
        |policy| {
            let text = tilestore_testkit::json::to_string(policy);
            let back: CompressionPolicy = tilestore_testkit::json::from_str(&text).unwrap();
            prop_assert_eq!(&back, policy);
            Ok(())
        },
    );
}
