//! Property tests: every codec and policy must round-trip arbitrary
//! payloads exactly, and selective compression must never expand beyond
//! the framing overhead.

use proptest::prelude::*;
use tilestore_compress::{
    compress, decompress, CellContext, Codec, CompressionPolicy,
};

fn payload(cell_size: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..64)
        .prop_map(move |cells_seed| {
            // Expand to whole cells.
            let mut out = Vec::with_capacity(cells_seed.len() * cell_size);
            for b in cells_seed {
                for lane in 0..cell_size {
                    out.push(b.wrapping_add(lane as u8));
                }
            }
            out
        })
}

/// Structured payloads that exercise the codecs' sweet spots.
fn structured(cell_size: usize) -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // constant
        (any::<u8>(), 1usize..200).prop_map(move |(b, n)| vec![b; n * cell_size]),
        // ramp
        (1usize..200).prop_map(move |n| {
            (0..n * cell_size).map(|i| (i / cell_size) as u8).collect()
        }),
        // sparse
        (1usize..200, proptest::collection::vec(0usize..200, 0..8)).prop_map(
            move |(n, hits)| {
                let mut v = vec![0u8; n * cell_size];
                for h in hits {
                    let i = (h % n) * cell_size;
                    v[i] = 0xEE;
                }
                v
            }
        ),
        payload(cell_size),
    ]
}

proptest! {
    #[test]
    fn every_codec_round_trips(
        cell_size in 1usize..6,
        data_seed in 0usize..4,
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = data_seed;
        // Trim to whole cells.
        let len = data.len() / cell_size * cell_size;
        let data = &data[..len];
        let default = vec![0u8; cell_size];
        let ctx = CellContext { cell_size, default: &default };
        for codec in [Codec::None, Codec::PackBits, Codec::DeltaPackBits, Codec::ChunkOffset] {
            let s = compress(&CompressionPolicy::Fixed(codec), data, &ctx).unwrap();
            prop_assert_eq!(decompress(&s, &ctx).unwrap(), data, "{:?}", codec);
        }
    }

    #[test]
    fn selective_round_trips_and_is_minimal(
        cell_size in 1usize..5,
        data in (1usize..5).prop_flat_map(structured),
    ) {
        let len = data.len() / cell_size * cell_size;
        let data = &data[..len];
        let default = vec![0u8; cell_size];
        let ctx = CellContext { cell_size, default: &default };
        let s = compress(&CompressionPolicy::selective_default(), data, &ctx).unwrap();
        prop_assert_eq!(decompress(&s, &ctx).unwrap(), data);
        // Never bigger than the raw framing.
        let raw = compress(&CompressionPolicy::None, data, &ctx).unwrap();
        prop_assert!(s.len() <= raw.len());
    }

    #[test]
    fn decompress_rejects_mutations(
        data in proptest::collection::vec(any::<u8>(), 4..128),
        flip in 0usize..64,
    ) {
        let default = [0u8];
        let ctx = CellContext { cell_size: 1, default: &default };
        let mut s = compress(&CompressionPolicy::selective_default(), &data, &ctx).unwrap();
        let i = flip % s.len();
        s[i] ^= 0xFF;
        // Mutation must either error or produce *something* — never panic.
        let _ = decompress(&s, &ctx);
    }
}
