//! Byte-level cell scanning, run during tile encode.
//!
//! The encoder already walks every cell of a tile payload to pick a codec;
//! [`scan_cells`] makes that walk produce the type-agnostic half of a tile
//! synopsis — cell count, non-default count and a coarse null mask — so the
//! engine can build its per-tile statistics without a second pass over the
//! decompressed bytes. [`compress_with_scan`] bundles both steps.

use crate::codec::{compress, CellContext, CompressionPolicy};
use crate::error::Result;

/// Number of chunks the null mask divides a tile's cells into.
pub const NULL_MASK_CHUNKS: u64 = 64;

/// The byte-level scan of one tile payload.
///
/// "Null" here means a cell holding the type's default value — the partial
/// cover convention of §8: cells never written read as the default, so a
/// default-valued cell is indistinguishable from an absent one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellScan {
    /// Total number of cells in the payload.
    pub cells: u64,
    /// Cells whose bytes differ from the type's default value.
    pub non_default: u64,
    /// Coarse presence-of-nulls mask: the payload's cells are split into
    /// [`NULL_MASK_CHUNKS`] equal-width chunks (in storage order) and bit
    /// `k` is set iff chunk `k` contains at least one default-valued cell.
    /// Invariant: the mask is zero iff `non_default == cells`.
    pub null_mask: u64,
}

/// Scans `payload` cell by cell against the type's default value.
///
/// Trailing bytes that do not fill a whole cell are ignored (the engine
/// validates payload sizes before they get here).
#[must_use]
pub fn scan_cells(payload: &[u8], ctx: &CellContext<'_>) -> CellScan {
    let size = ctx.cell_size.max(1);
    let cells = (payload.len() / size) as u64;
    let mut scan = CellScan {
        cells,
        ..CellScan::default()
    };
    if cells == 0 {
        return scan;
    }
    for (i, cell) in payload.chunks_exact(size).enumerate() {
        if cell == ctx.default {
            // Chunk index scales the cell position into [0, NULL_MASK_CHUNKS).
            let chunk = (i as u64 * NULL_MASK_CHUNKS) / cells;
            scan.null_mask |= 1 << chunk.min(NULL_MASK_CHUNKS - 1);
        } else {
            scan.non_default += 1;
        }
    }
    scan
}

/// Compresses a tile payload and returns the stream together with the
/// byte-level scan gathered from the same bytes.
///
/// # Errors
/// Whatever [`compress`] reports for the chosen policy.
pub fn compress_with_scan(
    policy: &CompressionPolicy,
    payload: &[u8],
    ctx: &CellContext<'_>,
) -> Result<(Vec<u8>, CellScan)> {
    let scan = scan_cells(payload, ctx);
    let stream = compress(policy, payload, ctx)?;
    Ok((stream, scan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decompress;

    fn ctx(default: &[u8]) -> CellContext<'_> {
        CellContext {
            cell_size: default.len(),
            default,
        }
    }

    #[test]
    fn scan_counts_default_and_non_default_cells() {
        let default = [0u8, 0];
        let payload: Vec<u8> = [[0u8, 0], [1, 0], [0, 0], [2, 3]].concat();
        let scan = scan_cells(&payload, &ctx(&default));
        assert_eq!(scan.cells, 4);
        assert_eq!(scan.non_default, 2);
        assert_ne!(scan.null_mask, 0);
    }

    #[test]
    fn null_mask_zero_iff_fully_covered() {
        let default = [0u8];
        let full: Vec<u8> = (1u8..=100).collect();
        let scan = scan_cells(&full, &ctx(&default));
        assert_eq!(scan.non_default, scan.cells);
        assert_eq!(scan.null_mask, 0);

        let mut holey = full;
        holey[42] = 0;
        let scan = scan_cells(&holey, &ctx(&default));
        assert_eq!(scan.non_default, scan.cells - 1);
        assert_ne!(scan.null_mask, 0);
        assert_eq!(scan.null_mask.count_ones(), 1);
    }

    #[test]
    fn null_mask_localizes_defaults() {
        let default = [0u8];
        // Defaults only in the first quarter → only low mask bits set.
        let mut payload = vec![1u8; 256];
        payload[0] = 0;
        payload[10] = 0;
        let scan = scan_cells(&payload, &ctx(&default));
        assert_eq!(scan.null_mask & !0xFFFF, 0, "mask {:b}", scan.null_mask);
    }

    #[test]
    fn empty_payload_scans_clean() {
        let scan = scan_cells(&[], &ctx(&[0u8; 4]));
        assert_eq!(scan, CellScan::default());
    }

    #[test]
    fn compress_with_scan_matches_separate_calls() {
        let default = [0u8; 2];
        let payload: Vec<u8> = (0u8..200).collect();
        let c = ctx(&default);
        let policy = CompressionPolicy::selective_default();
        let (stream, scan) = compress_with_scan(&policy, &payload, &c).unwrap();
        assert_eq!(scan, scan_cells(&payload, &c));
        assert_eq!(decompress(&stream, &c).unwrap(), payload);
    }
}
