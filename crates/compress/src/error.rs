//! Error type for tile compression.

use std::fmt;

/// Errors raised while compressing or decompressing tile payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The compressed stream is truncated or malformed.
    Corrupt(String),
    /// The payload length is not a multiple of the cell size.
    BadPayload {
        /// Payload length in bytes.
        len: usize,
        /// Cell size in bytes.
        cell_size: usize,
    },
    /// A zero cell size was supplied.
    ZeroCellSize,
    /// The decoded length does not match what the header promised.
    LengthMismatch {
        /// Length the stream header declared.
        expected: u64,
        /// Length actually decoded.
        got: u64,
    },
    /// Unknown codec tag in a stored stream.
    UnknownCodec(u8),
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Corrupt(s) => write!(f, "corrupt compressed stream: {s}"),
            CompressError::BadPayload { len, cell_size } => {
                write!(
                    f,
                    "payload of {len} bytes is not a multiple of cell size {cell_size}"
                )
            }
            CompressError::ZeroCellSize => write!(f, "cell size must be positive"),
            CompressError::LengthMismatch { expected, got } => {
                write!(f, "decoded length mismatch: expected {expected}, got {got}")
            }
            CompressError::UnknownCodec(tag) => write!(f, "unknown codec tag {tag}"),
        }
    }
}

impl std::error::Error for CompressError {}

/// Convenience result alias for compression operations.
pub type Result<T> = std::result::Result<T, CompressError>;
