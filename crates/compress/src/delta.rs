//! Shuffled byte-lane delta transform for smooth raster data.
//!
//! Two steps, both exactly invertible and size-preserving:
//!
//! 1. **Shuffle**: reorder the payload lane-major — all cells' byte 0, then
//!    all cells' byte 1, … (the "shuffle" of Blosc-style compressors), so
//!    that bytes with similar statistics become contiguous;
//! 2. **Delta**: difference each lane against its previous value
//!    (wrapping), turning smooth gradients into long near-zero runs that
//!    PackBits collapses.
//!
//! The kernels are blocked: [`forward`] gathers 8 cells per iteration and
//! writes each lane's deltas as one u64 store, and [`inverse`] reconstructs
//! 8 lanes per iteration with interleaved prefix sums (`prev: [u8; 8]`), so
//! the serial lane dependency no longer limits the reconstruction to one
//! add per cycle. Output is byte-identical to the [`scalar`] reference,
//! pinned by the round-trip property suites.

use crate::error::{CompressError, Result};

/// Reference byte-at-a-time implementation. Kept as the semantic baseline:
/// the blocked kernels must match it byte for byte, and the codec benchmark
/// reports its throughput as the "before" figure.
pub mod scalar {
    use super::{check, Result};

    /// Applies shuffle + per-lane delta, one byte at a time.
    ///
    /// # Errors
    /// [`crate::CompressError::ZeroCellSize`] /
    /// [`crate::CompressError::BadPayload`].
    pub fn forward(payload: &[u8], cell_size: usize) -> Result<Vec<u8>> {
        check(payload, cell_size)?;
        let cells = payload.len() / cell_size;
        let mut out = Vec::with_capacity(payload.len());
        for lane in 0..cell_size {
            let mut prev = 0u8;
            for cell in 0..cells {
                let b = payload[cell * cell_size + lane];
                out.push(b.wrapping_sub(prev));
                prev = b;
            }
        }
        Ok(out)
    }

    /// Inverts [`forward`], one byte at a time.
    ///
    /// # Errors
    /// [`crate::CompressError::ZeroCellSize`] /
    /// [`crate::CompressError::BadPayload`].
    pub fn inverse(deltas: &[u8], cell_size: usize) -> Result<Vec<u8>> {
        check(deltas, cell_size)?;
        let cells = deltas.len() / cell_size;
        let mut out = vec![0u8; deltas.len()];
        for lane in 0..cell_size {
            let mut prev = 0u8;
            for cell in 0..cells {
                let v = deltas[lane * cells + cell].wrapping_add(prev);
                out[cell * cell_size + lane] = v;
                prev = v;
            }
        }
        Ok(out)
    }
}

/// Applies shuffle + per-lane delta, returning a buffer of the same size.
///
/// Blocked kernel: for each lane, 8 cells are gathered per iteration, their
/// deltas computed in registers, and stored into the contiguous lane row as
/// a single u64 write.
///
/// # Errors
/// [`CompressError::ZeroCellSize`] / [`CompressError::BadPayload`].
pub fn forward(payload: &[u8], cell_size: usize) -> Result<Vec<u8>> {
    check(payload, cell_size)?;
    let cells = payload.len() / cell_size;
    let mut out = vec![0u8; payload.len()];
    for lane in 0..cell_size {
        let row = &mut out[lane * cells..(lane + 1) * cells];
        let mut prev = 0u8;
        let mut cell = 0usize;
        while cell + 8 <= cells {
            let base = cell * cell_size + lane;
            let mut b = [0u8; 8];
            for (k, byte) in b.iter_mut().enumerate() {
                *byte = payload[base + k * cell_size];
            }
            let d = [
                b[0].wrapping_sub(prev),
                b[1].wrapping_sub(b[0]),
                b[2].wrapping_sub(b[1]),
                b[3].wrapping_sub(b[2]),
                b[4].wrapping_sub(b[3]),
                b[5].wrapping_sub(b[4]),
                b[6].wrapping_sub(b[5]),
                b[7].wrapping_sub(b[6]),
            ];
            row[cell..cell + 8].copy_from_slice(&d);
            prev = b[7];
            cell += 8;
        }
        while cell < cells {
            let b = payload[cell * cell_size + lane];
            row[cell] = b.wrapping_sub(prev);
            prev = b;
            cell += 1;
        }
    }
    Ok(out)
}

/// Inverts [`forward`].
///
/// Blocked kernel: lanes are processed 8 at a time with interleaved prefix
/// sums — `prev: [u8; 8]` carries 8 independent add chains, and each cell's
/// 8 reconstructed bytes land as one contiguous u64 store. Lanes left over
/// when `cell_size % 8 != 0` (and narrow cells) fall back to a per-lane
/// 8-cells-per-iteration prefix sum.
///
/// # Errors
/// [`CompressError::ZeroCellSize`] / [`CompressError::BadPayload`].
pub fn inverse(deltas: &[u8], cell_size: usize) -> Result<Vec<u8>> {
    check(deltas, cell_size)?;
    let cells = deltas.len() / cell_size;
    let mut out = vec![0u8; deltas.len()];
    let mut lane = 0usize;
    // 8-lane-wide kernel: 8 interleaved prefix sums, contiguous 8-byte
    // stores into each cell.
    while lane + 8 <= cell_size {
        let mut prev = [0u8; 8];
        for cell in 0..cells {
            let mut v = [0u8; 8];
            for (k, val) in v.iter_mut().enumerate() {
                let p = prev[k].wrapping_add(deltas[(lane + k) * cells + cell]);
                *val = p;
                prev[k] = p;
            }
            out[cell * cell_size + lane..cell * cell_size + lane + 8].copy_from_slice(&v);
        }
        lane += 8;
    }
    // Remaining lanes: per-lane, 8 cells per iteration from the contiguous
    // delta row, prefix-summed in registers, scattered to cell positions.
    while lane < cell_size {
        let row = &deltas[lane * cells..(lane + 1) * cells];
        let mut prev = 0u8;
        let mut cell = 0usize;
        while cell + 8 <= cells {
            let mut d = [0u8; 8];
            d.copy_from_slice(&row[cell..cell + 8]);
            let mut v = [0u8; 8];
            let mut acc = prev;
            for k in 0..8 {
                acc = acc.wrapping_add(d[k]);
                v[k] = acc;
            }
            let base = cell * cell_size + lane;
            for (k, &val) in v.iter().enumerate() {
                out[base + k * cell_size] = val;
            }
            prev = acc;
            cell += 8;
        }
        while cell < cells {
            prev = prev.wrapping_add(row[cell]);
            out[cell * cell_size + lane] = prev;
            cell += 1;
        }
        lane += 1;
    }
    Ok(out)
}

pub(crate) fn check(payload: &[u8], cell_size: usize) -> Result<()> {
    if cell_size == 0 {
        return Err(CompressError::ZeroCellSize);
    }
    if !payload.len().is_multiple_of(cell_size) {
        return Err(CompressError::BadPayload {
            len: payload.len(),
            cell_size,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_cell_sizes() {
        for cell_size in [1usize, 2, 3, 4, 8] {
            let data: Vec<u8> = (0..cell_size * 100).map(|i| (i * 7 % 251) as u8).collect();
            let fwd = forward(&data, cell_size).unwrap();
            assert_eq!(fwd.len(), data.len());
            assert_eq!(inverse(&fwd, cell_size).unwrap(), data);
        }
    }

    #[test]
    fn blocked_kernels_match_scalar() {
        // Cell sizes straddling the 8-lane kernel (below, at, above, and
        // non-multiples) and cell counts straddling the 8-cell blocks.
        for cell_size in [1usize, 2, 3, 4, 7, 8, 9, 12, 16, 24] {
            for cells in [0usize, 1, 5, 7, 8, 9, 40, 129] {
                let data: Vec<u8> = (0..cell_size * cells)
                    .map(|i| (i.wrapping_mul(31) ^ (i >> 3)) as u8)
                    .collect();
                let fast = forward(&data, cell_size).unwrap();
                let slow = scalar::forward(&data, cell_size).unwrap();
                assert_eq!(fast, slow, "forward cs={cell_size} cells={cells}");
                assert_eq!(
                    inverse(&fast, cell_size).unwrap(),
                    scalar::inverse(&slow, cell_size).unwrap(),
                    "inverse cs={cell_size} cells={cells}"
                );
                assert_eq!(inverse(&fast, cell_size).unwrap(), data);
            }
        }
    }

    #[test]
    fn smooth_data_becomes_runs() {
        // A linear ramp of u16 cells: after shuffle+delta the low lane is
        // all 1s and the high lane almost all 0s.
        let cells: Vec<u8> = (0..1000u16).flat_map(|v| v.to_le_bytes()).collect();
        let fwd = forward(&cells, 2).unwrap();
        let low_lane = &fwd[..1000];
        let high_lane = &fwd[1000..];
        assert!(low_lane.iter().skip(1).all(|&b| b == 1));
        let zeros = high_lane.iter().filter(|&&b| b == 0).count();
        assert!(zeros > 990, "high lane mostly zero: {zeros}");
    }

    #[test]
    fn validation() {
        assert!(forward(&[1, 2, 3], 2).is_err());
        assert!(forward(&[1, 2], 0).is_err());
        assert!(inverse(&[1, 2, 3], 2).is_err());
        assert_eq!(forward(&[], 4).unwrap(), Vec::<u8>::new());
    }
}
