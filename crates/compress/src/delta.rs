//! Shuffled byte-lane delta transform for smooth raster data.
//!
//! Two steps, both exactly invertible and size-preserving:
//!
//! 1. **Shuffle**: reorder the payload lane-major — all cells' byte 0, then
//!    all cells' byte 1, … (the "shuffle" of Blosc-style compressors), so
//!    that bytes with similar statistics become contiguous;
//! 2. **Delta**: difference each lane against its previous value
//!    (wrapping), turning smooth gradients into long near-zero runs that
//!    PackBits collapses.

use crate::error::{CompressError, Result};

/// Applies shuffle + per-lane delta, returning a buffer of the same size.
///
/// # Errors
/// [`CompressError::ZeroCellSize`] / [`CompressError::BadPayload`].
pub fn forward(payload: &[u8], cell_size: usize) -> Result<Vec<u8>> {
    check(payload, cell_size)?;
    let cells = payload.len() / cell_size;
    let mut out = Vec::with_capacity(payload.len());
    for lane in 0..cell_size {
        let mut prev = 0u8;
        for cell in 0..cells {
            let b = payload[cell * cell_size + lane];
            out.push(b.wrapping_sub(prev));
            prev = b;
        }
    }
    Ok(out)
}

/// Inverts [`forward`].
///
/// # Errors
/// [`CompressError::ZeroCellSize`] / [`CompressError::BadPayload`].
pub fn inverse(deltas: &[u8], cell_size: usize) -> Result<Vec<u8>> {
    check(deltas, cell_size)?;
    let cells = deltas.len() / cell_size;
    let mut out = vec![0u8; deltas.len()];
    for lane in 0..cell_size {
        let mut prev = 0u8;
        for cell in 0..cells {
            let v = deltas[lane * cells + cell].wrapping_add(prev);
            out[cell * cell_size + lane] = v;
            prev = v;
        }
    }
    Ok(out)
}

fn check(payload: &[u8], cell_size: usize) -> Result<()> {
    if cell_size == 0 {
        return Err(CompressError::ZeroCellSize);
    }
    if !payload.len().is_multiple_of(cell_size) {
        return Err(CompressError::BadPayload {
            len: payload.len(),
            cell_size,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_cell_sizes() {
        for cell_size in [1usize, 2, 3, 4, 8] {
            let data: Vec<u8> = (0..cell_size * 100).map(|i| (i * 7 % 251) as u8).collect();
            let fwd = forward(&data, cell_size).unwrap();
            assert_eq!(fwd.len(), data.len());
            assert_eq!(inverse(&fwd, cell_size).unwrap(), data);
        }
    }

    #[test]
    fn smooth_data_becomes_runs() {
        // A linear ramp of u16 cells: after shuffle+delta the low lane is
        // all 1s and the high lane almost all 0s.
        let cells: Vec<u8> = (0..1000u16).flat_map(|v| v.to_le_bytes()).collect();
        let fwd = forward(&cells, 2).unwrap();
        let low_lane = &fwd[..1000];
        let high_lane = &fwd[1000..];
        assert!(low_lane.iter().skip(1).all(|&b| b == 1));
        let zeros = high_lane.iter().filter(|&&b| b == 0).count();
        assert!(zeros > 990, "high lane mostly zero: {zeros}");
    }

    #[test]
    fn validation() {
        assert!(forward(&[1, 2, 3], 2).is_err());
        assert!(forward(&[1, 2], 0).is_err());
        assert!(inverse(&[1, 2, 3], 2).is_err());
        assert_eq!(forward(&[], 4).unwrap(), Vec::<u8>::new());
    }
}
