//! Selective per-tile compression.
//!
//! §8 of the paper: "The RasDaMan storage manager also supports selective
//! compression of blocks and partial cover of data cubes, two important
//! features when supporting sparse data." This crate provides the codecs
//! and the per-tile selection policy:
//!
//! * [`Codec::PackBits`] — byte run-length coding for flat regions;
//! * [`Codec::DeltaPackBits`] — byte-lane delta + PackBits for smooth
//!   rasters;
//! * [`Codec::ChunkOffset`] — the sparse-tile representation of Zhao et
//!   al. (SIGMOD'97, the paper's reference \[14\]): only non-default cells
//!   are stored;
//! * [`CompressionPolicy::Selective`] — try candidates per tile, keep the
//!   smallest stream (never expands: raw framing is always a candidate).
//!
//! Streams are self-describing (tag + original length), so the engine can
//! mix codecs freely across the tiles of one object.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod chunk_offset;
mod codec;
pub mod delta;
mod error;
pub mod packbits;
mod synopsis;
mod varint;

pub use codec::{
    compress, decompress, decompress_view, stream_codec, CellContext, Codec, CompressionPolicy,
};
pub use error::{CompressError, Result};
pub use synopsis::{compress_with_scan, scan_cells, CellScan, NULL_MASK_CHUNKS};

/// Direct access to the chunk-offset heuristics (density estimation).
pub mod sparse {
    pub use crate::chunk_offset::{estimated_size, worthwhile};
}
