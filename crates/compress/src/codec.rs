//! Self-describing codec streams and the selective-compression policy.
//!
//! Every compressed tile starts with a 1-byte codec tag and a varint of
//! the original length, so [`decompress`] needs no external metadata
//! besides the object's cell size and default value (both catalog
//! properties). [`CompressionPolicy::Selective`] reproduces RasDaMan's
//! "selective compression of blocks" (§8): try the candidate codecs per
//! tile and keep the smallest representation, falling back to raw.

use tilestore_testkit::{FromJson, Json, JsonError, ToJson};

use crate::chunk_offset;
use crate::delta;
use crate::error::{CompressError, Result};
use crate::packbits;
use crate::varint::{read_varint, write_varint};

/// Codec identifiers (also the stream tags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Raw bytes, no transform.
    None,
    /// PackBits byte run-length coding.
    PackBits,
    /// Byte-lane delta transform followed by PackBits.
    DeltaPackBits,
    /// Chunk-offset coding for sparse tiles (default-valued cells elided).
    ChunkOffset,
}

impl Codec {
    fn tag(self) -> u8 {
        match self {
            Codec::None => 0,
            Codec::PackBits => 1,
            Codec::DeltaPackBits => 2,
            Codec::ChunkOffset => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        match tag {
            0 => Ok(Codec::None),
            1 => Ok(Codec::PackBits),
            2 => Ok(Codec::DeltaPackBits),
            3 => Ok(Codec::ChunkOffset),
            other => Err(CompressError::UnknownCodec(other)),
        }
    }
}

impl ToJson for Codec {
    fn to_json(&self) -> Json {
        let name = match self {
            Codec::None => "none",
            Codec::PackBits => "packbits",
            Codec::DeltaPackBits => "delta_packbits",
            Codec::ChunkOffset => "chunk_offset",
        };
        Json::Str(name.to_string())
    }
}

impl FromJson for Codec {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        match v.as_str() {
            Some("none") => Ok(Codec::None),
            Some("packbits") => Ok(Codec::PackBits),
            Some("delta_packbits") => Ok(Codec::DeltaPackBits),
            Some("chunk_offset") => Ok(Codec::ChunkOffset),
            _ => Err(JsonError::msg("unknown codec name")),
        }
    }
}

/// Per-object compression policy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CompressionPolicy {
    /// Store tiles raw (still framed, so streams stay self-describing).
    #[default]
    None,
    /// Always use one codec.
    Fixed(Codec),
    /// Try every candidate per tile and keep the smallest stream —
    /// RasDaMan's selective block compression.
    Selective(Vec<Codec>),
}

impl CompressionPolicy {
    /// The usual selective set: PackBits for flat areas, delta+PackBits for
    /// smooth rasters, chunk-offset for sparse tiles.
    #[must_use]
    pub fn selective_default() -> Self {
        CompressionPolicy::Selective(vec![
            Codec::PackBits,
            Codec::DeltaPackBits,
            Codec::ChunkOffset,
        ])
    }
}

impl ToJson for CompressionPolicy {
    fn to_json(&self) -> Json {
        match self {
            CompressionPolicy::None => Json::obj(vec![("kind", Json::Str("none".to_string()))]),
            CompressionPolicy::Fixed(codec) => Json::obj(vec![
                ("kind", Json::Str("fixed".to_string())),
                ("codec", codec.to_json()),
            ]),
            CompressionPolicy::Selective(codecs) => Json::obj(vec![
                ("kind", Json::Str("selective".to_string())),
                ("codecs", codecs.to_json()),
            ]),
        }
    }
}

impl FromJson for CompressionPolicy {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let kind = v
            .field("kind")?
            .as_str()
            .ok_or_else(|| JsonError::msg("policy kind must be a string"))?;
        match kind {
            "none" => Ok(CompressionPolicy::None),
            "fixed" => Ok(CompressionPolicy::Fixed(Codec::from_json(
                v.field("codec")?,
            )?)),
            "selective" => Ok(CompressionPolicy::Selective(Vec::from_json(
                v.field("codecs")?,
            )?)),
            other => Err(JsonError::msg(format!("unknown policy kind {other:?}"))),
        }
    }
}

/// Context a codec needs about the tile's type.
#[derive(Debug, Clone)]
pub struct CellContext<'a> {
    /// Cell size in bytes.
    pub cell_size: usize,
    /// The type's default cell value (`cell_size` bytes).
    pub default: &'a [u8],
}

fn frame(codec: Codec, original_len: usize, body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 10);
    out.push(codec.tag());
    write_varint(&mut out, original_len as u64);
    out.extend_from_slice(&body);
    out
}

fn encode_with(codec: Codec, payload: &[u8], ctx: &CellContext<'_>) -> Result<Vec<u8>> {
    let body = match codec {
        Codec::None => payload.to_vec(),
        Codec::PackBits => packbits::encode(payload),
        Codec::DeltaPackBits => packbits::encode(&delta::forward(payload, ctx.cell_size)?),
        Codec::ChunkOffset => chunk_offset::encode(payload, ctx.default)?,
    };
    Ok(frame(codec, payload.len(), body))
}

/// Compresses `payload` under `policy`. The result is always a framed
/// stream, even for [`CompressionPolicy::None`].
///
/// # Errors
/// Codec validation errors (cell-size mismatches).
pub fn compress(
    policy: &CompressionPolicy,
    payload: &[u8],
    ctx: &CellContext<'_>,
) -> Result<Vec<u8>> {
    match policy {
        CompressionPolicy::None => encode_with(Codec::None, payload, ctx),
        CompressionPolicy::Fixed(codec) => {
            let candidate = encode_with(*codec, payload, ctx)?;
            // Never store an expansion: fall back to raw framing.
            let raw = encode_with(Codec::None, payload, ctx)?;
            Ok(if candidate.len() < raw.len() {
                candidate
            } else {
                raw
            })
        }
        CompressionPolicy::Selective(codecs) => {
            let mut best = encode_with(Codec::None, payload, ctx)?;
            for &codec in codecs {
                let candidate = encode_with(codec, payload, ctx)?;
                if candidate.len() < best.len() {
                    best = candidate;
                }
            }
            Ok(best)
        }
    }
}

/// Decompresses a framed stream produced by [`compress`].
///
/// # Errors
/// [`CompressError::Corrupt`] / [`CompressError::UnknownCodec`] /
/// [`CompressError::LengthMismatch`] on malformed streams.
pub fn decompress(stream: &[u8], ctx: &CellContext<'_>) -> Result<Vec<u8>> {
    Ok(decompress_view(stream, ctx)?.into_owned())
}

/// Like [`decompress`], but borrows the payload of a raw ([`Codec::None`])
/// stream instead of copying it. The engine's parallel tile-fetch path uses
/// this to paste uncompressed tiles straight from the read buffer into the
/// result array.
///
/// # Errors
/// The errors of [`decompress`].
pub fn decompress_view<'a>(
    stream: &'a [u8],
    ctx: &CellContext<'_>,
) -> Result<std::borrow::Cow<'a, [u8]>> {
    use std::borrow::Cow;
    let tag = *stream
        .first()
        .ok_or_else(|| CompressError::Corrupt("empty stream".to_string()))?;
    let codec = Codec::from_tag(tag)?;
    let mut pos = 1usize;
    let original_len = read_varint(stream, &mut pos)? as usize;
    let body = &stream[pos..];
    let out: Cow<'a, [u8]> = match codec {
        Codec::None => {
            if body.len() != original_len {
                return Err(CompressError::LengthMismatch {
                    expected: original_len as u64,
                    got: body.len() as u64,
                });
            }
            Cow::Borrowed(body)
        }
        Codec::PackBits => Cow::Owned(packbits::decode(body, original_len)?),
        Codec::DeltaPackBits => Cow::Owned(delta::inverse(
            &packbits::decode(body, original_len)?,
            ctx.cell_size,
        )?),
        Codec::ChunkOffset => Cow::Owned(chunk_offset::decode(body, ctx.cell_size)?),
    };
    if out.len() != original_len {
        return Err(CompressError::LengthMismatch {
            expected: original_len as u64,
            got: out.len() as u64,
        });
    }
    Ok(out)
}

/// Which codec a framed stream used (for statistics).
///
/// # Errors
/// [`CompressError::Corrupt`] / [`CompressError::UnknownCodec`].
pub fn stream_codec(stream: &[u8]) -> Result<Codec> {
    let tag = *stream
        .first()
        .ok_or_else(|| CompressError::Corrupt("empty stream".to_string()))?;
    Codec::from_tag(tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(cell_size: usize, default: &'a [u8]) -> CellContext<'a> {
        CellContext { cell_size, default }
    }

    #[test]
    fn none_policy_frames_raw() {
        let data = vec![1u8, 2, 3, 4];
        let c = ctx(2, &[0, 0]);
        let s = compress(&CompressionPolicy::None, &data, &c).unwrap();
        assert_eq!(stream_codec(&s).unwrap(), Codec::None);
        assert_eq!(decompress(&s, &c).unwrap(), data);
    }

    #[test]
    fn fixed_policy_never_expands() {
        // Random-ish data defeats PackBits; the fixed policy must fall back.
        let data: Vec<u8> = (0..2048u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let c = ctx(1, &[0]);
        let s = compress(&CompressionPolicy::Fixed(Codec::PackBits), &data, &c).unwrap();
        assert!(s.len() <= data.len() + 10);
        assert_eq!(decompress(&s, &c).unwrap(), data);
    }

    #[test]
    fn selective_picks_chunk_offset_for_sparse() {
        let mut data = vec![0u8; 8000]; // 2000 4-byte default cells
        data[400..404].copy_from_slice(&7u32.to_le_bytes());
        let default = 0u32.to_le_bytes();
        let c = ctx(4, &default);
        let s = compress(&CompressionPolicy::selective_default(), &data, &c).unwrap();
        // PackBits also does well on zeros, but either way it must shrink
        // hugely and decode exactly.
        assert!(s.len() < 200, "sparse tile stream: {} bytes", s.len());
        assert_eq!(decompress(&s, &c).unwrap(), data);
    }

    #[test]
    fn selective_picks_delta_for_smooth() {
        let data: Vec<u8> = (0..4000u16).flat_map(|v| v.to_le_bytes()).collect();
        let default = 0u16.to_le_bytes();
        let c = ctx(2, &default);
        let s = compress(&CompressionPolicy::selective_default(), &data, &c).unwrap();
        assert_eq!(stream_codec(&s).unwrap(), Codec::DeltaPackBits);
        assert!(s.len() < data.len() / 4, "smooth ramp: {} bytes", s.len());
        assert_eq!(decompress(&s, &c).unwrap(), data);
    }

    #[test]
    fn all_codecs_round_trip_mixed_data() {
        let mut data = Vec::new();
        for i in 0..500u32 {
            data.extend_from_slice(&(if i % 7 == 0 { i } else { 0 }).to_le_bytes());
        }
        let default = 0u32.to_le_bytes();
        let c = ctx(4, &default);
        for codec in [
            Codec::None,
            Codec::PackBits,
            Codec::DeltaPackBits,
            Codec::ChunkOffset,
        ] {
            let s = compress(&CompressionPolicy::Fixed(codec), &data, &c).unwrap();
            assert_eq!(decompress(&s, &c).unwrap(), data, "{codec:?}");
        }
    }

    #[test]
    fn corrupt_streams_rejected() {
        let c = ctx(1, &[0]);
        assert!(decompress(&[], &c).is_err());
        assert!(decompress(&[99, 0], &c).is_err()); // unknown tag
        let good = compress(&CompressionPolicy::None, &[1, 2, 3], &c).unwrap();
        assert!(decompress(&good[..good.len() - 1], &c).is_err());
    }
}
