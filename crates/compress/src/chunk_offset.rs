//! Chunk-offset compression for sparse tiles.
//!
//! The scheme of Zhao, Deshpande & Naughton (SIGMOD'97), cited by the paper
//! as the sparse-tile representation in array OLAP systems: a tile whose
//! cells are mostly a default value stores only `(cell offset, cell value)`
//! pairs for the exceptional cells. Pays off below roughly
//! `cell_size / (cell_size + varint)` density; [`worthwhile`] estimates it.

use crate::error::{CompressError, Result};
use crate::varint::{read_varint, write_varint};

/// Encodes `payload` (cells of `cell_size` bytes) against `default`.
///
/// Stream layout: `varint cell_count`, `default cell bytes`, `varint
/// non_default_count`, then per exceptional cell `varint delta_offset`
/// (gap from the previous exceptional cell index, first is absolute) and
/// the cell bytes.
///
/// # Errors
/// [`CompressError::ZeroCellSize`] / [`CompressError::BadPayload`] when the
/// payload is not whole cells or the default has the wrong length.
pub fn encode(payload: &[u8], default: &[u8]) -> Result<Vec<u8>> {
    let cell_size = default.len();
    if cell_size == 0 {
        return Err(CompressError::ZeroCellSize);
    }
    if !payload.len().is_multiple_of(cell_size) {
        return Err(CompressError::BadPayload {
            len: payload.len(),
            cell_size,
        });
    }
    let cells = payload.len() / cell_size;
    let mut out = Vec::with_capacity(payload.len() / 8 + cell_size + 16);
    write_varint(&mut out, cells as u64);
    out.extend_from_slice(default);
    // First pass: count exceptions.
    let exceptional: Vec<usize> = (0..cells)
        .filter(|&i| &payload[i * cell_size..(i + 1) * cell_size] != default)
        .collect();
    write_varint(&mut out, exceptional.len() as u64);
    let mut prev = 0u64;
    for (k, &i) in exceptional.iter().enumerate() {
        let gap = if k == 0 { i as u64 } else { i as u64 - prev };
        prev = i as u64;
        write_varint(&mut out, gap);
        out.extend_from_slice(&payload[i * cell_size..(i + 1) * cell_size]);
    }
    Ok(out)
}

/// Decodes a stream produced by [`encode`]; `cell_size` must match.
///
/// # Errors
/// [`CompressError::Corrupt`] on malformed streams.
pub fn decode(stream: &[u8], cell_size: usize) -> Result<Vec<u8>> {
    if cell_size == 0 {
        return Err(CompressError::ZeroCellSize);
    }
    let mut pos = 0usize;
    let cells = read_varint(stream, &mut pos)? as usize;
    let default = stream
        .get(pos..pos + cell_size)
        .ok_or_else(|| CompressError::Corrupt("truncated default cell".to_string()))?
        .to_vec();
    pos += cell_size;
    let mut out = Vec::with_capacity(cells * cell_size);
    for _ in 0..cells {
        out.extend_from_slice(&default);
    }
    let exceptions = read_varint(stream, &mut pos)? as usize;
    let mut index = 0u64;
    for k in 0..exceptions {
        let gap = read_varint(stream, &mut pos)?;
        index = if k == 0 { gap } else { index + gap };
        let i = index as usize;
        if i >= cells {
            return Err(CompressError::Corrupt(format!(
                "exception offset {i} beyond {cells} cells"
            )));
        }
        let value = stream
            .get(pos..pos + cell_size)
            .ok_or_else(|| CompressError::Corrupt("truncated exception cell".to_string()))?;
        out[i * cell_size..(i + 1) * cell_size].copy_from_slice(value);
        pos += cell_size;
    }
    if pos != stream.len() {
        return Err(CompressError::Corrupt(format!(
            "{} trailing bytes",
            stream.len() - pos
        )));
    }
    Ok(out)
}

/// Estimated compressed size for a tile of `cells` cells with
/// `non_default` exceptions — used by selective compression to decide
/// whether the codec is worth trying.
#[must_use]
pub fn estimated_size(cells: u64, non_default: u64, cell_size: usize) -> u64 {
    // varints ≈ 2 bytes average for tile-scale numbers.
    let _ = cells;
    4 + cell_size as u64 + 2 + non_default * (2 + cell_size as u64)
}

/// Whether chunk-offset is likely to beat the raw representation at the
/// observed density.
#[must_use]
pub fn worthwhile(cells: u64, non_default: u64, cell_size: usize) -> bool {
    estimated_size(cells, non_default, cell_size) < cells * cell_size as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_round_trip() {
        let payload: Vec<u8> = (0..400u16).flat_map(|v| v.to_le_bytes()).collect();
        let enc = encode(&payload, &[0, 0]).unwrap();
        assert_eq!(decode(&enc, 2).unwrap(), payload);
    }

    #[test]
    fn sparse_tile_shrinks_dramatically() {
        // 10_000 4-byte cells, 20 non-default.
        let mut payload = vec![0u8; 40_000];
        for k in 0..20usize {
            let i = k * 487;
            payload[i * 4..i * 4 + 4].copy_from_slice(&(k as u32 + 1).to_le_bytes());
        }
        let enc = encode(&payload, &[0, 0, 0, 0]).unwrap();
        assert!(enc.len() < 200, "sparse stream is {} bytes", enc.len());
        assert_eq!(decode(&enc, 4).unwrap(), payload);
        assert!(worthwhile(10_000, 20, 4));
        assert!(!worthwhile(10_000, 9_500, 4));
    }

    #[test]
    fn non_zero_default() {
        let default = 0xFFFFu16.to_le_bytes();
        let mut payload: Vec<u8> = std::iter::repeat_n(default, 100).flatten().collect();
        payload[50..52].copy_from_slice(&7u16.to_le_bytes());
        let enc = encode(&payload, &default).unwrap();
        assert_eq!(decode(&enc, 2).unwrap(), payload);
    }

    #[test]
    fn empty_payload() {
        let enc = encode(&[], &[0]).unwrap();
        assert_eq!(decode(&enc, 1).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corrupt_streams_error() {
        let payload = vec![1u8; 16];
        let enc = encode(&payload, &[0]).unwrap();
        assert!(decode(&enc[..enc.len() - 1], 1).is_err());
        assert!(decode(&enc, 2).is_err());
        let mut trailing = enc;
        trailing.push(0);
        assert!(decode(&trailing, 1).is_err());
    }

    #[test]
    fn validation() {
        assert!(encode(&[1, 2, 3], &[0, 0]).is_err());
        assert!(encode(&[1], &[]).is_err());
        assert!(decode(&[], 0).is_err());
    }
}
