//! LEB128 variable-length integers for compact stream headers.

use crate::error::{CompressError, Result};

/// Appends `value` as an LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `input` starting at `*pos`, advancing it.
///
/// # Errors
/// [`CompressError::Corrupt`] on truncation or overlong encodings.
pub fn read_varint(input: &[u8], pos: &mut usize) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input
            .get(*pos)
            .ok_or_else(|| CompressError::Corrupt("truncated varint".to_string()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(CompressError::Corrupt("varint overflows u64".to_string()));
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_errors() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1_000_000);
        buf.pop();
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn sequential_reads() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 5);
        write_varint(&mut buf, 500);
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos).unwrap(), 5);
        assert_eq!(read_varint(&buf, &mut pos).unwrap(), 500);
    }
}
