//! PackBits-style byte run-length coding.
//!
//! Control byte `c`:
//! * `0..=127` — literal run: the next `c + 1` bytes are copied verbatim;
//! * `128..=255` — repeat run: the next byte repeats `c - 126` times
//!   (2..=129 copies).
//!
//! Worst-case expansion is 1/128 over the input; long constant runs (the
//! common case for background areas of raster tiles) compress ~64:1.
//!
//! The encoder is word-wide: repeat runs are measured 8 bytes at a time
//! (u64 load, XOR against the splatted run byte, `trailing_zeros` to find
//! the first mismatch) and the literal scan finds the next `>= 3` repeat
//! with a SWAR zero-byte test over two shifted XORs, so incompressible
//! stretches advance 8 positions per iteration instead of 1. The output is
//! byte-identical to [`scalar::encode`], which [`crate::compress`] property
//! suites pin and `BENCH_PR8` uses as the before side.

use crate::error::{CompressError, Result};

/// Reference byte-at-a-time implementation. Kept as the semantic baseline:
/// the word-wide [`encode`] must produce byte-identical streams, and the
/// codec benchmark reports its throughput as the "before" figure.
pub mod scalar {
    use super::{CompressError, Result};

    /// Encodes `input` with PackBits, one byte at a time.
    #[must_use]
    pub fn encode(input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 4 + 8);
        let mut i = 0;
        while i < input.len() {
            // Measure the repeat run at i.
            let b = input[i];
            let mut run = 1usize;
            while run < 129 && i + run < input.len() && input[i + run] == b {
                run += 1;
            }
            if run >= 2 {
                out.push((run + 126) as u8);
                out.push(b);
                i += run;
                continue;
            }
            // Literal run: scan until a repeat of >= 3 starts (a 2-repeat is
            // not worth breaking a literal for) or 128 bytes accumulate.
            let start = i;
            i += 1;
            while i < input.len() && i - start < 128 {
                let b = input[i];
                let mut ahead = 1usize;
                while ahead < 3 && i + ahead < input.len() && input[i + ahead] == b {
                    ahead += 1;
                }
                if ahead >= 3 {
                    break;
                }
                i += 1;
            }
            let len = i - start;
            out.push((len - 1) as u8);
            out.extend_from_slice(&input[start..i]);
        }
        out
    }

    /// Decodes a PackBits stream, checking `expected_len` only at the end.
    ///
    /// # Errors
    /// [`CompressError::Corrupt`] on truncated runs,
    /// [`CompressError::LengthMismatch`] when the total differs.
    pub fn decode(input: &[u8], expected_len: usize) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(expected_len);
        let mut i = 0;
        while i < input.len() {
            let c = input[i];
            i += 1;
            if c <= 127 {
                let len = c as usize + 1;
                let lit = input
                    .get(i..i + len)
                    .ok_or_else(|| CompressError::Corrupt("truncated literal run".to_string()))?;
                out.extend_from_slice(lit);
                i += len;
            } else {
                let count = c as usize - 126;
                let b = *input
                    .get(i)
                    .ok_or_else(|| CompressError::Corrupt("truncated repeat run".to_string()))?;
                i += 1;
                out.resize(out.len() + count, b);
            }
        }
        if out.len() != expected_len {
            return Err(CompressError::LengthMismatch {
                expected: expected_len as u64,
                got: out.len() as u64,
            });
        }
        Ok(out)
    }
}

/// Every-byte-repeated mask for SWAR tricks.
const LSB: u64 = 0x0101_0101_0101_0101;
/// High bit of every byte.
const MSB: u64 = 0x8080_8080_8080_8080;

/// Loads 8 little-endian bytes starting at `input[i]` (caller guarantees
/// `i + 8 <= input.len()`).
#[inline]
fn load_u64(input: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(input[i..i + 8].try_into().expect("8-byte window"))
}

/// SWAR zero-byte mask: the high bit of byte `j` is set if byte `j` of `x`
/// is zero — exact at and below the first zero byte, possible false
/// positives only above it (borrow propagation), so callers that need a
/// *position* must verify the candidate.
#[inline]
fn zero_bytes(x: u64) -> u64 {
    x.wrapping_sub(LSB) & !x & MSB
}

/// Length of the run of bytes equal to `input[i]` starting at `i`, capped
/// at `cap`: u64 loads, XOR against the splatted byte, `trailing_zeros` of
/// the first mismatching word.
#[inline]
fn run_len(input: &[u8], i: usize, cap: usize) -> usize {
    let b = input[i];
    let max = cap.min(input.len() - i);
    let splat = u64::from(b) * LSB;
    let mut n = 1usize;
    while n + 8 <= max {
        let x = load_u64(input, i + n) ^ splat;
        if x == 0 {
            n += 8;
            continue;
        }
        return (n + (x.trailing_zeros() / 8) as usize).min(max);
    }
    while n < max && input[i + n] == b {
        n += 1;
    }
    n
}

/// First index in `[from, cap_end)` where a repeat of `>= 3` equal bytes
/// starts, or `cap_end` if none: 8 candidate positions are tested per
/// iteration via a zero-byte scan over `w ^ (w >> 8)`-style shifted XORs.
#[inline]
fn next_repeat(input: &[u8], from: usize, cap_end: usize) -> usize {
    let mut i = from;
    // Word-wide: test positions i..i+8 at once. Position j starts a 3-run
    // iff input[j] == input[j+1] == input[j+2], i.e. byte j is zero in both
    // shifted XORs; the windows need i+8+2 bytes of lookahead.
    while i + 10 <= input.len() && i < cap_end {
        let w0 = load_u64(input, i);
        // `zero_bytes` never misses the first genuine zero, so an all-zero
        // mask proves no adjacent-equal pair in this window — the common
        // case in incompressible data; skip the second window entirely.
        let m1 = zero_bytes(w0 ^ load_u64(input, i + 1));
        if m1 == 0 {
            i += 8;
            continue;
        }
        let mut m = m1 & zero_bytes(w0 ^ load_u64(input, i + 2));
        if m == 0 {
            i += 8;
            continue;
        }
        // Candidates may be false positives above the first genuine zero:
        // verify from the lowest bit up.
        while m != 0 {
            let j = i + (m.trailing_zeros() / 8) as usize;
            if j >= cap_end {
                return cap_end;
            }
            if input[j] == input[j + 1] && input[j] == input[j + 2] {
                return j;
            }
            m &= m - 1;
        }
        i += 8;
    }
    // Scalar tail (fewer than 10 bytes of lookahead remain).
    while i < cap_end {
        if i + 2 < input.len() && input[i] == input[i + 1] && input[i] == input[i + 2] {
            return i;
        }
        i += 1;
    }
    cap_end
}

/// Encodes `input` with PackBits. Byte-identical to [`scalar::encode`],
/// with word-wide run detection and literal scanning.
#[must_use]
pub fn encode(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 4 + 8);
    let mut i = 0;
    while i < input.len() {
        let run = run_len(input, i, 129);
        if run >= 2 {
            out.push((run + 126) as u8);
            out.push(input[i]);
            i += run;
            continue;
        }
        // Literal run: extends to the next >= 3 repeat (a 2-repeat is not
        // worth breaking a literal for) or 128 bytes, whichever is first.
        let start = i;
        let end = next_repeat(input, i + 1, (start + 128).min(input.len()));
        out.push((end - start - 1) as u8);
        out.extend_from_slice(&input[start..end]);
        i = end;
    }
    out
}

/// Decodes a PackBits stream produced by [`encode`].
///
/// Bails out with [`CompressError::Corrupt`] the moment the output would
/// exceed `expected_len`, so a corrupt repeat-heavy stream cannot balloon
/// the allocation to ~64x the real payload before being rejected.
///
/// # Errors
/// [`CompressError::Corrupt`] on truncated runs or output overflow,
/// [`CompressError::LengthMismatch`] when the stream decodes short.
pub fn decode(input: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(expected_len);
    let mut i = 0;
    while i < input.len() {
        let c = input[i];
        i += 1;
        if c <= 127 {
            let len = c as usize + 1;
            if out.len() + len > expected_len {
                return Err(CompressError::Corrupt(
                    "decoded output exceeds expected length".to_string(),
                ));
            }
            let lit = input
                .get(i..i + len)
                .ok_or_else(|| CompressError::Corrupt("truncated literal run".to_string()))?;
            out.extend_from_slice(lit);
            i += len;
        } else {
            let count = c as usize - 126;
            if out.len() + count > expected_len {
                return Err(CompressError::Corrupt(
                    "decoded output exceeds expected length".to_string(),
                ));
            }
            let b = *input
                .get(i)
                .ok_or_else(|| CompressError::Corrupt("truncated repeat run".to_string()))?;
            i += 1;
            out.resize(out.len() + count, b);
        }
    }
    if out.len() != expected_len {
        return Err(CompressError::LengthMismatch {
            expected: expected_len as u64,
            got: out.len() as u64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let enc = encode(data);
        assert_eq!(enc, scalar::encode(data), "fast/scalar encode diverge");
        assert_eq!(decode(&enc, data.len()).unwrap(), data);
        assert_eq!(scalar::decode(&enc, data.len()).unwrap(), data);
    }

    #[test]
    fn empty_and_single() {
        round_trip(&[]);
        round_trip(&[42]);
    }

    #[test]
    fn constant_run_compresses_hard() {
        let data = vec![7u8; 10_000];
        let enc = encode(&data);
        assert!(enc.len() < 200, "constant run: {} bytes", enc.len());
        assert_eq!(decode(&enc, data.len()).unwrap(), data);
        round_trip(&data);
    }

    #[test]
    fn incompressible_expands_bounded() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let enc = encode(&data);
        assert!(enc.len() <= data.len() + data.len() / 128 + 2);
        round_trip(&data);
    }

    #[test]
    fn mixed_runs() {
        let mut data = Vec::new();
        data.extend_from_slice(&[1, 2, 3]);
        data.extend(std::iter::repeat_n(9u8, 50));
        data.extend_from_slice(&[4, 4, 5, 6]);
        data.extend(std::iter::repeat_n(0u8, 300));
        round_trip(&data);
    }

    #[test]
    fn word_wide_matches_scalar_on_adversarial_layouts() {
        // Run/literal boundaries at every offset relative to the 8-byte
        // windows, 2-repeats that must NOT break literals, 3-repeats that
        // must, and runs crossing the 129 cap.
        for shift in 0..9usize {
            let mut data = vec![0xABu8; shift];
            for k in 0..40u8 {
                data.push(k);
                data.push(k); // 2-repeat inside a literal
            }
            data.extend(std::iter::repeat_n(0x11u8, 3)); // minimal break
            data.extend((0..70u8).map(|v| v.wrapping_mul(13)));
            data.extend(std::iter::repeat_n(0x22u8, 129 + shift)); // cap split
            data.extend((0..200u8).map(|v| v ^ 0x5A));
            round_trip(&data);
        }
    }

    #[test]
    fn truncated_streams_error() {
        let enc = encode(&[1, 1, 1, 1, 1]);
        assert!(decode(&enc[..enc.len() - 1], 5).is_err());
        assert!(decode(&enc, 4).is_err());
    }

    #[test]
    fn oversized_output_bails_before_decoding_everything() {
        // A stream of max-repeat runs claiming ~12.9 KB against an expected
        // length of 64 bytes: the decoder must reject it on the first run
        // that overflows, not after materializing the whole thing.
        let mut stream = Vec::new();
        for _ in 0..100 {
            stream.push(255u8); // repeat x129
            stream.push(0xEE);
        }
        let err = decode(&stream, 64).unwrap_err();
        assert!(matches!(err, CompressError::Corrupt(_)), "{err:?}");
    }
}
