//! PackBits-style byte run-length coding.
//!
//! Control byte `c`:
//! * `0..=127` — literal run: the next `c + 1` bytes are copied verbatim;
//! * `128..=255` — repeat run: the next byte repeats `c - 126` times
//!   (2..=129 copies).
//!
//! Worst-case expansion is 1/128 over the input; long constant runs (the
//! common case for background areas of raster tiles) compress ~64:1.

use crate::error::{CompressError, Result};

/// Encodes `input` with PackBits.
#[must_use]
pub fn encode(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 4 + 8);
    let mut i = 0;
    while i < input.len() {
        // Measure the repeat run at i.
        let b = input[i];
        let mut run = 1usize;
        while run < 129 && i + run < input.len() && input[i + run] == b {
            run += 1;
        }
        if run >= 2 {
            out.push((run + 126) as u8);
            out.push(b);
            i += run;
            continue;
        }
        // Literal run: scan until a repeat of >= 3 starts (a 2-repeat is
        // not worth breaking a literal for) or 128 bytes accumulate.
        let start = i;
        i += 1;
        while i < input.len() && i - start < 128 {
            let b = input[i];
            let mut ahead = 1usize;
            while ahead < 3 && i + ahead < input.len() && input[i + ahead] == b {
                ahead += 1;
            }
            if ahead >= 3 {
                break;
            }
            i += 1;
        }
        let len = i - start;
        out.push((len - 1) as u8);
        out.extend_from_slice(&input[start..i]);
    }
    out
}

/// Decodes a PackBits stream produced by [`encode`].
///
/// # Errors
/// [`CompressError::Corrupt`] on truncated runs.
pub fn decode(input: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(expected_len);
    let mut i = 0;
    while i < input.len() {
        let c = input[i];
        i += 1;
        if c <= 127 {
            let len = c as usize + 1;
            let lit = input
                .get(i..i + len)
                .ok_or_else(|| CompressError::Corrupt("truncated literal run".to_string()))?;
            out.extend_from_slice(lit);
            i += len;
        } else {
            let count = c as usize - 126;
            let b = *input
                .get(i)
                .ok_or_else(|| CompressError::Corrupt("truncated repeat run".to_string()))?;
            i += 1;
            out.resize(out.len() + count, b);
        }
    }
    if out.len() != expected_len {
        return Err(CompressError::LengthMismatch {
            expected: expected_len as u64,
            got: out.len() as u64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let enc = encode(data);
        assert_eq!(decode(&enc, data.len()).unwrap(), data);
    }

    #[test]
    fn empty_and_single() {
        round_trip(&[]);
        round_trip(&[42]);
    }

    #[test]
    fn constant_run_compresses_hard() {
        let data = vec![7u8; 10_000];
        let enc = encode(&data);
        assert!(enc.len() < 200, "constant run: {} bytes", enc.len());
        assert_eq!(decode(&enc, data.len()).unwrap(), data);
    }

    #[test]
    fn incompressible_expands_bounded() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let enc = encode(&data);
        assert!(enc.len() <= data.len() + data.len() / 128 + 2);
        round_trip(&data);
    }

    #[test]
    fn mixed_runs() {
        let mut data = Vec::new();
        data.extend_from_slice(&[1, 2, 3]);
        data.extend(std::iter::repeat_n(9u8, 50));
        data.extend_from_slice(&[4, 4, 5, 6]);
        data.extend(std::iter::repeat_n(0u8, 300));
        round_trip(&data);
    }

    #[test]
    fn truncated_streams_error() {
        let enc = encode(&[1, 1, 1, 1, 1]);
        assert!(decode(&enc[..enc.len() - 1], 5).is_err());
        assert!(decode(&enc, 4).is_err());
    }
}
