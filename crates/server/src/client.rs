//! A blocking client for the tilestore wire protocol.
//!
//! One [`Client`] owns one TCP connection and issues requests serially
//! (the protocol is strictly request/response per connection; open more
//! clients for concurrency). Typed errors mirror the wire's
//! [`crate::wire::ErrorCode`]s so callers can distinguish
//! "retry later" from "this request is wrong" without string matching.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use tilestore_engine::Array;
use tilestore_geometry::Domain;
use tilestore_testkit::{Json, Rng};

use crate::wire::{hex_decode, hex_encode, read_frame, write_frame, ErrorCode};

/// Everything that can go wrong with a remote request.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(std::io::Error),
    /// The server refused admission; retry after backoff.
    Busy(String),
    /// The request's deadline expired server-side.
    Deadline(String),
    /// The server is shutting down.
    Shutdown(String),
    /// The server rejected the request as malformed.
    BadRequest(String),
    /// The engine failed the operation.
    Engine(String),
    /// A cluster coordinator could not reach one of its shards; the message
    /// names the failed shard.
    ShardUnavailable(String),
    /// The response violated the wire protocol (bad frame, id mismatch,
    /// missing fields).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Busy(m) => write!(f, "busy: {m}"),
            ClientError::Deadline(m) => write!(f, "deadline: {m}"),
            ClientError::Shutdown(m) => write!(f, "shutdown: {m}"),
            ClientError::BadRequest(m) => write!(f, "bad request: {m}"),
            ClientError::Engine(m) => write!(f, "engine: {m}"),
            ClientError::ShardUnavailable(m) => write!(f, "shard unavailable: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Client-side result alias.
pub type ClientResult<T> = Result<T, ClientError>;

/// A query result decoded from the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum RemoteValue {
    /// A dense array: its domain, per-cell byte width, and raw cell bytes
    /// (byte-identical to the in-process result).
    Array {
        /// Spatial domain of the result.
        domain: Domain,
        /// Bytes per cell.
        cell_size: usize,
        /// Row-major cell bytes.
        cells: Vec<u8>,
    },
    /// A scalar aggregate, reconstructed bit-exactly from its IEEE-754 bits.
    Number(f64),
    /// A counting aggregate.
    Count(u64),
    /// A boolean aggregate (`some_cells` / `all_cells`).
    Bool(bool),
}

/// Retry behaviour for transient failures ([`ClientError::Busy`] and
/// transport errors). Off by default: retries re-send the request, which is
/// only safe when the caller knows the operation is idempotent (reads,
/// metadata) or tolerates re-execution. Delays grow exponentially from
/// `base_delay_ms` and are jittered by the deterministic testkit PRNG so a
/// thundering herd of clients desynchronizes without any wall-clock
/// dependence in tests.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries attempted after the first failure (0 = fail immediately).
    pub max_retries: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Seed for the jitter PRNG.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base_delay_ms: 10,
            max_delay_ms: 500,
            seed: 0x7269_6c65,
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retry number `attempt` (1-based):
    /// exponential growth capped at `max_delay_ms`, then scaled by a uniform
    /// factor in `[0.5, 1.0]` so synchronized clients spread out.
    fn delay(&self, attempt: u32, rng: &mut Rng) -> Duration {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
            .min(self.max_delay_ms)
            .max(1);
        let jittered = exp / 2 + rng.gen_range(0..=exp / 2);
        Duration::from_millis(jittered)
    }
}

/// A blocking connection to a tilestore server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// The server's address, kept for transparent reconnects.
    addr: SocketAddr,
    next_id: u64,
    /// Deadline attached to every request, in ms (None = server default).
    deadline_ms: Option<u64>,
    /// The server-assigned request id echoed on the last response (0 until
    /// a response carried one).
    last_request_id: u64,
    /// Transparent retry/reconnect policy; `None` surfaces every failure.
    retry: Option<RetryPolicy>,
    /// Jitter source for retry backoff.
    rng: Rng,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            addr: peer,
            next_id: 1,
            deadline_ms: None,
            last_request_id: 0,
            retry: None,
            rng: Rng::seed_from_u64(RetryPolicy::default().seed),
        })
    }

    /// Sets the per-request deadline attached to subsequent requests
    /// (`Some(0)` forces a deterministic deadline rejection; `None` uses
    /// the server's default).
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
    }

    /// Enables (or with `None` disables) transparent retry: `busy`
    /// responses are retried after jittered backoff on the same connection,
    /// and transport failures (connection reset, server restart) trigger a
    /// reconnect to the original address before the retry. Bounded by the
    /// policy's `max_retries`; the final error surfaces unchanged.
    pub fn set_retry(&mut self, policy: Option<RetryPolicy>) {
        if let Some(p) = &policy {
            self.rng = Rng::seed_from_u64(p.seed);
        }
        self.retry = policy;
    }

    /// Drops the current connection and dials the original address again.
    ///
    /// # Errors
    /// Connection failures.
    pub fn reconnect(&mut self) -> ClientResult<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = BufWriter::new(stream);
        Ok(())
    }

    /// The request id the server assigned to (and echoed on) the most
    /// recent response; `0` before the first response. Request ids tag
    /// every trace span and slow-query entry the request produced
    /// server-side, so this is the correlation key for `top` and exported
    /// trace JSONL.
    #[must_use]
    pub fn last_request_id(&self) -> u64 {
        self.last_request_id
    }

    /// Sends one request object and returns the `result` payload, applying
    /// the retry policy (if any): `busy` retries on the same connection,
    /// transport errors reconnect first. Non-transient failures (bad
    /// request, engine, deadline, shutdown) surface immediately.
    fn call(&mut self, op: &str, fields: Vec<(&str, Json)>) -> ClientResult<Json> {
        let Some(policy) = self.retry.clone() else {
            return self.call_once(op, &fields);
        };
        let mut attempt = 0u32;
        loop {
            let err = match self.call_once(op, &fields) {
                Ok(v) => return Ok(v),
                Err(e @ (ClientError::Busy(_) | ClientError::Io(_)))
                    if attempt < policy.max_retries =>
                {
                    e
                }
                Err(e) => return Err(e),
            };
            attempt += 1;
            std::thread::sleep(policy.delay(attempt, &mut self.rng));
            if matches!(err, ClientError::Io(_)) {
                // Reconnect failures burn a retry each; the last one's error
                // is what the caller sees.
                if let Err(re) = self.reconnect() {
                    if attempt >= policy.max_retries {
                        return Err(re);
                    }
                }
            }
        }
    }

    /// One request/response exchange, no retries.
    fn call_once(&mut self, op: &str, fields: &[(&str, Json)]) -> ClientResult<Json> {
        let id = self.next_id;
        self.next_id += 1;
        let mut all = vec![("id", Json::UInt(id)), ("op", Json::Str(op.to_string()))];
        if let Some(ms) = self.deadline_ms {
            all.push(("deadline_ms", Json::UInt(ms)));
        }
        all.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
        let payload = Json::obj(all).to_string_compact();
        write_frame(&mut self.writer, payload.as_bytes())?;
        let frame = read_frame(&mut self.reader)?.ok_or_else(|| {
            // A clean close between frames is a transport failure from the
            // caller's perspective: the request got no answer. Classifying
            // it as `Io` lets the retry policy reconnect.
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "server closed the connection",
            ))
        })?;
        let resp = std::str::from_utf8(&frame)
            .ok()
            .and_then(|s| Json::parse(s).ok())
            .ok_or_else(|| ClientError::Protocol("response is not valid JSON".to_string()))?;
        if let Some(rid) = resp.get("request_id").and_then(Json::as_u64) {
            self.last_request_id = rid;
        }
        let got_id = resp.get("id").and_then(Json::as_u64).unwrap_or(0);
        if got_id != id {
            return Err(ClientError::Protocol(format!(
                "response id {got_id} does not match request id {id}"
            )));
        }
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            return resp
                .get("result")
                .cloned()
                .ok_or_else(|| ClientError::Protocol("ok response without result".to_string()));
        }
        let message = resp
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let code = resp
            .get("error")
            .and_then(Json::as_str)
            .and_then(ErrorCode::parse);
        Err(match code {
            Some(ErrorCode::Busy) => ClientError::Busy(message),
            Some(ErrorCode::Deadline) => ClientError::Deadline(message),
            Some(ErrorCode::Shutdown) => ClientError::Shutdown(message),
            Some(ErrorCode::BadRequest) => ClientError::BadRequest(message),
            Some(ErrorCode::Engine) => ClientError::Engine(message),
            Some(ErrorCode::ShardUnavailable) => ClientError::ShardUnavailable(message),
            None => ClientError::Protocol(format!("unrecognized error response: {message}")),
        })
    }

    /// Round-trip liveness check.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn ping(&mut self) -> ClientResult<()> {
        let r = self.call("ping", Vec::new())?;
        if r.as_str() == Some("pong") {
            Ok(())
        } else {
            Err(ClientError::Protocol("ping did not pong".to_string()))
        }
    }

    /// Executes a rasql query and decodes the result value.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn query(&mut self, q: &str) -> ClientResult<RemoteValue> {
        let result = self.call("query", vec![("q", Json::Str(q.to_string()))])?;
        let value = result
            .get("value")
            .ok_or_else(|| ClientError::Protocol("query result lacks value".to_string()))?;
        decode_value(value)
    }

    /// Executes a rasql query and returns the raw result JSON (value and
    /// stats), for callers that want the server-side statistics too.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn query_raw(&mut self, q: &str) -> ClientResult<Json> {
        self.call("query", vec![("q", Json::Str(q.to_string()))])
    }

    /// Inserts an array into an object.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn insert(&mut self, object: &str, array: &Array) -> ClientResult<Json> {
        self.call(
            "insert",
            vec![
                ("object", Json::Str(object.to_string())),
                ("domain", Json::Str(array.domain().to_string())),
                ("cells_hex", Json::Str(hex_encode(array.bytes()))),
            ],
        )
    }

    /// Re-tiles an object with a textual scheme spec (see
    /// `tilestore_tiling::parse_scheme_spec`).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn retile(&mut self, object: &str, scheme_spec: &str) -> ClientResult<Json> {
        self.call(
            "retile",
            vec![
                ("object", Json::Str(object.to_string())),
                ("scheme", Json::Str(scheme_spec.to_string())),
            ],
        )
    }

    /// Fetches one object's metadata.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn info(&mut self, object: &str) -> ClientResult<Json> {
        self.call("info", vec![("object", Json::Str(object.to_string()))])
    }

    /// Fetches server-wide statistics (objects, I/O, metrics).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn stats(&mut self) -> ClientResult<Json> {
        self.call("stats", Vec::new())
    }

    /// Saves and integrity-checks the server's database directory.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn fsck(&mut self) -> ClientResult<Json> {
        self.call("fsck", Vec::new())
    }

    /// Fetches the full live metrics registry (counters, gauges and
    /// histogram snapshots with p50/p95/p99).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn metrics(&mut self) -> ClientResult<Json> {
        self.call("metrics", Vec::new())
    }

    /// Fetches the server's health report (status, epoch, active
    /// snapshots, in-flight requests, failure counters).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn health(&mut self) -> ClientResult<Json> {
        self.call("health", Vec::new())
    }

    /// Fetches the most recent slow-query entries (newest first).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn slow_queries(&mut self, limit: usize) -> ClientResult<Json> {
        self.call("slow", vec![("limit", Json::UInt(limit as u64))])
    }

    /// Runs `EXPLAIN [ANALYZE] <query>` server-side and returns the raw
    /// report JSON (`plan` and, with `analyze`, measured statistics).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn explain(&mut self, query: &str, analyze: bool) -> ClientResult<Json> {
        let stmt = if analyze {
            format!("EXPLAIN ANALYZE {query}")
        } else {
            format!("EXPLAIN {query}")
        };
        self.call("query", vec![("q", Json::Str(stmt))])
    }

    /// Pins the server's current snapshot, returning `(pin id, epoch)`. The
    /// snapshot stays readable server-side — across concurrent writes and
    /// re-tiles — until [`Client::unpin`] or this connection closes. This is
    /// the per-shard half of the cluster's epoch-agreement handshake.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn pin(&mut self) -> ClientResult<(u64, u64)> {
        let r = self.call("pin", Vec::new())?;
        let pin = r
            .get("pin")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("pin response lacks pin id".to_string()))?;
        let epoch = r
            .get("epoch")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("pin response lacks epoch".to_string()))?;
        Ok((pin, epoch))
    }

    /// Releases a pinned snapshot.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn unpin(&mut self, pin: u64) -> ClientResult<()> {
        self.call("unpin", vec![("pin", Json::UInt(pin))])
            .map(|_| ())
    }

    /// Executes a rasql query against a pinned snapshot, returning the raw
    /// result JSON (value, stats and the pinned epoch).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn query_pinned_raw(&mut self, q: &str, pin: u64) -> ClientResult<Json> {
        self.call(
            "query",
            vec![("q", Json::Str(q.to_string())), ("pin", Json::UInt(pin))],
        )
    }

    /// Fetches one object's metadata as seen by a pinned snapshot.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn info_pinned(&mut self, object: &str, pin: u64) -> ClientResult<Json> {
        self.call(
            "info",
            vec![
                ("object", Json::Str(object.to_string())),
                ("pin", Json::UInt(pin)),
            ],
        )
    }

    /// Asks the server to shut down gracefully (drain, then save).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.call("shutdown", Vec::new()).map(|_| ())
    }
}

/// Decodes the `value` object of a query response.
fn decode_value(v: &Json) -> ClientResult<RemoteValue> {
    let proto = |m: &str| ClientError::Protocol(m.to_string());
    match v.get("kind").and_then(Json::as_str) {
        Some("array") => {
            let domain = v
                .get("domain")
                .and_then(Json::as_str)
                .and_then(|s| s.parse::<Domain>().ok())
                .ok_or_else(|| proto("array value lacks a valid domain"))?;
            let cell_size =
                v.get("cell_size")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| proto("array value lacks cell_size"))? as usize;
            let cells = v
                .get("cells_hex")
                .and_then(Json::as_str)
                .ok_or_else(|| proto("array value lacks cells_hex"))
                .and_then(|s| hex_decode(s).map_err(ClientError::Protocol))?;
            Ok(RemoteValue::Array {
                domain,
                cell_size,
                cells,
            })
        }
        Some("number") => {
            let bits = v
                .get("bits")
                .and_then(Json::as_u64)
                .ok_or_else(|| proto("number value lacks bits"))?;
            Ok(RemoteValue::Number(f64::from_bits(bits)))
        }
        Some("count") => v
            .get("value")
            .and_then(Json::as_u64)
            .map(RemoteValue::Count)
            .ok_or_else(|| proto("count value lacks value")),
        Some("bool") => v
            .get("value")
            .and_then(Json::as_bool)
            .map(RemoteValue::Bool)
            .ok_or_else(|| proto("bool value lacks value")),
        _ => Err(proto("unknown value kind")),
    }
}
