//! A blocking client for the tilestore wire protocol.
//!
//! One [`Client`] owns one TCP connection and issues requests serially
//! (the protocol is strictly request/response per connection; open more
//! clients for concurrency). Typed errors mirror the wire's
//! [`crate::wire::ErrorCode`]s so callers can distinguish
//! "retry later" from "this request is wrong" without string matching.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use tilestore_engine::Array;
use tilestore_geometry::Domain;
use tilestore_testkit::Json;

use crate::wire::{hex_decode, hex_encode, read_frame, write_frame, ErrorCode};

/// Everything that can go wrong with a remote request.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(std::io::Error),
    /// The server refused admission; retry after backoff.
    Busy(String),
    /// The request's deadline expired server-side.
    Deadline(String),
    /// The server is shutting down.
    Shutdown(String),
    /// The server rejected the request as malformed.
    BadRequest(String),
    /// The engine failed the operation.
    Engine(String),
    /// The response violated the wire protocol (bad frame, id mismatch,
    /// missing fields).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Busy(m) => write!(f, "busy: {m}"),
            ClientError::Deadline(m) => write!(f, "deadline: {m}"),
            ClientError::Shutdown(m) => write!(f, "shutdown: {m}"),
            ClientError::BadRequest(m) => write!(f, "bad request: {m}"),
            ClientError::Engine(m) => write!(f, "engine: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Client-side result alias.
pub type ClientResult<T> = Result<T, ClientError>;

/// A query result decoded from the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum RemoteValue {
    /// A dense array: its domain, per-cell byte width, and raw cell bytes
    /// (byte-identical to the in-process result).
    Array {
        /// Spatial domain of the result.
        domain: Domain,
        /// Bytes per cell.
        cell_size: usize,
        /// Row-major cell bytes.
        cells: Vec<u8>,
    },
    /// A scalar aggregate, reconstructed bit-exactly from its IEEE-754 bits.
    Number(f64),
    /// A counting aggregate.
    Count(u64),
    /// A boolean aggregate (`some_cells` / `all_cells`).
    Bool(bool),
}

/// A blocking connection to a tilestore server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// Deadline attached to every request, in ms (None = server default).
    deadline_ms: Option<u64>,
    /// The server-assigned request id echoed on the last response (0 until
    /// a response carried one).
    last_request_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 1,
            deadline_ms: None,
            last_request_id: 0,
        })
    }

    /// Sets the per-request deadline attached to subsequent requests
    /// (`Some(0)` forces a deterministic deadline rejection; `None` uses
    /// the server's default).
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
    }

    /// The request id the server assigned to (and echoed on) the most
    /// recent response; `0` before the first response. Request ids tag
    /// every trace span and slow-query entry the request produced
    /// server-side, so this is the correlation key for `top` and exported
    /// trace JSONL.
    #[must_use]
    pub fn last_request_id(&self) -> u64 {
        self.last_request_id
    }

    /// Sends one request object and returns the `result` payload.
    fn call(&mut self, op: &str, mut fields: Vec<(&str, Json)>) -> ClientResult<Json> {
        let id = self.next_id;
        self.next_id += 1;
        let mut all = vec![("id", Json::UInt(id)), ("op", Json::Str(op.to_string()))];
        if let Some(ms) = self.deadline_ms {
            all.push(("deadline_ms", Json::UInt(ms)));
        }
        all.append(&mut fields);
        let payload = Json::obj(all).to_string_compact();
        write_frame(&mut self.writer, payload.as_bytes())?;
        let frame = read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".to_string()))?;
        let resp = std::str::from_utf8(&frame)
            .ok()
            .and_then(|s| Json::parse(s).ok())
            .ok_or_else(|| ClientError::Protocol("response is not valid JSON".to_string()))?;
        if let Some(rid) = resp.get("request_id").and_then(Json::as_u64) {
            self.last_request_id = rid;
        }
        let got_id = resp.get("id").and_then(Json::as_u64).unwrap_or(0);
        if got_id != id {
            return Err(ClientError::Protocol(format!(
                "response id {got_id} does not match request id {id}"
            )));
        }
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            return resp
                .get("result")
                .cloned()
                .ok_or_else(|| ClientError::Protocol("ok response without result".to_string()));
        }
        let message = resp
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let code = resp
            .get("error")
            .and_then(Json::as_str)
            .and_then(ErrorCode::parse);
        Err(match code {
            Some(ErrorCode::Busy) => ClientError::Busy(message),
            Some(ErrorCode::Deadline) => ClientError::Deadline(message),
            Some(ErrorCode::Shutdown) => ClientError::Shutdown(message),
            Some(ErrorCode::BadRequest) => ClientError::BadRequest(message),
            Some(ErrorCode::Engine) => ClientError::Engine(message),
            None => ClientError::Protocol(format!("unrecognized error response: {message}")),
        })
    }

    /// Round-trip liveness check.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn ping(&mut self) -> ClientResult<()> {
        let r = self.call("ping", Vec::new())?;
        if r.as_str() == Some("pong") {
            Ok(())
        } else {
            Err(ClientError::Protocol("ping did not pong".to_string()))
        }
    }

    /// Executes a rasql query and decodes the result value.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn query(&mut self, q: &str) -> ClientResult<RemoteValue> {
        let result = self.call("query", vec![("q", Json::Str(q.to_string()))])?;
        let value = result
            .get("value")
            .ok_or_else(|| ClientError::Protocol("query result lacks value".to_string()))?;
        decode_value(value)
    }

    /// Executes a rasql query and returns the raw result JSON (value and
    /// stats), for callers that want the server-side statistics too.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn query_raw(&mut self, q: &str) -> ClientResult<Json> {
        self.call("query", vec![("q", Json::Str(q.to_string()))])
    }

    /// Inserts an array into an object.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn insert(&mut self, object: &str, array: &Array) -> ClientResult<Json> {
        self.call(
            "insert",
            vec![
                ("object", Json::Str(object.to_string())),
                ("domain", Json::Str(array.domain().to_string())),
                ("cells_hex", Json::Str(hex_encode(array.bytes()))),
            ],
        )
    }

    /// Re-tiles an object with a textual scheme spec (see
    /// `tilestore_tiling::parse_scheme_spec`).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn retile(&mut self, object: &str, scheme_spec: &str) -> ClientResult<Json> {
        self.call(
            "retile",
            vec![
                ("object", Json::Str(object.to_string())),
                ("scheme", Json::Str(scheme_spec.to_string())),
            ],
        )
    }

    /// Fetches one object's metadata.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn info(&mut self, object: &str) -> ClientResult<Json> {
        self.call("info", vec![("object", Json::Str(object.to_string()))])
    }

    /// Fetches server-wide statistics (objects, I/O, metrics).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn stats(&mut self) -> ClientResult<Json> {
        self.call("stats", Vec::new())
    }

    /// Saves and integrity-checks the server's database directory.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn fsck(&mut self) -> ClientResult<Json> {
        self.call("fsck", Vec::new())
    }

    /// Fetches the full live metrics registry (counters, gauges and
    /// histogram snapshots with p50/p95/p99).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn metrics(&mut self) -> ClientResult<Json> {
        self.call("metrics", Vec::new())
    }

    /// Fetches the server's health report (status, epoch, active
    /// snapshots, in-flight requests, failure counters).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn health(&mut self) -> ClientResult<Json> {
        self.call("health", Vec::new())
    }

    /// Fetches the most recent slow-query entries (newest first).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn slow_queries(&mut self, limit: usize) -> ClientResult<Json> {
        self.call("slow", vec![("limit", Json::UInt(limit as u64))])
    }

    /// Runs `EXPLAIN [ANALYZE] <query>` server-side and returns the raw
    /// report JSON (`plan` and, with `analyze`, measured statistics).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn explain(&mut self, query: &str, analyze: bool) -> ClientResult<Json> {
        let stmt = if analyze {
            format!("EXPLAIN ANALYZE {query}")
        } else {
            format!("EXPLAIN {query}")
        };
        self.call("query", vec![("q", Json::Str(stmt))])
    }

    /// Asks the server to shut down gracefully (drain, then save).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.call("shutdown", Vec::new()).map(|_| ())
    }
}

/// Decodes the `value` object of a query response.
fn decode_value(v: &Json) -> ClientResult<RemoteValue> {
    let proto = |m: &str| ClientError::Protocol(m.to_string());
    match v.get("kind").and_then(Json::as_str) {
        Some("array") => {
            let domain = v
                .get("domain")
                .and_then(Json::as_str)
                .and_then(|s| s.parse::<Domain>().ok())
                .ok_or_else(|| proto("array value lacks a valid domain"))?;
            let cell_size =
                v.get("cell_size")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| proto("array value lacks cell_size"))? as usize;
            let cells = v
                .get("cells_hex")
                .and_then(Json::as_str)
                .ok_or_else(|| proto("array value lacks cells_hex"))
                .and_then(|s| hex_decode(s).map_err(ClientError::Protocol))?;
            Ok(RemoteValue::Array {
                domain,
                cell_size,
                cells,
            })
        }
        Some("number") => {
            let bits = v
                .get("bits")
                .and_then(Json::as_u64)
                .ok_or_else(|| proto("number value lacks bits"))?;
            Ok(RemoteValue::Number(f64::from_bits(bits)))
        }
        Some("count") => v
            .get("value")
            .and_then(Json::as_u64)
            .map(RemoteValue::Count)
            .ok_or_else(|| proto("count value lacks value")),
        Some("bool") => v
            .get("value")
            .and_then(Json::as_bool)
            .map(RemoteValue::Bool)
            .ok_or_else(|| proto("bool value lacks value")),
        _ => Err(proto("unknown value kind")),
    }
}
