//! A zero-dependency network serving layer for tilestore.
//!
//! The engine's query path is a library call; this crate puts it behind a
//! socket so many clients can share one database process. Three layers:
//!
//! * [`wire`] — the protocol: `[u32 LE length][compact JSON]` frames, typed
//!   error codes, hex-encoded cell payloads so array results are
//!   byte-identical to the in-process path;
//! * [`server`] — [`serve`] / [`ServerHandle`]: a `std::net` TCP accept
//!   loop, one session thread per connection, request execution on the
//!   shared [`ThreadPool`](tilestore_exec::ThreadPool) (the same pool the
//!   engine scatters tile fetches onto), bounded admission with typed
//!   `busy` backpressure, per-request deadlines, and graceful shutdown that
//!   drains in-flight requests and ends with an atomic catalog save;
//! * [`client`] — [`Client`]: a blocking connection with typed
//!   [`ClientError`]s and bit-exact value decoding ([`RemoteValue`]).
//!
//! Everything is `std` only — no async runtime, no serialization crate.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod server;
pub mod slowlog;
pub mod wire;

pub use client::{Client, ClientError, ClientResult, RemoteValue, RetryPolicy};
pub use server::{serve, ServerConfig, ServerHandle};
pub use slowlog::{SlowQueryEntry, SlowQueryLog};
pub use wire::{ErrorCode, MAX_FRAME};
