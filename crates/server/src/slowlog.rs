//! Server-side slow-query log.
//!
//! Every statement whose wall-clock time (admission to completion) reaches
//! the configured threshold is recorded twice: in a bounded in-memory ring
//! served live over the wire (`slow` op / `tilestore top`), and — for
//! file-backed databases — appended as one JSON line to
//! `<dir>/slow_queries.log`. The file is size-capped like the access log:
//! when the live segment exceeds the cap it is rotated to
//! `slow_queries.log.1` (replacing the previous rotation), so the log can
//! never grow without bound.

use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use tilestore_engine::QueryStats;
use tilestore_testkit::{Json, ToJson};

/// Entries kept in the in-memory ring (oldest dropped first).
pub const RING_CAPACITY: usize = 128;

/// Size cap of the live `slow_queries.log` segment before rotation.
pub const MAX_LOG_BYTES: u64 = 1 << 20;

/// One slow statement, as recorded at completion.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// The request id the statement executed under.
    pub request_id: u64,
    /// The statement text as received.
    pub statement: String,
    /// Catalog epoch the statement observed.
    pub epoch: u64,
    /// Wall-clock time from admission to completion, in nanoseconds.
    pub elapsed_ns: u64,
    /// The executor's counters, when the statement produced them (plain
    /// `EXPLAIN` does not execute, so it carries none).
    pub stats: Option<QueryStats>,
}

impl ToJson for SlowQueryEntry {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("request_id", self.request_id.to_json()),
            ("statement", Json::Str(self.statement.clone())),
            ("epoch", self.epoch.to_json()),
            ("elapsed_ns", self.elapsed_ns.to_json()),
        ];
        if let Some(stats) = &self.stats {
            fields.push(("stats", stats.to_json()));
        }
        Json::obj(fields)
    }
}

/// A bounded slow-query log: in-memory ring + optional rotated JSONL file.
pub struct SlowQueryLog {
    threshold: Duration,
    ring: Mutex<VecDeque<SlowQueryEntry>>,
    file: Option<PathBuf>,
}

impl SlowQueryLog {
    /// Creates a log with the given threshold in milliseconds (`0` records
    /// every statement — useful for smoke tests and traffic audits). Pass
    /// the database directory to also persist entries to
    /// `slow_queries.log`; `None` keeps the log purely in memory.
    #[must_use]
    pub fn new(threshold_ms: u64, dir: Option<&Path>) -> Self {
        SlowQueryLog {
            threshold: Duration::from_millis(threshold_ms),
            ring: Mutex::new(VecDeque::with_capacity(RING_CAPACITY)),
            file: dir.map(|d| d.join("slow_queries.log")),
        }
    }

    /// The configured threshold in milliseconds.
    #[must_use]
    pub fn threshold_ms(&self) -> u64 {
        self.threshold.as_millis() as u64
    }

    /// Records `entry` if `elapsed` reaches the threshold. Returns whether
    /// the entry was recorded.
    pub fn observe(&self, elapsed: Duration, entry: SlowQueryEntry) -> bool {
        if elapsed < self.threshold {
            return false;
        }
        let line = entry.to_json().to_string_compact();
        {
            let mut ring = self
                .ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if ring.len() >= RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(entry);
        }
        if let Some(path) = &self.file {
            // Log persistence must never fail a request; errors are dropped.
            let _ = self.append_line(path, &line);
        }
        true
    }

    fn append_line(&self, path: &Path, line: &str) -> std::io::Result<()> {
        if std::fs::metadata(path).is_ok_and(|m| m.len() + line.len() as u64 + 1 > MAX_LOG_BYTES) {
            let rotated = path.with_extension("log.1");
            let _ = std::fs::rename(path, rotated);
        }
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")
    }

    /// Entries currently in the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether the ring holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent `limit` entries, newest first.
    #[must_use]
    pub fn recent(&self, limit: usize) -> Vec<SlowQueryEntry> {
        let ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ring.iter().rev().take(limit).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, elapsed_ns: u64) -> SlowQueryEntry {
        SlowQueryEntry {
            request_id: id,
            statement: format!("SELECT q{id} FROM q{id}"),
            epoch: 3,
            elapsed_ns,
            stats: None,
        }
    }

    #[test]
    fn threshold_filters_fast_statements() {
        let log = SlowQueryLog::new(10, None);
        assert!(!log.observe(Duration::from_millis(9), entry(1, 9_000_000)));
        assert!(log.observe(Duration::from_millis(10), entry(2, 10_000_000)));
        assert_eq!(log.len(), 1);
        assert_eq!(log.recent(8)[0].request_id, 2);
    }

    #[test]
    fn zero_threshold_records_everything_and_ring_is_bounded() {
        let log = SlowQueryLog::new(0, None);
        for i in 0..(RING_CAPACITY as u64 + 10) {
            assert!(log.observe(Duration::ZERO, entry(i, 1)));
        }
        assert_eq!(log.len(), RING_CAPACITY);
        let recent = log.recent(2);
        // Newest first; the oldest ten were dropped.
        assert_eq!(recent[0].request_id, RING_CAPACITY as u64 + 9);
        assert_eq!(recent[1].request_id, RING_CAPACITY as u64 + 8);
    }

    #[test]
    fn entries_persist_as_jsonl_and_the_file_rotates() {
        let tmp = tilestore_testkit::tempdir().unwrap();
        let log = SlowQueryLog::new(0, Some(tmp.path()));
        let mut e = entry(7, 42);
        e.stats = Some(QueryStats {
            tiles_read: 2,
            tiles_pruned: 5,
            ..QueryStats::default()
        });
        log.observe(Duration::ZERO, e);
        let text = std::fs::read_to_string(tmp.path().join("slow_queries.log")).unwrap();
        let parsed = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(parsed.get("request_id").and_then(Json::as_u64), Some(7));
        assert_eq!(
            parsed
                .get("stats")
                .and_then(|s| s.get("tiles_pruned"))
                .and_then(Json::as_u64),
            Some(5)
        );

        // Force a rotation by pre-filling the live file past the cap.
        let live = tmp.path().join("slow_queries.log");
        std::fs::write(&live, vec![b'x'; MAX_LOG_BYTES as usize]).unwrap();
        log.observe(Duration::ZERO, entry(8, 1));
        let rotated = tmp.path().join("slow_queries.log.1");
        assert!(rotated.exists(), "live segment rotates at the cap");
        assert!(std::fs::metadata(&live).unwrap().len() < MAX_LOG_BYTES);
    }
}
